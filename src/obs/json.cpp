#include "ajac/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "ajac/util/check.hpp"

namespace ajac::obs {

// ---------------------------------------------------------------- writer --

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  AJAC_CHECK(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  AJAC_CHECK(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += quote(name);
  out_ += ':';
  // The value following a key must not emit another comma.
  if (!needs_comma_.empty()) needs_comma_.back() = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += quote(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  if (!std::isfinite(d)) return null();
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

std::string JsonWriter::quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// ---------------------------------------------------------------- parser --

const JsonValue* JsonValue::find(const std::string& k) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(k);
  return it != object.end() ? &it->second : nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    AJAC_CHECK_MSG(pos_ == text_.size(),
                   "JSON: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    AJAC_CHECK_MSG(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    AJAC_CHECK_MSG(peek() == c, "JSON: expected '" << c << "' at offset "
                                                   << pos_ << ", found '"
                                                   << text_[pos_] << "'");
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    skip_ws();
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        AJAC_CHECK_MSG(consume_word("true"), "JSON: bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        AJAC_CHECK_MSG(consume_word("false"), "JSON: bad literal");
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        AJAC_CHECK_MSG(consume_word("null"), "JSON: bad literal");
        return v;
      default:
        v.kind = JsonValue::Kind::kNumber;
        v.number = parse_number();
        return v;
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    do {
      std::string k = parse_string();
      expect(':');
      const bool inserted = v.object.emplace(std::move(k), parse_value()).second;
      AJAC_CHECK_MSG(inserted, "JSON: duplicate object key");
    } while (consume(','));
    expect('}');
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    expect(']');
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      AJAC_CHECK_MSG(pos_ < text_.size(), "JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      AJAC_CHECK_MSG(pos_ < text_.size(), "JSON: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          AJAC_CHECK_MSG(pos_ + 4 <= text_.size(), "JSON: bad \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else AJAC_CHECK_MSG(false, "JSON: bad hex digit in \\u escape");
          }
          // The emitter only produces \u escapes for control characters;
          // decode the BMP code point as UTF-8.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          AJAC_CHECK_MSG(false, "JSON: unknown escape '\\" << e << "'");
      }
    }
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      AJAC_CHECK_MSG(pos_ > d0, "JSON: malformed number at offset " << start);
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double d = std::strtod(token.c_str(), nullptr);
    AJAC_CHECK_MSG(std::isfinite(d), "JSON: non-finite number " << token);
    return d;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

void write_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AJAC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  AJAC_CHECK_MSG(out.good(), "short write to " << path);
}

}  // namespace ajac::obs
