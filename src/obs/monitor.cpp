#include "ajac/obs/monitor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ajac/util/check.hpp"

namespace ajac::obs {

namespace {

/// Median of a scratch vector (partially sorts it).
double median_of(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const double lower =
        *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

}  // namespace

ConvergenceMonitor::ConvergenceMonitor(TelemetryHub& hub, Options opts)
    : hub_(&hub), opts_(opts) {
  AJAC_CHECK(opts_.window_us > 0.0);
  AJAC_CHECK(opts_.straggler_fraction > 0.0 && opts_.straggler_fraction < 1.0);
  AJAC_CHECK(opts_.straggler_windows >= 1);
  AJAC_CHECK(opts_.regression_window >= 2);
  actors_.resize(static_cast<std::size_t>(hub.options().max_actors));
}

ConvergenceMonitor::~ConvergenceMonitor() { stop(); }

void ConvergenceMonitor::add_sink(StreamSink* sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

void ConvergenceMonitor::poll_now() {
  const std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
}

void ConvergenceMonitor::flush() {
  // Each quiet pass lifts the watermark to the global max (every ring
  // drains empty), so the second pass consumes whatever the first left
  // pending; loop until a pass processes nothing at all.
  for (;;) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!drain_locked()) return;
  }
}

void ConvergenceMonitor::start() {
  AJAC_CHECK_MSG(drainer_ == nullptr, "monitor already started");
  stop_.store(false, std::memory_order_release);
  drainer_ = std::make_unique<std::thread>([this] {
    const auto interval =
        std::chrono::duration<double, std::milli>(opts_.poll_interval_ms);
    while (!stop_.load(std::memory_order_acquire)) {
      poll_now();
      std::this_thread::sleep_for(interval);
    }
  });
}

void ConvergenceMonitor::stop() {
  if (drainer_ == nullptr) return;
  stop_.store(true, std::memory_order_release);
  drainer_->join();
  drainer_.reset();
  // Final sweep so beacons published after the drainer's last pass (e.g.
  // the workers' final beacons) and the watermark-buffered tail are
  // consumed and forwarded.
  flush();
}

MonitorEstimates ConvergenceMonitor::estimates() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return est_;
}

bool ConvergenceMonitor::drain_locked() {
  const TelemetryRunInfo run = hub_->run_info();
  if (run.generation == 0) return false;  // no run yet
  if (run.generation != run_.generation) {
    // New run: reset every per-run estimate but keep the ring cursors —
    // rings are never reset, so positions stay valid across runs.
    for (ActorState& st : actors_) {
      st.pending.clear();
      st.reported = false;
      st.latest = Beacon{};
      st.window_start_relaxations = 0;
      st.slow_streak = 0;
      st.flagged = false;
      st.dropped_base = st.cursor.dropped;
    }
    est_ = MonitorEstimates{};
    est_.run_generation = run.generation;
    next_window_ = 1;
    windows_armed_ = false;
    skip_first_window_ = false;
    watermark_ = 0.0;
    global_max_ts_ = 0.0;
    frontier_iter_ = 0;
    points_.clear();
  }
  run_ = run;

  // Drain every ring into its actor's pending queue, then advance the
  // watermark: each actor is confirmed-complete up to its newest drained
  // beacon (rings are FIFO), or — when its ring drained empty — up to the
  // previous pass's global maximum (ring emptiness at drain time proves
  // silence up to every timestamp already seen; beacon time orders
  // consistently with publish order across actors). Only beacons at or
  // below the min of these are processed this pass; the rest wait in
  // pending. This is what keeps the per-window relaxation deltas honest:
  // without it, ring-drain skew inside one pass makes a healthy actor
  // look stalled (its beacons for the skew interval are still in its
  // ring while another actor's newer beacons close the windows). A truly
  // silent actor does not pin the watermark — its empty-ring fallback
  // keeps advancing with everyone else's beacons, which is what lets
  // stalls be detected at all.
  double cur_max = global_max_ts_;
  double wm = -1.0;
  bool wm_set = true;
  for (index_t a = 0; a < run_.num_actors; ++a) {
    ActorState& st = actors_[static_cast<std::size_t>(a)];
    Beacon b;
    bool has_fresh = false;
    while (hub_->ring(a).poll(st.cursor, b)) {
      st.pending.push_back(b);
      has_fresh = true;
    }
    if (has_fresh) cur_max = std::max(cur_max, st.pending.back().ts_us);
    double complete_to = 0.0;
    if (has_fresh) {
      complete_to = st.pending.back().ts_us;
    } else if (st.reported || !st.pending.empty()) {
      complete_to = global_max_ts_;
    } else {
      // Never published: hold the watermark until every actor has its
      // first beacon in flight — windows are unarmed until all actors
      // report, and processing ahead of a late starter would
      // desynchronize the window baselines resampled at arming time.
      // (Keep draining the remaining rings so none overflows meanwhile.)
      wm_set = false;
      continue;
    }
    wm = wm < 0.0 ? complete_to : std::min(wm, complete_to);
  }
  if (wm_set && wm >= 0.0) watermark_ = std::max(watermark_, wm);
  global_max_ts_ = cur_max;

  // Merge the processable prefixes in nondecreasing beacon time: the
  // window and frontier logic rely on seeing cross-actor evidence in
  // timestamp order. stable_sort keeps per-actor order for equal stamps
  // (sim time produces ties).
  struct Tagged {
    index_t actor;
    Beacon b;
  };
  std::vector<Tagged> batch;
  for (index_t a = 0; a < run_.num_actors; ++a) {
    ActorState& st = actors_[static_cast<std::size_t>(a)];
    while (!st.pending.empty() && st.pending.front().ts_us <= watermark_) {
      batch.push_back({a, st.pending.front()});
      st.pending.pop_front();
    }
  }
  if (batch.empty()) return false;
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Tagged& lhs, const Tagged& rhs) {
                     return lhs.b.ts_us < rhs.b.ts_us;
                   });
  for (const Tagged& t : batch) process_beacon(t.actor, t.b);

  std::uint64_t dropped = 0;
  for (index_t a = 0; a < run_.num_actors; ++a) {
    const ActorState& st = actors_[static_cast<std::size_t>(a)];
    dropped += st.cursor.dropped - st.dropped_base;
  }
  est_.dropped = dropped;

  for (StreamSink* sink : sinks_) sink->on_estimates(est_);
  return true;
}

void ConvergenceMonitor::process_beacon(index_t actor, const Beacon& b) {
  // Close windows the merged stream has now passed *before* integrating
  // this beacon: every actor's cumulative state is then exactly its
  // as-of-boundary value (all earlier beacons processed, none later).
  close_windows_up_to(b.ts_us);

  ActorState& st = actors_[static_cast<std::size_t>(actor)];
  if (!st.reported) {
    st.reported = true;
    ++est_.actors_reporting;
  }
  st.latest = b;
  ++est_.beacons;
  est_.ts_us = std::max(est_.ts_us, b.ts_us);

  if (!windows_armed_ && est_.actors_reporting == run_.num_actors) {
    // Arm the straggler detector only once every actor has published:
    // start-up skew (a thread forked late) must not read as a stall. The
    // first closed window after arming is partial, so it only resamples
    // the baselines and is not judged.
    windows_armed_ = true;
    skip_first_window_ = true;
    next_window_ =
        static_cast<std::int64_t>(std::floor(b.ts_us / opts_.window_us)) + 1;
    for (index_t a = 0; a < run_.num_actors; ++a) {
      ActorState& other = actors_[static_cast<std::size_t>(a)];
      other.window_start_relaxations = other.latest.relaxations;
    }
  }

  update_frontier(b.ts_us);
  for (StreamSink* sink : sinks_) sink->on_beacon(actor, b);
}

void ConvergenceMonitor::close_windows_up_to(double ts_us) {
  if (!windows_armed_) return;
  ts_us = std::min(ts_us, watermark_);
  while (static_cast<double>(next_window_) * opts_.window_us <= ts_us) {
    const double boundary =
        static_cast<double>(next_window_) * opts_.window_us;
    std::vector<double> rates(static_cast<std::size_t>(run_.num_actors));
    for (index_t a = 0; a < run_.num_actors; ++a) {
      const ActorState& st = actors_[static_cast<std::size_t>(a)];
      rates[static_cast<std::size_t>(a)] =
          static_cast<double>(st.latest.relaxations -
                              st.window_start_relaxations) /
          opts_.window_us;
    }
    std::vector<double> scratch = rates;
    const double median = median_of(scratch);
    // median == 0 means nobody made progress this window (all parked or
    // run over): there is no healthy cohort to judge against, so no actor
    // is flagged — only ever *compared* slowness counts as straggling.
    if (!skip_first_window_ && median > 0.0) {
      for (index_t a = 0; a < run_.num_actors; ++a) {
        ActorState& st = actors_[static_cast<std::size_t>(a)];
        const double rate = rates[static_cast<std::size_t>(a)];
        if (rate < opts_.straggler_fraction * median) {
          ++st.slow_streak;
          if (st.slow_streak >= opts_.straggler_windows && !st.flagged) {
            st.flagged = true;
            est_.stragglers.push_back({a, boundary, rate, median});
          }
        } else {
          st.slow_streak = 0;
        }
      }
    }
    skip_first_window_ = false;
    for (index_t a = 0; a < run_.num_actors; ++a) {
      ActorState& st = actors_[static_cast<std::size_t>(a)];
      st.window_start_relaxations = st.latest.relaxations;
    }
    ++next_window_;
  }
}

void ConvergenceMonitor::update_frontier(double ts_us) {
  if (est_.actors_reporting < run_.num_actors || run_.num_actors == 0) {
    return;
  }
  std::int64_t it_min = actors_[0].latest.iteration;
  std::int64_t it_max = it_min;
  double sum = 0.0;
  double mx = 0.0;
  for (index_t a = 0; a < run_.num_actors; ++a) {
    const Beacon& b = actors_[static_cast<std::size_t>(a)].latest;
    it_min = std::min(it_min, b.iteration);
    it_max = std::max(it_max, b.iteration);
    sum += b.own_residual_1;
    mx = std::max(mx, b.own_residual_1);
  }
  est_.iteration_min = it_min;
  est_.iteration_max = it_max;
  est_.iteration_imbalance =
      static_cast<double>(it_max - it_min) /
      static_cast<double>(std::max<std::int64_t>(1, it_max));
  const double rel = run_.convention == ResidualConvention::kOwnBlockSum
                         ? sum / run_.residual_scale
                         : mx;
  est_.global_rel_residual = rel;

  // A new frontier point whenever the slowest actor advanced: the global
  // estimate is then made of residuals all at iteration >= the frontier,
  // i.e. a genuinely new epoch of the solve. On the synchronous path all
  // actors sit at the same iteration, so each point is the exact global
  // residual of that iteration.
  if (it_min > frontier_iter_) {
    frontier_iter_ = it_min;
    points_.push_back({static_cast<double>(it_min), ts_us,
                       std::log(std::max(rel, 1e-300))});
    while (points_.size() >
           static_cast<std::size_t>(opts_.regression_window)) {
      points_.pop_front();
    }
    update_regression();
  }
}

void ConvergenceMonitor::update_regression() {
  const std::size_t n = points_.size();
  if (n < 2) {
    est_.rho_hat = 0.0;
    est_.eta_us = -1.0;
    return;
  }
  double mean_it = 0.0;
  double mean_ts = 0.0;
  double mean_y = 0.0;
  for (const FrontierPoint& p : points_) {
    mean_it += p.iter;
    mean_ts += p.ts_us;
    mean_y += p.ln_rel;
  }
  const auto dn = static_cast<double>(n);
  mean_it /= dn;
  mean_ts /= dn;
  mean_y /= dn;
  double var_it = 0.0;
  double var_ts = 0.0;
  double cov_it = 0.0;
  double cov_ts = 0.0;
  for (const FrontierPoint& p : points_) {
    var_it += (p.iter - mean_it) * (p.iter - mean_it);
    var_ts += (p.ts_us - mean_ts) * (p.ts_us - mean_ts);
    cov_it += (p.iter - mean_it) * (p.ln_rel - mean_y);
    cov_ts += (p.ts_us - mean_ts) * (p.ln_rel - mean_y);
  }
  est_.rho_hat = var_it > 0.0 ? std::exp(cov_it / var_it) : 0.0;

  est_.eta_us = -1.0;
  if (run_.tolerance > 0.0 && var_ts > 0.0) {
    const double slope_ts = cov_ts / var_ts;
    const double ln_rel = points_.back().ln_rel;
    const double ln_tol = std::log(run_.tolerance);
    if (slope_ts < 0.0 && ln_rel > ln_tol) {
      est_.eta_us = (ln_tol - ln_rel) / slope_ts;
    }
  }
}

}  // namespace ajac::obs
