#pragma once
// Lock-free per-actor telemetry ring: the transport under the live
// convergence monitor (ajac/obs/monitor.hpp).
//
// Each solver actor (thread / simulated rank) owns exactly one EventRing
// and publishes coarse progress beacons into it at a configurable stride;
// a drainer thread polls all rings concurrently. The protocol is a
// broadcast SPSC seqlock ring:
//
//  - Sole writer. Only the owning actor ever publishes; the role is
//    machine-checked (SoleWriterRole + AJAC_REQUIRES, the same discipline
//    as obs::ActorSlot and runtime::SharedVector).
//  - Wait-free producer, drop-oldest. publish() never blocks, spins, or
//    allocates: it overwrites the oldest slot unconditionally, so a slow
//    (or absent) drainer can never perturb the solve it is observing.
//    Losses are counted on the consumer side (Cursor::dropped), derived
//    from the monotonic beacon index — nothing is silently discarded.
//  - Seqlock slots. Every slot carries a sequence word holding 2*h+1
//    while beacon #h is being written and 2*h+2 once it is complete, so a
//    reader can tell exactly which beacon occupies the slot and whether
//    it raced an overwrite. As in shared_vector.hpp the formulation uses
//    per-word acquire/release accesses, never fences: TSan models these
//    precisely, so the drainer protocol is verifiable under the tsan
//    preset (the ISSUE's zero-race requirement).
//
// Memory-order contract (mirrors SharedVector::write/read_versioned):
//  writer:  seq <- 2h+1 (relaxed; only the sole writer mutates seq, so
//           this store needs no ordering — a reader seeing it retries),
//           payload words (release; pair with the reader's acquire loads
//           so a reader that saw a new word must then see the new seq),
//           seq <- 2h+2 (release; publishes the payload),
//           head <- h+1 (release; publishes slot availability).
//  reader:  head (acquire), seq == 2h+2 (acquire), payload (acquire),
//           seq revalidate (relaxed — pinned by the payload acquires;
//           see racy-ok(seqlock-validate)).

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"

namespace ajac::obs {

/// One coarse progress sample. All counters are cumulative over the
/// actor's local run, so any single beacon is a complete summary and a
/// dropped predecessor loses resolution, never information.
struct Beacon {
  double ts_us = 0.0;  ///< wall us (shared runtime) or sim us (distsim)
  std::int64_t iteration = 0;       ///< local iterations completed
  std::uint64_t relaxations = 0;    ///< cumulative row relaxations
  double own_residual_1 = 0.0;      ///< own-block residual 1-norm
  std::uint64_t policy_draws = 0;   ///< cumulative sampled-policy draws
  std::uint64_t weight_refreshes = 0;  ///< cumulative weight rebuilds
};

/// Broadcast SPSC seqlock ring of Beacons. Capacity is rounded up to a
/// power of two. Readers are independent: each carries its own Cursor,
/// so any number of concurrent drainers may poll one ring.
class EventRing {
 public:
  /// The publishing actor's sole-writer capability: claim it with
  /// `ring.writer.assert_held()` once the hub's one-ring-per-actor
  /// contract has made this thread the publisher.
  SoleWriterRole writer;

  explicit EventRing(std::size_t capacity = 256)
      : size_(round_up_pow2(capacity)),
        slots_(new Slot[size_]),
        mask_(size_ - 1) {
    for (std::size_t i = 0; i < size_; ++i) {
      // racy-ok(init): single-threaded construction, no reader exists yet.
      slots_[i].seq.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return size_; }

  /// Total beacons ever published (monotonic; readable concurrently).
  [[nodiscard]] std::uint64_t published() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Wait-free, allocation-free publish; overwrites the oldest slot.
  void publish(const Beacon& b) noexcept AJAC_REQUIRES(writer) {
    const std::uint64_t h = head_local_;
    Slot& s = slots_[static_cast<std::size_t>(h & mask_)];
    // racy-ok(seqlock-open): opening (odd) store of the writer's own
    // counter — a reader that sees it simply retries the slot; the
    // release stores below carry the publication.
    s.seq.store(2 * h + 1, std::memory_order_relaxed);
    // Release payload stores: a reader that acquires a new word must
    // also see the odd sequence above, so it cannot pair a new payload
    // with the old sequence (the TSan-modelable form of the classic
    // seqlock write fence; see shared_vector.hpp).
    s.word[0].store(std::bit_cast<std::uint64_t>(b.ts_us),
                    std::memory_order_release);
    s.word[1].store(static_cast<std::uint64_t>(b.iteration),
                    std::memory_order_release);
    s.word[2].store(b.relaxations, std::memory_order_release);
    s.word[3].store(std::bit_cast<std::uint64_t>(b.own_residual_1),
                    std::memory_order_release);
    s.word[4].store(b.policy_draws, std::memory_order_release);
    s.word[5].store(b.weight_refreshes, std::memory_order_release);
    s.seq.store(2 * h + 2, std::memory_order_release);
    head_local_ = h + 1;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Reader-side position: the next beacon index to read plus the count
  /// of beacons this reader lost to overwrites. Value-type — each reader
  /// owns its cursor; the ring holds no reader state.
  struct Cursor {
    std::uint64_t next = 0;
    std::uint64_t dropped = 0;
  };

  /// Pop the next available beacon into `out`. Returns false when the
  /// reader has caught up. Lapped beacons (overwritten before this
  /// reader got to them) are skipped and counted in `c.dropped`; the
  /// call never spins on the writer.
  bool poll(Cursor& c, Beacon& out) const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      if (c.next >= head) return false;
      if (head - c.next > size_) {
        // Fell more than one ring behind: everything older than the
        // ring's span is gone. Jump to the oldest possibly-live beacon.
        const std::uint64_t oldest = head - size_;
        c.dropped += oldest - c.next;
        c.next = oldest;
      }
      const std::uint64_t h = c.next;
      const Slot& s = slots_[static_cast<std::size_t>(h & mask_)];
      const std::uint64_t want = 2 * h + 2;
      // Acquire pairs with the writer's closing release store: seeing
      // `want` here means the matching payload stores are visible below.
      const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 != want) {
        // The head acquire above guarantees the closing store for every
        // h < head is visible, so a mismatch can only be a *later*
        // occupant (the writer lapped this slot since the head load).
        AJAC_DBG_CHECK(s1 > want);
        ++c.dropped;
        ++c.next;
        continue;
      }
      Beacon b;
      // Acquire payload loads: they pin the revalidation load below
      // after the payload reads (replacing the classic read fence) and
      // pair with the writer's release stores.
      b.ts_us = std::bit_cast<double>(
          s.word[0].load(std::memory_order_acquire));
      b.iteration = static_cast<std::int64_t>(
          s.word[1].load(std::memory_order_acquire));
      b.relaxations = s.word[2].load(std::memory_order_acquire);
      b.own_residual_1 = std::bit_cast<double>(
          s.word[3].load(std::memory_order_acquire));
      b.policy_draws = s.word[4].load(std::memory_order_acquire);
      b.weight_refreshes = s.word[5].load(std::memory_order_acquire);
      // racy-ok(seqlock-validate): the closing check may be relaxed —
      // the acquire payload loads above already order it after them.
      const std::uint64_t s2 = s.seq.load(std::memory_order_relaxed);
      if (s2 != want) {
        // Overwritten mid-read; the torn payload is discarded.
        ++c.dropped;
        ++c.next;
        continue;
      }
      out = b;
      ++c.next;
      return true;
    }
  }

 private:
  static constexpr std::size_t kPayloadWords = 6;

  static std::size_t round_up_pow2(std::size_t v) noexcept {
    if (v < 2) return 2;
    return std::bit_ceil(v);
  }

  // One 64-byte line per slot: the sequence word plus the six payload
  // words exactly fill it, so neighbouring slots never false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> word[kPayloadWords];
  };
  static_assert(sizeof(Slot) == 64);

  std::size_t size_;
  std::unique_ptr<Slot[]> slots_;  // aligned array new honours alignas(64)
  std::uint64_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  // Writer-private copy of head: publish() never re-reads the atomic.
  alignas(64) std::uint64_t head_local_ AJAC_SOLE_WRITER(writer) = 0;
};

}  // namespace ajac::obs
