#pragma once
// Live telemetry hub and streaming sinks.
//
// TelemetryHub owns one EventRing per potential actor and the per-run
// metadata the ConvergenceMonitor needs to interpret beacons (residual
// scale, tolerance, time base). Solvers accept a hub pointer the same way
// they accept a MetricsRegistry: `SharedOptions::stream` / ``DistOptions::
// stream`` default to nullptr, and the null path dispatches to a template
// instantiation whose hooks compile away (bitwise-identical results; see
// solve_hooks.hpp).
//
// Concurrency contract:
//  - Rings are allocated once, at hub construction, and never reallocated
//    or reset — a monitor may poll them while a solve publishes.
//  - Workers touch only their own ring (EventRing's sole-writer protocol);
//    they never take the hub mutex.
//  - Run metadata is guarded by a mutex taken only by single-threaded
//    phases (begin_run / set_residual_scale before the fork) and by
//    monitor/test readers.
//  - begin_run() does not clear rings (resetting the seqlock sequence
//    under a live reader would break the protocol). When reusing one hub
//    across solves with a monitor attached, drain (poll_now) between runs
//    so old beacons are not attributed to the new run.

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "ajac/obs/event_ring.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac::obs {

struct TelemetryOptions {
  /// Publish a beacon every `beacon_stride`-th local iteration (plus one
  /// final beacon at loop exit). 1 = every iteration.
  index_t beacon_stride = 8;
  /// Per-actor ring capacity (rounded up to a power of two).
  std::size_t ring_capacity = 256;
  /// Rings allocated at construction; begin_run() checks against this.
  index_t max_actors = 64;
};

/// How a run's beacons compose into a global residual estimate.
enum class ResidualConvention : std::uint8_t {
  /// own_residual_1 values are absolute own-block 1-norms over a row
  /// partition: global ||r||_1 = sum over actors, relative to
  /// residual_scale. The scalar shared solver and distsim use this.
  kOwnBlockSum,
  /// own_residual_1 values are already-relative per-actor upper bounds:
  /// global estimate = max over actors (batch solver: max over lanes of
  /// a column-relative norm; residual_scale is unused).
  kUpperBoundMax,
};

/// Per-run metadata, set by the solver before its workers fork.
struct TelemetryRunInfo {
  std::uint64_t generation = 0;  ///< bumped by every begin_run()
  index_t num_actors = 0;
  std::string actor_kind;      ///< "thread" | "rank"
  double residual_scale = 1.0; ///< initial residual norm (kOwnBlockSum)
  double tolerance = 0.0;      ///< solver's relative tolerance (0 = none)
  ResidualConvention convention = ResidualConvention::kOwnBlockSum;
  bool sim_time = false;       ///< beacons carry simulated us, not wall us
};

class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryOptions opts = {});

  [[nodiscard]] const TelemetryOptions& options() const noexcept {
    return opts_;
  }

  /// Actor `a`'s ring. Stable for the hub's lifetime.
  [[nodiscard]] EventRing& ring(index_t actor);
  [[nodiscard]] const EventRing& ring(index_t actor) const;

  /// Start a run: bump the generation and record its metadata. Called by
  /// the solver entry point, single-threaded, before any beacon of the
  /// run is published. num_actors must not exceed options().max_actors.
  void begin_run(index_t num_actors, std::string_view actor_kind,
                 double tolerance, ResidualConvention convention,
                 bool sim_time);

  /// Record the run's initial residual norm (kOwnBlockSum denominator).
  /// Single-threaded setup, after begin_run and before the fork.
  void set_residual_scale(double scale);

  [[nodiscard]] TelemetryRunInfo run_info() const;

 private:
  TelemetryOptions opts_;
  std::deque<EventRing> rings_;  // deque: EventRing is not movable
  mutable std::mutex mu_;
  TelemetryRunInfo run_;
};

// ---------------------------------------------------------------------------
// Streaming sinks
// ---------------------------------------------------------------------------

struct MonitorEstimates;  // ajac/obs/monitor.hpp

/// Consumer interface the ConvergenceMonitor forwards into. Callbacks run
/// on the monitor's drainer thread (or the poll_now() caller), never on a
/// solver worker.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  /// One beacon, in merged (cross-actor) timestamp order.
  virtual void on_beacon(index_t actor, const Beacon& b) = 0;
  /// Updated global estimates, once per drain pass that saw new beacons.
  virtual void on_estimates(const MonitorEstimates& e) = 0;
};

/// Newline-delimited JSON sink: one `{"type":"beacon",...}` object per
/// beacon and one `{"type":"estimate",...}` object per estimate update.
/// This is the stream `tools/ajac_top.py` tails. The caller owns the
/// ostream and its flushing policy (each record ends with '\n';
/// `flush_every_record` trades throughput for tail latency).
class NdjsonSink : public StreamSink {
 public:
  struct Options {
    bool flush_every_record = true;
    /// Zero every timestamp field: makes streams from deterministic
    /// (synchronous, fixed-iteration) runs byte-stable for golden tests.
    bool zero_timestamps = false;
  };

  explicit NdjsonSink(std::ostream& out) : NdjsonSink(out, Options()) {}
  NdjsonSink(std::ostream& out, Options opts) : out_(&out), opts_(opts) {}

  void on_beacon(index_t actor, const Beacon& b) override;
  void on_estimates(const MonitorEstimates& e) override;

 private:
  std::ostream* out_;
  Options opts_;
};

class TraceEventSink;  // ajac/obs/trace_sink.hpp

/// Forwards monitor estimates into Perfetto counter tracks on a
/// TraceEventSink, so the live series (global residual, rho-hat,
/// iteration lag, drop count) render alongside the existing span
/// timeline. Beacons additionally feed per-actor iteration counters.
class TraceCounterSink : public StreamSink {
 public:
  explicit TraceCounterSink(TraceEventSink& sink) : sink_(&sink) {}

  void on_beacon(index_t actor, const Beacon& b) override;
  void on_estimates(const MonitorEstimates& e) override;

 private:
  TraceEventSink* sink_;
};

}  // namespace ajac::obs
