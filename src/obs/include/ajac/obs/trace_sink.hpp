#pragma once
// Chrome trace-event / Perfetto exporter for MetricsRegistry timelines.
//
// Produces the JSON Object Format of the Trace Event specification
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a top-level {"traceEvents": [...]} whose entries are complete ("X")
// events for spans and instant ("i") events for markers, plus metadata
// ("M") events naming each process and actor lane. The file loads directly
// in https://ui.perfetto.dev or chrome://tracing; timestamps are
// microseconds (wall-clock for solve_shared, simulated for
// solve_distributed — the two should not share one sink).
//
// Usage:
//   obs::MetricsRegistry reg;
//   opts.metrics = &reg;
//   auto result = runtime::solve_shared(a, b, x0, opts);
//   obs::TraceEventSink sink;
//   sink.add_registry(reg, "solve_shared");
//   sink.write("run.trace.json");

#include <string>
#include <vector>

#include "ajac/obs/metrics.hpp"

namespace ajac::obs {

class TraceEventSink {
 public:
  /// Copy every timeline event out of `reg` as one trace process named
  /// `process_name`; actor t becomes thread lane "<actor_kind> t". Can be
  /// called several times (each registry gets the next pid) to compare
  /// runs side by side in one Perfetto view.
  void add_registry(const MetricsRegistry& reg,
                    const std::string& process_name);

  /// Append one sample to the named counter track (Perfetto "C" events:
  /// each track renders as a stepped line chart above the span lanes).
  /// Tracks live in their own "telemetry" process appended after every
  /// add_registry() pid; samples are emitted in insertion order, so feed
  /// them in nondecreasing ts (the ConvergenceMonitor's merged-stream
  /// order satisfies this). Used by obs::TraceCounterSink to put the live
  /// convergence series (rel_residual, rho_hat, iteration lag) alongside
  /// the timeline.
  void counter(const std::string& track, double ts_us, double value);

  /// Number of events collected so far (excluding metadata records;
  /// counter samples included).
  [[nodiscard]] std::size_t num_events() const noexcept;

  /// Render the {"traceEvents": [...]} document.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path` (create/truncate).
  void write(const std::string& path) const;

 private:
  struct Lane {
    int pid = 0;
    int tid = 0;
    std::string name;  ///< lane metadata name ("thread 3")
    std::vector<TraceEvent> events;
  };

  struct CounterSample {
    double ts_us = 0.0;
    double value = 0.0;
  };
  struct CounterTrack {
    std::string name;
    std::vector<CounterSample> samples;
  };

  std::vector<std::string> process_names_;  ///< index = pid
  std::vector<Lane> lanes_;
  std::vector<CounterTrack> counters_;
};

}  // namespace ajac::obs
