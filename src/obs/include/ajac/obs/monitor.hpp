#pragma once
// ConvergenceMonitor: the drainer side of the live telemetry pipeline.
//
// Consumes every ring of a TelemetryHub — without perturbing the workers
// publishing into them (the rings' drop-oldest protocol never blocks a
// producer) — and maintains online estimates of the solve's trajectory:
//
//  - global relative residual, composed from the latest own-block beacon
//    of every actor per the run's ResidualConvention;
//  - residual-decay rate rho-hat via windowed log-linear regression of
//    ln(rel residual) against the cross-actor iteration frontier (the
//    minimum local iteration count over actors: the number of completed
//    "global" sweeps all actors have reached). On the synchronous path
//    the frontier points are exact per-iteration global residuals, so
//    rho-hat converges to the Jacobi spectral radius (tested against
//    eig::spectral_radius_jacobi);
//  - ETA-to-tolerance from the same regression against time;
//  - cross-actor iteration lag / imbalance gauges;
//  - a straggler/stall detector: fixed time windows of width window_us;
//    each actor's relaxation rate in a closed window (from the cumulative
//    counters, sampled as a step function at the window boundary) is
//    compared with the running median over actors, and an actor whose
//    rate stays below straggler_fraction * median for straggler_windows
//    consecutive windows is flagged, latched, with the window-boundary
//    timestamp as the detection time.
//
// What the detector can and cannot see is documented in DESIGN.md §5f;
// the short version: it observes *publication* rate, so it catches slow
// and stalled actors (including crashed ones — their counters freeze) but
// judges nothing once the median itself collapses (e.g. after every
// actor parks at the iteration cap), and its latency is quantized to
// window_us and bounded below by straggler_windows windows.
//
// Thread model: poll_now() may be called from any single thread at a
// time (tests call it directly for determinism; start() runs it on a
// background drainer thread). Workers never interact with the monitor.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ajac/obs/event_ring.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac::obs {

/// A latched straggler detection.
struct StragglerFlag {
  index_t actor = 0;
  double detected_ts_us = 0.0;  ///< window boundary that confirmed it
  double rate = 0.0;            ///< relaxations/us in the deciding window
  double median_rate = 0.0;     ///< running median it was judged against
};

/// Snapshot of the monitor's online estimates.
struct MonitorEstimates {
  std::uint64_t run_generation = 0;
  double ts_us = 0.0;          ///< timestamp of the newest beacon seen
  std::uint64_t beacons = 0;   ///< beacons consumed this run
  std::uint64_t dropped = 0;   ///< beacons lost to ring overwrites
  index_t actors_reporting = 0;
  /// Global relative residual estimate; negative until every actor has
  /// reported at least once.
  double global_rel_residual = -1.0;
  /// Per-iteration residual decay factor exp(d ln r / d iter); 0 until
  /// the regression window has at least two frontier points.
  double rho_hat = 0.0;
  /// Estimated microseconds until the run tolerance is met; negative
  /// when unknown (no tolerance, not decaying, or already met).
  double eta_us = -1.0;
  std::int64_t iteration_min = 0;  ///< slowest actor's local iteration
  std::int64_t iteration_max = 0;  ///< fastest actor's local iteration
  /// (max - min) / max(1, max): 0 = lockstep, -> 1 = one actor stalled.
  double iteration_imbalance = 0.0;
  std::vector<StragglerFlag> stragglers;  ///< latched, detection order
};

class ConvergenceMonitor {
 public:
  struct Options {
    /// Straggler-detector window width (beacon-time us: wall us for the
    /// shared runtime, simulated us for distsim).
    double window_us = 1000.0;
    /// Flag when rate < straggler_fraction * median(rates).
    double straggler_fraction = 0.25;
    /// ... for this many consecutive closed windows.
    int straggler_windows = 3;
    /// Frontier points kept for the rho-hat / ETA regression.
    int regression_window = 64;
    /// Drainer thread poll cadence (start()/stop() mode only).
    double poll_interval_ms = 10.0;
  };

  explicit ConvergenceMonitor(TelemetryHub& hub)
      : ConvergenceMonitor(hub, Options()) {}
  ConvergenceMonitor(TelemetryHub& hub, Options opts);
  ~ConvergenceMonitor();

  ConvergenceMonitor(const ConvergenceMonitor&) = delete;
  ConvergenceMonitor& operator=(const ConvergenceMonitor&) = delete;

  /// Register a sink (not owned). Add sinks before start() or between
  /// poll_now() calls; never concurrently with a running drainer.
  void add_sink(StreamSink* sink);

  /// Drain every ring and update the estimates synchronously. The result
  /// is a pure function of the beacon stream consumed so far (no clocks,
  /// no scheduling dependence), which is what the deterministic tests and
  /// the post-run flush rely on. Beacons beyond the cross-actor drain
  /// watermark are buffered and processed by a later poll (or flush()),
  /// so one poll may not consume everything it drained.
  void poll_now();

  /// Poll repeatedly until a pass makes no progress: with no concurrent
  /// publishers this consumes every published beacon, including the
  /// watermark-buffered tail. Call after the solve (stop() does).
  void flush();

  /// Start/stop the background drainer thread. stop() joins and runs one
  /// final poll_now() so trailing beacons are never lost.
  void start();
  void stop();

  [[nodiscard]] MonitorEstimates estimates() const;

 private:
  struct ActorState {
    EventRing::Cursor cursor;  // survives run changes (rings never reset)
    // cursor.dropped at the start of the current run, so per-run drop
    // counts stay accurate when a hub is reused across runs.
    std::uint64_t dropped_base = 0;
    // Drained but not yet processed: beacons past the drain watermark
    // wait here (FIFO) until the watermark passes them.
    std::deque<Beacon> pending;
    bool reported = false;
    Beacon latest;
    // Straggler accounting: cumulative relaxations at the last closed
    // window boundary, and the below-threshold streak length.
    std::uint64_t window_start_relaxations = 0;
    int slow_streak = 0;
    bool flagged = false;
  };

  bool drain_locked();  // returns whether any beacon was processed
  void process_beacon(index_t actor, const Beacon& b);
  void close_windows_up_to(double ts_us);
  void update_frontier(double ts_us);
  void update_regression();

  TelemetryHub* hub_;
  Options opts_;

  mutable std::mutex mu_;
  std::vector<StreamSink*> sinks_;
  TelemetryRunInfo run_;
  std::vector<ActorState> actors_;
  MonitorEstimates est_;
  // Straggler windows: index of the next window boundary to close and
  // whether judging has started (all actors reported before the window
  // opened — start-up skew must not read as a stall).
  std::int64_t next_window_ = 1;
  bool windows_armed_ = false;
  bool skip_first_window_ = false;  // partial window right after arming
  // Drain watermark: beacons are processed (and windows closed) only up
  // to the minimum over actors of their confirmed-complete beacon time —
  // the newest beacon drained from an actor's ring this pass, or, when
  // the ring was empty, the previous pass's global maximum (ring
  // emptiness at drain time proves silence up to every timestamp already
  // seen). Without this, rings drained moments apart make a healthy
  // actor look stalled for the skew interval. A truly silent actor does
  // not pin the watermark: its fallback keeps advancing with everyone
  // else's beacons, which is what lets stalls be detected at all.
  double watermark_ = 0.0;
  double global_max_ts_ = 0.0;  // max beacon ts through the previous drain
  // rho-hat frontier: last frontier iteration appended and the retained
  // regression points (iteration, ts_us, ln rel residual).
  std::int64_t frontier_iter_ = 0;
  struct FrontierPoint {
    double iter;
    double ts_us;
    double ln_rel;
  };
  std::deque<FrontierPoint> points_;

  std::unique_ptr<std::thread> drainer_;
  std::atomic<bool> stop_{false};
};

}  // namespace ajac::obs
