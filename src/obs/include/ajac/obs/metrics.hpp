#pragma once
// Low-overhead metrics + timeline tracing for the asynchronous runtimes.
//
// The paper's "surprising results" (Sec. VII) hinge on quantities a plain
// SharedResult cannot show: per-thread relaxation rates, the staleness
// distribution of cross-block reads, flag-raise/termination timelines, and
// message latencies in the distributed simulation. A MetricsRegistry makes
// those visible without perturbing the run it observes:
//
//  * Per-actor slots. Every worker (OpenMP thread / simulated rank) owns
//    one cache-line-aligned ActorSlot and is the only writer to it, so
//    recording a counter or histogram sample is a plain store — no atomics,
//    no locks, no cross-thread traffic. Aggregation happens once, at
//    snapshot() time, after the runtime has joined its workers (the join is
//    the happens-before edge that makes the merge race-free).
//
//  * Log-bucketed histograms (HDR-style). Bucket k holds values whose
//    bit_width is k, i.e. [2^(k-1), 2^k); recording is a bit_width + three
//    adds. Good enough to separate "read the neighbor's latest value" from
//    "read a value 100 versions stale" without per-sample allocation.
//
//  * A bounded timeline. Each slot optionally records TraceEvents
//    (iteration spans, flag-raise instants, fault injections) up to a cap;
//    past the cap events are counted as dropped, never silently lost.
//    obs::TraceEventSink exports the timeline as Chrome trace-event JSON
//    viewable in Perfetto / chrome://tracing.
//
// Enabling is opt-in per run: SharedOptions::metrics, DistOptions::metrics,
// and SolveOptions::metrics all default to nullptr, and the runtimes
// dispatch to template instantiations whose recording hooks compile to
// no-ops (the same pattern as fault::NullFaults), so a disabled run carries
// no metrics branches at all and its results are bitwise those of the
// uninstrumented solver.
//
// Threading contract: reset() and snapshot() are single-threaded (call
// them before starting / after joining the workers); between them, actor t
// may only be touched by worker t. That contract is machine-checked
// (-Wthread-safety): every ActorSlot carries a SoleWriterRole capability
// guarding its counters, histograms, and timeline, and every recording
// method requires it — a worker claims `slot.owner.assert_held()` for its
// own slot, and the post-join aggregation claims the read side with
// `slot.owner.assert_shared()`.

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ajac/sparse/types.hpp"
#include "ajac/util/annotate.hpp"

namespace ajac::obs {

/// Version of the JSON snapshot schema emitted by obs::to_json. Bump when
/// renaming/removing fields; additions are backward compatible.
inline constexpr int kMetricsSchemaVersion = 2;

/// Monotone per-actor counters. Shared-runtime and distsim populate
/// disjoint subsets; unused counters stay zero and are still emitted (the
/// schema is stable across runtimes).
enum class Counter : std::size_t {
  kRelaxations = 0,     ///< row relaxations performed
  kIterations,          ///< local iterations completed
  kSeqlockRetries,      ///< versioned-read retry loops (traced vectors)
  kFlagRaises,          ///< 0->1 transitions of the termination flag
  kSpinWaitNs,          ///< injected delay busy-wait (delay_us, stragglers)
  kResidualCheckNs,     ///< time in the racy convergence-norm scan
  kPolishSweeps,        ///< sequential cleanup sweeps after the run
  kFaultEvents,         ///< fault injections observed by this actor
  kLocalReads,          ///< blocked kernel: entries read from the private mirror
  kGhostReads,          ///< blocked kernel: entries read through SharedVector
  kLaneRelaxations,     ///< batch path: row relaxations x active columns
  kMessagesSent,        ///< distsim: puts issued (incl. dropped/duplicated)
  kMessagesReceived,    ///< distsim: puts delivered
  kMessagesDropped,     ///< distsim: puts lost to faults or dead ranks
  kMessagesDuplicated,  ///< distsim: retransmitted copies injected
  kWeightRefreshes,     ///< sampled policies: |r_i| prefix-sum rebuilds
  kPolicyDraws,         ///< sampled policies: rows drawn from the sampler
  kQueueFullDrops,      ///< mesh: packets refused by a full SPSC ring
  kGhostRefreshes,      ///< sellcs: dense ghost-buffer refreshes performed
  kCount
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name used in the JSON snapshot.
[[nodiscard]] const char* counter_name(Counter c) noexcept;

/// Per-actor histograms (merged across actors at snapshot time).
enum class Hist : std::size_t {
  kReadStaleness = 0,  ///< versions behind a synchronous schedule per read
  kIterationUs,        ///< wall/sim microseconds per local iteration
  kResidualCheckUs,    ///< microseconds per convergence-norm scan
  kMessageLatencyUs,   ///< distsim: network latency per issued put
  kQueueDepth,         ///< distsim: mailbox depth when the rank drains it
  kGhostReadAge,       ///< distsim: sender-iteration lag of applied ghosts
  kBatchOccupancy,     ///< batch path: active (unconverged) columns per iteration
  kColumnRelaxations,  ///< batch path: per-column active relaxation totals
  kRowRelaxations,     ///< sampled policies: per-row relaxation totals
  kRowSelectionSkew,   ///< sampled policies: per-thread max/mean row count, %
  kCount
};
inline constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount);

[[nodiscard]] const char* hist_name(Hist h) noexcept;

/// Power-of-two-bucketed histogram of unsigned samples. Single writer;
/// merge() combines per-actor instances into the snapshot aggregate.
class Histogram {
 public:
  /// Bucket k counts samples v with std::bit_width(v) == k: bucket 0 is
  /// exactly {0}, bucket k >= 1 spans [2^(k-1), 2^k). 64-bit samples fill
  /// buckets 0..64.
  static constexpr std::size_t kNumBuckets = 65;

  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& o) noexcept {
    for (std::size_t k = 0; k < kNumBuckets; ++k) buckets_[k] += o.buckets_[k];
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] static constexpr std::size_t bucket_of(
      std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Smallest sample landing in bucket k.
  [[nodiscard]] static constexpr std::uint64_t bucket_low(
      std::size_t k) noexcept {
    return k == 0 ? 0 : std::uint64_t{1} << (k - 1);
  }

  /// Largest sample landing in bucket k (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_high(
      std::size_t k) noexcept {
    if (k == 0) return 0;
    if (k >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << k) - 1;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ > 0 ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t k) const noexcept {
    return buckets_[k];
  }

  /// Approximate quantile (0 <= p <= 1): locates the bucket holding the
  /// p-th sample and interpolates linearly within its [low, high] range.
  /// Exact for bucket 0 and for point-mass distributions; elsewhere
  /// accurate to the bucket's factor-of-two resolution.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// What happened on the timeline. Spans carry a duration; the rest are
/// instants. arg0/arg1 meaning per kind is documented at the record site.
enum class TraceKind : std::uint8_t {
  kIteration = 0,   ///< span: one local iteration (arg0 = iteration index)
  kSolve,           ///< span: the whole solve (actor 0)
  kPolish,          ///< span: sequential polish phase (arg0 = sweeps)
  kFlagRaise,       ///< instant: termination flag 0 -> 1 (arg0 = iteration)
  kFlagLower,       ///< instant: termination flag 1 -> 0 (arg0 = iteration)
  kStop,            ///< instant: verified stop / stop broadcast decided
  kCrash,           ///< instant: crash fault fired
  kRecover,         ///< instant: crashed actor resumed
  kStragglerOn,     ///< instant: straggler window entered
  kStaleWindowOn,   ///< instant: stale-read window entered
  kBitFlip,         ///< instant: transient matrix-entry corruption (arg0=row)
  kMessageDrop,     ///< instant: put lost in the network (arg0 = receiver)
  kMessageDuplicate,///< instant: put retransmitted (arg0 = receiver)
  kMessageReorder,  ///< instant: put latency inflated (arg0 = receiver)
  kDetection,       ///< instant: rank 0 detected convergence
};

[[nodiscard]] const char* trace_kind_name(TraceKind k) noexcept;

struct TraceEvent {
  double ts_us = 0.0;
  double dur_us = -1.0;  ///< < 0 means instant
  TraceKind kind = TraceKind::kIteration;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;

  [[nodiscard]] bool is_span() const noexcept { return dur_us >= 0.0; }
};

struct MetricsConfig {
  /// Collect TraceEvents (the counters/histograms are always collected).
  bool timeline = true;
  /// Per-actor timeline cap; extra events increment dropped_events instead
  /// of allocating without bound.
  std::size_t max_events_per_actor = std::size_t{1} << 16;
};

/// One worker's private recording area. alignas keeps the hot counters of
/// adjacent actors on different cache lines. The single-writer contract is
/// a capability: recording requires `owner` held exclusively (the worker's
/// claim), reading it after the join requires it shared.
struct alignas(64) ActorSlot {
  /// Sole-writer role of this slot; worker t claims slot t's at entry.
  SoleWriterRole owner;

  std::array<std::uint64_t, kNumCounters> counters AJAC_SOLE_WRITER(owner) =
      {};
  std::array<Histogram, kNumHists> histograms AJAC_SOLE_WRITER(owner) = {};
  std::vector<TraceEvent> events AJAC_SOLE_WRITER(owner);
  std::uint64_t dropped_events AJAC_SOLE_WRITER(owner) = 0;

  void add(Counter c, std::uint64_t v = 1) noexcept AJAC_REQUIRES(owner) {
    counters[static_cast<std::size_t>(c)] += v;
  }
  void record(Hist h, std::uint64_t v) noexcept AJAC_REQUIRES(owner) {
    histograms[static_cast<std::size_t>(h)].record(v);
  }
  void span(TraceKind kind, double t0_us, double t1_us, std::int64_t arg0 = 0,
            std::int64_t arg1 = 0) AJAC_REQUIRES(owner) {
    push({t0_us, t1_us > t0_us ? t1_us - t0_us : 0.0, kind, arg0, arg1});
  }
  void instant(TraceKind kind, double ts_us, std::int64_t arg0 = 0,
               std::int64_t arg1 = 0) AJAC_REQUIRES(owner) {
    push({ts_us, -1.0, kind, arg0, arg1});
  }

 private:
  friend class MetricsRegistry;
  void push(TraceEvent e) AJAC_REQUIRES(owner) {
    if (!timeline_) return;
    if (events.size() < max_events_) {
      events.push_back(e);
    } else {
      ++dropped_events;
    }
  }

  bool timeline_ = false;
  std::size_t max_events_ = 0;
};

/// Merged view of every actor, taken after the workers have joined.
struct MetricsSnapshot {
  index_t num_actors = 0;
  std::array<std::uint64_t, kNumCounters> totals{};
  std::vector<std::array<std::uint64_t, kNumCounters>> per_actor;
  std::array<Histogram, kNumHists> histograms{};
  std::uint64_t trace_events = 0;
  std::uint64_t dropped_trace_events = 0;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricsConfig cfg = {}) : cfg_(cfg) {}

  /// Size the registry for `num_actors` workers, clearing previous data.
  /// The runtimes call this on entry with an `events_hint` sized to the
  /// expected event count so the timed region performs no reallocation in
  /// steady state (growth beyond the hint is amortized push_back, capped
  /// at max_events_per_actor).
  void reset(index_t num_actors, std::size_t events_hint = 1024);

  [[nodiscard]] index_t num_actors() const noexcept {
    return static_cast<index_t>(slots_.size());
  }
  [[nodiscard]] ActorSlot& actor(index_t t) { return slots_[static_cast<std::size_t>(t)]; }
  [[nodiscard]] const ActorSlot& actor(index_t t) const {
    return slots_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] const MetricsConfig& config() const noexcept { return cfg_; }

  /// What an actor is called in exported traces ("thread" / "rank"); set
  /// by the runtime that fills the registry.
  void set_actor_kind(std::string kind) { actor_kind_ = std::move(kind); }
  [[nodiscard]] const std::string& actor_kind() const noexcept {
    return actor_kind_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  MetricsConfig cfg_;
  std::string actor_kind_ = "thread";
  std::vector<ActorSlot> slots_;
};

/// Serialize a snapshot as schema-versioned JSON. `metadata` carries run
/// identification (git sha, matrix id, thread count, ...) verbatim into
/// the "metadata" object.
[[nodiscard]] std::string to_json(
    const MetricsSnapshot& snap,
    const std::map<std::string, std::string>& metadata = {});

}  // namespace ajac::obs
