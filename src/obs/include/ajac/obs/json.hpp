#pragma once
// Minimal JSON emission and parsing for the observability subsystem.
//
// The repo deliberately carries no third-party JSON dependency; the metrics
// snapshot (obs::to_json), the Chrome trace exporter (obs::TraceEventSink),
// and the bench --json reports all emit through JsonWriter, and the schema
// tests read files back through parse_json. The parser is a strict
// recursive-descent RFC 8259 subset: objects, arrays, strings (with the
// standard escapes), finite numbers, booleans, and null. It exists for
// validation and tests, not speed.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ajac::obs {

/// Append-only JSON emitter. Callers drive the nesting explicitly
/// (begin_object / key / value / end_object); the writer tracks where
/// commas belong. Non-finite doubles are emitted as null — JSON has no
/// NaN/Inf and a metrics file must stay loadable by strict parsers.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  /// The document built so far. Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// Escape one string as a JSON string literal (with quotes).
  static std::string quote(std::string_view s);

 private:
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< one entry per open container
};

/// Parsed JSON document node. A deliberately small DOM: numbers are kept
/// as double (every value this repo emits fits), object keys are unique.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member or nullptr (also nullptr when this is not an object).
  [[nodiscard]] const JsonValue* find(const std::string& k) const;
};

/// Parse a complete JSON document; throws std::logic_error (via AJAC_CHECK)
/// on any syntax error, trailing garbage, or non-finite number.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Write `text` to `path` (create/truncate); throws on I/O failure.
void write_file(const std::string& path, std::string_view text);

}  // namespace ajac::obs
