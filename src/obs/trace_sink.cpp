#include "ajac/obs/trace_sink.hpp"

#include "ajac/obs/json.hpp"

namespace ajac::obs {

void TraceEventSink::add_registry(const MetricsRegistry& reg,
                                  const std::string& process_name) {
  const int pid = static_cast<int>(process_names_.size());
  process_names_.push_back(process_name);
  for (index_t t = 0; t < reg.num_actors(); ++t) {
    Lane lane;
    lane.pid = pid;
    lane.tid = static_cast<int>(t);
    lane.name = reg.actor_kind() + " " + std::to_string(t);
    const ActorSlot& slot = reg.actor(t);
    // Export runs after the joined solve; claim the read side of the slot.
    slot.owner.assert_shared();
    lane.events = slot.events;
    lanes_.push_back(std::move(lane));
  }
}

void TraceEventSink::counter(const std::string& track, double ts_us,
                             double value) {
  for (CounterTrack& t : counters_) {
    if (t.name == track) {
      t.samples.push_back({ts_us, value});
      return;
    }
  }
  counters_.push_back({track, {{ts_us, value}}});
}

std::size_t TraceEventSink::num_events() const noexcept {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.events.size();
  for (const CounterTrack& t : counters_) n += t.samples.size();
  return n;
}

std::string TraceEventSink::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (std::size_t pid = 0; pid < process_names_.size(); ++pid) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::int64_t>(pid));
    w.key("tid").value(std::int64_t{0});
    w.key("args").begin_object();
    w.key("name").value(process_names_[pid]);
    w.end_object();
    w.end_object();
  }
  for (const Lane& lane : lanes_) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(std::int64_t{lane.pid});
    w.key("tid").value(std::int64_t{lane.tid});
    w.key("args").begin_object();
    w.key("name").value(lane.name);
    w.end_object();
    w.end_object();
    for (const TraceEvent& e : lane.events) {
      w.begin_object();
      w.key("name").value(trace_kind_name(e.kind));
      if (e.is_span()) {
        w.key("ph").value("X");
        w.key("ts").value(e.ts_us);
        w.key("dur").value(e.dur_us);
      } else {
        w.key("ph").value("i");
        w.key("ts").value(e.ts_us);
        w.key("s").value("t");  // thread-scoped instant
      }
      w.key("pid").value(std::int64_t{lane.pid});
      w.key("tid").value(std::int64_t{lane.tid});
      w.key("args").begin_object();
      w.key("arg0").value(e.arg0);
      w.key("arg1").value(e.arg1);
      w.end_object();
      w.end_object();
    }
  }
  // Counter tracks render in their own process, after every registry pid,
  // so the live series sit in one group above/below the span lanes.
  if (!counters_.empty()) {
    const auto counter_pid =
        static_cast<std::int64_t>(process_names_.size());
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(counter_pid);
    w.key("tid").value(std::int64_t{0});
    w.key("args").begin_object();
    w.key("name").value("telemetry");
    w.end_object();
    w.end_object();
    for (const CounterTrack& t : counters_) {
      for (const CounterSample& sample : t.samples) {
        w.begin_object();
        w.key("name").value(t.name);
        w.key("ph").value("C");
        w.key("ts").value(sample.ts_us);
        w.key("pid").value(counter_pid);
        w.key("tid").value(std::int64_t{0});
        w.key("args").begin_object();
        w.key("value").value(sample.value);
        w.end_object();
        w.end_object();
      }
    }
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TraceEventSink::write(const std::string& path) const {
  write_file(path, to_json());
}

}  // namespace ajac::obs
