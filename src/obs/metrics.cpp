#include "ajac/obs/metrics.hpp"

#include <algorithm>

#include "ajac/obs/json.hpp"
#include "ajac/util/check.hpp"

namespace ajac::obs {

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kRelaxations: return "relaxations";
    case Counter::kIterations: return "iterations";
    case Counter::kSeqlockRetries: return "seqlock_retries";
    case Counter::kFlagRaises: return "flag_raises";
    case Counter::kSpinWaitNs: return "spin_wait_ns";
    case Counter::kResidualCheckNs: return "residual_check_ns";
    case Counter::kPolishSweeps: return "polish_sweeps";
    case Counter::kFaultEvents: return "fault_events";
    case Counter::kLocalReads: return "local_reads";
    case Counter::kGhostReads: return "ghost_reads";
    case Counter::kLaneRelaxations: return "lane_relaxations";
    case Counter::kMessagesSent: return "messages_sent";
    case Counter::kMessagesReceived: return "messages_received";
    case Counter::kMessagesDropped: return "messages_dropped";
    case Counter::kMessagesDuplicated: return "messages_duplicated";
    case Counter::kWeightRefreshes: return "weight_refreshes";
    case Counter::kPolicyDraws: return "policy_draws";
    case Counter::kQueueFullDrops: return "queue_full_drops";
    case Counter::kGhostRefreshes: return "ghost_refreshes";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* hist_name(Hist h) noexcept {
  switch (h) {
    case Hist::kReadStaleness: return "read_staleness";
    case Hist::kIterationUs: return "iteration_us";
    case Hist::kResidualCheckUs: return "residual_check_us";
    case Hist::kMessageLatencyUs: return "message_latency_us";
    case Hist::kQueueDepth: return "queue_depth";
    case Hist::kGhostReadAge: return "ghost_read_age";
    case Hist::kBatchOccupancy: return "batch_occupancy";
    case Hist::kColumnRelaxations: return "column_relaxations";
    case Hist::kRowRelaxations: return "row_relaxations";
    case Hist::kRowSelectionSkew: return "row_selection_skew";
    case Hist::kCount: break;
  }
  return "unknown";
}

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kIteration: return "iteration";
    case TraceKind::kSolve: return "solve";
    case TraceKind::kPolish: return "polish";
    case TraceKind::kFlagRaise: return "flag_raise";
    case TraceKind::kFlagLower: return "flag_lower";
    case TraceKind::kStop: return "stop";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRecover: return "recover";
    case TraceKind::kStragglerOn: return "straggler_on";
    case TraceKind::kStaleWindowOn: return "stale_window_on";
    case TraceKind::kBitFlip: return "bit_flip";
    case TraceKind::kMessageDrop: return "message_drop";
    case TraceKind::kMessageDuplicate: return "message_duplicate";
    case TraceKind::kMessageReorder: return "message_reorder";
    case TraceKind::kDetection: return "detection";
  }
  return "unknown";
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample, 1-based. The extreme ranks short-circuit
  // so p=0 / p=1 return min / max exactly.
  const auto rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count_ - 1)) + 1;
  if (rank <= 1) return min();
  if (rank >= count_) return max_;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kNumBuckets; ++k) {
    if (buckets_[k] == 0) continue;
    if (seen + buckets_[k] >= rank) {
      // Interpolate by position within the bucket (first sample -> low end,
      // last sample -> high end), clamped to the observed extremes.
      const double within =
          buckets_[k] > 1 ? static_cast<double>(rank - seen - 1) /
                                static_cast<double>(buckets_[k] - 1)
                          : 0.0;
      const double lo = static_cast<double>(std::max(bucket_low(k), min()));
      const double hi = static_cast<double>(std::min(bucket_high(k), max_));
      const double v = lo + within * (hi - lo);
      // double(max_) rounds up for values near 2^64; casting that back
      // would overflow, so clamp in floating point first.
      if (v >= static_cast<double>(max_)) return max_;
      return static_cast<std::uint64_t>(v);
    }
    seen += buckets_[k];
  }
  return max_;
}

void MetricsRegistry::reset(index_t num_actors, std::size_t events_hint) {
  AJAC_CHECK(num_actors >= 1);
  slots_.assign(static_cast<std::size_t>(num_actors), ActorSlot{});
  const std::size_t reserve =
      std::min(std::max<std::size_t>(events_hint, 64),
               cfg_.max_events_per_actor);
  for (ActorSlot& s : slots_) {
    // Single-threaded setup phase: no worker has started, so this thread
    // momentarily holds every slot's sole-writer role.
    s.owner.assert_held();
    s.timeline_ = cfg_.timeline;
    s.max_events_ = cfg_.timeline ? cfg_.max_events_per_actor : 0;
    if (cfg_.timeline) s.events.reserve(reserve);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.num_actors = num_actors();
  snap.per_actor.reserve(slots_.size());
  for (const ActorSlot& s : slots_) {
    // Post-join aggregation: the workers are gone, reading is safe.
    s.owner.assert_shared();
    snap.per_actor.push_back(s.counters);
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      snap.totals[c] += s.counters[c];
    }
    for (std::size_t h = 0; h < kNumHists; ++h) {
      snap.histograms[h].merge(s.histograms[h]);
    }
    snap.trace_events += s.events.size();
    snap.dropped_trace_events += s.dropped_events;
  }
  return snap;
}

std::string to_json(const MetricsSnapshot& snap,
                    const std::map<std::string, std::string>& metadata) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(std::int64_t{kMetricsSchemaVersion});
  w.key("kind").value("ajac-metrics-snapshot");
  w.key("metadata").begin_object();
  for (const auto& [k, v] : metadata) w.key(k).value(v);
  w.end_object();
  w.key("num_actors").value(static_cast<std::int64_t>(snap.num_actors));

  w.key("counters").begin_object();
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    w.key(counter_name(static_cast<Counter>(c))).begin_object();
    w.key("total").value(snap.totals[c]);
    w.key("per_actor").begin_array();
    for (const auto& actor : snap.per_actor) w.value(actor[c]);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (std::size_t h = 0; h < kNumHists; ++h) {
    const Histogram& hist = snap.histograms[h];
    w.key(hist_name(static_cast<Hist>(h))).begin_object();
    w.key("count").value(hist.count());
    w.key("sum").value(hist.sum());
    w.key("min").value(hist.min());
    w.key("max").value(hist.max());
    w.key("mean").value(hist.mean());
    w.key("p50").value(hist.percentile(0.50));
    w.key("p90").value(hist.percentile(0.90));
    w.key("p99").value(hist.percentile(0.99));
    // Sparse bucket list: [bucket_low, bucket_high, count] per non-empty
    // bucket, lowest first.
    w.key("buckets").begin_array();
    for (std::size_t k = 0; k < Histogram::kNumBuckets; ++k) {
      if (hist.bucket_count(k) == 0) continue;
      w.begin_array();
      w.value(Histogram::bucket_low(k));
      w.value(Histogram::bucket_high(k));
      w.value(hist.bucket_count(k));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("trace_events").value(snap.trace_events);
  w.key("dropped_trace_events").value(snap.dropped_trace_events);
  w.end_object();
  return w.str();
}

}  // namespace ajac::obs
