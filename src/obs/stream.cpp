#include "ajac/obs/stream.hpp"

#include "ajac/obs/json.hpp"
#include "ajac/obs/monitor.hpp"
#include "ajac/obs/trace_sink.hpp"
#include "ajac/util/check.hpp"

namespace ajac::obs {

// ---------------------------------------------------------------------------
// TelemetryHub
// ---------------------------------------------------------------------------

TelemetryHub::TelemetryHub(TelemetryOptions opts) : opts_(opts) {
  AJAC_CHECK(opts_.max_actors >= 1);
  AJAC_CHECK(opts_.beacon_stride >= 1);
  // All rings up front, never reallocated: a ConvergenceMonitor may hold
  // references and poll while later runs publish.
  for (index_t a = 0; a < opts_.max_actors; ++a) {
    rings_.emplace_back(opts_.ring_capacity);
  }
}

EventRing& TelemetryHub::ring(index_t actor) {
  AJAC_CHECK(actor >= 0 && actor < opts_.max_actors);
  return rings_[static_cast<std::size_t>(actor)];
}

const EventRing& TelemetryHub::ring(index_t actor) const {
  AJAC_CHECK(actor >= 0 && actor < opts_.max_actors);
  return rings_[static_cast<std::size_t>(actor)];
}

void TelemetryHub::begin_run(index_t num_actors, std::string_view actor_kind,
                             double tolerance,
                             ResidualConvention convention, bool sim_time) {
  AJAC_CHECK_MSG(num_actors >= 1 && num_actors <= opts_.max_actors,
                 "telemetry hub sized for " << opts_.max_actors
                                            << " actors, run needs "
                                            << num_actors);
  const std::lock_guard<std::mutex> lock(mu_);
  ++run_.generation;
  run_.num_actors = num_actors;
  run_.actor_kind.assign(actor_kind.begin(), actor_kind.end());
  run_.residual_scale = 1.0;
  run_.tolerance = tolerance;
  run_.convention = convention;
  run_.sim_time = sim_time;
}

void TelemetryHub::set_residual_scale(double scale) {
  const std::lock_guard<std::mutex> lock(mu_);
  run_.residual_scale = scale > 0.0 ? scale : 1.0;
}

TelemetryRunInfo TelemetryHub::run_info() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return run_;
}

// ---------------------------------------------------------------------------
// NdjsonSink
// ---------------------------------------------------------------------------

void NdjsonSink::on_beacon(index_t actor, const Beacon& b) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("beacon");
  w.key("actor").value(static_cast<std::int64_t>(actor));
  w.key("ts_us").value(opts_.zero_timestamps ? 0.0 : b.ts_us);
  w.key("iteration").value(b.iteration);
  w.key("relaxations").value(b.relaxations);
  w.key("own_residual_1").value(b.own_residual_1);
  w.key("policy_draws").value(b.policy_draws);
  w.key("weight_refreshes").value(b.weight_refreshes);
  w.end_object();
  *out_ << w.str() << '\n';
  if (opts_.flush_every_record) out_->flush();
}

void NdjsonSink::on_estimates(const MonitorEstimates& e) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("estimate");
  w.key("ts_us").value(opts_.zero_timestamps ? 0.0 : e.ts_us);
  w.key("beacons").value(e.beacons);
  w.key("dropped").value(e.dropped);
  w.key("actors_reporting").value(
      static_cast<std::int64_t>(e.actors_reporting));
  w.key("global_rel_residual").value(e.global_rel_residual);
  w.key("rho_hat").value(e.rho_hat);
  w.key("eta_us").value(opts_.zero_timestamps ? 0.0 : e.eta_us);
  w.key("iteration_min").value(e.iteration_min);
  w.key("iteration_max").value(e.iteration_max);
  w.key("iteration_imbalance").value(e.iteration_imbalance);
  w.key("stragglers").begin_array();
  for (const StragglerFlag& f : e.stragglers) {
    w.begin_object();
    w.key("actor").value(static_cast<std::int64_t>(f.actor));
    w.key("detected_ts_us").value(
        opts_.zero_timestamps ? 0.0 : f.detected_ts_us);
    w.key("rate").value(opts_.zero_timestamps ? 0.0 : f.rate);
    w.key("median_rate").value(opts_.zero_timestamps ? 0.0 : f.median_rate);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  *out_ << w.str() << '\n';
  if (opts_.flush_every_record) out_->flush();
}

// ---------------------------------------------------------------------------
// TraceCounterSink
// ---------------------------------------------------------------------------

void TraceCounterSink::on_beacon(index_t actor, const Beacon& b) {
  sink_->counter("iteration/actor" + std::to_string(actor), b.ts_us,
                 static_cast<double>(b.iteration));
}

void TraceCounterSink::on_estimates(const MonitorEstimates& e) {
  if (e.global_rel_residual >= 0.0) {
    sink_->counter("rel_residual", e.ts_us, e.global_rel_residual);
  }
  if (e.rho_hat > 0.0) sink_->counter("rho_hat", e.ts_us, e.rho_hat);
  sink_->counter("iteration_lag", e.ts_us,
                 static_cast<double>(e.iteration_max - e.iteration_min));
  sink_->counter("dropped_beacons", e.ts_us,
                 static_cast<double>(e.dropped));
}

}  // namespace ajac::obs
