#include "ajac/util/check.hpp"

namespace ajac::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "AJAC_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) oss << " — " << message;
  throw std::logic_error(oss.str());
}

}  // namespace ajac::detail
