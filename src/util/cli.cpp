#include "ajac/util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "ajac/util/check.hpp"

namespace ajac {

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

CliParser::CliParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)),
      description_(std::move(description)) {}

void CliParser::add_option(const std::string& key,
                           const std::string& default_value,
                           const std::string& help_text) {
  AJAC_CHECK_MSG(!options_.contains(key), "duplicate option --" << key);
  options_[key] = Option{default_value, help_text, /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& key, const std::string& help_text) {
  AJAC_CHECK_MSG(!options_.contains(key), "duplicate flag --" << key);
  options_[key] = Option{"false", help_text, /*is_flag=*/true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg +
                                  "\n" + help());
    }
    arg = arg.substr(2);
    std::string key;
    std::string value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      auto it = options_.find(key);
      if (it == options_.end()) {
        throw std::invalid_argument("unknown option --" + key + "\n" + help());
      }
      if (it->second.is_flag) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for --" + key);
        }
        value = argv[++i];
      }
    }
    if (!options_.contains(key)) {
      throw std::invalid_argument("unknown option --" + key + "\n" + help());
    }
    values_[key] = value;
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& key) const {
  auto it = options_.find(key);
  AJAC_CHECK_MSG(it != options_.end(), "option --" << key << " not registered");
  return it->second;
}

std::string CliParser::get_string(const std::string& key) const {
  const Option& opt = find(key);
  auto it = values_.find(key);
  return it == values_.end() ? opt.default_value : it->second;
}

std::int64_t CliParser::get_int(const std::string& key) const {
  const std::string s = get_string(key);
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" + s +
                                "'");
  }
  return v;
}

double CliParser::get_double(const std::string& key) const {
  const std::string s = get_string(key);
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" + s +
                                "'");
  }
}

bool CliParser::get_bool(const std::string& key) const {
  const std::string s = get_string(key);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got '" + s +
                              "'");
}

std::vector<std::int64_t> CliParser::get_int_list(const std::string& key) const {
  std::vector<std::int64_t> out;
  for (const std::string& piece : split_commas(get_string(key))) {
    if (piece.empty()) continue;
    std::int64_t v = 0;
    auto [ptr, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), v);
    if (ec != std::errc() || ptr != piece.data() + piece.size()) {
      throw std::invalid_argument("--" + key + ": bad integer '" + piece + "'");
    }
    out.push_back(v);
  }
  return out;
}

std::vector<double> CliParser::get_double_list(const std::string& key) const {
  std::vector<double> out;
  for (const std::string& piece : split_commas(get_string(key))) {
    if (piece.empty()) continue;
    out.push_back(std::stod(piece));
  }
  return out;
}

std::string CliParser::help() const {
  std::ostringstream oss;
  oss << program_name_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [key, opt] : options_) {
    oss << "  --" << key;
    if (!opt.is_flag) oss << "=<value>";
    oss << "\n      " << opt.help;
    if (!opt.is_flag) oss << " (default: " << opt.default_value << ")";
    oss << "\n";
  }
  oss << "  --help\n      Show this message.\n";
  return oss.str();
}

std::vector<std::pair<std::string, std::string>> CliParser::dump() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(options_.size());
  for (const auto& [key, opt] : options_) {
    out.emplace_back(key, get_string(key));
  }
  return out;
}

}  // namespace ajac
