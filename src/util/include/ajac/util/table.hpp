#pragma once
// Aligned console tables and CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series of the paper table or figure it
// reproduces, both as a human-readable aligned table and (optionally) as
// CSV to a file for plotting.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ajac {

/// A cell is a string, an integer, or a double (printed with %.6g by
/// default, configurable per table).
using TableCell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> column_names);

  /// Number of cells must equal the number of columns.
  void add_row(std::vector<TableCell> cells);

  void set_double_format(const std::string& printf_format);  // e.g. "%.4e"

  /// Render as an aligned, pipe-separated console table.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (RFC-4180 quoting for strings containing commas).
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to `path`; creates/truncates the file.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return columns_.size(); }

  /// Raw access for alternative serializers (the bench --json reports);
  /// cells keep their original types, unlike the printf-formatted CSV.
  [[nodiscard]] const std::vector<std::string>& column_names() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<TableCell>>& rows() const {
    return rows_;
  }

 private:
  [[nodiscard]] std::string format_cell(const TableCell& cell) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<TableCell>> rows_;
  std::string double_format_ = "%.6g";
};

}  // namespace ajac
