#pragma once
// Minimal command-line parsing for bench/example executables.
//
// Supports `--key=value`, `--key value`, and boolean `--flag`. Unknown
// arguments raise an error listing the registered options, so every bench
// binary is self-documenting via --help.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ajac {

class CliParser {
 public:
  /// `name` appears in --help output.
  CliParser(std::string program_name, std::string description);

  /// Register an option with a default value and a help string.
  void add_option(const std::string& key, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& key, const std::string& help);

  /// Parse argv. Returns false if --help was requested (help printed).
  /// Throws std::invalid_argument on unknown keys or malformed input.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& key) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;

  /// Comma-separated integer list, e.g. "1,2,4,8".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& key) const;
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& key) const;

  [[nodiscard]] std::string help() const;

  /// Every registered option with its effective (parsed or default) value,
  /// sorted by key. Bench JSON reports record these as run metadata so a
  /// result file identifies the exact configuration that produced it.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> dump() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  const Option& find(const std::string& key) const;

  std::string program_name_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
};

}  // namespace ajac
