#pragma once
// Wall-clock timing helpers.

#include <chrono>

namespace ajac {

/// Monotonic wall-clock stopwatch with microsecond-or-better resolution.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double microseconds() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Busy-wait for approximately `us` microseconds. Used for the paper's
/// artificial thread-delay experiments (Sec. VII-B); sleeping would allow
/// the OS to deschedule, which distorts short delays.
inline void spin_wait_us(double us) noexcept {
  if (us <= 0) return;
  WallTimer t;
  while (t.microseconds() < us) {
    // spin
  }
}

}  // namespace ajac
