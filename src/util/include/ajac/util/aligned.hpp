#pragma once
// Cache-line-aligned allocator for hot shared arrays.
//
// Why alignment matters here: the shared-memory runtime splits its vectors
// into contiguous per-thread blocks, and adjacent blocks are written by
// different threads. If a 64-byte cache line straddles a block boundary,
// the two owning threads ping-pong that line on every write (false
// sharing) even though they never touch the same element. Starting every
// allocation on a cache-line boundary makes line boundaries coincide with
// multiples of 64 bytes from element 0, so any block whose byte size is a
// multiple of 64 ends exactly on a line boundary — the equal-block
// partitions the solver defaults to then share no lines at all whenever
// the per-block element count works out to a line multiple (e.g. the
// 256x256 FD benchmarks at 2..16 threads), and at worst one line per
// boundary is shared. SharedMultiVector goes further: its padded lead
// dimension makes every *row* a whole number of lines, so block
// boundaries (always row-granular) never share a line regardless of the
// partition.

#include <cstddef>
#include <new>

namespace ajac {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal std::allocator replacement that over-aligns every allocation to
/// a cache line. Stateless; all instances are interchangeable.
template <class T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() noexcept = default;
  template <class U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <class U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace ajac
