#pragma once
// ThreadSanitizer annotations and spin-loop hints.
//
// The paper's shared-memory runtime deliberately relies on racy relaxed
// atomics ("writing or reading an aligned double is atomic on modern Intel
// processors", Sec. V). Those races are *intended* and must be
// distinguishable from accidental ones, so the whole suite can run under
// TSan with zero reports:
//
//  - All cross-thread data is std::atomic (TSan models C++ atomics
//    precisely; relaxed accesses are never data races).
//  - Synchronization TSan cannot see — OpenMP barriers implemented by
//    libgomp futexes, and the end-of-parallel-region join — is made
//    visible with the AJAC_TSAN_RELEASE/ACQUIRE pair below, which map to
//    the __tsan_release/__tsan_acquire runtime hooks and compile to
//    nothing otherwise.
//
// This header is also the single place allowed to touch low-level fence /
// annotation machinery: tools/lint.sh bans std::atomic_thread_fence and
// raw __tsan_* calls everywhere else, so every escape from the plain
// acquire/release discipline is greppable here.

// TSan detection: GCC defines __SANITIZE_THREAD__; clang exposes it via
// __has_feature. AJAC_TSAN_ANNOTATE can be defined explicitly (the CMake
// AJAC_SANITIZE=thread preset does) to force the hooks on.
#if !defined(AJAC_TSAN_ANNOTATE)
#if defined(__SANITIZE_THREAD__)
#define AJAC_TSAN_ANNOTATE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AJAC_TSAN_ANNOTATE 1
#endif
#endif
#endif

#if defined(AJAC_TSAN_ANNOTATE) && AJAC_TSAN_ANNOTATE
#include <sanitizer/tsan_interface.h>

/// Publish all prior writes of this thread at `addr`. Pair with
/// AJAC_TSAN_ACQUIRE(addr) in the thread that reads them after an
/// out-of-band synchronization point (e.g. an OpenMP region join).
#define AJAC_TSAN_RELEASE(addr) __tsan_release(const_cast<void*>(static_cast<const volatile void*>(addr)))
#define AJAC_TSAN_ACQUIRE(addr) __tsan_acquire(const_cast<void*>(static_cast<const volatile void*>(addr)))

#else

#define AJAC_TSAN_RELEASE(addr) \
  do {                          \
  } while (false)
#define AJAC_TSAN_ACQUIRE(addr) \
  do {                          \
  } while (false)

#endif  // AJAC_TSAN_ANNOTATE

namespace ajac {

/// True when the TSan happens-before hooks are live (i.e. the build is
/// thread-sanitized or AJAC_TSAN_ANNOTATE was forced on).
#if defined(AJAC_TSAN_ANNOTATE) && AJAC_TSAN_ANNOTATE
inline constexpr bool tsan_enabled = true;
#else
inline constexpr bool tsan_enabled = false;
#endif

/// Polite busy-wait hint: tells the CPU (and SMT sibling) that this is a
/// spin loop. x86 PAUSE / ARM YIELD; no-op elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

}  // namespace ajac
