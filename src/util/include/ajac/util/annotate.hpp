#pragma once
// Concurrency annotations: Clang thread-safety capabilities, ThreadSanitizer
// happens-before hooks, and spin-loop hints.
//
// The paper's shared-memory runtime deliberately relies on racy relaxed
// atomics ("writing or reading an aligned double is atomic on modern Intel
// processors", Sec. V). Those races are *intended* and must be
// distinguishable from accidental ones, so the whole suite can run under
// TSan with zero reports:
//
//  - All cross-thread data is std::atomic (TSan models C++ atomics
//    precisely; relaxed accesses are never data races).
//  - Synchronization TSan cannot see — OpenMP barriers implemented by
//    libgomp futexes, and the end-of-parallel-region join — is made
//    visible with the AJAC_TSAN_RELEASE/ACQUIRE pair below, which map to
//    the __tsan_release/__tsan_acquire runtime hooks and compile to
//    nothing otherwise.
//
// This header is also the single place allowed to touch low-level fence /
// annotation machinery: tools/lint.sh bans std::atomic_thread_fence and
// raw __tsan_* calls everywhere else, so every escape from the plain
// acquire/release discipline is greppable here.

// TSan detection: GCC defines __SANITIZE_THREAD__; clang exposes it via
// __has_feature. AJAC_TSAN_ANNOTATE can be defined explicitly (the CMake
// AJAC_SANITIZE=thread preset does) to force the hooks on.
#if !defined(AJAC_TSAN_ANNOTATE)
#if defined(__SANITIZE_THREAD__)
#define AJAC_TSAN_ANNOTATE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AJAC_TSAN_ANNOTATE 1
#endif
#endif
#endif

#if defined(AJAC_TSAN_ANNOTATE) && AJAC_TSAN_ANNOTATE
#include <sanitizer/tsan_interface.h>

/// Publish all prior writes of this thread at `addr`. Pair with
/// AJAC_TSAN_ACQUIRE(addr) in the thread that reads them after an
/// out-of-band synchronization point (e.g. an OpenMP region join).
#define AJAC_TSAN_RELEASE(addr) __tsan_release(const_cast<void*>(static_cast<const volatile void*>(addr)))
#define AJAC_TSAN_ACQUIRE(addr) __tsan_acquire(const_cast<void*>(static_cast<const volatile void*>(addr)))

#else

#define AJAC_TSAN_RELEASE(addr) \
  do {                          \
  } while (false)
#define AJAC_TSAN_ACQUIRE(addr) \
  do {                          \
  } while (false)

#endif  // AJAC_TSAN_ANNOTATE

// ---------------------------------------------------------------------------
// Clang thread-safety analysis (-Wthread-safety) attributes.
//
// The runtime's concurrency rules are ownership roles, not mutexes: each
// worker thread is the SOLE WRITER of its own rows of the shared vectors,
// of its private block mirror, and of its metrics slot, while any thread
// may read concurrently through the racy/seqlock protocols. -Wthread-safety
// cannot prove the seqlock's acquire/release choreography correct — that is
// the TSan stress suite's job — but it can prove the *role discipline*:
// every mutation flows through a path that explicitly claimed the
// sole-writer capability, so publishing outside the protocol methods or
// writing guarded state from an unclaimed context fails the dedicated CI
// build (CMake preset `thread-safety`, clang only). Roles are claimed with
// assert_held(): ownership is established by the row partition / the
// registry's threading contract, never by locking, so there is nothing to
// acquire at runtime and the assertion compiles to nothing.
//
// The macros expand to nothing outside clang, so the gcc tier-1 build is
// untouched.
#if defined(__clang__) && !defined(SWIG)
#define AJAC_TSA(x) __attribute__((x))
#else
#define AJAC_TSA(x)
#endif

/// Class attribute: instances of this type are capabilities ("role" — a
/// responsibility a thread claims, rather than a lock it takes).
#define AJAC_CAPABILITY(name) AJAC_TSA(capability(name))

/// Member attribute: reads require the capability shared, writes exclusive.
#define AJAC_GUARDED_BY(cap) AJAC_TSA(guarded_by(cap))
#define AJAC_PT_GUARDED_BY(cap) AJAC_TSA(pt_guarded_by(cap))

/// Sole-writer data: thread-private mirrors and single-writer metrics
/// slots. Alias of AJAC_GUARDED_BY, named for what the role means here.
#define AJAC_SOLE_WRITER(cap) AJAC_TSA(guarded_by(cap))

/// Function attributes: the caller must hold the capability (exclusively /
/// shared) for the duration of the call.
#define AJAC_REQUIRES(...) AJAC_TSA(requires_capability(__VA_ARGS__))
#define AJAC_REQUIRES_SHARED(...) \
  AJAC_TSA(requires_shared_capability(__VA_ARGS__))

/// Function attributes: calling acquires / releases the capability.
#define AJAC_ACQUIRE(...) AJAC_TSA(acquire_capability(__VA_ARGS__))
#define AJAC_ACQUIRE_SHARED(...) \
  AJAC_TSA(acquire_shared_capability(__VA_ARGS__))
#define AJAC_RELEASE(...) AJAC_TSA(release_capability(__VA_ARGS__))
#define AJAC_RELEASE_SHARED(...) \
  AJAC_TSA(release_shared_capability(__VA_ARGS__))

/// Function attributes: calling asserts the capability is held without
/// acquiring it — the claim step for partition-established ownership.
#define AJAC_ASSERT_CAPABILITY(...) AJAC_TSA(assert_capability(__VA_ARGS__))
#define AJAC_ASSERT_SHARED_CAPABILITY(...) \
  AJAC_TSA(assert_shared_capability(__VA_ARGS__))

/// Accessor attribute: this function returns a reference to the named
/// capability, so `obj.role()` and the member it returns unify.
#define AJAC_RETURN_CAPABILITY(cap) AJAC_TSA(lock_returned(cap))

/// Escape hatch; every use needs a comment saying why analysis is wrong.
#define AJAC_NO_THREAD_SAFETY_ANALYSIS AJAC_TSA(no_thread_safety_analysis)

namespace ajac {

/// Zero-state capability standing for "the current thread is the designated
/// sole writer of this object (or of its slice of a shared structure)".
/// Never locked: a worker claims the role with assert_held() once its
/// ownership is established out-of-band (the row partition, the metrics
/// registry's one-slot-per-worker contract), and the single-threaded setup
/// / teardown phases claim it the same way. assert_shared() is the
/// post-join read-side claim used when a single thread aggregates every
/// worker's slots.
struct AJAC_CAPABILITY("role") SoleWriterRole {
  void assert_held() const AJAC_ASSERT_CAPABILITY() {}
  void assert_shared() const AJAC_ASSERT_SHARED_CAPABILITY() {}
};

/// True when the TSan happens-before hooks are live (i.e. the build is
/// thread-sanitized or AJAC_TSAN_ANNOTATE was forced on).
#if defined(AJAC_TSAN_ANNOTATE) && AJAC_TSAN_ANNOTATE
inline constexpr bool tsan_enabled = true;
#else
inline constexpr bool tsan_enabled = false;
#endif

/// Polite busy-wait hint: tells the CPU (and SMT sibling) that this is a
/// spin loop. x86 PAUSE / ARM YIELD; no-op elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

}  // namespace ajac
