#pragma once
// Precondition / invariant checking.
//
// Three tiers:
//  - AJAC_CHECK / AJAC_CHECK_MSG are always on. They guard API misuse,
//    file format errors, and numerical preconditions whose violation would
//    silently corrupt results. Failure throws std::logic_error with the
//    expression, location, and optional streamed message.
//  - AJAC_DBG_CHECK / AJAC_DBG_CHECK_MSG compile away in release builds
//    and guard hot inner loops and structural invariants (CSR shape,
//    partition validity, finite values at iteration boundaries). Enabled
//    when NDEBUG is not defined; override either way by defining
//    AJAC_ENABLE_DBG_CHECKS to 1 or 0 (the sanitizer CMake presets force
//    them on).
//  - AJAC_DBG_VALIDATE(call) runs a (possibly expensive) void validator
//    expression under the same gate, e.g.
//    AJAC_DBG_VALIDATE(validate::csr_structure(a)).
//
// AJAC_DCHECK is the historical alias of AJAC_DBG_CHECK.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ajac::detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace ajac::detail

#define AJAC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::ajac::detail::check_failed(#expr, __FILE__, __LINE__, {});      \
  } while (false)

#define AJAC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      std::ostringstream ajac_oss_;                                     \
      ajac_oss_ << msg;                                                 \
      ::ajac::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                   ajac_oss_.str());                    \
    }                                                                   \
  } while (false)

#if !defined(AJAC_ENABLE_DBG_CHECKS)
#if defined(NDEBUG)
#define AJAC_ENABLE_DBG_CHECKS 0
#else
#define AJAC_ENABLE_DBG_CHECKS 1
#endif
#endif

#if AJAC_ENABLE_DBG_CHECKS
#define AJAC_DBG_CHECK(expr) AJAC_CHECK(expr)
#define AJAC_DBG_CHECK_MSG(expr, msg) AJAC_CHECK_MSG(expr, msg)
#define AJAC_DBG_VALIDATE(...) \
  do {                         \
    __VA_ARGS__;               \
  } while (false)
#else
#define AJAC_DBG_CHECK(expr) \
  do {                       \
  } while (false)
#define AJAC_DBG_CHECK_MSG(expr, msg) \
  do {                                \
  } while (false)
#define AJAC_DBG_VALIDATE(...) \
  do {                         \
  } while (false)
#endif

#define AJAC_DCHECK(expr) AJAC_DBG_CHECK(expr)

namespace ajac {

/// True when AJAC_DBG_CHECK / AJAC_DBG_VALIDATE are live in this build.
inline constexpr bool debug_checks_enabled = AJAC_ENABLE_DBG_CHECKS != 0;

}  // namespace ajac
