#pragma once
// Precondition / invariant checking.
//
// AJAC_CHECK is always on (it guards API misuse, file format errors, and
// numerical preconditions whose violation would silently corrupt results);
// AJAC_DCHECK compiles away in release builds and guards hot inner loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ajac::detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace ajac::detail

#define AJAC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) [[unlikely]]                                           \
      ::ajac::detail::check_failed(#expr, __FILE__, __LINE__, {});      \
  } while (false)

#define AJAC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      std::ostringstream ajac_oss_;                                     \
      ajac_oss_ << msg;                                                 \
      ::ajac::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                   ajac_oss_.str());                    \
    }                                                                   \
  } while (false)

#ifndef NDEBUG
#define AJAC_DCHECK(expr) AJAC_CHECK(expr)
#else
#define AJAC_DCHECK(expr) \
  do {                    \
  } while (false)
#endif
