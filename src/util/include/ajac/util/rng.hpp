#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All stochastic pieces of the library (random right-hand sides, initial
// guesses, mesh jitter, simulated process speed noise) draw from this
// engine so that every experiment is reproducible from a single seed.

#include <cstdint>
#include <limits>

namespace ajac {

/// SplitMix64: used to seed the main engine from a single 64-bit value.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator
/// so it can also be handed to <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = sqrt_impl(-2.0 * log_impl(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  /// Derive an independent stream (e.g. one per simulated process).
  Rng split() noexcept { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_impl(double x) noexcept;
  static double log_impl(double x) noexcept;

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ajac
