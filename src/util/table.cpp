#include "ajac/util/table.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ajac/util/check.hpp"

namespace ajac {

Table::Table(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {
  AJAC_CHECK(!columns_.empty());
}

void Table::add_row(std::vector<TableCell> cells) {
  AJAC_CHECK_MSG(cells.size() == columns_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void Table::set_double_format(const std::string& printf_format) {
  double_format_ = printf_format;
}

std::string Table::format_cell(const TableCell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  const double d = std::get<double>(cell);
  char buf[64];
  std::snprintf(buf, sizeof(buf), double_format_.c_str(), d);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    oss << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    oss << '\n';
  };
  emit_row(columns_);
  oss << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    oss << std::string(widths[c] + 2, '-') << '|';
  }
  oss << '\n';
  for (const auto& cells : formatted) emit_row(cells);
  return oss.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) oss << ',';
    oss << quote(columns_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << quote(format_cell(row[c]));
    }
    oss << '\n';
  }
  return oss.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  AJAC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << to_csv();
}

}  // namespace ajac
