#pragma once
// Deterministic fault injection for the asynchronous runtimes.
//
// A FaultPlan is a declarative description of a failure scenario: straggler
// workers with duty cycles, stale-read windows, dropped / duplicated /
// reordered messages, transient bit flips in off-diagonal matrix entries,
// and crash-and-recover workers. The shared-memory runtime (solve_shared)
// and the distributed simulator (solve_distributed) both accept a plan and
// emit a FaultLog of everything they injected.
//
// Determinism is the whole point. Every injection decision is a pure hash
// of (plan seed, actor id, local counter, decision stream) via FaultClock —
// there is no stateful RNG shared between actors — so the decision sequence
// is a function of the plan alone, independent of thread interleaving,
// simulator event order, and wall-clock time. Two runs of the same plan at
// the same thread/rank count produce bitwise-identical fault logs. In the
// shared runtime that includes capped runs: a thread that reaches
// max_iterations parks (polling the termination flags) instead of
// overrunning the cap while slower flags are still down, so the executed
// (thread, iteration) set — and with it the full log — is exact (the
// determinism suites assert exactly this, including under TSan).
//
// The zero-fault path stays branch-free: a null/empty plan makes
// solve_shared dispatch to a template instantiation whose hooks are
// `if constexpr`-guarded no-ops, compiling to the pre-fault code.

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac::fault {

/// Keyed hash producing per-decision uniform bits. A decision is addressed
/// by (stream, a, b, c): e.g. "should the k-th message on edge s→r be
/// dropped?" is (kMessageDrop, edge_key, k, 0). Built from the SplitMix64
/// finalizer (see ajac/util/rng.hpp) chained over the key words.
class FaultClock {
 public:
  /// Decision streams. Separate streams make e.g. the drop and duplicate
  /// decisions for the same message independent.
  enum Stream : std::uint64_t {
    kStragglerStream = 1,
    kStaleStream = 2,
    kMessageDrop = 3,
    kMessageDuplicate = 4,
    kMessageReorder = 5,
    kBitFlipTrigger = 6,
    kBitFlipEntry = 7,
    kBitFlipBit = 8,
    kCrashStream = 9,
  };

  explicit constexpr FaultClock(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] constexpr std::uint64_t bits(std::uint64_t stream,
                                             std::uint64_t a, std::uint64_t b,
                                             std::uint64_t c = 0) const noexcept {
    std::uint64_t z = mix(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    z = mix(z ^ mix(a + 0xbf58476d1ce4e5b9ULL));
    z = mix(z ^ mix(b + 0x94d049bb133111ebULL));
    z = mix(z ^ mix(c + 0xd6e8feb86659fd93ULL));
    return z;
  }

  /// Uniform double in [0, 1) for this decision.
  [[nodiscard]] constexpr double uniform(std::uint64_t stream, std::uint64_t a,
                                         std::uint64_t b,
                                         std::uint64_t c = 0) const noexcept {
    return static_cast<double>(bits(stream, a, b, c) >> 11) * 0x1.0p-53;
  }

  [[nodiscard]] constexpr bool bernoulli(double p, std::uint64_t stream,
                                         std::uint64_t a, std::uint64_t b,
                                         std::uint64_t c = 0) const noexcept {
    return p > 0.0 && uniform(stream, a, b, c) < p;
  }

  /// Uniform integer in [0, n), n >= 1. Modulo bias is irrelevant at the
  /// n's used here (row entry counts, mantissa bits).
  [[nodiscard]] constexpr std::uint64_t pick(std::uint64_t n,
                                             std::uint64_t stream,
                                             std::uint64_t a, std::uint64_t b,
                                             std::uint64_t c = 0) const noexcept {
    return bits(stream, a, b, c) % n;
  }

 private:
  static constexpr std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_;
};

/// Duty-cycle activity: active during the first round(duty * period)
/// iterations of every period-iteration window. duty = 1 is permanently
/// active, duty = 0 never. Pure function of the local iteration index, so
/// the window boundaries are deterministic per actor.
[[nodiscard]] inline bool duty_active(index_t period, double duty,
                                      index_t iteration) noexcept {
  const auto on = static_cast<index_t>(duty * static_cast<double>(period) + 0.5);
  return iteration % period < on;
}

/// Flip one bit (0 = lowest mantissa bit) of an IEEE-754 double. Bits
/// below 52 touch only the mantissa, so a finite value stays finite.
[[nodiscard]] inline double flip_bit(double value, int bit) noexcept {
  const auto u = std::bit_cast<std::uint64_t>(value);
  return std::bit_cast<double>(u ^ (std::uint64_t{1} << bit));
}

/// A worker that is periodically slow. In the shared runtime the actor
/// busy-waits extra_delay_us before each active iteration (wall clock, like
/// SharedOptions::delay_us); in the simulator its compute time is scaled by
/// delay_factor. With duty = 1 this is the paper's permanently delayed
/// worker (Sec. VII-B).
struct StragglerSpec {
  index_t actor = 0;  ///< thread id / rank; must name a real actor
  double extra_delay_us = 100.0;  ///< shared runtime: per-iteration stall
  double delay_factor = 8.0;      ///< simulator: compute-time multiplier
  index_t period = 64;
  double duty = 1.0;
};

/// A worker that periodically stops observing its neighbors. In the shared
/// runtime the actor freezes its off-block reads at window entry (all
/// relaxations inside the window read that snapshot); in the simulator the
/// rank defers mailbox delivery while the window is active.
struct StaleReadSpec {
  index_t actor = 0;  ///< thread id / rank; -1 = every actor
  index_t period = 64;
  double duty = 0.25;
};

/// Per-edge message faults (simulator only). Decisions are keyed by the
/// directed edge and the sender's per-edge message counter, so they are
/// independent of delivery order. A dropped put vanishes (it never counts
/// as in flight); a duplicated put is delivered twice, the copy one extra
/// latency later (a retransmission); a reordered put has its latency
/// multiplied by reorder_latency_factor, making younger puts overtake it
/// (raw RMA semantics, amplified).
struct MessageFaultSpec {
  index_t sender = -1;    ///< -1 = any
  index_t receiver = -1;  ///< -1 = any
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  double reorder_latency_factor = 8.0;
};

/// Transient single-bit corruption: with `probability` per (actor,
/// iteration, row), one off-diagonal entry of that row is read with one
/// bit flipped for that relaxation only (the matrix itself is untouched —
/// a soft error in a load, not in memory). Shared runtime only: the
/// simulator's block relaxations are not instrumented per entry.
struct BitFlipSpec {
  index_t actor = -1;  ///< -1 = any
  double probability = 1e-3;
  int bit = -1;  ///< mantissa bit to flip; -1 = pseudorandom in [0, 52)
  index_t first_iteration = 0;  ///< active window [first, last)
  index_t last_iteration = std::numeric_limits<index_t>::max();
};

/// A worker that dies at a fixed local iteration and comes back after
/// dead_seconds (wall seconds in the shared runtime, simulated seconds in
/// the simulator). With reset_state_on_recovery the worker restarts from
/// the initial guess on its rows — lost memory — otherwise it resumes from
/// its state at crash time. In the simulator, messages that arrive while
/// the rank is down are lost (its window vanished with it).
struct CrashSpec {
  index_t actor = 0;
  index_t crash_iteration = 16;
  double dead_seconds = 1e-3;
  bool reset_state_on_recovery = false;
};

enum class FaultKind : std::uint8_t {
  kStragglerOn,       ///< straggler window entered
  kStaleWindowOn,     ///< stale-read window entered
  kMessageDrop,
  kMessageDuplicate,
  kMessageReorder,
  kBitFlip,
  kCrash,
  kRecover,
};

/// One injected fault. Deliberately carries logical coordinates only — no
/// wall-clock — so logs from two runs of the same plan compare bitwise.
struct FaultEvent {
  FaultKind kind{};
  index_t actor = 0;    ///< thread / rank (the sender for message faults)
  index_t counter = 0;  ///< local iteration; message faults: per-edge index
  index_t detail = 0;   ///< row (bit flips), receiver (message faults)
  index_t detail2 = 0;  ///< flipped bit index; otherwise 0
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

using FaultLog = std::vector<FaultEvent>;

struct FaultPlan {
  std::uint64_t seed = 0x5eedfa17ULL;
  std::vector<StragglerSpec> stragglers;
  std::vector<StaleReadSpec> stale_reads;
  std::vector<MessageFaultSpec> message_faults;
  std::vector<BitFlipSpec> bit_flips;
  std::vector<CrashSpec> crashes;

  [[nodiscard]] bool empty() const noexcept {
    return stragglers.empty() && stale_reads.empty() &&
           message_faults.empty() && bit_flips.empty() && crashes.empty();
  }

  [[nodiscard]] FaultClock clock() const noexcept { return FaultClock{seed}; }

  /// Check every spec against the actor count (threads or ranks); throws
  /// std::logic_error on out-of-range actors, probabilities outside [0, 1],
  /// non-positive periods, or duplicate per-actor specs of one kind.
  void validate(index_t num_actors) const;
};

/// Human-readable name of a fault kind (stable; used in the JSON log).
[[nodiscard]] const char* kind_name(FaultKind kind) noexcept;

/// Sort a log into its canonical order (actor, counter, kind, detail).
/// Per-actor logs are appended in actor order by the runtimes, but within
/// an actor different fault kinds may interleave; canonical order makes
/// logs from different runs directly comparable.
void canonicalize(FaultLog& log);

/// Serialize a log as a JSON array of event objects.
[[nodiscard]] std::string to_json(const FaultLog& log);

}  // namespace ajac::fault
