#include "ajac/fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "ajac/util/check.hpp"

namespace ajac::fault {

namespace {

void check_actor(index_t actor, index_t num_actors, bool allow_any,
                 const char* what) {
  AJAC_CHECK_MSG(actor >= (allow_any ? -1 : 0) && actor < num_actors,
                 what << " actor " << actor << " out of range for "
                      << num_actors << " actors");
}

void check_probability(double p, const char* what) {
  AJAC_CHECK_MSG(p >= 0.0 && p <= 1.0,
                 what << " probability " << p << " outside [0, 1]");
}

void check_duty(index_t period, double duty, const char* what) {
  AJAC_CHECK_MSG(period >= 1, what << " period " << period << " must be >= 1");
  AJAC_CHECK_MSG(duty >= 0.0 && duty <= 1.0,
                 what << " duty " << duty << " outside [0, 1]");
}

/// At most one spec of a kind per actor: a second would double-inject.
void check_unique_actors(const std::vector<index_t>& actors, const char* what) {
  std::vector<index_t> sorted = actors;
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  AJAC_CHECK_MSG(dup == sorted.end(),
                 "duplicate " << what << " spec for actor " << *dup);
  // A wildcard (-1) spec together with any other spec of the same kind is
  // also a double-injection on the explicit actor.
  AJAC_CHECK_MSG(sorted.empty() || sorted.front() != -1 || sorted.size() == 1,
                 "wildcard (-1) " << what
                                  << " spec cannot be combined with others");
}

}  // namespace

void FaultPlan::validate(index_t num_actors) const {
  AJAC_CHECK(num_actors >= 1);
  std::vector<index_t> actors;
  for (const StragglerSpec& s : stragglers) {
    check_actor(s.actor, num_actors, /*allow_any=*/false, "straggler");
    check_duty(s.period, s.duty, "straggler");
    AJAC_CHECK_MSG(s.extra_delay_us >= 0.0,
                   "straggler extra_delay_us " << s.extra_delay_us << " < 0");
    AJAC_CHECK_MSG(s.delay_factor >= 1.0,
                   "straggler delay_factor " << s.delay_factor << " < 1");
    actors.push_back(s.actor);
  }
  check_unique_actors(actors, "straggler");

  actors.clear();
  for (const StaleReadSpec& s : stale_reads) {
    check_actor(s.actor, num_actors, /*allow_any=*/true, "stale-read");
    check_duty(s.period, s.duty, "stale-read");
    actors.push_back(s.actor);
  }
  check_unique_actors(actors, "stale-read");

  for (const MessageFaultSpec& s : message_faults) {
    check_actor(s.sender, num_actors, /*allow_any=*/true, "message-fault sender");
    check_actor(s.receiver, num_actors, /*allow_any=*/true,
                "message-fault receiver");
    check_probability(s.drop_probability, "message drop");
    check_probability(s.duplicate_probability, "message duplicate");
    check_probability(s.reorder_probability, "message reorder");
    AJAC_CHECK_MSG(s.reorder_latency_factor >= 1.0,
                   "reorder_latency_factor " << s.reorder_latency_factor
                                             << " < 1");
  }

  for (const BitFlipSpec& s : bit_flips) {
    check_actor(s.actor, num_actors, /*allow_any=*/true, "bit-flip");
    check_probability(s.probability, "bit-flip");
    // Bit 63 would flip the sign; bits 52..62 the exponent. Explicit
    // exponent flips are allowed (they model the worst case) but the
    // pseudorandom default stays in the mantissa.
    AJAC_CHECK_MSG(s.bit >= -1 && s.bit < 63,
                   "bit-flip bit " << s.bit << " outside [-1, 62]");
    AJAC_CHECK_MSG(s.first_iteration >= 0 &&
                       s.first_iteration <= s.last_iteration,
                   "bit-flip window [" << s.first_iteration << ", "
                                       << s.last_iteration << ") is empty");
  }

  actors.clear();
  for (const CrashSpec& s : crashes) {
    check_actor(s.actor, num_actors, /*allow_any=*/false, "crash");
    AJAC_CHECK_MSG(s.crash_iteration >= 0,
                   "crash_iteration " << s.crash_iteration << " < 0");
    AJAC_CHECK_MSG(s.dead_seconds >= 0.0,
                   "crash dead_seconds " << s.dead_seconds << " < 0");
    actors.push_back(s.actor);
  }
  check_unique_actors(actors, "crash");
}

const char* kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kStragglerOn:
      return "straggler_on";
    case FaultKind::kStaleWindowOn:
      return "stale_window_on";
    case FaultKind::kMessageDrop:
      return "message_drop";
    case FaultKind::kMessageDuplicate:
      return "message_duplicate";
    case FaultKind::kMessageReorder:
      return "message_reorder";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
  }
  return "unknown";
}

void canonicalize(FaultLog& log) {
  std::sort(log.begin(), log.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::tie(x.actor, x.counter, x.kind, x.detail, x.detail2) <
                     std::tie(y.actor, y.counter, y.kind, y.detail, y.detail2);
            });
}

std::string to_json(const FaultLog& log) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < log.size(); ++i) {
    const FaultEvent& e = log[i];
    if (i > 0) out << ",";
    out << "\n  {\"kind\": \"" << kind_name(e.kind)
        << "\", \"actor\": " << e.actor << ", \"counter\": " << e.counter
        << ", \"detail\": " << e.detail << ", \"detail2\": " << e.detail2
        << "}";
  }
  out << (log.empty() ? "]" : "\n]");
  return out.str();
}

}  // namespace ajac::fault
