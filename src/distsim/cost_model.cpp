#include "ajac/distsim/cost_model.hpp"

#include <cmath>

namespace ajac::distsim {

double CostModel::barrier_time(index_t processes) const {
  if (processes <= 1) return 0.0;
  return barrier_base * std::log2(static_cast<double>(processes));
}

CostModel CostModel::network_like() { return CostModel{}; }

CostModel CostModel::shared_memory_like(index_t n_global) {
  CostModel cost;
  cost.flop_time = 1e-9;  // in-cache SIMD relaxation work
  cost.iteration_overhead = 2e-7 + 2e-9 * static_cast<double>(n_global);
  cost.alpha = 1e-8;   // coherency-visibility delay, not a NIC round trip
  cost.beta = 2e-10;
  cost.barrier_base = 5e-8;
  cost.speed_sigma = 0.05;
  cost.jitter_sigma = 0.10;
  cost.msg_jitter_sigma = 0.30;
  cost.smt_factor = 2.0;  // 4 hyperthreads/core ~ 2x core throughput
  return cost;
}

}  // namespace ajac::distsim
