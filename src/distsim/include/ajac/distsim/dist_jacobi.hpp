#pragma once
// Distributed-memory Jacobi on the discrete-event simulator (Sec. VI).
//
// Two communication schemes, mirroring the paper's implementations:
//  * synchronous — BSP supersteps. Every iteration exchanges ghost values
//    with point-to-point messages and waits (MPI_Isend/MPI_Recv with an
//    implicit barrier); the iterate sequence is *exactly* sequential
//    Jacobi (tested bitwise).
//  * asynchronous — each process relaxes with whatever ghost values it
//    has and pushes boundary values to its neighbors' memory windows
//    (MPI_Put with passive target completion). Processes advance at their
//    own (noisy) speed; messages arrive after a latency; deliveries are
//    unordered like RMA puts unless ordered_delivery is set.
//
// The simulator runs thousands of ranks deterministically on one core and
// reports residual histories against *simulated* wall-clock time.

#include <memory>
#include <optional>
#include <vector>

#include "ajac/distsim/cost_model.hpp"
#include "ajac/distsim/local_block.hpp"
#include "ajac/fault/fault_plan.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::obs {
class MetricsRegistry;
class TelemetryHub;
}

namespace ajac::distsim {

/// When may a process relax? (ablation of Sec. III related work)
enum class UpdateRule {
  kRacy,   ///< always relax with whatever is available (Baudet; the paper)
  kEager,  ///< relax only after receiving at least one new message
           ///< (Jager & Bradley's semi-synchronous scheme)
};

/// Local relaxation applied within a rank's block each iteration.
enum class InnerSweep {
  kJacobi,       ///< the paper's scheme: all owned rows read the same state
  kGaussSeidel,  ///< one forward GS pass within the block (Jager & Bradley's
                 ///< "inexact block Jacobi": blocks solved by one GS sweep)
};

/// How does the asynchronous run decide it is done? The paper terminates
/// on a fixed iteration count and leaves residual-based distributed
/// termination as future work (Sec. VI); kNormReduction implements the
/// natural protocol that future work suggests.
enum class Termination {
  /// Each process stops after max_iterations local iterations (the
  /// paper's scheme). `tolerance`, if set, is additionally checked by an
  /// omniscient observer at snapshot times — free in a simulation,
  /// impossible on a real machine.
  kIterationCountOrOracle,
  /// Realistic distributed protocol: every `detection_interval` local
  /// iterations each rank sends its current local residual contribution
  /// ||r_p||_1 to rank 0 (one small message through the same network
  /// model); rank 0 sums the most recent values it has received (stale,
  /// like everything else in an asynchronous method) and, once the sum
  /// drops below tolerance * ||r(0)||_1, broadcasts a stop message. Ranks
  /// halt when the stop arrives or at max_iterations. The result records
  /// how the claimed residual compares to the true one at that moment.
  kNormReduction,
};

struct DistOptions {
  index_t num_processes = 4;
  bool synchronous = false;
  UpdateRule update_rule = UpdateRule::kRacy;
  InnerSweep inner_sweep = InnerSweep::kJacobi;
  /// Damping factor for the local relaxation (x += omega * D^{-1} r);
  /// omega = 1 is the paper's scheme.
  double omega = 1.0;
  /// Deliver puts from the same sender in send order, dropping stale
  /// overwrites (false = raw RMA semantics where a delayed put can
  /// overwrite a newer value).
  bool ordered_delivery = false;
  /// Issue one put per boundary row, with visibility spread across the
  /// compute window, instead of one put per neighbor at the end of the
  /// sweep. This models shared-memory writes landing row by row: readers
  /// observe partially updated blocks, which makes the effective masks
  /// finer than whole subdomains. Costs ~rows-per-boundary times more
  /// simulated messages.
  bool row_level_puts = false;
  /// Local iterations per process (the paper's termination scheme).
  index_t max_iterations = 200;
  /// If > 0, the simulation also stops once the (god's-eye) relative
  /// residual 1-norm falls below this value.
  double tolerance = 0.0;
  /// Residual snapshot interval in simulated seconds; 0 = auto (about one
  /// snapshot per average iteration).
  double snapshot_dt = 0.0;
  /// Extra persistent slowdown factor applied to one process (0 = none):
  /// delayed_process gets speed divided by delay_factor.
  index_t delayed_process = -1;
  double delay_factor = 1.0;
  /// Row-selection policy for the local sweep (asynchronous mode with the
  /// kJacobi inner sweep only). Sampled policies draw `num_owned` rows per
  /// local iteration from a per-rank counter-based stream — the same
  /// (seed, actor, iteration, slot) coordinate discipline as the shared
  /// runtime — and relax each drawn row in place. kNaturalOrder leaves
  /// the simulator bitwise unchanged.
  runtime::RowPolicy policy = runtime::RowPolicy::kNaturalOrder;
  /// Sampled kResidualWeighted: local iterations between |r_i| weight
  /// rebuilds (must be >= 1).
  index_t weight_refresh = 8;
  CostModel cost;
  std::uint64_t seed = 99;
  /// Asynchronous-mode termination scheme (see Termination).
  Termination termination = Termination::kIterationCountOrOracle;
  /// kNormReduction: local iterations between residual reports to rank 0.
  index_t detection_interval = 4;
  /// Record per-relaxation read versions (asynchronous mode only): owned
  /// reads carry the owner's iteration count, ghost reads the sender
  /// iteration of the message that filled the slot. Feeds the
  /// propagation-matrix analysis (Fig. 2) with genuinely overlapped
  /// executions, which a time-sliced single-core OpenMP run cannot
  /// produce.
  bool record_trace = false;
  /// Fault-injection plan (see ajac/fault/fault_plan.hpp): stragglers,
  /// stale-delivery windows, per-edge message drop/duplicate/reorder, and
  /// crash-and-recover ranks. Null or empty disables every hook.
  /// Asynchronous mode only; bit-flip specs are rejected here (they are a
  /// shared-runtime fault — the simulator's relaxations are not
  /// instrumented per matrix entry).
  std::shared_ptr<const fault::FaultPlan> fault_plan;
  /// Observability sink (see ajac/obs/metrics.hpp): per-rank iteration and
  /// message counters, message-latency / queue-depth / ghost-age
  /// histograms, and a sim-time timeline (iteration spans, crash/recover
  /// and message-fault instants, the detection broadcast) exportable via
  /// obs::TraceEventSink. Timestamps are *simulated* microseconds. The
  /// simulator is single-threaded, so recording is plain branches; null
  /// leaves the run untouched.
  obs::MetricsRegistry* metrics = nullptr;
  /// Live telemetry hub (see ajac/obs/stream.hpp): each rank publishes
  /// coarse progress beacons (iteration, own-block residual 1-norm,
  /// relaxation and policy-draw counts) into its own ring every
  /// `beacon_stride`-th local iteration, with *simulated*-microsecond
  /// timestamps, plus a terminal beacon when the rank stops. The simulator
  /// is single-threaded, so publishing is plain branches; null leaves the
  /// run untouched. The hub must be sized for num_processes actors.
  obs::TelemetryHub* stream = nullptr;
};

/// Per-rank accounting for load/communication analysis.
struct RankStats {
  index_t iterations = 0;
  double busy_seconds = 0.0;   ///< time spent relaxing (work + overhead)
  double wait_seconds = 0.0;   ///< time queued for a core
  index_t messages_sent = 0;
  index_t messages_received = 0;
};

struct DistHistoryPoint {
  double sim_seconds = 0.0;
  index_t relaxations = 0;   ///< cumulative row relaxations, all processes
  double rel_residual_1 = 0.0;
  double rel_residual_2 = 0.0;
};

struct DistResult {
  Vector x;
  std::vector<DistHistoryPoint> history;
  double sim_seconds = 0.0;
  index_t total_relaxations = 0;
  std::vector<index_t> iterations_per_process;
  std::vector<RankStats> rank_stats;  ///< asynchronous mode only
  double final_rel_residual_1 = 0.0;
  bool reached_tolerance = false;
  /// Messages delivered out of order (asynchronous mode diagnostics).
  index_t reordered_messages = 0;
  index_t total_messages = 0;
  /// Ghost-read staleness diagnostic: how many ghost values consumed by
  /// relaxations differed from the owner's most recent committed value.
  index_t stale_ghost_reads = 0;
  index_t total_ghost_reads = 0;
  /// kNormReduction outcome: did rank 0 broadcast a stop, when, and what
  /// did it believe the relative residual was (vs. the true value then)?
  bool termination_detected = false;
  double detection_sim_seconds = -1.0;
  double detection_claimed_residual = -1.0;
  double detection_true_residual = -1.0;
  std::optional<model::RelaxationTrace> trace;
  /// Everything the fault plan injected, in canonical order (empty
  /// without a plan).
  fault::FaultLog fault_events;
  /// Messages lost to drop faults or crashed receivers; these never count
  /// as in flight (the eager rule's starvation check stays correct).
  index_t dropped_messages = 0;
  index_t duplicated_messages = 0;
};

/// Run distributed Jacobi on A x = b from x0 with the given contiguous
/// partition (rows of A must already be ordered part-major).
[[nodiscard]] DistResult solve_distributed(const CsrMatrix& a, const Vector& b,
                                           const Vector& x0,
                                           const partition::Partition& part,
                                           const DistOptions& opts);

}  // namespace ajac::distsim
