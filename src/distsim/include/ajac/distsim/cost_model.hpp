#pragma once
// Cost model for the discrete-event distributed-memory simulation.
//
// The paper ran on Cori (Haswell nodes, Aries network); we do not have
// that machine, so time is synthesized from a standard alpha-beta
// communication model plus per-process compute rates with persistent and
// per-iteration noise. The *shape* of the paper's results (who wins, how
// the crossover moves with process count) depends on the ratios —
// synchronization cost vs compute per iteration — not the absolute
// values; bench_ablation sweeps these knobs.

#include <cstdint>

#include "ajac/sparse/types.hpp"

namespace ajac::distsim {

struct CostModel {
  /// Seconds per matrix nonzero processed during a relaxation sweep.
  double flop_time = 2e-9;
  /// Fixed overhead per local iteration. For network ranks this is the
  /// MPI work an iteration performs besides flops: one put per neighbor,
  /// passive-target window synchronization, the local norm scan and flag
  /// checks — several microseconds in practice.
  double iteration_overhead = 5e-6;
  /// Message latency (seconds) — MPI_Put / MPI_Isend initiation.
  double alpha = 1.5e-6;
  /// Seconds per message byte.
  double beta = 5e-10;
  /// Synchronous mode only: barrier cost, multiplied by log2(P).
  double barrier_base = 1.0e-6;
  /// Persistent per-process speed spread: each process draws a speed
  /// multiplier exp(N(0, speed_sigma)). Models heterogeneous nodes / OS
  /// noise pinned to a rank.
  double speed_sigma = 0.08;
  /// Per-iteration compute jitter exp(N(0, jitter_sigma)).
  double jitter_sigma = 0.05;
  /// Multiplicative jitter on message latency exp(N(0, msg_jitter_sigma)).
  double msg_jitter_sigma = 0.15;
  /// Number of execution cores shared by the simulated processes; 0 means
  /// one core per process (no contention). With processes > cores the
  /// runnable processes queue for cores, which staggers their updates —
  /// the oversubscribed-KNL effect (272 threads on 68 cores) that makes
  /// asynchronous Jacobi behave like a multiplicative method (Sec. VII-B,
  /// Fig. 6).
  index_t cores = 0;
  /// Simultaneous-multithreading throughput: a contended core retires
  /// `smt_factor` iterations per iteration-time (KNL's 4 hyperthreads give
  /// roughly 2x the single-thread core throughput). 1.0 = pure
  /// time-slicing.
  double smt_factor = 1.0;

  [[nodiscard]] double message_time(index_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }
  [[nodiscard]] double barrier_time(index_t processes) const;

  /// Network-attached ranks (Cori-like Aries defaults): these are the
  /// struct's default member values, returned explicitly for readability.
  [[nodiscard]] static CostModel network_like();

  /// Shared-memory "ranks" (KNL/Xeon threads over a shared array): value
  /// visibility latency is a cache-coherency delay (~100 ns), far below
  /// the per-iteration overhead, which is dominated by the O(n) global
  /// residual-norm read of the paper's convergence check. `n_global` is
  /// the matrix dimension used to size that overhead.
  [[nodiscard]] static CostModel shared_memory_like(index_t n_global);
};

}  // namespace ajac::distsim
