#pragma once
// Per-process local data for the distributed runtimes: the owned row block
// in local column numbering, the ghost layer, and the neighbor exchange
// lists — exactly the structures an MPI implementation builds from the
// partitioned matrix (Sec. VI: "p_i always locally stores a ghost layer of
// points that p_j sent to p_i previously").

#include <cstdint>
#include <vector>

#include "ajac/partition/partition.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::distsim {

/// Exchange list between one process and one neighbor.
struct NeighborLink {
  index_t neighbor = 0;
  /// Rows of *this* process (global ids) whose values the neighbor reads;
  /// a message to the neighbor carries exactly these values, in order.
  std::vector<index_t> send_rows;
  /// Local ghost slots (indices into LocalBlock::ghost_values) that a
  /// message *from* this neighbor fills, in the neighbor's send order.
  std::vector<index_t> recv_slots;
};

struct LocalBlock {
  index_t process = 0;
  index_t row_begin = 0;  ///< global id of first owned row
  index_t row_end = 0;    ///< one past last owned row

  /// Owned rows in CSR with *local* column ids: columns < num_owned()
  /// refer to owned entries (global id = row_begin + c), columns >=
  /// num_owned() refer to ghost slot (c - num_owned()).
  std::vector<index_t> row_ptr;
  std::vector<index_t> col_idx;
  std::vector<double> values;

  /// Global ids of ghost columns, ascending; ghost slot g holds the value
  /// of global row ghost_cols[g].
  std::vector<index_t> ghost_cols;

  std::vector<NeighborLink> neighbors;

  [[nodiscard]] index_t num_owned() const { return row_end - row_begin; }
  [[nodiscard]] index_t num_ghosts() const {
    return static_cast<index_t>(ghost_cols.size());
  }
  /// Total nonzeros in the owned rows (drives the compute-cost model).
  [[nodiscard]] index_t num_nonzeros() const {
    return static_cast<index_t>(col_idx.size());
  }
};

/// Stable identifier for the directed edge sender → receiver. Used to key
/// deterministic per-edge decisions (fault injection) so they depend on
/// the edge and the sender's message counter, never on delivery order.
[[nodiscard]] constexpr std::uint64_t directed_edge_key(
    index_t sender, index_t receiver) noexcept {
  return (static_cast<std::uint64_t>(sender) << 32) ^
         static_cast<std::uint64_t>(receiver);
}

/// Build one LocalBlock per part. The matrix must already be ordered so
/// parts are contiguous (see partition::graph_growing_partition).
[[nodiscard]] std::vector<LocalBlock> build_local_blocks(
    const CsrMatrix& a, const partition::Partition& part);

}  // namespace ajac::distsim
