#include "ajac/distsim/dist_jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "ajac/obs/metrics.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::distsim {

namespace {

struct Message {
  double arrival = 0.0;
  index_t sender = 0;
  index_t receiver = 0;
  index_t seq = 0;        ///< sender's iteration count when sent
  index_t link_index = 0; ///< index into receiver's neighbor list
  std::vector<double> values;
  /// Non-empty for row-level puts: ghost slots (receiver-local) written by
  /// `values`; empty = the whole link in recv_slots order.
  std::vector<index_t> slots;
  /// Per-value sender row versions (sampled policies under record_trace
  /// only): with sampled draws a rank's rows carry different relaxation
  /// counts, so `seq` alone no longer identifies which update of row j a
  /// ghost read consumed. Empty = every value carries `seq`.
  std::vector<index_t> versions;
};

struct MessageLater {
  bool operator()(const Message& x, const Message& y) const {
    if (x.arrival != y.arrival) return x.arrival > y.arrival;
    if (x.sender != y.sender) return x.sender > y.sender;
    return x.seq > y.seq;
  }
};

struct ProcessState {
  const LocalBlock* blk = nullptr;
  Vector x_local;        ///< owned values then ghost values
  Vector updates;        ///< scratch for the Jacobi commit
  Vector inv_diag;       ///< inverse diagonal of owned rows
  double speed = 1.0;    ///< persistent rate multiplier
  double time = 0.0;
  index_t iterations = 0;
  bool done = false;
  bool has_new_data = true;  ///< eager rule: fresh info since last relax
  double stop_at = 1e300;    ///< termination-detection stop arrival
  double busy_seconds = 0.0;
  double wait_seconds = 0.0;
  index_t messages_sent = 0;
  index_t messages_received = 0;
  index_t polls = 0;
  Rng rng{0};
  std::priority_queue<Message, std::vector<Message>, MessageLater> mailbox;
  /// Trace mode: version of each ghost slot (sender iteration count, or
  /// the sender's per-row relaxation count under a sampled policy).
  std::vector<index_t> ghost_version;
  /// Sampled policies: the rank's per-row relaxation-draw stream.
  std::optional<runtime::RowSampler> sampler;
  /// Trace mode + sampled policy: per-owned-row relaxation counts (the
  /// per-row analogue of `iterations`). Never reset — the Sec. IV trace
  /// model needs monotone counters even across crash recovery.
  std::vector<index_t> own_version;
  std::vector<model::RelaxationEvent> events;
  /// Highest seq applied per neighbor link (ordered_delivery / stats).
  std::vector<index_t> last_seq;
  /// Reverse map: neighbor process id -> index in blk->neighbors.
  std::vector<std::pair<index_t, index_t>> link_of_sender;  // sorted pairs

  [[nodiscard]] index_t find_link(index_t sender) const {
    const auto it = std::lower_bound(
        link_of_sender.begin(), link_of_sender.end(),
        std::make_pair(sender, index_t{-1}));
    AJAC_DCHECK(it != link_of_sender.end() && it->first == sender);
    return it->second;
  }
};

double lognormal(Rng& rng, double sigma) {
  return sigma > 0.0 ? std::exp(sigma * rng.normal()) : 1.0;
}

/// One local Jacobi iteration on the block: all owned rows read the same
/// pre-iteration x_local (owned + ghosts), then commit. Returns the
/// pre-update local residual 1-norm (the quantity a rank would report to
/// a termination-detection reduction).
double relax_block(ProcessState& ps, std::span<const double> b_local) {
  const LocalBlock& blk = *ps.blk;
  const index_t m = blk.num_owned();
  double local_norm = 0.0;
  for (index_t i = 0; i < m; ++i) {
    double acc = b_local[i];
    for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
      acc -= blk.values[p] * ps.x_local[blk.col_idx[p]];
    }
    local_norm += std::abs(acc);
    ps.updates[i] = ps.x_local[i] + ps.inv_diag[i] * acc;
  }
  std::copy(ps.updates.begin(), ps.updates.begin() + m, ps.x_local.begin());
  return local_norm;
}

/// One forward Gauss-Seidel pass within the block: owned rows update in
/// place (later rows see earlier rows' new values); ghosts are whatever
/// the mailbox delivered. Jager & Bradley's inexact block Jacobi.
double relax_block_gs(ProcessState& ps, std::span<const double> b_local) {
  const LocalBlock& blk = *ps.blk;
  const index_t m = blk.num_owned();
  double local_norm = 0.0;
  for (index_t i = 0; i < m; ++i) {
    double acc = b_local[i];
    for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
      acc -= blk.values[p] * ps.x_local[blk.col_idx[p]];
    }
    local_norm += std::abs(acc);
    ps.x_local[i] += ps.inv_diag[i] * acc;
  }
  return local_norm;
}

double relax_dispatch(ProcessState& ps, std::span<const double> b_local,
                      InnerSweep sweep) {
  return sweep == InnerSweep::kJacobi ? relax_block(ps, b_local)
                                      : relax_block_gs(ps, b_local);
}

/// Sampled-policy local iteration: `num_owned` draws from the rank's
/// counter-based row stream, each relaxing its row in place (later draws
/// see earlier draws' values, like the shared runtime's sampled path).
/// Weighted draws refresh their stencil-smoothed residual prefix sums on
/// the sampler's cadence from the pre-draw local view. When `record` is set, every draw logs a
/// relaxation event whose owned reads carry per-row relaxation counts
/// (ps.own_version) rather than the block iteration count. Returns the
/// post-sweep local residual 1-norm — draws may visit rows unevenly, so
/// the per-draw residuals do not sum to a block norm the way the sweeping
/// kernels' do; one exact pass keeps the termination-detection reports
/// honest.
double relax_block_sampled(ProcessState& ps, std::span<const double> b_local,
                           bool record) {
  const LocalBlock& blk = *ps.blk;
  const index_t m = blk.num_owned();
  runtime::RowSampler& sampler = *ps.sampler;
  const index_t iter = ps.iterations;
  if (sampler.refresh_due(iter)) {
    // Two passes, mirroring the shared runtime's refresh: the TRUE local
    // residual of every owned row (ghosts at their mailbox values), then
    // the stencil-smoothed weight (|A| |r|)_i over the owned rows — see
    // row_policy.hpp. ps.updates is the Jacobi carrier, unused on the
    // sampled path, so it serves as the snapshot scratch here.
    for (index_t i = 0; i < m; ++i) {
      double acc = b_local[i];
      for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
        acc -= blk.values[p] * ps.x_local[blk.col_idx[p]];
      }
      ps.updates[i] = std::abs(acc);
    }
    sampler.refresh_weights([&](index_t i) {
      double w = 0.0;
      for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
        const index_t c = blk.col_idx[p];
        if (c < m) w += std::abs(blk.values[p]) * ps.updates[c];
      }
      return w;
    });
  }
  for (index_t slot = 0; slot < m; ++slot) {
    const index_t i = sampler.next(iter, slot);
    double acc = b_local[i];
    if (record) {
      model::RelaxationEvent event;
      event.row = blk.row_begin + i;
      for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
        const index_t c = blk.col_idx[p];
        acc -= blk.values[p] * ps.x_local[c];
        if (c < m) {
          if (c == i) continue;
          event.reads.push_back({blk.row_begin + c, ps.own_version[c]});
        } else {
          event.reads.push_back(
              {blk.ghost_cols[c - m], ps.ghost_version[c - m]});
        }
      }
      ps.events.push_back(std::move(event));
      ++ps.own_version[i];
    } else {
      for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
        acc -= blk.values[p] * ps.x_local[blk.col_idx[p]];
      }
    }
    ps.x_local[i] += ps.inv_diag[i] * acc;
  }
  double local_norm = 0.0;
  for (index_t i = 0; i < m; ++i) {
    double acc = b_local[i];
    for (index_t p = blk.row_ptr[i]; p < blk.row_ptr[i + 1]; ++p) {
      acc -= blk.values[p] * ps.x_local[blk.col_idx[p]];
    }
    local_norm += std::abs(acc);
  }
  return local_norm;
}

/// Time to compute the relaxation itself (the SpMV + correction). The
/// updated values become remotely visible after this — the put is issued
/// as soon as they exist.
double work_seconds(const ProcessState& ps, const CostModel& cost,
                    double jitter) {
  return cost.flop_time * static_cast<double>(ps.blk->num_nonzeros()) *
         jitter / ps.speed;
}

/// Per-iteration overhead paid *after* the values are published: the
/// convergence-norm read, flag checks, loop control. Dominates for small
/// subdomains, which is exactly why neighbor reads usually see the latest
/// version (Sec. VII-B's propagated-relaxation fractions).
double overhead_seconds(const ProcessState& ps, const CostModel& cost,
                        double jitter) {
  return cost.iteration_overhead * jitter / ps.speed;
}

double compute_seconds(const ProcessState& ps, const CostModel& cost,
                       double jitter) {
  return work_seconds(ps, cost, jitter) + overhead_seconds(ps, cost, jitter);
}

/// Per-rank fault-injection state. The specs are resolved once up front;
/// decisions come from the (stateless) FaultClock, so the simulator's RNGs
/// are untouched and a faulty run perturbs only what the plan names.
struct RankFaults {
  const fault::StragglerSpec* straggler = nullptr;
  const fault::StaleReadSpec* stale = nullptr;
  const fault::CrashSpec* crash = nullptr;
  bool straggler_on = false;
  bool stale_on = false;
  bool crashed = false;   ///< the crash fired (at most once)
  bool down = false;      ///< currently waiting out the dead window
  double dead_until = 0.0;
  /// Messages posted per neighbor link — the per-edge counter that keys
  /// drop/duplicate/reorder decisions.
  std::vector<index_t> sent_on_link;
  fault::FaultLog log;
};

}  // namespace

DistResult solve_distributed(const CsrMatrix& a, const Vector& b,
                             const Vector& x0,
                             const partition::Partition& part,
                             const DistOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(part.num_rows() == n);
  AJAC_CHECK(part.num_parts() == opts.num_processes);
  AJAC_CHECK(opts.max_iterations >= 1);
  AJAC_CHECK(opts.omega > 0.0);
  AJAC_CHECK_MSG(!opts.record_trace ||
                     opts.inner_sweep == InnerSweep::kJacobi,
                 "read-version traces assume the Jacobi inner sweep (all "
                 "owned rows read the same snapshot)");
  const bool sampled = runtime::is_sampled(opts.policy);
  AJAC_CHECK_MSG(!(sampled && opts.synchronous),
                 "sampled row policies relax in place and have no "
                 "synchronous meaning (asynchronous mode only)");
  AJAC_CHECK_MSG(!sampled || opts.inner_sweep == InnerSweep::kJacobi,
                 "sampled row policies define their own in-place schedule; "
                 "the Gauss-Seidel inner sweep does not compose with them");
  AJAC_CHECK_MSG(opts.weight_refresh >= 1,
                 "weight_refresh must be a positive iteration cadence");
  AJAC_DBG_VALIDATE(validate::csr_structure(
      a, {.require_diagonal = true, .require_square = true}));
  AJAC_DBG_VALIDATE(partition::validate(part, n));
  AJAC_DBG_VALIDATE(validate::finite(b, "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0, "x0"));

  const std::vector<LocalBlock> blocks = build_local_blocks(a, part);
  const index_t num_procs = opts.num_processes;
  Rng master(opts.seed);

  const fault::FaultPlan* plan =
      opts.fault_plan && !opts.fault_plan->empty() ? opts.fault_plan.get()
                                                   : nullptr;
  if (plan != nullptr) {
    AJAC_CHECK_MSG(!opts.synchronous,
                   "fault injection targets the asynchronous scheme (BSP "
                   "supersteps serialize every fault away)");
    AJAC_CHECK_MSG(plan->bit_flips.empty(),
                   "bit-flip faults are a shared-runtime feature (use "
                   "solve_shared); the simulator's block relaxations are "
                   "not instrumented per matrix entry");
    plan->validate(num_procs);
  }
  const fault::FaultClock fclock(plan != nullptr ? plan->seed : 0);

  // Metrics are observation-only plain branches: the simulator is
  // single-threaded and deterministic in *simulated* time, so recording
  // cannot perturb the run (timestamps below are sim-time microseconds).
  obs::MetricsRegistry* const metrics = opts.metrics;
  if (metrics != nullptr) {
    metrics->set_actor_kind("rank");
    metrics->reset(num_procs,
                   static_cast<std::size_t>(opts.max_iterations) + 64);
  }
  // The simulation runs on a single thread, which therefore holds every
  // rank's SoleWriterRole; call sites bind the slot and claim it.
  auto slot = [&](index_t p) -> obs::ActorSlot& { return metrics->actor(p); };

  // Telemetry beacons (observation-only plain branches, like metrics):
  // per-rank progress samples stamped in simulated microseconds.
  obs::TelemetryHub* const stream = opts.stream;
  index_t stream_stride = 1;
  if (stream != nullptr) {
    stream->begin_run(num_procs, "rank", opts.tolerance,
                      obs::ResidualConvention::kOwnBlockSum,
                      /*sim_time=*/true);
    stream_stride = std::max<index_t>(1, stream->options().beacon_stride);
  }

  // God's-eye state for residual snapshots: owners publish on commit.
  Vector x_global = x0;
  Vector r_scratch(static_cast<std::size_t>(n));
  a.residual(x_global, b, r_scratch);
  const double r0_1 = std::max(vec::norm1(r_scratch), 1e-300);
  const double r0_2 = std::max(vec::norm2(r_scratch), 1e-300);
  if (stream != nullptr) stream->set_residual_scale(r0_1);

  DistResult result;
  result.iterations_per_process.assign(static_cast<std::size_t>(num_procs),
                                       0);
  auto record = [&](double t, index_t relaxations) {
    a.residual(x_global, b, r_scratch);
    DistHistoryPoint pt;
    pt.sim_seconds = t;
    pt.relaxations = relaxations;
    pt.rel_residual_1 = vec::norm1(r_scratch) / r0_1;
    pt.rel_residual_2 = vec::norm2(r_scratch) / r0_2;
    result.history.push_back(pt);
    return pt.rel_residual_1;
  };

  // Initialize per-process state.
  std::vector<ProcessState> procs(static_cast<std::size_t>(num_procs));
  for (index_t p = 0; p < num_procs; ++p) {
    ProcessState& ps = procs[p];
    ps.blk = &blocks[p];
    ps.rng = master.split();
    ps.speed = lognormal(ps.rng, opts.cost.speed_sigma);
    if (p == opts.delayed_process && opts.delay_factor > 1.0) {
      ps.speed /= opts.delay_factor;
    }
    const index_t m = ps.blk->num_owned();
    ps.x_local.resize(static_cast<std::size_t>(m + ps.blk->num_ghosts()));
    ps.updates.resize(static_cast<std::size_t>(m));
    ps.inv_diag.resize(static_cast<std::size_t>(m));
    for (index_t i = 0; i < m; ++i) {
      ps.x_local[i] = x0[ps.blk->row_begin + i];
      const double d = a.at(ps.blk->row_begin + i, ps.blk->row_begin + i);
      AJAC_CHECK_MSG(d != 0.0,
                     "zero diagonal at row " << ps.blk->row_begin + i);
      ps.inv_diag[i] = opts.omega / d;
    }
    for (index_t g = 0; g < ps.blk->num_ghosts(); ++g) {
      ps.x_local[m + g] = x0[ps.blk->ghost_cols[g]];
    }
    ps.last_seq.assign(ps.blk->neighbors.size(), 0);
    if (opts.record_trace) {
      ps.ghost_version.assign(
          static_cast<std::size_t>(ps.blk->num_ghosts()), 0);
    }
    if (sampled) {
      // Same coordinate discipline as the shared runtime: draws are a
      // deterministic function of (seed, rank, iteration, slot), so the
      // event interleaving cannot perturb them.
      ps.sampler.emplace(opts.policy, opts.seed, p, index_t{0}, m,
                         opts.weight_refresh);
      if (opts.record_trace) {
        ps.own_version.assign(static_cast<std::size_t>(m), 0);
      }
    }
    for (std::size_t l = 0; l < ps.blk->neighbors.size(); ++l) {
      ps.link_of_sender.emplace_back(ps.blk->neighbors[l].neighbor,
                                     static_cast<index_t>(l));
    }
    std::sort(ps.link_of_sender.begin(), ps.link_of_sender.end());
  }

  std::vector<RankFaults> rank_faults(
      plan != nullptr ? static_cast<std::size_t>(num_procs) : 0);
  if (plan != nullptr) {
    for (index_t p = 0; p < num_procs; ++p) {
      RankFaults& rf = rank_faults[p];
      rf.sent_on_link.assign(procs[p].blk->neighbors.size(), 0);
      for (const auto& s : plan->stragglers) {
        if (s.actor == p) rf.straggler = &s;
      }
      for (const auto& s : plan->stale_reads) {
        if (s.actor == p || s.actor == -1) rf.stale = &s;
      }
      for (const auto& s : plan->crashes) {
        if (s.actor == p) rf.crash = &s;
      }
    }
  }

  // Publish one beacon for rank p. The one simulation thread is the sole
  // writer of every ring; own_norm_1 is the rank's own-block residual
  // 1-norm (absolute — the monitor divides by residual_scale).
  auto publish_beacon = [&](index_t p, double sim_seconds,
                            double own_norm_1) {
    obs::EventRing& ring = stream->ring(p);
    ring.writer.assert_held();
    const ProcessState& ps = procs[p];
    const auto m = static_cast<std::uint64_t>(ps.blk->num_owned());
    obs::Beacon bcn;
    bcn.ts_us = sim_seconds * 1e6;
    bcn.iteration = ps.iterations;
    bcn.relaxations = static_cast<std::uint64_t>(ps.iterations) * m;
    bcn.own_residual_1 = own_norm_1;
    bcn.policy_draws =
        sampled ? static_cast<std::uint64_t>(ps.iterations) * m : 0;
    bcn.weight_refreshes = 0;
    ring.publish(bcn);
  };
  // Terminal beacon: own-block residual recomputed from the committed
  // global state (the rank may stop without having relaxed this event).
  auto publish_final_beacon = [&](index_t p, double sim_seconds) {
    if (stream == nullptr) return;
    const LocalBlock& blk = *procs[p].blk;
    double own = 0.0;
    for (index_t i = blk.row_begin; i < blk.row_begin + blk.num_owned();
         ++i) {
      double acc = b[i];
      const auto [cols, vals] = a.row(i);
      for (std::size_t q = 0; q < cols.size(); ++q) {
        acc -= vals[q] * x_global[cols[q]];
      }
      own += std::abs(acc);
    }
    publish_beacon(p, sim_seconds, own);
  };

  record(0.0, 0);

  const double avg_iter_time = [&] {
    double acc = 0.0;
    for (const auto& ps : procs) acc += compute_seconds(ps, opts.cost, 1.0);
    return acc / static_cast<double>(num_procs);
  }();
  const double snapshot_dt =
      opts.snapshot_dt > 0.0 ? opts.snapshot_dt : avg_iter_time;

  index_t relaxations = 0;

  if (opts.synchronous) {
    // ---- BSP supersteps: exchange, relax, barrier. ----
    double t = 0.0;
    for (index_t iter = 1; iter <= opts.max_iterations; ++iter) {
      // Ghost exchange: everyone reads the owners' previous-iteration
      // values (messages all complete inside the superstep).
      double max_comm = 0.0;
      for (ProcessState& ps : procs) {
        const index_t m = ps.blk->num_owned();
        for (index_t g = 0; g < ps.blk->num_ghosts(); ++g) {
          ps.x_local[m + g] = x_global[ps.blk->ghost_cols[g]];
        }
        double comm = 0.0;
        for (const NeighborLink& link : ps.blk->neighbors) {
          if (link.send_rows.empty()) continue;
          comm = std::max(
              comm, opts.cost.message_time(
                        8 * static_cast<index_t>(link.send_rows.size())));
        }
        max_comm = std::max(max_comm, comm);
      }
      // Relax everyone against the exchanged state.
      double max_compute = 0.0;
      double total_compute = 0.0;
      for (ProcessState& ps : procs) {
        relax_dispatch(ps,
                       std::span<const double>(
                           b.data() + ps.blk->row_begin,
                           static_cast<std::size_t>(ps.blk->num_owned())),
                       opts.inner_sweep);
        ++ps.iterations;
        relaxations += ps.blk->num_owned();
        const double c = compute_seconds(
            ps, opts.cost, lognormal(ps.rng, opts.cost.jitter_sigma));
        max_compute = std::max(max_compute, c);
        total_compute += c;
      }
      for (ProcessState& ps : procs) {
        std::copy(ps.x_local.begin(),
                  ps.x_local.begin() + ps.blk->num_owned(),
                  x_global.begin() + ps.blk->row_begin);
      }
      double compute_term = max_compute;
      if (opts.cost.cores > 0 && opts.cost.cores < num_procs) {
        compute_term = std::max(
            max_compute,
            total_compute / (static_cast<double>(opts.cost.cores) *
                             std::max(1.0, opts.cost.smt_factor)));
      }
      t += compute_term + max_comm + opts.cost.barrier_time(num_procs);
      const double rel = record(t, relaxations);
      const bool tol_hit = opts.tolerance > 0.0 && rel <= opts.tolerance;
      if (stream != nullptr && (iter % stream_stride == 0 || tol_hit ||
                                iter == opts.max_iterations)) {
        // record() just refreshed r_scratch from the committed state; the
        // per-rank own-block slices fall out of it directly.
        for (index_t p = 0; p < num_procs; ++p) {
          const LocalBlock& blk = *procs[p].blk;
          double own = 0.0;
          for (index_t i = blk.row_begin;
               i < blk.row_begin + blk.num_owned(); ++i) {
            own += std::abs(r_scratch[i]);
          }
          publish_beacon(p, t, own);
        }
      }
      if (tol_hit) {
        result.reached_tolerance = true;
        break;
      }
      if (!std::isfinite(rel)) break;
    }
    result.sim_seconds = t;
  } else {
    // ---- Event-driven asynchronous execution. ----
    using QueueEntry = std::pair<double, index_t>;  // (time, process)
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<>>
        queue;
    {
      // Processes do not start in lockstep: thread/process launch skew
      // spreads the first iteration across roughly one iteration period.
      // Without this, neighboring ranks stay phase-locked into the same
      // "wave" every round and relax simultaneously forever — a resonance
      // real machines do not exhibit.
      const double oversub =
          (opts.cost.cores > 0 && opts.cost.cores < num_procs)
              ? static_cast<double>(num_procs) /
                    static_cast<double>(opts.cost.cores)
              : 1.0;
      Rng stagger_rng(opts.seed ^ 0x5eedULL);
      for (index_t p = 0; p < num_procs; ++p) {
        const double period = compute_seconds(procs[p], opts.cost, 1.0) * oversub;
        queue.emplace(stagger_rng.uniform() * period, p);
      }
    }
    // Core contention: processes queue for the earliest-free core. An
    // empty heap (cores == 0) means one core per process.
    std::priority_queue<double, std::vector<double>, std::greater<>>
        core_free;
    if (opts.cost.cores > 0 && opts.cost.cores < num_procs) {
      for (index_t c = 0; c < opts.cost.cores; ++c) core_free.push(0.0);
    }
    double next_snapshot = snapshot_dt;
    index_t in_flight = 0;
    double t_now = 0.0;
    bool stop = false;

    // Realistic termination detection (Termination::kNormReduction):
    // in-flight local-norm reports to rank 0, and rank 0's latest view.
    const bool detect =
        opts.termination == Termination::kNormReduction && opts.tolerance > 0.0;
    struct NormReport {
      double arrival;
      index_t sender;
      double value;
      bool operator>(const NormReport& o) const { return arrival > o.arrival; }
    };
    std::priority_queue<NormReport, std::vector<NormReport>, std::greater<>>
        reports;
    std::vector<double> latest_norm(static_cast<std::size_t>(num_procs),
                                    -1.0);

    // Every put goes through here: the plan's message faults act on the
    // (directed edge, per-edge counter) key, so the decision for "the k-th
    // put from s to r" is the same whatever the event interleaving.
    auto post_message = [&](ProcessState& src, index_t src_rank,
                            std::size_t link, ProcessState& dst, Message msg,
                            double base, double latency) {
      if (plan != nullptr && !plan->message_faults.empty()) {
        RankFaults& rf = rank_faults[src_rank];
        const index_t k = rf.sent_on_link[link]++;
        const std::uint64_t edge = directed_edge_key(src_rank, msg.receiver);
        const auto ku = static_cast<std::uint64_t>(k);
        for (const fault::MessageFaultSpec& s : plan->message_faults) {
          if ((s.sender >= 0 && s.sender != src_rank) ||
              (s.receiver >= 0 && s.receiver != msg.receiver)) {
            continue;
          }
          if (fclock.bernoulli(s.drop_probability,
                               fault::FaultClock::kMessageDrop, edge, ku)) {
            // The put was issued and died in the network: it counts as
            // sent but never as in flight (the eager rule's starvation
            // check is keyed on deliverable messages).
            rf.log.push_back({fault::FaultKind::kMessageDrop, src_rank, k,
                              msg.receiver, 0});
            if (metrics != nullptr) {
              obs::ActorSlot& sl = slot(src_rank);
              sl.owner.assert_held();  // one simulation thread owns every slot
              sl.add(obs::Counter::kMessagesDropped);
              sl.add(obs::Counter::kFaultEvents);
              sl.instant(obs::TraceKind::kMessageDrop, base * 1e6,
                                     msg.receiver);
            }
            ++result.dropped_messages;
            ++src.messages_sent;
            return;
          }
          if (fclock.bernoulli(s.reorder_probability,
                               fault::FaultClock::kMessageReorder, edge, ku)) {
            rf.log.push_back({fault::FaultKind::kMessageReorder, src_rank, k,
                              msg.receiver, 0});
            if (metrics != nullptr) {
              obs::ActorSlot& sl = slot(src_rank);
              sl.owner.assert_held();  // one simulation thread owns every slot
              sl.add(obs::Counter::kFaultEvents);
              sl.instant(obs::TraceKind::kMessageReorder,
                                     base * 1e6, msg.receiver);
            }
            latency *= s.reorder_latency_factor;
          }
          if (fclock.bernoulli(s.duplicate_probability,
                               fault::FaultClock::kMessageDuplicate, edge,
                               ku)) {
            rf.log.push_back({fault::FaultKind::kMessageDuplicate, src_rank,
                              k, msg.receiver, 0});
            if (metrics != nullptr) {
              obs::ActorSlot& sl = slot(src_rank);
              sl.owner.assert_held();  // one simulation thread owns every slot
              sl.add(obs::Counter::kMessagesDuplicated);
              sl.add(obs::Counter::kFaultEvents);
              sl.instant(obs::TraceKind::kMessageDuplicate,
                                     base * 1e6, msg.receiver);
            }
            Message dup = msg;
            dup.arrival = base + 2.0 * latency;  // the retransmitted copy
            dst.mailbox.push(std::move(dup));
            ++in_flight;
            ++src.messages_sent;
            ++result.duplicated_messages;
          }
          break;  // first matching spec governs the edge
        }
      }
      if (metrics != nullptr) {
        obs::ActorSlot& sl = slot(src_rank);
        sl.owner.assert_held();  // one simulation thread owns every slot
        sl.record(obs::Hist::kMessageLatencyUs,
                              static_cast<std::uint64_t>(latency * 1e6));
      }
      msg.arrival = base + latency;
      dst.mailbox.push(std::move(msg));
      ++in_flight;
      ++src.messages_sent;
    };

    while (!queue.empty() && !stop) {
      const auto [t, p] = queue.top();
      queue.pop();
      t_now = std::max(t_now, t);
      ProcessState& ps = procs[p];

      while (next_snapshot <= t_now) {
        const double rel = record(next_snapshot, relaxations);
        next_snapshot += snapshot_dt;
        // The oracle stop is only legitimate in oracle mode; under the
        // realistic protocol the ranks must discover convergence
        // themselves.
        if (opts.termination == Termination::kIterationCountOrOracle &&
            opts.tolerance > 0.0 && rel <= opts.tolerance) {
          result.reached_tolerance = true;
          stop = true;
          break;
        }
        if (!std::isfinite(rel)) stop = true;
      }
      if (stop) break;

      if (plan != nullptr) {
        RankFaults& rf = rank_faults[p];
        if (rf.down) {
          // Recovery: the rank resumes here. Messages that landed while it
          // was down are lost — its memory window vanished with it.
          rf.down = false;
          rf.log.push_back(
              {fault::FaultKind::kRecover, p, ps.iterations, 0, 0});
          if (metrics != nullptr) {
            obs::ActorSlot& sl = slot(p);
            sl.owner.assert_held();  // one simulation thread owns every slot
            sl.add(obs::Counter::kFaultEvents);
            sl.instant(obs::TraceKind::kRecover, t * 1e6, ps.iterations);
          }
          while (!ps.mailbox.empty() &&
                 ps.mailbox.top().arrival <= rf.dead_until) {
            ps.mailbox.pop();
            --in_flight;
            ++result.dropped_messages;
            if (metrics != nullptr) {
              obs::ActorSlot& sl = slot(p);
              sl.owner.assert_held();  // one simulation thread owns every slot
              sl.add(obs::Counter::kMessagesDropped);
            }
          }
          if (rf.crash->reset_state_on_recovery) {
            const index_t m = ps.blk->num_owned();
            for (index_t i = 0; i < m; ++i) {
              ps.x_local[i] = x0[ps.blk->row_begin + i];
            }
            for (index_t g = 0; g < ps.blk->num_ghosts(); ++g) {
              ps.x_local[m + g] = x0[ps.blk->ghost_cols[g]];
            }
            std::copy(ps.x_local.begin(), ps.x_local.begin() + m,
                      x_global.begin() + ps.blk->row_begin);
            std::fill(ps.last_seq.begin(), ps.last_seq.end(), 0);
            if (opts.record_trace) {
              std::fill(ps.ghost_version.begin(), ps.ghost_version.end(), 0);
            }
          }
          ps.has_new_data = true;  // a restarted rank relaxes immediately
        } else if (rf.crash != nullptr && !rf.crashed &&
                   ps.iterations >= rf.crash->crash_iteration) {
          rf.crashed = true;
          rf.down = true;
          rf.dead_until = t + rf.crash->dead_seconds;
          rf.log.push_back({fault::FaultKind::kCrash, p, ps.iterations, 0, 0});
          if (metrics != nullptr) {
            obs::ActorSlot& sl = slot(p);
            sl.owner.assert_held();  // one simulation thread owns every slot
            sl.add(obs::Counter::kFaultEvents);
            sl.instant(obs::TraceKind::kCrash, t * 1e6, ps.iterations);
          }
          queue.emplace(rf.dead_until, p);
          continue;
        }
      }

      // Acquire a core first: the relaxation *reads* its inputs when it
      // actually runs, not when the process became ready.
      double t_start = t;
      if (!core_free.empty()) {
        t_start = std::max(t, core_free.top());
        core_free.pop();
      }

      ps.wait_seconds += t_start - t;

      // Stale-read window: while active, the rank stops draining its
      // mailbox, so every relaxation inside the window reads the ghost
      // values frozen at window entry (arrived puts wait, they are not
      // lost). Keyed on the local iteration count, like the shared
      // runtime's window. Note: with the eager update rule a deferred
      // rank makes no iteration progress, so the window only ends via the
      // poll cap — combine stale windows with the racy rule.
      bool defer_delivery = false;
      if (plan != nullptr) {
        RankFaults& rf = rank_faults[p];
        if (rf.stale != nullptr) {
          const bool on = fault::duty_active(rf.stale->period, rf.stale->duty,
                                             ps.iterations);
          if (on && !rf.stale_on) {
            rf.log.push_back(
                {fault::FaultKind::kStaleWindowOn, p, ps.iterations, 0, 0});
            if (metrics != nullptr) {
              obs::ActorSlot& sl = slot(p);
              sl.owner.assert_held();  // one simulation thread owns every slot
              sl.add(obs::Counter::kFaultEvents);
              sl.instant(obs::TraceKind::kStaleWindowOn, t_start * 1e6,
                              ps.iterations);
            }
          }
          rf.stale_on = on;
          defer_delivery = on;
        }
      }

      // Deliver every message that has arrived by run time.
      if (metrics != nullptr && !defer_delivery) {
        // Pending puts (arrived or still in the network) at drain time.
        obs::ActorSlot& sl = slot(p);
        sl.owner.assert_held();  // one simulation thread owns every slot
        sl.record(obs::Hist::kQueueDepth, ps.mailbox.size());
      }
      while (!defer_delivery && !ps.mailbox.empty() &&
             ps.mailbox.top().arrival <= t_start) {
        const Message& msg = ps.mailbox.top();
        ++result.total_messages;
        ++ps.messages_received;
        --in_flight;
        if (metrics != nullptr) {
          // How many iterations the sender has advanced past this put: the
          // lag a ghost value carries when it lands.
          const index_t lag = procs[msg.sender].iterations - msg.seq;
          obs::ActorSlot& sl = slot(p);
          sl.owner.assert_held();  // one simulation thread owns every slot
          sl.record(obs::Hist::kGhostReadAge,
                         static_cast<std::uint64_t>(lag > 0 ? lag : 0));
        }
        const index_t link_idx = msg.link_index;
        const NeighborLink& link = ps.blk->neighbors[link_idx];
        const bool stale = msg.seq < ps.last_seq[link_idx];
        if (stale) ++result.reordered_messages;
        if (!(stale && opts.ordered_delivery)) {
          const index_t m = ps.blk->num_owned();
          const std::vector<index_t>& slots =
              msg.slots.empty() ? link.recv_slots : msg.slots;
          AJAC_DCHECK(msg.values.size() == slots.size());
          for (std::size_t k = 0; k < slots.size(); ++k) {
            ps.x_local[m + slots[k]] = msg.values[k];
            if (opts.record_trace) {
              ps.ghost_version[slots[k]] =
                  msg.versions.empty() ? msg.seq : msg.versions[k];
            }
          }
          ps.last_seq[link_idx] = std::max(ps.last_seq[link_idx], msg.seq);
          ps.has_new_data = true;
        }
        ps.mailbox.pop();
      }

      if (ps.stop_at <= t_start) {
        // Stop broadcast arrived: halt without relaxing further.
        ps.done = true;
        if (metrics != nullptr) {
          obs::ActorSlot& sl = slot(p);
          sl.owner.assert_held();  // one simulation thread owns every slot
          sl.instant(obs::TraceKind::kStop, t_start * 1e6,
                          ps.iterations);
        }
        publish_final_beacon(p, t_start);
        result.iterations_per_process[p] = ps.iterations;
        if (opts.cost.cores > 0 && opts.cost.cores < num_procs) {
          core_free.push(t_start);
        }
        continue;
      }

      if (detect && p == 0) {
        // Rank 0 folds in every report that has arrived by now and checks
        // the (stale) global sum against the tolerance.
        while (!reports.empty() && reports.top().arrival <= t_start) {
          latest_norm[reports.top().sender] = reports.top().value;
          reports.pop();
        }
        bool have_all = true;
        double sum = 0.0;
        for (double v : latest_norm) {
          if (v < 0.0) {
            have_all = false;
            break;
          }
          sum += v;
        }
        if (have_all && sum / r0_1 <= opts.tolerance &&
            !result.termination_detected) {
          result.termination_detected = true;
          result.detection_sim_seconds = t_start;
          result.detection_claimed_residual = sum / r0_1;
          a.residual(x_global, b, r_scratch);
          result.detection_true_residual = vec::norm1(r_scratch) / r0_1;
          if (metrics != nullptr) {
            obs::ActorSlot& sl = slot(0);
            sl.owner.assert_held();  // one simulation thread owns every slot
            sl.instant(obs::TraceKind::kDetection, t_start * 1e6);
          }
          // Tree broadcast of the stop: log2(P) latency hops.
          const double bcast =
              opts.cost.message_time(8) *
              std::max(1.0, std::log2(static_cast<double>(num_procs)));
          for (ProcessState& q : procs) {
            q.stop_at = std::min(q.stop_at, t_start + bcast);
          }
        }
      }

      if (opts.update_rule == UpdateRule::kEager && !ps.has_new_data) {
        // Poll: advance to the next arrival or spin one overhead quantum.
        // Polling does not hold the core.
        if (opts.cost.cores > 0 && opts.cost.cores < num_procs) {
          core_free.push(t_start);
        }
        ++ps.polls;
        const bool starved =
            in_flight == 0 &&
            std::all_of(procs.begin(), procs.end(), [&](const ProcessState& o) {
              return o.done || &o == &ps;
            });
        if (starved || ps.polls > opts.max_iterations * 64) {
          ps.done = true;
          publish_final_beacon(p, t);
          result.iterations_per_process[p] = ps.iterations;
          continue;
        }
        const double wake =
            ps.mailbox.empty()
                ? t + opts.cost.iteration_overhead
                : std::max(t + opts.cost.iteration_overhead,
                           ps.mailbox.top().arrival);
        ps.time = wake;
        queue.emplace(wake, p);
        continue;
      }

      // Relax once.
      {
        const LocalBlock& blk = *ps.blk;
        const index_t m = blk.num_owned();
        for (index_t g = 0; g < blk.num_ghosts(); ++g) {
          ++result.total_ghost_reads;
          if (ps.x_local[m + g] != x_global[blk.ghost_cols[g]]) {
            ++result.stale_ghost_reads;
          }
        }
      }
      if (opts.record_trace && !sampled) {
        const LocalBlock& blk = *ps.blk;
        const index_t m = blk.num_owned();
        for (index_t i = 0; i < m; ++i) {
          model::RelaxationEvent event;
          event.row = blk.row_begin + i;
          for (index_t pp = blk.row_ptr[i]; pp < blk.row_ptr[i + 1]; ++pp) {
            const index_t c = blk.col_idx[pp];
            if (c < m) {
              const index_t global = blk.row_begin + c;
              if (global == event.row) continue;
              event.reads.push_back({global, ps.iterations});
            } else {
              event.reads.push_back(
                  {blk.ghost_cols[c - m], ps.ghost_version[c - m]});
            }
          }
          ps.events.push_back(std::move(event));
        }
      }
      const std::span<const double> b_local(
          b.data() + ps.blk->row_begin,
          static_cast<std::size_t>(ps.blk->num_owned()));
      const double local_norm =
          sampled ? relax_block_sampled(ps, b_local, opts.record_trace)
                  : relax_dispatch(ps, b_local, opts.inner_sweep);
      ++ps.iterations;
      ps.has_new_data = false;
      relaxations += ps.blk->num_owned();
      std::copy(ps.x_local.begin(), ps.x_local.begin() + ps.blk->num_owned(),
                x_global.begin() + ps.blk->row_begin);

      double jitter = lognormal(ps.rng, opts.cost.jitter_sigma);
      if (plan != nullptr) {
        RankFaults& rf = rank_faults[p];
        if (rf.straggler != nullptr) {
          // Duty window of the iteration just performed (0-based): while
          // active the whole iteration — work and overhead — is slowed.
          const index_t iter0 = ps.iterations - 1;
          const bool on = fault::duty_active(rf.straggler->period,
                                             rf.straggler->duty, iter0);
          if (on && !rf.straggler_on) {
            rf.log.push_back(
                {fault::FaultKind::kStragglerOn, p, iter0, 0, 0});
            if (metrics != nullptr) {
              obs::ActorSlot& sl = slot(p);
              sl.owner.assert_held();  // one simulation thread owns every slot
              sl.add(obs::Counter::kFaultEvents);
              sl.instant(obs::TraceKind::kStragglerOn, t_start * 1e6,
                              iter0);
            }
          }
          rf.straggler_on = on;
          if (on) jitter *= rf.straggler->delay_factor;
        }
      }
      const double t_visible = t_start + work_seconds(ps, opts.cost, jitter);
      const double t_done =
          t_visible + overhead_seconds(ps, opts.cost, jitter);
      ps.busy_seconds += t_done - t_start;
      if (opts.cost.cores > 0 && opts.cost.cores < num_procs) {
        // SMT: a contended core retires smt_factor iterations per
        // iteration-time, so it frees up earlier than the iteration ends.
        core_free.push(t_start +
                       (t_done - t_start) / std::max(1.0, opts.cost.smt_factor));
      }
      ps.time = t_done;
      if (metrics != nullptr) {
        obs::ActorSlot& sl = slot(p);
        sl.owner.assert_held();  // one simulation thread owns every slot
        sl.record(obs::Hist::kIterationUs,
                       static_cast<std::uint64_t>((t_done - t_start) * 1e6));
        sl.span(obs::TraceKind::kIteration, t_start * 1e6, t_done * 1e6,
                     ps.iterations - 1);
      }
      if (stream != nullptr && ps.iterations % stream_stride == 0) {
        publish_beacon(p, t_done, local_norm);
      }

      // Push boundary values to neighbors (RMA puts issued once the
      // values exist, landing after the network latency).
      const double work_span = t_visible - t_start;
      for (std::size_t l = 0; l < ps.blk->neighbors.size(); ++l) {
        const NeighborLink& link = ps.blk->neighbors[l];
        if (link.send_rows.empty()) continue;
        ProcessState& dst = procs[link.neighbor];
        const index_t dst_link = dst.find_link(p);
        if (opts.row_level_puts) {
          // One put per boundary row; its value becomes visible partway
          // through the compute window, at the moment that row's new
          // value was actually written.
          const LocalBlock& dst_blk = *dst.blk;
          const auto& recv_slots = dst_blk.neighbors[dst_link].recv_slots;
          const index_t m = ps.blk->num_owned();
          for (std::size_t k = 0; k < link.send_rows.size(); ++k) {
            const index_t local_row = link.send_rows[k] - ps.blk->row_begin;
            Message msg;
            msg.sender = p;
            msg.receiver = link.neighbor;
            msg.seq = ps.iterations;
            msg.link_index = dst_link;
            msg.values.push_back(ps.x_local[local_row]);
            msg.slots.push_back(recv_slots[k]);
            if (sampled && opts.record_trace) {
              msg.versions.push_back(ps.own_version[local_row]);
            }
            const double frac =
                static_cast<double>(local_row + 1) / static_cast<double>(m);
            const double latency =
                opts.cost.message_time(8) *
                lognormal(ps.rng, opts.cost.msg_jitter_sigma);
            post_message(ps, p, l, dst, std::move(msg),
                         t_start + frac * work_span, latency);
          }
          continue;
        }
        Message msg;
        msg.sender = p;
        msg.receiver = link.neighbor;
        msg.seq = ps.iterations;
        msg.values.reserve(link.send_rows.size());
        for (index_t row : link.send_rows) {
          msg.values.push_back(ps.x_local[row - ps.blk->row_begin]);
          if (sampled && opts.record_trace) {
            msg.versions.push_back(ps.own_version[row - ps.blk->row_begin]);
          }
        }
        const double latency =
            opts.cost.message_time(
                8 * static_cast<index_t>(link.send_rows.size())) *
            lognormal(ps.rng, opts.cost.msg_jitter_sigma);
        msg.link_index = dst_link;
        post_message(ps, p, l, dst, std::move(msg), t_visible, latency);
      }

      if (detect && ps.iterations % opts.detection_interval == 0) {
        if (p == 0) {
          latest_norm[0] = local_norm;  // the root reads its own norm free
        } else {
          reports.push(NormReport{
              t_visible + opts.cost.message_time(8) *
                              lognormal(ps.rng, opts.cost.msg_jitter_sigma),
              p, local_norm});
        }
      }

      if (ps.iterations >= opts.max_iterations) {
        ps.done = true;
        if (metrics != nullptr) {
          obs::ActorSlot& sl = slot(p);
          sl.owner.assert_held();  // one simulation thread owns every slot
          sl.add(obs::Counter::kFlagRaises);
          sl.instant(obs::TraceKind::kFlagRaise, t_done * 1e6,
                          ps.iterations);
        }
        if (stream != nullptr && ps.iterations % stream_stride != 0) {
          // Terminal beacon when the stride missed the last iteration.
          publish_beacon(p, t_done, local_norm);
        }
        result.iterations_per_process[p] = ps.iterations;
      } else {
        queue.emplace(t_done, p);
      }
    }
    // Drain: the run ends when the last in-flight iteration completes.
    for (const ProcessState& ps : procs) {
      t_now = std::max(t_now, ps.time);
    }
    result.sim_seconds = t_now;
    record(t_now, relaxations);
  }

  for (index_t p = 0; p < num_procs; ++p) {
    result.iterations_per_process[p] = procs[p].iterations;
  }
  if (metrics != nullptr) {
    // Aggregate counters once at the end — they are derivable from the
    // per-process state, so the hot loop never touches them.
    for (index_t p = 0; p < num_procs; ++p) {
      obs::ActorSlot& s = slot(p);
      s.owner.assert_held();  // one simulation thread owns every slot
      s.add(obs::Counter::kIterations,
            static_cast<std::uint64_t>(procs[p].iterations));
      s.add(obs::Counter::kRelaxations,
            static_cast<std::uint64_t>(procs[p].iterations) *
                static_cast<std::uint64_t>(procs[p].blk->num_owned()));
      s.add(obs::Counter::kMessagesSent,
            static_cast<std::uint64_t>(procs[p].messages_sent));
      s.add(obs::Counter::kMessagesReceived,
            static_cast<std::uint64_t>(procs[p].messages_received));
    }
  }
  if (!opts.synchronous) {
    result.rank_stats.resize(static_cast<std::size_t>(num_procs));
    for (index_t p = 0; p < num_procs; ++p) {
      RankStats& rs = result.rank_stats[p];
      rs.iterations = procs[p].iterations;
      rs.busy_seconds = procs[p].busy_seconds;
      rs.wait_seconds = procs[p].wait_seconds;
      rs.messages_sent = procs[p].messages_sent;
      rs.messages_received = procs[p].messages_received;
    }
  }
  result.total_relaxations = relaxations;
  for (const RankFaults& rf : rank_faults) {
    result.fault_events.insert(result.fault_events.end(), rf.log.begin(),
                               rf.log.end());
  }
  fault::canonicalize(result.fault_events);
  if (opts.record_trace && !opts.synchronous) {
    model::RelaxationTrace trace(n);
    for (const ProcessState& ps : procs) {
      for (const auto& e : ps.events) trace.add_event(e);
    }
    result.trace = std::move(trace);
  }
  result.x = x_global;
  a.residual(x_global, b, r_scratch);
  result.final_rel_residual_1 = vec::norm1(r_scratch) / r0_1;
  if (opts.tolerance > 0.0 &&
      result.final_rel_residual_1 <= opts.tolerance) {
    result.reached_tolerance = true;
  }
  return result;
}

}  // namespace ajac::distsim
