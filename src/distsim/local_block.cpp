#include "ajac/distsim/local_block.hpp"

#include <algorithm>
#include <map>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac::distsim {

std::vector<LocalBlock> build_local_blocks(const CsrMatrix& a,
                                           const partition::Partition& part) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  AJAC_CHECK(part.num_rows() == a.num_rows());
  const index_t num_parts = part.num_parts();

  std::vector<LocalBlock> blocks(static_cast<std::size_t>(num_parts));
  for (index_t p = 0; p < num_parts; ++p) {
    LocalBlock& blk = blocks[p];
    blk.process = p;
    blk.row_begin = part.part_begin(p);
    blk.row_end = part.part_end(p);

    // Collect ghost columns (ascending, unique).
    std::vector<index_t> ghosts;
    for (index_t i = blk.row_begin; i < blk.row_end; ++i) {
      for (index_t j : a.row_cols(i)) {
        if (j < blk.row_begin || j >= blk.row_end) ghosts.push_back(j);
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    blk.ghost_cols = std::move(ghosts);

    // Remap the owned rows to local column numbering.
    const index_t num_owned = blk.num_owned();
    blk.row_ptr.assign(1, 0);
    for (index_t i = blk.row_begin; i < blk.row_end; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t j = cols[k];
        index_t local;
        if (j >= blk.row_begin && j < blk.row_end) {
          local = j - blk.row_begin;
        } else {
          const auto it = std::lower_bound(blk.ghost_cols.begin(),
                                           blk.ghost_cols.end(), j);
          AJAC_DCHECK(it != blk.ghost_cols.end() && *it == j);
          local = num_owned +
                  static_cast<index_t>(it - blk.ghost_cols.begin());
        }
        blk.col_idx.push_back(local);
        blk.values.push_back(vals[k]);
      }
      blk.row_ptr.push_back(static_cast<index_t>(blk.col_idx.size()));
    }

    // Group ghost slots by owner to form receive lists (slot order is
    // ascending global id within a neighbor, which both sides can derive
    // independently — the agreed message layout).
    std::map<index_t, NeighborLink> by_owner;
    for (index_t g = 0; g < blk.num_ghosts(); ++g) {
      const index_t owner = part.owner(blk.ghost_cols[g]);
      NeighborLink& link = by_owner[owner];
      link.neighbor = owner;
      link.recv_slots.push_back(g);
    }
    for (auto& [owner, link] : by_owner) {
      blk.neighbors.push_back(std::move(link));
    }
  }

  // Fill send lists: process p must send to q exactly the global rows q
  // reads from p, in q's ghost order.
  for (index_t q = 0; q < num_parts; ++q) {
    const LocalBlock& dst = blocks[q];
    for (const NeighborLink& link : dst.neighbors) {
      LocalBlock& src = blocks[link.neighbor];
      // Find (or create) the reciprocal link q inside src.
      auto it = std::find_if(
          src.neighbors.begin(), src.neighbors.end(),
          [&](const NeighborLink& l) { return l.neighbor == q; });
      if (it == src.neighbors.end()) {
        src.neighbors.push_back(NeighborLink{q, {}, {}});
        it = src.neighbors.end() - 1;
      }
      it->send_rows.clear();
      it->send_rows.reserve(link.recv_slots.size());
      for (index_t slot : link.recv_slots) {
        it->send_rows.push_back(dst.ghost_cols[slot]);
      }
    }
  }
  for (auto& blk : blocks) {
    std::sort(blk.neighbors.begin(), blk.neighbors.end(),
              [](const NeighborLink& x, const NeighborLink& y) {
                return x.neighbor < y.neighbor;
              });
  }
  return blocks;
}

}  // namespace ajac::distsim
