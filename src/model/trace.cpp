#include "ajac/model/trace.hpp"

#include <algorithm>
#include <map>

#include "ajac/util/check.hpp"

namespace ajac::model {

RelaxationTrace::RelaxationTrace(index_t num_rows) : n_(num_rows) {
  AJAC_CHECK(num_rows >= 1);
}

void RelaxationTrace::add_event(RelaxationEvent event) {
  AJAC_CHECK(event.row >= 0 && event.row < n_);
  for (const RelaxationRead& read : event.reads) {
    AJAC_CHECK(read.source_row >= 0 && read.source_row < n_);
    AJAC_CHECK(read.version >= 0);
  }
  events_.push_back(std::move(event));
}

namespace {

/// Per-row cursor into the trace.
struct RowState {
  std::vector<const RelaxationEvent*> pending;  // in execution order
  std::size_t next = 0;                         // index into pending
  index_t completed = 0;                        // κ_i

  [[nodiscard]] const RelaxationEvent* next_event() const {
    return next < pending.size() ? pending[next] : nullptr;
  }
};

enum class Eligibility {
  kNotYet,   // some read version not produced yet
  kExact,    // every read matches the current version
  kStale,    // producible but at least one read is already outdated
};

Eligibility classify(const RelaxationEvent& e,
                     const std::vector<RowState>& rows) {
  bool stale = false;
  for (const RelaxationRead& read : e.reads) {
    const index_t have = rows[read.source_row].completed;
    if (read.version > have) return Eligibility::kNotYet;
    if (read.version < have) stale = true;
  }
  return stale ? Eligibility::kStale : Eligibility::kExact;
}

}  // namespace

PropagationAnalysis analyze_trace(const RelaxationTrace& trace) {
  const index_t n = trace.num_rows();
  std::vector<RowState> rows(static_cast<std::size_t>(n));
  for (const RelaxationEvent& e : trace.events()) {
    rows[e.row].pending.push_back(&e);
  }

  PropagationAnalysis result;
  result.total_relaxations = static_cast<index_t>(trace.events().size());

  index_t remaining = result.total_relaxations;
  while (remaining > 0) {
    // Classify the next pending event of each row against current
    // versions. "Exact" events read the current state and could be one
    // application of a propagation matrix; "stale" events read versions
    // that have already been overwritten and can never be propagated.
    std::vector<index_t> candidates;  // exact or stale: relaxable now
    std::vector<char> is_exact(static_cast<std::size_t>(n), 0);
    for (index_t i = 0; i < n; ++i) {
      const RelaxationEvent* e = rows[i].next_event();
      if (e == nullptr) continue;
      const Eligibility elig = classify(*e, rows);
      if (elig == Eligibility::kNotYet) continue;
      candidates.push_back(i);
      if (elig == Eligibility::kExact) is_exact[i] = 1;
    }

    // Condition 2 fixed point over ALL relaxable candidates: hold row i
    // back if some pending row j that is NOT being relaxed this step
    // still needs the *current* version of i for its next relaxation.
    // Running the fixed point over exact and stale candidates together is
    // what keeps mutually coupled rows advancing in lockstep instead of
    // poisoning each other's future reads.
    std::vector<char> in_set(static_cast<std::size_t>(n), 0);
    for (index_t i : candidates) in_set[i] = 1;
    bool changed = true;
    while (changed) {
      changed = false;
      for (index_t j = 0; j < n; ++j) {
        const RelaxationEvent* e = rows[j].next_event();
        if (e == nullptr) continue;
        if (in_set[j]) continue;  // j relaxes simultaneously: no conflict
        for (const RelaxationRead& read : e->reads) {
          const index_t i = read.source_row;
          if (in_set[i] && read.version == rows[i].completed) {
            in_set[i] = 0;
            changed = true;
          }
        }
      }
    }
    std::vector<index_t> chosen;
    for (index_t i : candidates) {
      if (in_set[i]) chosen.push_back(i);
    }

    if (chosen.empty() && !candidates.empty()) {
      // Condition 2 cannot be satisfied for anyone (Fig. 1(b)): progress
      // must be forced. Relax the single candidate that invalidates the
      // fewest pending readers; its victims surface later as stale.
      index_t best = candidates.front();
      index_t best_blockers = n + 1;
      for (index_t i : candidates) {
        index_t blockers = 0;
        for (index_t j = 0; j < n; ++j) {
          const RelaxationEvent* e = rows[j].next_event();
          if (e == nullptr || j == i) continue;
          for (const RelaxationRead& read : e->reads) {
            if (read.source_row == i &&
                read.version == rows[i].completed) {
              ++blockers;
              break;
            }
          }
        }
        if (blockers < best_blockers) {
          best_blockers = blockers;
          best = i;
        }
      }
      chosen.push_back(best);
    }

    if (chosen.empty()) {
      // Remaining events wait on versions that are never produced — the
      // trace was truncated mid-flight.
      for (index_t i = 0; i < n; ++i) {
        result.orphaned +=
            static_cast<index_t>(rows[i].pending.size() - rows[i].next);
      }
      break;
    }

    AnalysisStep step;
    step.rows = chosen;
    step.propagated = true;
    for (index_t i : chosen) {
      if (is_exact[i]) {
        ++result.propagated_relaxations;
      } else {
        step.propagated = false;  // the step mixes in stale relaxations
      }
      ++rows[i].next;
      ++rows[i].completed;
      --remaining;
    }
    result.steps.push_back(std::move(step));
  }

  result.parallel_steps = static_cast<index_t>(result.steps.size());
  result.fraction =
      result.total_relaxations > 0
          ? static_cast<double>(result.propagated_relaxations) /
                static_cast<double>(result.total_relaxations)
          : 1.0;
  return result;
}

RelaxationTrace figure1a_trace() {
  // Four processes, one relaxation each (rows 0-3 stand for p1-p4).
  // p1 reads p2@0, p3@0; p2 reads p1@0, p4@1; p3 reads p1@1, p4@1;
  // p4 reads p2@0, p3@0.
  RelaxationTrace trace(4);
  trace.add_event({0, {{1, 0}, {2, 0}}});
  trace.add_event({1, {{0, 0}, {3, 1}}});
  trace.add_event({2, {{0, 1}, {3, 1}}});
  trace.add_event({3, {{1, 0}, {2, 0}}});
  return trace;
}

RelaxationTrace figure1b_trace() {
  // Modification of (a): s12 = 1 and s34 = 0 — p1 reads p2@1 and p3 reads
  // p4@0, which creates the cyclic constraint the paper describes.
  RelaxationTrace trace(4);
  trace.add_event({0, {{1, 1}, {2, 0}}});
  trace.add_event({1, {{0, 0}, {3, 1}}});
  trace.add_event({2, {{0, 1}, {3, 0}}});
  trace.add_event({3, {{1, 0}, {2, 0}}});
  return trace;
}

std::string to_json(const RelaxationTrace& trace) {
  std::string out;
  out += "{\"num_rows\": " + std::to_string(trace.num_rows()) +
         ",\n \"events\": [";
  bool first_event = true;
  for (const RelaxationEvent& e : trace.events()) {
    out += first_event ? "\n" : ",\n";
    first_event = false;
    out += "  {\"row\": " + std::to_string(e.row) + ", \"reads\": [";
    bool first_read = true;
    for (const RelaxationRead& read : e.reads) {
      if (!first_read) out += ", ";
      first_read = false;
      // Sequential appends: GCC 12's -Wrestrict misfires on the chained
      // operator+ form here (GCC PR105651).
      out += '[';
      out += std::to_string(read.source_row);
      out += ", ";
      out += std::to_string(read.version);
      out += ']';
    }
    out += "]}";
  }
  out += trace.events().empty() ? "]}" : "\n ]}";
  return out;
}

namespace {

/// Minimal strict scanner for the to_json trace format. Not a general
/// JSON parser: keys must appear in the order to_json writes them, which
/// is all the golden files and fault logs ever contain.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  void expect(char c) {
    skip_ws();
    AJAC_CHECK_MSG(p_ < end_ && *p_ == c,
                   "trace JSON: expected '" << c << "' at offset "
                                            << offset());
    ++p_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  void expect_key(const char* key) {
    expect('"');
    for (const char* k = key; *k != '\0'; ++k) {
      AJAC_CHECK_MSG(p_ < end_ && *p_ == *k,
                     "trace JSON: expected key \"" << key << "\" at offset "
                                                   << offset());
      ++p_;
    }
    expect('"');
    expect(':');
  }

  [[nodiscard]] index_t parse_int() {
    skip_ws();
    const bool negative = p_ < end_ && *p_ == '-';
    if (negative) ++p_;
    AJAC_CHECK_MSG(p_ < end_ && *p_ >= '0' && *p_ <= '9',
                   "trace JSON: expected integer at offset " << offset());
    index_t value = 0;
    while (p_ < end_ && *p_ >= '0' && *p_ <= '9') {
      value = value * 10 + (*p_ - '0');
      ++p_;
    }
    return negative ? -value : value;
  }

  void expect_end() {
    skip_ws();
    AJAC_CHECK_MSG(p_ == end_,
                   "trace JSON: trailing content at offset " << offset());
  }

 private:
  void skip_ws() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  [[nodiscard]] std::ptrdiff_t offset() const { return end_ - p_; }

  const char* p_;
  const char* end_;
};

}  // namespace

RelaxationTrace trace_from_json(const std::string& json) {
  JsonCursor cur(json);
  cur.expect('{');
  cur.expect_key("num_rows");
  const index_t n = cur.parse_int();
  AJAC_CHECK_MSG(n >= 1, "trace JSON: num_rows " << n << " < 1");
  RelaxationTrace trace(n);
  cur.expect(',');
  cur.expect_key("events");
  cur.expect('[');
  if (!cur.consume(']')) {
    do {
      cur.expect('{');
      cur.expect_key("row");
      RelaxationEvent event;
      event.row = cur.parse_int();
      cur.expect(',');
      cur.expect_key("reads");
      cur.expect('[');
      if (!cur.consume(']')) {
        do {
          cur.expect('[');
          RelaxationRead read;
          read.source_row = cur.parse_int();
          cur.expect(',');
          read.version = cur.parse_int();
          cur.expect(']');
          event.reads.push_back(read);
        } while (cur.consume(','));
        cur.expect(']');
      }
      cur.expect('}');
      trace.add_event(std::move(event));
    } while (cur.consume(','));
    cur.expect(']');
  }
  cur.expect('}');
  cur.expect_end();
  return trace;
}

}  // namespace ajac::model
