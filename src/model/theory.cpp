#include "ajac/model/theory.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "ajac/model/propagation.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/submatrix.hpp"
#include "ajac/util/check.hpp"

namespace ajac::model {

Vector null_vector(const DenseMatrix& y_in) {
  AJAC_CHECK(y_in.num_rows() == y_in.num_cols());
  const index_t n = y_in.num_rows();
  AJAC_CHECK(n >= 1);
  DenseMatrix u = y_in;  // working copy, reduced in place

  // Gaussian elimination with partial pivoting, tracking column order.
  std::vector<index_t> col_of(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) col_of[j] = j;

  index_t rank = 0;
  const double tiny = 1e-12 * std::max(1.0, u.norm_inf());
  for (index_t k = 0; k < n && rank < n; ++k) {
    // Find pivot in column k among rows rank..n-1.
    index_t piv = -1;
    double best = tiny;
    for (index_t i = rank; i < n; ++i) {
      if (std::abs(u(i, k)) > best) {
        best = std::abs(u(i, k));
        piv = i;
      }
    }
    if (piv < 0) continue;  // column k is (numerically) dependent
    if (piv != rank) {
      for (index_t j = 0; j < n; ++j) std::swap(u(piv, j), u(rank, j));
    }
    std::swap(col_of[rank], col_of[k]);
    // Column swap: physically swap columns rank <-> k so the pivot sits at
    // (rank, rank).
    if (rank != k) {
      for (index_t i = 0; i < n; ++i) std::swap(u(i, rank), u(i, k));
    }
    const double p = u(rank, rank);
    for (index_t i = rank + 1; i < n; ++i) {
      const double f = u(i, rank) / p;
      if (f == 0.0) continue;
      for (index_t j = rank; j < n; ++j) u(i, j) -= f * u(rank, j);
    }
    ++rank;
  }
  AJAC_CHECK_MSG(rank < n, "matrix has no (numerical) null space");

  // Back-substitute with the first free variable set to 1.
  Vector z(static_cast<std::size_t>(n), 0.0);
  z[rank] = 1.0;
  for (index_t i = rank - 1; i >= 0; --i) {
    double s = 0.0;
    for (index_t j = i + 1; j < n; ++j) s += u(i, j) * z[j];
    z[i] = -s / u(i, i);
  }
  // Undo the column permutation: z is in permuted coordinates.
  Vector v(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) v[col_of[j]] = z[j];
  double vmax = 0.0;
  for (double x : v) vmax = std::max(vmax, std::abs(x));
  AJAC_CHECK(vmax > 0.0);
  for (double& x : v) x /= vmax;
  return v;
}

Theorem1Check check_theorem1(const CsrMatrix& a, const ActiveSet& active) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  Theorem1Check out;
  const std::vector<index_t> delayed = active.complement();
  out.has_delayed_row = !delayed.empty();

  const DenseMatrix g = error_propagation_dense(a, active);
  const DenseMatrix h = residual_propagation_dense(a, active);
  out.g_norm_inf = g.norm_inf();
  out.h_norm_1 = h.norm1();

  // Ĥ ξ_i = ξ_i for each delayed row i: column i of Ĥ is exactly ξ_i.
  double h_resid = 0.0;
  for (index_t i : delayed) {
    for (index_t r = 0; r < n; ++r) {
      const double expect = (r == i) ? 1.0 : 0.0;
      h_resid = std::max(h_resid, std::abs(h(r, i) - expect));
    }
  }
  out.h_unit_eigvec_residual = h_resid;

  // Ĝ = I + Y; v in null(Y) satisfies Ĝ v = v.
  if (out.has_delayed_row) {
    DenseMatrix y = g;
    for (index_t i = 0; i < n; ++i) y(i, i) -= 1.0;
    const Vector v = null_vector(y);
    Vector gv(static_cast<std::size_t>(n));
    g.gemv(v, gv);
    double resid = 0.0;
    double vmax = 0.0;
    for (index_t i = 0; i < n; ++i) {
      resid = std::max(resid, std::abs(gv[i] - v[i]));
      vmax = std::max(vmax, std::abs(v[i]));
    }
    out.g_unit_eigvec_residual = resid / vmax;
  }
  return out;
}

DenseMatrix active_submatrix_dense(const CsrMatrix& a,
                                   const ActiveSet& active) {
  const DenseMatrix g = iteration_matrix_dense(a);
  const std::vector<index_t>& keep = active.indices();
  // indices() preserves insertion order; sort a copy for a canonical
  // principal submatrix.
  std::vector<index_t> sorted = keep;
  std::sort(sorted.begin(), sorted.end());
  const index_t m = static_cast<index_t>(sorted.size());
  DenseMatrix sub(m, m);
  for (index_t r = 0; r < m; ++r) {
    for (index_t c = 0; c < m; ++c) {
      sub(r, c) = g(sorted[r], sorted[c]);
    }
  }
  return sub;
}

double interlacing_violation(const std::vector<double>& lam,
                             const std::vector<double>& mu, double tol) {
  const auto n = static_cast<index_t>(lam.size());
  const auto m = static_cast<index_t>(mu.size());
  AJAC_CHECK(m <= n);
  AJAC_CHECK(std::is_sorted(lam.begin(), lam.end()));
  AJAC_CHECK(std::is_sorted(mu.begin(), mu.end()));
  double violation = -1e300;
  for (index_t i = 0; i < m; ++i) {
    violation = std::max(violation, (lam[i] - mu[i]) - tol);
    violation = std::max(violation, (mu[i] - lam[i + n - m]) - tol);
  }
  return violation;
}

DelayedReduction reduce_delayed_system(const CsrMatrix& a, const Vector& b,
                                       const Vector& x,
                                       const std::vector<index_t>& delayed) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x.size() == static_cast<std::size_t>(n));

  DelayedReduction out;
  out.active = complement_rows(n, delayed);
  const auto m = static_cast<index_t>(out.active.size());
  std::vector<char> is_active(static_cast<std::size_t>(n), 0);
  for (index_t i : out.active) is_active[i] = 1;

  const Vector diag = a.diagonal();
  out.g_tilde = DenseMatrix(m, m);
  out.f.assign(static_cast<std::size_t>(m), 0.0);

  // Map global -> active index.
  std::vector<index_t> active_pos(static_cast<std::size_t>(n), index_t{-1});
  for (index_t k = 0; k < m; ++k) active_pos[out.active[k]] = k;

  for (index_t k = 0; k < m; ++k) {
    const index_t i = out.active[k];
    AJAC_CHECK(diag[i] != 0.0);
    const double inv = 1.0 / diag[i];
    // y_i update: y_i + (b_i - sum_j a_ij x_j)/a_ii, with delayed x_j
    // frozen: G~ carries the active couplings, f the rest.
    double f_i = b[i] * inv;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const index_t j = cols[p];
      if (j == i) continue;
      if (is_active[j]) {
        out.g_tilde(k, active_pos[j]) -= vals[p] * inv;
      } else {
        f_i -= vals[p] * inv * x[j];  // frozen contribution (x1 g of Eq. 14)
      }
    }
    out.f[k] = f_i;
  }
  return out;
}

std::vector<index_t> decoupled_block_sizes(const CsrMatrix& a,
                                           const ActiveSet& active) {
  std::vector<index_t> keep = active.indices();
  std::sort(keep.begin(), keep.end());
  const CsrMatrix sub = principal_submatrix(a, keep);
  index_t num_components = 0;
  const std::vector<index_t> comp = connected_components(sub, &num_components);
  std::vector<index_t> sizes(static_cast<std::size_t>(num_components), 0);
  for (index_t c : comp) ++sizes[c];
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

}  // namespace ajac::model
