#include "ajac/model/mask.hpp"

#include <algorithm>

#include "ajac/util/check.hpp"

namespace ajac::model {

ActiveSet::ActiveSet(index_t n) : n_(n), mask_(static_cast<std::size_t>(n), 0) {
  AJAC_CHECK(n >= 0);
}

ActiveSet ActiveSet::all(index_t n) {
  ActiveSet s(n);
  s.indices_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    s.mask_[i] = 1;
    s.indices_.push_back(i);
  }
  return s;
}

ActiveSet ActiveSet::from_indices(index_t n, std::vector<index_t> indices) {
  ActiveSet s(n);
  std::sort(indices.begin(), indices.end());
  for (index_t i : indices) s.insert(i);
  return s;
}

void ActiveSet::clear() {
  for (index_t i : indices_) mask_[i] = 0;
  indices_.clear();
}

void ActiveSet::insert(index_t row) {
  AJAC_CHECK(row >= 0 && row < n_);
  if (mask_[row]) return;
  mask_[row] = 1;
  indices_.push_back(row);
}

std::vector<index_t> ActiveSet::complement() const {
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(n_) - indices_.size());
  for (index_t i = 0; i < n_; ++i) {
    if (!mask_[i]) out.push_back(i);
  }
  return out;
}

}  // namespace ajac::model
