#include "ajac/model/bounds.hpp"

#include <cmath>

#include "ajac/eig/power.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/propagation.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::model {

ChazanMirankerCertificate chazan_miranker(const CsrMatrix& a) {
  ChazanMirankerCertificate cert;
  eig::PowerOptions opts;
  opts.max_iterations = 20000;
  opts.tolerance = 1e-9;
  const auto r = eig::power_method(eig::make_abs_jacobi_operator(a), opts);
  cert.rho_abs_g = r.magnitude;
  cert.converged = r.converged;
  cert.async_convergent_for_all_schedules = r.converged && r.magnitude < 1.0;
  return cert;
}

TransientGrowth sample_transient_growth(const CsrMatrix& a, index_t steps,
                                        index_t samples, double activity,
                                        std::uint64_t seed) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  AJAC_CHECK(steps >= 1 && samples >= 1);
  AJAC_CHECK(activity > 0.0 && activity <= 1.0);
  const index_t n = a.num_rows();

  TransientGrowth out;
  double log_final_sum = 0.0;
  Rng rng(seed);
  for (index_t s = 0; s < samples; ++s) {
    DenseMatrix product = DenseMatrix::identity(n);
    for (index_t k = 0; k < steps; ++k) {
      std::vector<index_t> active;
      for (index_t i = 0; i < n; ++i) {
        if (rng.uniform() < activity) active.push_back(i);
      }
      const DenseMatrix g = error_propagation_dense(
          a, ActiveSet::from_indices(n, std::move(active)));
      product = g.multiply(product);
      out.max_product_norm_inf =
          std::max(out.max_product_norm_inf, product.norm_inf());
    }
    log_final_sum += std::log(std::max(product.norm_inf(), 1e-300));
  }
  out.final_product_norm_inf =
      std::exp(log_final_sum / static_cast<double>(samples));
  return out;
}

double empirical_contraction(const std::vector<HistoryPoint>& history,
                             double tail_fraction) {
  AJAC_CHECK(tail_fraction > 0.0 && tail_fraction <= 1.0);
  if (history.size() < 2) return 1.0;
  const auto start = static_cast<std::size_t>(
      static_cast<double>(history.size() - 1) * (1.0 - tail_fraction));
  const std::size_t last = history.size() - 1;
  if (start >= last) return 1.0;
  const double r_start = std::max(history[start].rel_residual_1, 1e-300);
  const double r_end = std::max(history[last].rel_residual_1, 1e-300);
  const double steps =
      static_cast<double>(history[last].step - history[start].step);
  if (steps <= 0.0) return 1.0;
  return std::exp((std::log(r_end) - std::log(r_start)) / steps);
}

}  // namespace ajac::model
