#include "ajac/model/schedule.hpp"

#include <algorithm>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac::model {

SynchronousSchedule::SynchronousSchedule(index_t n, index_t period)
    : n_(n), period_(period) {
  AJAC_CHECK(period >= 1);
}

void SynchronousSchedule::active_rows(index_t step, ActiveSet& out) {
  out.clear();
  if (step % period_ == 0) {
    for (index_t i = 0; i < n_; ++i) out.insert(i);
  }
}

DelayedRowsSchedule::DelayedRowsSchedule(
    index_t n, std::vector<std::pair<index_t, index_t>> delayed)
    : delay_(static_cast<std::size_t>(n), 1) {
  for (const auto& [row, d] : delayed) {
    AJAC_CHECK(row >= 0 && row < n);
    AJAC_CHECK_MSG(d >= 0, "delay must be >= 0 (0 = never relaxes)");
    delay_[row] = d;
  }
}

void DelayedRowsSchedule::active_rows(index_t step, ActiveSet& out) {
  out.clear();
  const index_t n = static_cast<index_t>(delay_.size());
  for (index_t i = 0; i < n; ++i) {
    const index_t d = delay_[i];
    if (d == 0) continue;           // permanently delayed
    if (step % d == 0) out.insert(i);
  }
}

RandomSubsetSchedule::RandomSubsetSchedule(index_t n, double probability,
                                           std::uint64_t seed)
    : n_(n), probability_(probability), rng_(seed) {
  AJAC_CHECK(probability >= 0.0 && probability <= 1.0);
}

void RandomSubsetSchedule::active_rows(index_t /*step*/, ActiveSet& out) {
  out.clear();
  for (index_t i = 0; i < n_; ++i) {
    if (rng_.uniform() < probability_) out.insert(i);
  }
}

SequentialSchedule::SequentialSchedule(index_t n) : n_(n) {
  AJAC_CHECK(n >= 1);
}

void SequentialSchedule::active_rows(index_t step, ActiveSet& out) {
  out.clear();
  out.insert(step % n_);
}

MulticolorSchedule::MulticolorSchedule(std::vector<index_t> colors,
                                       index_t num_colors)
    : num_colors_(num_colors), n_(static_cast<index_t>(colors.size())) {
  AJAC_CHECK(num_colors >= 1);
  rows_by_color_.resize(static_cast<std::size_t>(num_colors));
  for (index_t i = 0; i < n_; ++i) {
    const index_t c = colors[i];
    AJAC_CHECK_MSG(c >= 0 && c < num_colors, "color out of range");
    rows_by_color_[c].push_back(i);
  }
}

void MulticolorSchedule::active_rows(index_t step, ActiveSet& out) {
  out.clear();
  for (index_t i : rows_by_color_[step % num_colors_]) out.insert(i);
}

BlockSequentialSchedule::BlockSequentialSchedule(index_t n, index_t block_size)
    : n_(n),
      block_size_(block_size),
      num_blocks_((n + block_size - 1) / block_size) {
  AJAC_CHECK(n >= 1);
  AJAC_CHECK(block_size >= 1);
}

void BlockSequentialSchedule::active_rows(index_t step, ActiveSet& out) {
  out.clear();
  const index_t blk = step % num_blocks_;
  const index_t lo = blk * block_size_;
  const index_t hi = std::min(n_, lo + block_size_);
  for (index_t i = lo; i < hi; ++i) out.insert(i);
}

ReplaySchedule::ReplaySchedule(index_t n,
                               std::vector<std::vector<index_t>> steps)
    : n_(n), steps_(std::move(steps)) {}

void ReplaySchedule::active_rows(index_t step, ActiveSet& out) {
  out.clear();
  if (step < 0 || step >= num_steps()) return;
  for (index_t i : steps_[step]) out.insert(i);
}

std::vector<index_t> greedy_coloring(const CsrMatrix& a, index_t* num_colors) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  std::vector<index_t> color(static_cast<std::size_t>(n), index_t{-1});
  index_t max_color = -1;
  std::vector<char> used;
  for (index_t i = 0; i < n; ++i) {
    used.assign(static_cast<std::size_t>(max_color) + 2, 0);
    for (index_t j : a.row_cols(i)) {
      if (j != i && color[j] >= 0) used[color[j]] = 1;
    }
    index_t c = 0;
    while (c < static_cast<index_t>(used.size()) && used[c]) ++c;
    color[i] = c;
    max_color = std::max(max_color, c);
  }
  if (num_colors != nullptr) *num_colors = max_color + 1;
  return color;
}

}  // namespace ajac::model
