#pragma once
// Propagation matrices (the paper's central construct, Sec. IV-A).
//
// One masked relaxation step is
//     x(k+1) = (I - D̂(k) D^{-1} A) x(k) + D̂(k) D^{-1} b
// with the paper's unit-diagonal convention D = I this is exactly
//     x(k+1) = Ĝ(k) x(k) + D̂(k) b,     Ĝ(k) = I - D̂(k) A,
// and the residual evolves as r(k+1) = Ĥ(k) r(k), Ĥ(k) = I - A D̂(k).
//
// apply_step() performs the masked sweep matrix-free; the *_dense builders
// materialize Ĝ(k)/Ĥ(k) for the theory layer and the tests.

#include <span>

#include "ajac/model/mask.hpp"
#include "ajac/sparse/dense.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::model {

/// x_out = Ĝ x_in + D̂ D^{-1} b. Inactive rows copy through. x_in and
/// x_out must not alias (all active rows read the pre-step state — this is
/// the "additive within a step" semantics of the propagation matrix).
void apply_step(const CsrMatrix& a, std::span<const double> inv_diag,
                std::span<const double> b, const ActiveSet& active,
                std::span<const double> x_in, std::span<double> x_out);

/// In-place convenience used by executors; internally double-buffers only
/// the active entries.
void apply_step_inplace(const CsrMatrix& a, std::span<const double> inv_diag,
                        std::span<const double> b, const ActiveSet& active,
                        std::span<double> x,
                        std::span<double> scratch /* size >= count */);

/// Ĝ(k) = I - D̂ D^{-1} A as a dense matrix: active rows are rows of the
/// Jacobi iteration matrix G, delayed rows are unit basis rows.
[[nodiscard]] DenseMatrix error_propagation_dense(const CsrMatrix& a,
                                                  const ActiveSet& active);

/// Ĥ(k) = I - A D^{-1} D̂: active columns are columns of I - A D^{-1},
/// delayed columns are unit basis columns.
[[nodiscard]] DenseMatrix residual_propagation_dense(const CsrMatrix& a,
                                                     const ActiveSet& active);

/// The full Jacobi iteration matrix G = I - D^{-1} A (dense), i.e. the
/// propagation matrix of the all-active mask.
[[nodiscard]] DenseMatrix iteration_matrix_dense(const CsrMatrix& a);

}  // namespace ajac::model
