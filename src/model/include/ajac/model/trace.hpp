#pragma once
// Relaxation traces and the "propagated relaxations" analysis (Sec. IV-A,
// Figs. 1 and 2).
//
// A trace records, for every relaxation an asynchronous execution actually
// performed, which *version* of each other row it read (the mapping
// s_ij(k) of Eq. 5; version 0 is the initial value, version v is the value
// written by row j's v-th relaxation). The analysis reorders the trace
// into parallel steps Φ(1), Φ(2), ... such that every relaxation in a step
// reads exactly the pre-step state; each such step is the application of
// one propagation matrix. Relaxations that can be scheduled this way are
// "propagated"; relaxations that are forced to read stale versions cannot
// be expressed by any propagation matrix and are not (Fig. 1(b)).

#include <string>
#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac::model {

struct RelaxationRead {
  index_t source_row = 0;  ///< row whose value was read
  index_t version = 0;     ///< relaxation count of source_row at read time
};

struct RelaxationEvent {
  index_t row = 0;
  std::vector<RelaxationRead> reads;
};

/// An asynchronous execution history. Events of the same row must appear
/// in their execution order; cross-row interleaving carries no meaning
/// (the analysis derives ordering from the read versions alone).
class RelaxationTrace {
 public:
  explicit RelaxationTrace(index_t num_rows);

  void add_event(RelaxationEvent event);

  [[nodiscard]] index_t num_rows() const noexcept { return n_; }
  [[nodiscard]] const std::vector<RelaxationEvent>& events() const noexcept {
    return events_;
  }

 private:
  index_t n_;
  std::vector<RelaxationEvent> events_;
};

struct AnalysisStep {
  std::vector<index_t> rows;  ///< rows relaxed in this parallel step
  bool propagated = false;    ///< true: expressible as one propagation matrix
};

struct PropagationAnalysis {
  index_t total_relaxations = 0;
  index_t propagated_relaxations = 0;
  index_t parallel_steps = 0;
  /// Events whose read versions were never produced (truncated trace).
  index_t orphaned = 0;
  double fraction = 0.0;  ///< propagated / total (the y-axis of Fig. 2)
  std::vector<AnalysisStep> steps;
};

/// Greedy reconstruction of Φ(l) per Sec. IV-A:
///   condition 1 — a relaxation is schedulable once every version it read
///     has been produced;
///   condition 2 — a row whose *current* version is still needed by some
///     other row's next relaxation is held back (unless that reader can
///     relax in the same parallel step), so the reader is not forced onto
///     stale data.
/// When no schedulable-and-held-back-free set exists, progress is forced
/// and the affected reads become stale: those relaxations count as
/// non-propagated, exactly like the p3 relaxation in the paper's
/// Fig. 1(b) example.
[[nodiscard]] PropagationAnalysis analyze_trace(const RelaxationTrace& trace);

/// The paper's Fig. 1 example traces, for tests and the model example:
/// (a) is fully propagatable (4/4), (b) is not (3/4).
[[nodiscard]] RelaxationTrace figure1a_trace();
[[nodiscard]] RelaxationTrace figure1b_trace();

/// Serialize a trace as compact JSON, one event per line:
///   {"num_rows": N,
///    "events": [
///     {"row": i, "reads": [[j, version], ...]},
///     ...]}
/// The format is the golden-file interchange for regression tests and for
/// replaying recorded (possibly faulty) executions offline.
[[nodiscard]] std::string to_json(const RelaxationTrace& trace);

/// Parse the to_json format (strict: field order as written, arbitrary
/// whitespace). Throws std::logic_error on malformed input.
[[nodiscard]] RelaxationTrace trace_from_json(const std::string& json);

}  // namespace ajac::model
