#pragma once
// The active set Ψ(k): which rows relax at model step k (Sec. IV-A). The
// diagonal 0/1 matrix D̂(k) of the paper is represented as this set.

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac::model {

class ActiveSet {
 public:
  /// Empty active set over n rows.
  explicit ActiveSet(index_t n);

  static ActiveSet all(index_t n);
  static ActiveSet from_indices(index_t n, std::vector<index_t> indices);

  void clear();
  void insert(index_t row);
  [[nodiscard]] bool contains(index_t row) const { return mask_[row] != 0; }

  [[nodiscard]] index_t size() const noexcept { return n_; }
  [[nodiscard]] index_t count() const noexcept {
    return static_cast<index_t>(indices_.size());
  }
  [[nodiscard]] const std::vector<index_t>& indices() const noexcept {
    return indices_;
  }

  /// Rows NOT in the set, ascending (the "delayed" rows).
  [[nodiscard]] std::vector<index_t> complement() const;

 private:
  index_t n_;
  std::vector<char> mask_;
  std::vector<index_t> indices_;
};

}  // namespace ajac::model
