#pragma once
// Computable convergence certificates and diagnostics around the paper's
// theory.
//
//  * Chazan–Miranker (Sec. III): rho(|G|) < 1 guarantees the asynchronous
//    iteration converges for EVERY admissible schedule. We compute the
//    certificate with the power method on |G| (nonnegative => Perron).
//  * Transient growth (Sec. IV-D): even when every factor has norm <= 1,
//    products of propagation matrices govern the transient; we sample
//    random mask sequences and track the product's infinity norm. Under
//    W.D.D. it can never exceed 1 (Theorem 1); without W.D.D. it can grow
//    before shrinking — or grow forever.
//  * Empirical contraction: the realized per-step residual factor of a
//    finished run, i.e. the "effective spectral radius" of the schedule
//    that actually happened.

#include "ajac/model/schedule.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::model {
struct HistoryPoint;

struct ChazanMirankerCertificate {
  double rho_abs_g = 0.0;  ///< spectral radius of |G|
  bool async_convergent_for_all_schedules = false;  ///< rho(|G|) < 1
  bool converged = false;  ///< power iteration converged
};

/// Evaluate the Chazan–Miranker condition for A (any nonzero diagonal).
[[nodiscard]] ChazanMirankerCertificate chazan_miranker(const CsrMatrix& a);

struct TransientGrowth {
  double max_product_norm_inf = 0.0;  ///< max over steps & samples
  double final_product_norm_inf = 0.0;  ///< geometric mean over samples
};

/// Sample `samples` random mask sequences (each row active independently
/// with probability `activity`) of length `steps`, form the dense products
/// Ghat(k)...Ghat(1), and record the largest infinity norm seen along the
/// way. Intended for model-scale n (dense O(n^2) per step).
[[nodiscard]] TransientGrowth sample_transient_growth(const CsrMatrix& a,
                                                      index_t steps,
                                                      index_t samples,
                                                      double activity,
                                                      std::uint64_t seed = 1);

/// Realized per-step contraction factor of a residual history: the
/// geometric mean of successive rel-residual ratios over the last
/// `tail_fraction` of the history (ignoring the fast transient). Values
/// < 1 mean the realized schedule contracts; > 1 means it diverges.
[[nodiscard]] double empirical_contraction(
    const std::vector<HistoryPoint>& history, double tail_fraction = 0.5);

}  // namespace ajac::model
