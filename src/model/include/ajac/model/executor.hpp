#pragma once
// The model executor: runs a relaxation schedule on a linear system and
// records the convergence history in model time. This is the "sequential
// computer implementation" of the paper's model (Sec. VII-B) that the
// shared-memory experiments are validated against.

#include <memory>
#include <optional>
#include <vector>

#include "ajac/model/schedule.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::model {

struct ExecutorOptions {
  /// Stop when ||r||_1 / ||r0||_1 <= tolerance (the paper reports relative
  /// residual 1-norms). Set to 0 to disable.
  double tolerance = 1e-3;
  /// Hard cap on model steps.
  index_t max_steps = 100000;
  /// Record the residual norms every `record_every` steps (1 = each step).
  index_t record_every = 1;
  /// Damping factor: active rows update x += omega * D^{-1} r. omega = 1
  /// is the paper's (undamped) Jacobi relaxation.
  double omega = 1.0;
  /// If set, also record error norms against this exact solution.
  std::optional<Vector> exact_solution;
};

struct HistoryPoint {
  index_t step = 0;            ///< model time k
  index_t relaxations = 0;     ///< cumulative single-row relaxations
  double rel_residual_1 = 0.0;
  double rel_residual_2 = 0.0;
  double rel_residual_inf = 0.0;
  double error_inf = -1.0;     ///< -1 when no exact solution was given
};

struct ModelResult {
  std::vector<HistoryPoint> history;
  Vector x;                    ///< final iterate
  index_t steps = 0;           ///< model steps executed
  index_t relaxations = 0;     ///< total single-row relaxations
  bool converged = false;
  double final_rel_residual_1 = 0.0;
};

/// Run `schedule` on A x = b from x0 until tolerance or max_steps.
/// A may have any nonzero diagonal (the masked sweep uses D^{-1}).
[[nodiscard]] ModelResult run_model(const CsrMatrix& a, const Vector& b,
                                    const Vector& x0,
                                    RelaxationSchedule& schedule,
                                    const ExecutorOptions& opts = {});

/// Convenience: synchronous Jacobi in the model (all rows, every step).
[[nodiscard]] ModelResult run_synchronous(const CsrMatrix& a, const Vector& b,
                                          const Vector& x0,
                                          const ExecutorOptions& opts = {});

struct TraceReplay {
  PropagationAnalysis analysis;
  ModelResult result;
};

/// Replay a recorded execution through the propagation-matrix model: the
/// trace is reordered into parallel steps Φ(1..L) (analyze_trace) and the
/// steps run as a ReplaySchedule, ignoring opts.max_steps (the trace fixes
/// the step count).
///
/// For a fully propagated trace (fraction == 1, orphaned == 0) of an
/// undamped Jacobi execution, the replayed iterate reproduces the recorded
/// execution bitwise: runtime and model both compute
/// x_i += d_i^{-1} (b_i - Σ a_ij x_j) with identical operand values in
/// identical order, and the build disables FP contraction. Stale
/// relaxations (fraction < 1) make the model read *newer* values than the
/// execution did, and bit-flip faults change the operative matrix itself —
/// in both cases the replay documents the divergence rather than bounding
/// the execution (see DESIGN.md, "Fault model").
[[nodiscard]] TraceReplay replay_trace(const CsrMatrix& a, const Vector& b,
                                       const Vector& x0,
                                       const RelaxationTrace& trace,
                                       const ExecutorOptions& opts = {});

}  // namespace ajac::model
