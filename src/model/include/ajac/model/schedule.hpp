#pragma once
// Relaxation schedules: which rows are active at each model step. These
// generate the Ψ(k) sequences of Sec. IV and the delay experiments of
// Sec. VII-B ("row i only relaxes at multiples of δ, while all other rows
// relax at every time step").

#include <memory>
#include <vector>

#include "ajac/model/mask.hpp"
#include "ajac/sparse/types.hpp"
#include "ajac/util/rng.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::model {

class RelaxationSchedule {
 public:
  virtual ~RelaxationSchedule() = default;

  /// Fill `out` with the active set for model step `step` (0-based).
  virtual void active_rows(index_t step, ActiveSet& out) = 0;
};

/// Synchronous Jacobi: all rows relax every step. With `period` > 1, all
/// rows relax only at steps that are multiples of `period` — the paper's
/// model of synchronous Jacobi waiting for a delayed process at a barrier.
class SynchronousSchedule final : public RelaxationSchedule {
 public:
  explicit SynchronousSchedule(index_t n, index_t period = 1);
  void active_rows(index_t step, ActiveSet& out) override;

 private:
  index_t n_;
  index_t period_;
};

/// Asynchronous Jacobi with per-row delays: row i relaxes at steps that
/// are multiples of delay[i] (delay 1 = every step). This is the paper's
/// model of one (or more) slow processes: the delayed row relaxes at
/// multiples of δ while everyone else keeps iterating.
class DelayedRowsSchedule final : public RelaxationSchedule {
 public:
  /// All rows have delay 1 except those listed in `delayed`.
  DelayedRowsSchedule(index_t n,
                      std::vector<std::pair<index_t, index_t>> delayed);
  void active_rows(index_t step, ActiveSet& out) override;

 private:
  std::vector<index_t> delay_;  // per row, >= 1; 0 = never relaxes
};

/// Each row relaxes independently with probability p per step — a simple
/// stochastic stand-in for unpredictable thread progress.
class RandomSubsetSchedule final : public RelaxationSchedule {
 public:
  RandomSubsetSchedule(index_t n, double probability, std::uint64_t seed);
  void active_rows(index_t step, ActiveSet& out) override;

 private:
  index_t n_;
  double probability_;
  Rng rng_;
};

/// One row per step, in ascending order: step k relaxes row k mod n.
/// A full pass is exactly Gauss–Seidel with natural ordering (Sec. IV-B).
class SequentialSchedule final : public RelaxationSchedule {
 public:
  explicit SequentialSchedule(index_t n);
  void active_rows(index_t step, ActiveSet& out) override;

 private:
  index_t n_;
};

/// Multicolor schedule: step k relaxes every row of color k mod #colors.
/// With a valid coloring (no two adjacent rows share a color) this is
/// multicolor Gauss–Seidel (Sec. IV-B, Eq. 10).
class MulticolorSchedule final : public RelaxationSchedule {
 public:
  /// `colors[i]` in [0, num_colors).
  MulticolorSchedule(std::vector<index_t> colors, index_t num_colors);
  void active_rows(index_t step, ActiveSet& out) override;

  [[nodiscard]] index_t num_colors() const noexcept { return num_colors_; }

 private:
  std::vector<std::vector<index_t>> rows_by_color_;
  index_t num_colors_;
  index_t n_;
};

/// One contiguous block of rows per step, cycling block by block — the
/// "inexact multiplicative block relaxation" view of Sec. IV-B with
/// uniform blocks. Block size n is synchronous Jacobi; block size 1 is
/// Gauss–Seidel; in between interpolates the multiplicative character
/// that asynchronous snapshots realize.
class BlockSequentialSchedule final : public RelaxationSchedule {
 public:
  BlockSequentialSchedule(index_t n, index_t block_size);
  void active_rows(index_t step, ActiveSet& out) override;

  [[nodiscard]] index_t num_blocks() const noexcept { return num_blocks_; }

 private:
  index_t n_;
  index_t block_size_;
  index_t num_blocks_;
};

/// Replays an explicit list of active sets (e.g. reconstructed from a
/// shared-memory trace via the Φ(l) analysis).
class ReplaySchedule final : public RelaxationSchedule {
 public:
  ReplaySchedule(index_t n, std::vector<std::vector<index_t>> steps);
  void active_rows(index_t step, ActiveSet& out) override;

  [[nodiscard]] index_t num_steps() const noexcept {
    return static_cast<index_t>(steps_.size());
  }

 private:
  index_t n_;
  std::vector<std::vector<index_t>> steps_;
};

/// Greedy graph coloring of the pattern of A (symmetric pattern assumed).
/// Returns per-row colors and writes the color count to `num_colors`.
[[nodiscard]] std::vector<index_t> greedy_coloring(const CsrMatrix& a,
                                                   index_t* num_colors);

}  // namespace ajac::model
