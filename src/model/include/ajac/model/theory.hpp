#pragma once
// The paper's theory, made executable (Sec. IV-C, IV-D):
//
//  * Theorem 1: for W.D.D. A with at least one delayed row,
//      ||Ĝ(k)||_inf = rho(Ĝ(k)) = 1  and  ||Ĥ(k)||_1 = rho(Ĥ(k)) = 1,
//    with unit-basis eigenvectors of Ĥ(k) and a null(Y)-based unit
//    eigenvector of Ĝ(k) (Ĝ = I + Y).
//  * The delayed-rows reduction: permuting delayed rows first exposes the
//    block form [[I, O], [g, G̃]]; the active principal submatrix G̃
//    interlaces the spectrum of G (Cauchy), and removing rows can decouple
//    G̃ into diagonal blocks with even smaller spectral radii, which is why
//    more concurrency helps (Sec. IV-D).

#include <vector>

#include "ajac/model/mask.hpp"
#include "ajac/sparse/dense.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::model {

struct Theorem1Check {
  double g_norm_inf = 0.0;   ///< ||Ĝ(k)||_inf, expected 1 under W.D.D.
  double h_norm_1 = 0.0;     ///< ||Ĥ(k)||_1, expected 1 under W.D.D.
  /// max_i ||Ĥ ξ_i - ξ_i||_inf over delayed rows i: each delayed unit
  /// basis vector must be an exact eigenvector of Ĥ with eigenvalue 1.
  double h_unit_eigvec_residual = 0.0;
  /// ||Ĝ v - v||_inf / ||v||_inf for the constructed v in null(Y): an
  /// eigenvector of Ĝ with eigenvalue 1.
  double g_unit_eigvec_residual = 0.0;
  bool has_delayed_row = false;
};

/// Evaluate all quantities of Theorem 1 on the dense propagation matrices
/// for the given active set. A must be square; intended for model-scale n.
[[nodiscard]] Theorem1Check check_theorem1(const CsrMatrix& a,
                                           const ActiveSet& active);

/// The active-rows principal submatrix G̃ of the Jacobi iteration matrix
/// (the paper's Eq. 16 block): rows/columns of G restricted to active
/// indices. For unit-diagonal symmetric A this matrix is symmetric.
[[nodiscard]] DenseMatrix active_submatrix_dense(const CsrMatrix& a,
                                                 const ActiveSet& active);

/// Verify Cauchy interlacing: given the ascending eigenvalues `lam` of an
/// n x n symmetric matrix and the ascending eigenvalues `mu` of an m x m
/// principal submatrix, checks lam[i] <= mu[i] <= lam[i + n - m] for all
/// i (0-based), within `tol`. Returns the largest violation (<= 0 means
/// the interlacing holds).
[[nodiscard]] double interlacing_violation(const std::vector<double>& lam,
                                           const std::vector<double>& mu,
                                           double tol = 0.0);

/// Sizes of the decoupled diagonal blocks of the active submatrix: the
/// connected components of A's pattern restricted to active rows
/// (Sec. IV-D: removing delayed rows can decouple the graph, and the
/// blocks' spectral radii interlace below rho(G̃)).
[[nodiscard]] std::vector<index_t> decoupled_block_sizes(
    const CsrMatrix& a, const ActiveSet& active);

/// Solve Y v = 0 for a nontrivial v where Y = Ĝ - I (Y has a zero row for
/// every delayed row, hence nullity >= 1). Gaussian elimination with
/// partial pivoting; returns a unit-inf-norm null vector.
[[nodiscard]] Vector null_vector(const DenseMatrix& y);

/// The paper's Eqs. 12-16: when a set of rows is permanently delayed, the
/// iteration of the ACTIVE rows reduces to
///     y(k+1) = G~ y(k) + f,     f = c + (contribution of the frozen x),
/// where G~ is the active principal submatrix of G and f folds the frozen
/// components into the right-hand side. Iterating this reduced system is
/// exactly the delayed model run restricted to the active indices.
struct DelayedReduction {
  std::vector<index_t> active;  ///< ascending active (not delayed) indices
  DenseMatrix g_tilde;          ///< active principal submatrix of G
  Vector f;                     ///< reduced constant term
};

/// Build the Eq. 14/16 reduction for `delayed` rows frozen at their values
/// in `x` (the iterate at the moment the delay begins). A must have a
/// nonzero diagonal.
[[nodiscard]] DelayedReduction reduce_delayed_system(
    const CsrMatrix& a, const Vector& b, const Vector& x,
    const std::vector<index_t>& delayed);

}  // namespace ajac::model
