#include "ajac/model/executor.hpp"

#include <cmath>

#include "ajac/model/propagation.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"

namespace ajac::model {

ModelResult run_model(const CsrMatrix& a, const Vector& b, const Vector& x0,
                      RelaxationSchedule& schedule,
                      const ExecutorOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(opts.max_steps >= 0);
  AJAC_CHECK(opts.record_every >= 1);
  if (opts.exact_solution) {
    AJAC_CHECK(opts.exact_solution->size() == static_cast<std::size_t>(n));
  }

  AJAC_CHECK(opts.omega > 0.0);
  Vector inv_diag = a.diagonal();
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(inv_diag[i] != 0.0, "zero diagonal at row " << i);
    inv_diag[i] = opts.omega / inv_diag[i];
  }

  ModelResult result;
  result.x = x0;
  Vector r(static_cast<std::size_t>(n));
  Vector scratch(static_cast<std::size_t>(n));
  a.residual(result.x, b, r);
  const double r0_1 = vec::norm1(r);
  const double r0_2 = vec::norm2(r);
  const double r0_inf = vec::norm_inf(r);
  const double denom_1 = r0_1 > 0.0 ? r0_1 : 1.0;
  const double denom_2 = r0_2 > 0.0 ? r0_2 : 1.0;
  const double denom_inf = r0_inf > 0.0 ? r0_inf : 1.0;

  auto record = [&](index_t step) {
    HistoryPoint pt;
    pt.step = step;
    pt.relaxations = result.relaxations;
    pt.rel_residual_1 = vec::norm1(r) / denom_1;
    pt.rel_residual_2 = vec::norm2(r) / denom_2;
    pt.rel_residual_inf = vec::norm_inf(r) / denom_inf;
    if (opts.exact_solution) {
      pt.error_inf = vec::max_abs_diff(result.x, *opts.exact_solution);
    }
    result.history.push_back(pt);
    return pt.rel_residual_1;
  };
  record(0);

  ActiveSet active(n);
  for (index_t k = 0; k < opts.max_steps; ++k) {
    schedule.active_rows(k, active);
    if (active.count() > 0) {
      apply_step_inplace(a, inv_diag, b, active, result.x, scratch);
      result.relaxations += active.count();
      a.residual(result.x, b, r);
    }
    result.steps = k + 1;
    double rel = -1.0;
    if ((k + 1) % opts.record_every == 0) {
      rel = record(k + 1);
    } else {
      rel = vec::norm1(r) / denom_1;
    }
    if (opts.tolerance > 0.0 && rel <= opts.tolerance) {
      if ((k + 1) % opts.record_every != 0) record(k + 1);
      result.converged = true;
      break;
    }
  }
  result.final_rel_residual_1 = vec::norm1(r) / denom_1;
  return result;
}

ModelResult run_synchronous(const CsrMatrix& a, const Vector& b,
                            const Vector& x0, const ExecutorOptions& opts) {
  SynchronousSchedule schedule(a.num_rows());
  return run_model(a, b, x0, schedule, opts);
}

TraceReplay replay_trace(const CsrMatrix& a, const Vector& b,
                         const Vector& x0, const RelaxationTrace& trace,
                         const ExecutorOptions& opts) {
  AJAC_CHECK(trace.num_rows() == a.num_rows());
  TraceReplay out;
  out.analysis = analyze_trace(trace);
  std::vector<std::vector<index_t>> steps;
  steps.reserve(out.analysis.steps.size());
  for (const AnalysisStep& s : out.analysis.steps) steps.push_back(s.rows);
  ReplaySchedule schedule(a.num_rows(), std::move(steps));
  ExecutorOptions replay_opts = opts;
  replay_opts.max_steps = out.analysis.parallel_steps;
  out.result = run_model(a, b, x0, schedule, replay_opts);
  return out;
}

}  // namespace ajac::model
