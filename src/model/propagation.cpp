#include "ajac/model/propagation.hpp"

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac::model {

void apply_step(const CsrMatrix& a, std::span<const double> inv_diag,
                std::span<const double> b, const ActiveSet& active,
                std::span<const double> x_in, std::span<double> x_out) {
  [[maybe_unused]] const index_t n = a.num_rows();
  AJAC_DCHECK(active.size() == n);
  AJAC_DCHECK(x_in.data() != x_out.data());
  AJAC_DCHECK(x_in.size() == static_cast<std::size_t>(n));
  AJAC_DCHECK(x_out.size() == static_cast<std::size_t>(n));
  std::copy(x_in.begin(), x_in.end(), x_out.begin());
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (index_t i : active.indices()) {
    double r = b[i];
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      r -= values[p] * x_in[col_idx[p]];
    }
    x_out[i] = x_in[i] + inv_diag[i] * r;
  }
}

void apply_step_inplace(const CsrMatrix& a, std::span<const double> inv_diag,
                        std::span<const double> b, const ActiveSet& active,
                        std::span<double> x, std::span<double> scratch) {
  AJAC_DCHECK(scratch.size() >= static_cast<std::size_t>(active.count()));
  // First compute all updates against the pre-step x, then commit: this
  // preserves the Jacobi (additive) semantics of a single propagation
  // matrix even though x is updated in place.
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  std::size_t k = 0;
  for (index_t i : active.indices()) {
    double r = b[i];
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      r -= values[p] * x[col_idx[p]];
    }
    scratch[k++] = x[i] + inv_diag[i] * r;
  }
  k = 0;
  for (index_t i : active.indices()) {
    x[i] = scratch[k++];
  }
}

DenseMatrix error_propagation_dense(const CsrMatrix& a,
                                    const ActiveSet& active) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(active.size() == n);
  const Vector diag = a.diagonal();
  DenseMatrix g = DenseMatrix::identity(n);
  for (index_t i : active.indices()) {
    AJAC_CHECK(diag[i] != 0.0);
    const double inv = 1.0 / diag[i];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      g(i, cols[p]) -= inv * vals[p];  // diagonal: 1 - a_ii/a_ii = 0
    }
  }
  return g;
}

DenseMatrix residual_propagation_dense(const CsrMatrix& a,
                                       const ActiveSet& active) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(active.size() == n);
  const Vector diag = a.diagonal();
  DenseMatrix h = DenseMatrix::identity(n);
  for (index_t j : active.indices()) {
    AJAC_CHECK(diag[j] != 0.0);
    const double inv = 1.0 / diag[j];
    // Column j of A D^{-1} D̂ is (1/a_jj) * A(:, j); subtract it from I.
    // Walk rows via the transpose-free scan: use symmetry-agnostic access.
    for (index_t i = 0; i < n; ++i) {
      const double aij = a.at(i, j);
      if (aij != 0.0) h(i, j) -= inv * aij;
    }
  }
  return h;
}

DenseMatrix iteration_matrix_dense(const CsrMatrix& a) {
  return error_propagation_dense(a, ActiveSet::all(a.num_rows()));
}

}  // namespace ajac::model
