#pragma once
// Internal fault / metrics hook contexts shared by the single-RHS solver
// (shared_jacobi.cpp) and the batched solver (shared_batch.cpp). Not
// installed: this header lives next to the two translation units that
// include it and is not part of the public ajac/runtime interface.
//
// Each hook pair follows the same pattern: a Null context whose `enabled`
// is false and whose methods are empty (every call site is `if constexpr`
// guarded, so the unfaulted/uninstrumented instantiation compiles to the
// plain solver, branch-free), and an Active context holding thread-local
// state. The batch variants mirror the scalar ones over SharedMultiVector:
// the FaultClock coordinates (seed, thread, iteration, row) are identical,
// so a fault decision on the batch path is ONE decision per row per
// iteration applied to all k lanes — determinism does not depend on k.

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/runtime/blocked_kernels.hpp"
#include "ajac/runtime/shared_multi_vector.hpp"
#include "ajac/runtime/shared_vector.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/sparse/types.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"

namespace ajac::runtime::detail {

/// Fault context for the default (no plan) path. `enabled` is false and
/// every hook site in solve_shared_impl is `if constexpr`-guarded, so this
/// instantiation compiles to exactly the pre-fault solver: the zero-fault
/// path carries no fault branches at all.
struct NullFaults {
  static constexpr bool enabled = false;

  NullFaults(const CsrMatrix& /*a*/, const Vector& /*x0*/,
             const fault::FaultPlan* /*plan*/, index_t /*thread*/,
             index_t /*lo*/, index_t /*hi*/, SharedVector& /*x*/) {}

  void begin_iteration(index_t /*iter*/) {}
  [[nodiscard]] bool consume_state_reset() { return false; }
  bool flip(index_t /*row*/, std::span<const index_t> /*cols*/,
            std::span<const double> /*vals*/, FlippedEntry& /*out*/) {
    return false;
  }
  [[nodiscard]] double read(const SharedVector& x, index_t j) const {
    return x.read(j);
  }
  [[nodiscard]] std::pair<double, index_t> read_versioned(
      const SharedVector& x, index_t j, std::uint64_t* retries) const {
    return x.read_versioned(j, retries);
  }
  [[nodiscard]] fault::FaultLog take_log() { return {}; }
};

/// Per-thread fault injector. All state is thread-local; every decision is
/// a FaultClock hash of (seed, thread, iteration[, row]), so the injected
/// sequence is independent of how the OS interleaves the threads.
class ActiveFaults {
 public:
  static constexpr bool enabled = true;

  ActiveFaults(const CsrMatrix& a, const Vector& x0,
               const fault::FaultPlan* plan, index_t thread, index_t lo,
               index_t hi, SharedVector& x)
      : clock_(plan->seed), x0_(&x0), x_(&x), thread_(thread), lo_(lo),
        hi_(hi) {
    for (const auto& s : plan->stragglers) {
      if (s.actor == thread) straggler_ = &s;
    }
    for (const auto& s : plan->stale_reads) {
      if (s.actor == thread || s.actor == -1) stale_ = &s;
    }
    for (const auto& s : plan->crashes) {
      if (s.actor == thread) crash_ = &s;
    }
    for (const auto& s : plan->bit_flips) {
      if (s.actor == thread || s.actor == -1) flips_.push_back(&s);
    }
    if (stale_ != nullptr) {
      // The off-block columns this thread's rows read — the "ghost layer"
      // a stale window freezes. Own-block reads (including the in-place
      // Gauss-Seidel sweep) always see live values.
      for (index_t i = lo; i < hi; ++i) {
        for (const index_t j : a.row_cols(i)) {
          if (j < lo || j >= hi) ghost_cols_.push_back(j);
        }
      }
      std::sort(ghost_cols_.begin(), ghost_cols_.end());
      ghost_cols_.erase(std::unique(ghost_cols_.begin(), ghost_cols_.end()),
                        ghost_cols_.end());
      ghost_values_.resize(ghost_cols_.size());
      ghost_versions_.assign(ghost_cols_.size(), 0);
    }
  }

  /// Straggler stall, crash-and-recover, and stale-window bookkeeping, in
  /// that order, at the top of local iteration `iter`.
  void begin_iteration(index_t iter) {
    iter_ = iter;
    if (straggler_ != nullptr) {
      const bool on =
          fault::duty_active(straggler_->period, straggler_->duty, iter);
      if (on && !straggler_on_) {
        log_.push_back({fault::FaultKind::kStragglerOn, thread_, iter, 0, 0});
      }
      straggler_on_ = on;
      if (on) {
        spin_wait_us(straggler_->extra_delay_us);
        stalled_us_ += straggler_->extra_delay_us;
      }
    }
    if (crash_ != nullptr && !crashed_ && iter >= crash_->crash_iteration) {
      // A crash in shared memory is a worker that stops participating for
      // dead_seconds and then resumes — optionally from the initial guess
      // on its rows (lost memory). The blocking wait is exactly that: no
      // relaxations, no flag updates, neighbors keep reading its last
      // published values.
      crashed_ = true;
      log_.push_back({fault::FaultKind::kCrash, thread_, iter, 0, 0});
      spin_wait_us(crash_->dead_seconds * 1e6);
      stalled_us_ += crash_->dead_seconds * 1e6;
      if (crash_->reset_state_on_recovery) {
        // This injector belongs to the thread owning rows [lo_, hi_), so
        // the sole-writer role on x holds here by the partition contract.
        x_->writer_role().assert_held();
        for (index_t i = lo_; i < hi_; ++i) x_->write(i, (*x0_)[i]);
        // The write went behind any thread-private mirror of the own rows;
        // the blocked kernel path polls consume_state_reset() and reloads.
        state_reset_ = true;
      }
      log_.push_back({fault::FaultKind::kRecover, thread_, iter, 0, 0});
    }
    if (stale_ != nullptr) {
      const bool on = fault::duty_active(stale_->period, stale_->duty, iter);
      if (on && !stale_on_) {
        log_.push_back({fault::FaultKind::kStaleWindowOn, thread_, iter, 0, 0});
        for (std::size_t k = 0; k < ghost_cols_.size(); ++k) {
          if (x_->traced()) {
            const auto [value, version] = x_->read_versioned(ghost_cols_[k]);
            ghost_values_[k] = value;
            ghost_versions_[k] = version;
          } else {
            ghost_values_[k] = x_->read(ghost_cols_[k]);
          }
        }
      }
      stale_on_ = on;
    }
  }

  /// True exactly once after a crash recovery rewrote this thread's rows of
  /// the shared x from the initial guess (lost memory). Consuming clears it.
  [[nodiscard]] bool consume_state_reset() {
    return std::exchange(state_reset_, false);
  }

  /// Transient bit flip for this (iteration, row): returns true and fills
  /// `out` when one off-diagonal entry should be read corrupted.
  bool flip(index_t row, std::span<const index_t> cols,
            std::span<const double> vals, FlippedEntry& out) {
    for (const fault::BitFlipSpec* s : flips_) {
      if (iter_ < s->first_iteration || iter_ >= s->last_iteration) continue;
      if (!clock_.bernoulli(s->probability, fault::FaultClock::kBitFlipTrigger,
                            static_cast<std::uint64_t>(thread_),
                            static_cast<std::uint64_t>(iter_),
                            static_cast<std::uint64_t>(row))) {
        continue;
      }
      std::size_t off_diag = 0;
      for (const index_t j : cols) off_diag += (j != row) ? 1 : 0;
      if (off_diag == 0) continue;
      const std::uint64_t target =
          clock_.pick(off_diag, fault::FaultClock::kBitFlipEntry,
                      static_cast<std::uint64_t>(thread_),
                      static_cast<std::uint64_t>(iter_),
                      static_cast<std::uint64_t>(row));
      std::uint64_t seen = 0;
      std::size_t entry = 0;
      for (std::size_t p = 0; p < cols.size(); ++p) {
        if (cols[p] == row) continue;
        if (seen++ == target) {
          entry = p;
          break;
        }
      }
      const int bit =
          s->bit >= 0
              ? s->bit
              : static_cast<int>(clock_.pick(
                    52, fault::FaultClock::kBitFlipBit,
                    static_cast<std::uint64_t>(thread_),
                    static_cast<std::uint64_t>(iter_),
                    static_cast<std::uint64_t>(row)));
      out.entry = entry;
      out.value = fault::flip_bit(vals[entry], bit);
      log_.push_back({fault::FaultKind::kBitFlip, thread_, iter_, row,
                      static_cast<index_t>(bit)});
      return true;
    }
    return false;
  }

  /// Reads go through the injector: inside a stale window, off-block
  /// columns come from the frozen snapshot instead of the live vector.
  [[nodiscard]] double read(const SharedVector& x, index_t j) const {
    if (stale_on_ && (j < lo_ || j >= hi_)) {
      return ghost_values_[ghost_slot(j)];
    }
    return x.read(j);
  }

  [[nodiscard]] std::pair<double, index_t> read_versioned(
      const SharedVector& x, index_t j, std::uint64_t* retries) const {
    if (stale_on_ && (j < lo_ || j >= hi_)) {
      const std::size_t k = ghost_slot(j);
      return {ghost_values_[k], ghost_versions_[k]};
    }
    return x.read_versioned(j, retries);
  }

  /// Append-only within the thread; the metrics layer diffs its size to
  /// timestamp this iteration's injections.
  [[nodiscard]] const fault::FaultLog& log() const { return log_; }

  /// Cumulative injected stall (straggler delays + crash dead time), in
  /// microseconds; the metrics layer diffs it per iteration.
  [[nodiscard]] double stalled_us() const { return stalled_us_; }

  [[nodiscard]] fault::FaultLog take_log() { return std::move(log_); }

 private:
  [[nodiscard]] std::size_t ghost_slot(index_t j) const {
    const auto it =
        std::lower_bound(ghost_cols_.begin(), ghost_cols_.end(), j);
    AJAC_DBG_CHECK(it != ghost_cols_.end() && *it == j);
    return static_cast<std::size_t>(it - ghost_cols_.begin());
  }

  fault::FaultClock clock_;
  const Vector* x0_;
  SharedVector* x_;
  index_t thread_;
  index_t lo_;
  index_t hi_;
  index_t iter_ = 0;

  const fault::StragglerSpec* straggler_ = nullptr;
  const fault::StaleReadSpec* stale_ = nullptr;
  const fault::CrashSpec* crash_ = nullptr;
  std::vector<const fault::BitFlipSpec*> flips_;

  bool straggler_on_ = false;
  bool stale_on_ = false;
  bool crashed_ = false;
  bool state_reset_ = false;
  double stalled_us_ = 0.0;

  std::vector<index_t> ghost_cols_;  ///< sorted off-block columns
  std::vector<double> ghost_values_;
  std::vector<index_t> ghost_versions_;

  fault::FaultLog log_;
};

/// Fault context for the batch path without a plan: same no-op shape as
/// NullFaults, over row-wide reads.
struct NullBatchFaults {
  static constexpr bool enabled = false;

  NullBatchFaults(const CsrMatrix& /*a*/, const MultiVector& /*x0*/,
                  const fault::FaultPlan* /*plan*/, index_t /*thread*/,
                  index_t /*lo*/, index_t /*hi*/, SharedMultiVector& /*x*/) {}

  void begin_iteration(index_t /*iter*/) {}
  [[nodiscard]] bool consume_state_reset() { return false; }
  bool flip(index_t /*row*/, std::span<const index_t> /*cols*/,
            std::span<const double> /*vals*/, FlippedEntry& /*out*/) {
    return false;
  }
  void read_row(const SharedMultiVector& x, index_t j,
                std::span<double> out) const {
    x.read_row(j, out);
  }
  [[nodiscard]] fault::FaultLog take_log() { return {}; }
};

/// Per-thread fault injector for the batch path. The decision machinery
/// (straggler duty cycles, crash schedule, stale windows, bit-flip hashes)
/// is ActiveFaults' verbatim — same FaultClock streams, same (thread,
/// iteration, row) coordinates — so a plan injects the same faults at the
/// same logical instants regardless of the batch width; only the payloads
/// widen. A stale window freezes k-wide ghost ROW snapshots, a bit flip
/// corrupts the one shared a_ij (reused by all k lanes), and a
/// crash-with-state-reset rewrites whole rows of the shared x from x0.
class ActiveBatchFaults {
 public:
  static constexpr bool enabled = true;

  ActiveBatchFaults(const CsrMatrix& a, const MultiVector& x0,
                    const fault::FaultPlan* plan, index_t thread, index_t lo,
                    index_t hi, SharedMultiVector& x)
      : clock_(plan->seed), x0_(&x0), x_(&x), thread_(thread), lo_(lo),
        hi_(hi), k_(x.num_cols()) {
    for (const auto& s : plan->stragglers) {
      if (s.actor == thread) straggler_ = &s;
    }
    for (const auto& s : plan->stale_reads) {
      if (s.actor == thread || s.actor == -1) stale_ = &s;
    }
    for (const auto& s : plan->crashes) {
      if (s.actor == thread) crash_ = &s;
    }
    for (const auto& s : plan->bit_flips) {
      if (s.actor == thread || s.actor == -1) flips_.push_back(&s);
    }
    if (stale_ != nullptr) {
      for (index_t i = lo; i < hi; ++i) {
        for (const index_t j : a.row_cols(i)) {
          if (j < lo || j >= hi) ghost_cols_.push_back(j);
        }
      }
      std::sort(ghost_cols_.begin(), ghost_cols_.end());
      ghost_cols_.erase(std::unique(ghost_cols_.begin(), ghost_cols_.end()),
                        ghost_cols_.end());
      ghost_values_.resize(ghost_cols_.size() * static_cast<std::size_t>(k_));
    }
  }

  void begin_iteration(index_t iter) {
    iter_ = iter;
    if (straggler_ != nullptr) {
      const bool on =
          fault::duty_active(straggler_->period, straggler_->duty, iter);
      if (on && !straggler_on_) {
        log_.push_back({fault::FaultKind::kStragglerOn, thread_, iter, 0, 0});
      }
      straggler_on_ = on;
      if (on) {
        spin_wait_us(straggler_->extra_delay_us);
        stalled_us_ += straggler_->extra_delay_us;
      }
    }
    if (crash_ != nullptr && !crashed_ && iter >= crash_->crash_iteration) {
      crashed_ = true;
      log_.push_back({fault::FaultKind::kCrash, thread_, iter, 0, 0});
      spin_wait_us(crash_->dead_seconds * 1e6);
      stalled_us_ += crash_->dead_seconds * 1e6;
      if (crash_->reset_state_on_recovery) {
        // Sole-writer role on x holds: this thread owns rows [lo_, hi_).
        x_->writer_role().assert_held();
        for (index_t i = lo_; i < hi_; ++i) {
          x_->write_row(i, {x0_->row(i), static_cast<std::size_t>(k_)});
        }
        state_reset_ = true;
      }
      log_.push_back({fault::FaultKind::kRecover, thread_, iter, 0, 0});
    }
    if (stale_ != nullptr) {
      const bool on = fault::duty_active(stale_->period, stale_->duty, iter);
      if (on && !stale_on_) {
        log_.push_back({fault::FaultKind::kStaleWindowOn, thread_, iter, 0, 0});
        for (std::size_t g = 0; g < ghost_cols_.size(); ++g) {
          x_->read_row(ghost_cols_[g],
                       std::span<double>(ghost_values_.data() +
                                             g * static_cast<std::size_t>(k_),
                                         static_cast<std::size_t>(k_)));
        }
      }
      stale_on_ = on;
    }
  }

  [[nodiscard]] bool consume_state_reset() {
    return std::exchange(state_reset_, false);
  }

  /// Identical to ActiveFaults::flip — one decision per (iteration, row),
  /// and the corrupted a_ij feeds every lane of that row's relaxation.
  bool flip(index_t row, std::span<const index_t> cols,
            std::span<const double> vals, FlippedEntry& out) {
    for (const fault::BitFlipSpec* s : flips_) {
      if (iter_ < s->first_iteration || iter_ >= s->last_iteration) continue;
      if (!clock_.bernoulli(s->probability, fault::FaultClock::kBitFlipTrigger,
                            static_cast<std::uint64_t>(thread_),
                            static_cast<std::uint64_t>(iter_),
                            static_cast<std::uint64_t>(row))) {
        continue;
      }
      std::size_t off_diag = 0;
      for (const index_t j : cols) off_diag += (j != row) ? 1 : 0;
      if (off_diag == 0) continue;
      const std::uint64_t target =
          clock_.pick(off_diag, fault::FaultClock::kBitFlipEntry,
                      static_cast<std::uint64_t>(thread_),
                      static_cast<std::uint64_t>(iter_),
                      static_cast<std::uint64_t>(row));
      std::uint64_t seen = 0;
      std::size_t entry = 0;
      for (std::size_t p = 0; p < cols.size(); ++p) {
        if (cols[p] == row) continue;
        if (seen++ == target) {
          entry = p;
          break;
        }
      }
      const int bit =
          s->bit >= 0
              ? s->bit
              : static_cast<int>(clock_.pick(
                    52, fault::FaultClock::kBitFlipBit,
                    static_cast<std::uint64_t>(thread_),
                    static_cast<std::uint64_t>(iter_),
                    static_cast<std::uint64_t>(row)));
      out.entry = entry;
      out.value = fault::flip_bit(vals[entry], bit);
      log_.push_back({fault::FaultKind::kBitFlip, thread_, iter_, row,
                      static_cast<index_t>(bit)});
      return true;
    }
    return false;
  }

  /// Row reads go through the injector: inside a stale window, off-block
  /// rows come from the frozen k-wide snapshot instead of the live vector.
  void read_row(const SharedMultiVector& x, index_t j,
                std::span<double> out) const {
    if (stale_on_ && (j < lo_ || j >= hi_)) {
      const std::size_t g = ghost_slot(j);
      const double* src =
          ghost_values_.data() + g * static_cast<std::size_t>(k_);
      for (index_t c = 0; c < k_; ++c) {
        out[static_cast<std::size_t>(c)] = src[c];
      }
      return;
    }
    x.read_row(j, out);
  }

  [[nodiscard]] const fault::FaultLog& log() const { return log_; }
  [[nodiscard]] double stalled_us() const { return stalled_us_; }
  [[nodiscard]] fault::FaultLog take_log() { return std::move(log_); }

 private:
  [[nodiscard]] std::size_t ghost_slot(index_t j) const {
    const auto it =
        std::lower_bound(ghost_cols_.begin(), ghost_cols_.end(), j);
    AJAC_DBG_CHECK(it != ghost_cols_.end() && *it == j);
    return static_cast<std::size_t>(it - ghost_cols_.begin());
  }

  fault::FaultClock clock_;
  const MultiVector* x0_;
  SharedMultiVector* x_;
  index_t thread_;
  index_t lo_;
  index_t hi_;
  index_t k_;
  index_t iter_ = 0;

  const fault::StragglerSpec* straggler_ = nullptr;
  const fault::StaleReadSpec* stale_ = nullptr;
  const fault::CrashSpec* crash_ = nullptr;
  std::vector<const fault::BitFlipSpec*> flips_;

  bool straggler_on_ = false;
  bool stale_on_ = false;
  bool crashed_ = false;
  bool state_reset_ = false;
  double stalled_us_ = 0.0;

  std::vector<index_t> ghost_cols_;  ///< sorted off-block columns
  std::vector<double> ghost_values_;  ///< row-major ghosts x k snapshot

  fault::FaultLog log_;
};

/// Metrics context for the default (no registry) path. Mirrors NullFaults:
/// `enabled` is false and every hook site is `if constexpr`-guarded, so the
/// uninstrumented solve carries no metrics branches, no extra timer reads,
/// and produces bitwise the results of a build without the metrics layer.
struct NullMetrics {
  static constexpr bool enabled = false;

  NullMetrics(obs::MetricsRegistry* /*reg*/, index_t /*thread*/,
              const WallTimer& /*timer*/) {}

  void iteration_begin() {}
  void spin_wait(double /*us*/) {}
  template <class Faults>
  void sync_faults(const Faults& /*faults*/) {}
  void staleness(index_t /*iter*/, index_t /*version*/) {}
  void read_mix(index_t /*local_entries*/, index_t /*ghost_entries*/) {}
  [[nodiscard]] std::uint64_t* retry_sink() { return nullptr; }
  void residual_check_begin() {}
  void residual_check_end() {}
  void iteration_end(index_t /*iter*/, index_t /*rows*/) {}
  void batch_iteration(index_t /*rows*/, index_t /*active_cols*/) {}
  void flag_update(bool /*my_done*/, index_t /*iter*/) {}
  void stop_decided() {}
  void weight_refresh() {}
  void ghost_refresh() {}
  void policy_counts(std::span<const std::uint32_t> /*counts*/) {}
};

[[nodiscard]] inline obs::TraceKind fault_trace_kind(fault::FaultKind k) {
  switch (k) {
    case fault::FaultKind::kStragglerOn: return obs::TraceKind::kStragglerOn;
    case fault::FaultKind::kStaleWindowOn:
      return obs::TraceKind::kStaleWindowOn;
    case fault::FaultKind::kMessageDrop: return obs::TraceKind::kMessageDrop;
    case fault::FaultKind::kMessageDuplicate:
      return obs::TraceKind::kMessageDuplicate;
    case fault::FaultKind::kMessageReorder:
      return obs::TraceKind::kMessageReorder;
    case fault::FaultKind::kBitFlip: return obs::TraceKind::kBitFlip;
    case fault::FaultKind::kCrash: return obs::TraceKind::kCrash;
    case fault::FaultKind::kRecover: return obs::TraceKind::kRecover;
  }
  return obs::TraceKind::kBitFlip;  // unreachable
}

/// Per-thread recorder writing into this thread's ActorSlot. All state is
/// thread-local; the only shared object touched is the slot, which has a
/// single writer by the registry's threading contract. Each recording
/// method claims the slot's sole-writer role (assert_held) before touching
/// it — the claim is what lets -Wthread-safety verify every slot mutation
/// flows through the owning thread's recorder.
class ActiveMetrics {
 public:
  static constexpr bool enabled = true;

  ActiveMetrics(obs::MetricsRegistry* reg, index_t thread,
                const WallTimer& timer)
      : slot_(&reg->actor(thread)), timer_(&timer) {}

  void iteration_begin() { t0_us_ = timer_->seconds() * 1e6; }

  /// Injected busy-wait (per-thread delay or straggler stall), attributed
  /// by duration rather than timed: the wait is synthetic and exact.
  void spin_wait(double us) {
    slot_->owner.assert_held();
    slot_->add(obs::Counter::kSpinWaitNs,
               static_cast<std::uint64_t>(us * 1e3));
  }

  /// Timestamp the injections the fault layer just performed. Its log is
  /// append-only within the thread, so entries past the last seen size are
  /// this iteration's; they become timeline instants (arg0 = the log
  /// entry's detail field: row for bit flips, 0 otherwise).
  template <class Faults>
  void sync_faults(const Faults& faults) {
    if constexpr (Faults::enabled) {
      slot_->owner.assert_held();
      const double stalled = faults.stalled_us();
      if (stalled > seen_stall_us_) {
        slot_->add(obs::Counter::kSpinWaitNs,
                   static_cast<std::uint64_t>((stalled - seen_stall_us_) *
                                              1e3));
        seen_stall_us_ = stalled;
      }
      const fault::FaultLog& log = faults.log();
      if (log.size() == seen_faults_) return;
      const double now_us = timer_->seconds() * 1e6;
      for (; seen_faults_ < log.size(); ++seen_faults_) {
        const fault::FaultEvent& e = log[seen_faults_];
        slot_->add(obs::Counter::kFaultEvents);
        slot_->instant(fault_trace_kind(e.kind), now_us, e.detail, e.detail2);
      }
    }
  }

  /// One cross-block versioned read: how many versions behind a synchronous
  /// schedule it was. Under lockstep Jacobi a reader in local iteration
  /// `iter` (0-based) sees version `iter` of every neighbor; the shortfall
  /// is the staleness l of the paper's Φ(l) propagation analysis.
  void staleness(index_t iter, index_t version) {
    slot_->owner.assert_held();
    const std::uint64_t lag =
        version < iter ? static_cast<std::uint64_t>(iter - version) : 0;
    slot_->record(obs::Hist::kReadStaleness, lag);
  }

  /// Blocked kernels only: how many matrix entries this iteration resolved
  /// from the thread-private mirror vs through the SharedVector. The counts
  /// are precomputed per block (local_nnz/ghost_nnz), so the hook costs two
  /// counter adds per iteration, nothing per entry. The reference path
  /// leaves both lanes at zero.
  void read_mix(index_t local_entries, index_t ghost_entries) {
    slot_->owner.assert_held();
    slot_->add(obs::Counter::kLocalReads,
               static_cast<std::uint64_t>(local_entries));
    slot_->add(obs::Counter::kGhostReads,
               static_cast<std::uint64_t>(ghost_entries));
  }

  /// Thread-local seqlock retry accumulator, flushed per iteration.
  [[nodiscard]] std::uint64_t* retry_sink() { return &retries_; }

  void residual_check_begin() { tr0_us_ = timer_->seconds() * 1e6; }
  void residual_check_end() {
    slot_->owner.assert_held();
    const double us = timer_->seconds() * 1e6 - tr0_us_;
    slot_->add(obs::Counter::kResidualCheckNs,
               static_cast<std::uint64_t>(us * 1e3));
    slot_->record(obs::Hist::kResidualCheckUs,
                  static_cast<std::uint64_t>(us));
  }

  void iteration_end(index_t iter, index_t rows) {
    slot_->owner.assert_held();
    const double t1_us = timer_->seconds() * 1e6;
    slot_->add(obs::Counter::kIterations);
    slot_->add(obs::Counter::kRelaxations, static_cast<std::uint64_t>(rows));
    if (retries_ != 0) {
      slot_->add(obs::Counter::kSeqlockRetries, retries_);
      retries_ = 0;
    }
    slot_->record(obs::Hist::kIterationUs,
                  static_cast<std::uint64_t>(t1_us - t0_us_));
    slot_->span(obs::TraceKind::kIteration, t0_us_, t1_us, iter);
  }

  /// Batch path, once per local iteration: rows relaxed x lanes still
  /// converging (kLaneRelaxations — every lane is computed regardless, but
  /// only active lanes are useful work) and the occupancy sample for the
  /// batch-efficiency histogram.
  void batch_iteration(index_t rows, index_t active_cols) {
    slot_->owner.assert_held();
    slot_->add(obs::Counter::kLaneRelaxations,
               static_cast<std::uint64_t>(rows) *
                   static_cast<std::uint64_t>(active_cols));
    slot_->record(obs::Hist::kBatchOccupancy,
                  static_cast<std::uint64_t>(active_cols));
  }

  void flag_update(bool my_done, index_t iter) {
    if (my_done == flag_up_) return;
    slot_->owner.assert_held();
    flag_up_ = my_done;
    const double now_us = timer_->seconds() * 1e6;
    if (my_done) {
      slot_->add(obs::Counter::kFlagRaises);
      slot_->instant(obs::TraceKind::kFlagRaise, now_us, iter);
    } else {
      slot_->instant(obs::TraceKind::kFlagLower, now_us, iter);
    }
  }

  void stop_decided() {
    slot_->owner.assert_held();
    slot_->instant(obs::TraceKind::kStop, timer_->seconds() * 1e6);
  }

  /// Sampled row policies: one |r_i| prefix-sum rebuild happened.
  void weight_refresh() {
    slot_->owner.assert_held();
    slot_->add(obs::Counter::kWeightRefreshes);
  }

  /// kSellCS only: one dense ghost-buffer refresh happened (one racy read
  /// per distinct ghost column; kGhostReads still counts the per-entry
  /// gather volume those refreshes replace, via read_mix).
  void ghost_refresh() {
    slot_->owner.assert_held();
    slot_->add(obs::Counter::kGhostRefreshes);
  }

  /// Sampled row policies, once per thread after its loop: the per-row
  /// relaxation counts (kRowRelaxations histogram — natural order would be
  /// a point mass at the iteration count) and the block's selection skew,
  /// max over mean as a percentage (100 = perfectly even; residual-weighted
  /// runs on skewed problems push it far above).
  void policy_counts(std::span<const std::uint32_t> counts) {
    if (counts.empty()) return;
    slot_->owner.assert_held();
    std::uint64_t total = 0;
    std::uint64_t max = 0;
    for (const std::uint32_t c : counts) {
      slot_->record(obs::Hist::kRowRelaxations, c);
      total += c;
      if (c > max) max = c;
    }
    if (total == 0) return;
    slot_->add(obs::Counter::kPolicyDraws, total);
    const std::uint64_t skew_pct =
        max * 100 * static_cast<std::uint64_t>(counts.size()) / total;
    slot_->record(obs::Hist::kRowSelectionSkew, skew_pct);
  }

 private:
  obs::ActorSlot* slot_;
  const WallTimer* timer_;
  double t0_us_ = 0.0;
  double tr0_us_ = 0.0;
  double seen_stall_us_ = 0.0;
  std::uint64_t retries_ = 0;
  std::size_t seen_faults_ = 0;
  bool flag_up_ = false;
};

/// Telemetry-stream context for the default (no hub) path. Like the other
/// Null hooks every call site is `if constexpr (Stream::enabled)`-guarded,
/// so this instantiation is the pre-telemetry solver verbatim — including
/// the step-3 norm accumulation, which is only split into own/foreign
/// partial sums on the streaming instantiation (results stay bitwise
/// identical to a build without telemetry at all).
struct NullStream {
  static constexpr bool enabled = false;

  NullStream(obs::TelemetryHub* /*hub*/, index_t /*thread*/,
             const WallTimer& /*timer*/) {}

  [[nodiscard]] bool due(index_t /*iter*/) const { return false; }
  void weight_refresh() {}
  void publish(index_t /*iter*/, index_t /*rows*/, double /*own_norm*/,
               std::uint64_t /*draws*/) {}
  void finish(index_t /*iter*/, index_t /*rows*/, double /*own_norm*/,
              std::uint64_t /*draws*/) {}
};

/// Per-thread beacon publisher. Owns (claims) this thread's EventRing via
/// the hub's one-ring-per-actor contract; publish() is wait-free and
/// touches nothing shared but the ring, so the observed solve's memory
/// traffic gains only a strided handful of atomic stores.
class ActiveStream {
 public:
  static constexpr bool enabled = true;

  ActiveStream(obs::TelemetryHub* hub, index_t thread,
               const WallTimer& timer)
      : ring_(&hub->ring(thread)),
        timer_(&timer),
        stride_(std::max<index_t>(1, hub->options().beacon_stride)) {}

  /// True on iterations that should publish (iter is 1-based here: the
  /// call sites test after `++iter`).
  [[nodiscard]] bool due(index_t iter) const { return iter % stride_ == 0; }

  void weight_refresh() { ++weight_refreshes_; }

  void publish(index_t iter, index_t rows, double own_norm,
               std::uint64_t draws) {
    obs::Beacon b;
    b.ts_us = timer_->seconds() * 1e6;
    b.iteration = iter;
    b.relaxations =
        static_cast<std::uint64_t>(iter) * static_cast<std::uint64_t>(rows);
    b.own_residual_1 = own_norm;
    b.policy_draws = draws;
    b.weight_refreshes = weight_refreshes_;
    ring_->writer.assert_held();
    ring_->publish(b);
    last_iter_ = iter;
  }

  /// Final beacon at loop exit, so the monitor always sees the terminal
  /// state; skipped when the last iteration already published at stride.
  void finish(index_t iter, index_t rows, double own_norm,
              std::uint64_t draws) {
    if (iter == last_iter_ || iter <= 0) return;
    publish(iter, rows, own_norm, draws);
  }

 private:
  obs::EventRing* ring_;
  const WallTimer* timer_;
  index_t stride_;
  index_t last_iter_ = 0;
  std::uint64_t weight_refreshes_ = 0;
};

}  // namespace ajac::runtime::detail
