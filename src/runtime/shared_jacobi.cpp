#include "ajac/runtime/shared_jacobi.hpp"

#include <omp.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "ajac/runtime/shared_vector.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"

namespace ajac::runtime {

SharedResult solve_shared(const CsrMatrix& a, const Vector& b,
                          const Vector& x0, const SharedOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(opts.num_threads >= 1);
  AJAC_CHECK(opts.max_iterations >= 1);
  if (!opts.delay_us.empty()) {
    AJAC_CHECK(opts.delay_us.size() ==
               static_cast<std::size_t>(opts.num_threads));
  }
  AJAC_CHECK_MSG(!(opts.local_gauss_seidel && opts.synchronous),
                 "the in-place local sweep is only meaningful without "
                 "barriers (asynchronous mode)");
  AJAC_CHECK_MSG(!(opts.local_gauss_seidel && opts.record_trace),
                 "read-version traces assume the Jacobi local sweep");

  const partition::Partition part =
      opts.partition.value_or(partition::contiguous_partition(
          n, opts.num_threads));
  AJAC_CHECK(part.num_parts() == opts.num_threads);
  AJAC_CHECK(part.num_rows() == n);

  // Debug invariant layer: full structural audit of the inputs before the
  // threads start (compiled out in release builds).
  AJAC_DBG_VALIDATE(validate::csr_structure(
      a, {.require_sorted_rows = true, .require_diagonal = true,
          .require_finite = true, .require_square = true}));
  AJAC_DBG_VALIDATE(partition::validate(part, n));
  AJAC_DBG_VALIDATE(validate::finite(b, "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0, "x0"));

  Vector inv_diag = a.diagonal();
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(inv_diag[i] != 0.0, "zero diagonal at row " << i);
    inv_diag[i] = 1.0 / inv_diag[i];
  }

  SharedVector x(n, opts.record_trace);
  SharedVector r(n, /*traced=*/false);
  x.init(x0);
  {
    Vector r0(static_cast<std::size_t>(n));
    a.residual(x0, b, r0);
    r.init(r0);
  }
  const double r0_norm = [&] {
    Vector tmp(static_cast<std::size_t>(n));
    a.residual(x0, b, tmp);
    const double nrm = vec::norm1(tmp);
    return nrm > 0.0 ? nrm : 1.0;
  }();

  std::vector<std::atomic<int>> flags(
      static_cast<std::size_t>(opts.num_threads));
  for (auto& f : flags) f.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<index_t>> iter_counts(
      static_cast<std::size_t>(opts.num_threads));
  for (auto& c : iter_counts) c.store(0, std::memory_order_relaxed);
  std::atomic<int> stop{0};

  SharedResult result;
  result.iterations_per_thread.assign(
      static_cast<std::size_t>(opts.num_threads), 0);
  std::vector<std::vector<SharedHistoryPoint>> histories(
      static_cast<std::size_t>(opts.num_threads));
  std::vector<std::vector<model::RelaxationEvent>> thread_events(
      static_cast<std::size_t>(opts.num_threads));

  WallTimer timer;

  // OpenMP fork/join synchronization happens inside libgomp (futexes TSan
  // cannot see); hand TSan the happens-before edges explicitly. Everything
  // crossing threads *inside* the region is std::atomic and needs nothing.
  AJAC_TSAN_RELEASE(&result);

#pragma omp parallel num_threads(static_cast<int>(opts.num_threads))
  {
    AJAC_TSAN_ACQUIRE(&result);
    const auto t = static_cast<index_t>(omp_get_thread_num());
    const index_t lo = part.part_begin(t);
    const index_t hi = part.part_end(t);
    const double delay =
        opts.delay_us.empty() ? 0.0 : opts.delay_us[static_cast<std::size_t>(t)];
    std::vector<double> local_r(static_cast<std::size_t>(hi - lo));
    auto& my_history = histories[static_cast<std::size_t>(t)];
    auto& my_events = thread_events[static_cast<std::size_t>(t)];

    // Verification gate: the flag array is based on racy reads of the
    // shared residual, which can be arbitrarily stale when threads are
    // oversubscribed on few cores. Before actually stopping, recompute a
    // fresh global residual from the current shared x (or check the true
    // iteration counters); only a verified check may raise `stop`.
    auto verify_and_maybe_stop = [&]() {
      bool all_at_max = true;
      for (auto& c : iter_counts) {
        if (c.load(std::memory_order_relaxed) < opts.max_iterations) {
          all_at_max = false;
          break;
        }
      }
      bool tol_met = false;
      if (!all_at_max && opts.tolerance > 0.0) {
        double fresh = 0.0;
        for (index_t i = 0; i < n; ++i) {
          double acc = b[i];
          const auto cols = a.row_cols(i);
          const auto vals = a.row_values(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            acc -= vals[p] * x.read(cols[p]);
          }
          fresh += std::abs(acc);
        }
        tol_met = fresh / r0_norm <= opts.tolerance;
      }
      if (all_at_max || tol_met) stop.store(1, std::memory_order_relaxed);
    };

    index_t iter = 0;
    while (stop.load(std::memory_order_relaxed) == 0) {
      if (delay > 0.0) spin_wait_us(delay);

      // Step 1: residual on own rows from the shared (racy) x.
      if (opts.local_gauss_seidel) {
        // In-place forward sweep: each row's update is visible to the
        // following rows (and to other threads) immediately.
        for (index_t i = lo; i < hi; ++i) {
          double acc = b[i];
          const auto cols = a.row_cols(i);
          const auto vals = a.row_values(i);
          for (std::size_t pp = 0; pp < cols.size(); ++pp) {
            acc -= vals[pp] * x.read(cols[pp]);
          }
          local_r[i - lo] = acc;
          r.write(i, acc);
          x.write(i, x.read(i) + inv_diag[i] * acc);
        }
      } else if (opts.record_trace) {
        for (index_t i = lo; i < hi; ++i) {
          model::RelaxationEvent event;
          event.row = i;
          double acc = b[i];
          const auto cols = a.row_cols(i);
          const auto vals = a.row_values(i);
          event.reads.reserve(cols.size());
          for (std::size_t p = 0; p < cols.size(); ++p) {
            const index_t j = cols[p];
            if (j == i) {
              acc -= vals[p] * x.read_versioned(j).first;
              continue;
            }
            const auto [value, version] = x.read_versioned(j);
            acc -= vals[p] * value;
            event.reads.push_back({j, version});
          }
          local_r[i - lo] = acc;
          my_events.push_back(std::move(event));
        }
      } else {
        for (index_t i = lo; i < hi; ++i) {
          double acc = b[i];
          const auto cols = a.row_cols(i);
          const auto vals = a.row_values(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            acc -= vals[p] * x.read(cols[p]);
          }
          local_r[i - lo] = acc;
        }
      }
      if (!opts.local_gauss_seidel) {
        for (index_t i = lo; i < hi; ++i) r.write(i, local_r[i - lo]);
      }

      if (opts.synchronous) {
#pragma omp barrier
      }

      // Step 2: correct own rows (already done in-place for the GS sweep).
      if (!opts.local_gauss_seidel) {
        for (index_t i = lo; i < hi; ++i) {
          x.write(i, x.read(i) + inv_diag[i] * local_r[i - lo]);
        }
      }
      ++iter;
      iter_counts[static_cast<std::size_t>(t)].store(
          iter, std::memory_order_relaxed);

      // Step 3: convergence check — norm of the whole shared residual
      // (racy reads, the paper's scheme).
      double norm = 0.0;
      for (index_t i = 0; i < n; ++i) norm += std::abs(r.read(i));
      const double rel = norm / r0_norm;
      if (opts.record_history) {
        my_history.push_back({timer.seconds(), t, iter, rel});
      }
      const bool my_done =
          (opts.tolerance > 0.0 && rel <= opts.tolerance) ||
          iter >= opts.max_iterations;
      flags[static_cast<std::size_t>(t)].store(my_done ? 1 : 0,
                                               std::memory_order_relaxed);

      if (opts.synchronous) {
#pragma omp barrier
      }
      int done_count = 0;
      for (auto& f : flags) done_count += f.load(std::memory_order_relaxed);
      if (done_count == static_cast<int>(opts.num_threads)) {
        verify_and_maybe_stop();
      }
      if (opts.synchronous) {
        // Keep lockstep: every thread must pass the same number of
        // barriers, and all see the verified stop decision together.
#pragma omp barrier
      }
      if (opts.yield &&
          stop.load(std::memory_order_relaxed) == 0) {
        sched_yield();
      }
    }
    result.iterations_per_thread[static_cast<std::size_t>(t)] = iter;
    AJAC_TSAN_RELEASE(&result);
  }
  AJAC_TSAN_ACQUIRE(&result);

  result.seconds = timer.seconds();
  result.x.resize(static_cast<std::size_t>(n));
  x.snapshot(result.x);

  // Independent serial verification of the final residual.
  Vector final_r(static_cast<std::size_t>(n));
  a.residual(result.x, b, final_r);
  result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;

  // A thread descheduled mid-iteration may have committed a stale update
  // after the verified stop; polish sequentially until the tolerance
  // verifiably holds (bounded — the state is near the fixed point).
  if (opts.final_polish && opts.tolerance > 0.0 &&
      result.final_rel_residual_1 > opts.tolerance) {
    const index_t polish_cap = 20 * opts.num_threads + 200;
    while (result.polish_sweeps < polish_cap &&
           result.final_rel_residual_1 > opts.tolerance) {
      for (index_t i = 0; i < n; ++i) {
        result.x[i] += inv_diag[i] * final_r[i];
      }
      a.residual(result.x, b, final_r);
      result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;
      ++result.polish_sweeps;
    }
  }
  result.converged =
      opts.tolerance > 0.0 && result.final_rel_residual_1 <= opts.tolerance;
  for (index_t t = 0; t < opts.num_threads; ++t) {
    result.total_relaxations +=
        result.iterations_per_thread[static_cast<std::size_t>(t)] *
        part.part_size(t);
  }

  for (auto& h : histories) {
    result.history.insert(result.history.end(), h.begin(), h.end());
  }
  std::sort(result.history.begin(), result.history.end(),
            [](const SharedHistoryPoint& p1, const SharedHistoryPoint& p2) {
              return p1.seconds < p2.seconds;
            });

  if (opts.record_trace) {
    model::RelaxationTrace trace(n);
    // Per-row order is preserved because each row belongs to one thread
    // and threads append their events in execution order.
    for (const auto& events : thread_events) {
      for (const auto& e : events) trace.add_event(e);
    }
    result.trace = std::move(trace);
  }
  return result;
}

}  // namespace ajac::runtime
