#include "ajac/runtime/shared_jacobi.hpp"

#include <omp.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <span>
#include <utility>

#include "ajac/obs/metrics.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/runtime/blocked_kernels.hpp"
#include "ajac/runtime/sell_kernels.hpp"
#include "ajac/runtime/shared_vector.hpp"
#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/sparse/sell_csr.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"
#include "solve_hooks.hpp"

namespace ajac::runtime {

namespace {

// The fault/metrics hook contexts (NullFaults/ActiveFaults and
// NullMetrics/ActiveMetrics) live in solve_hooks.hpp, shared with the
// batched solver translation unit (shared_batch.cpp).
using detail::ActiveFaults;
using detail::ActiveMetrics;
using detail::ActiveStream;
using detail::NullFaults;
using detail::NullMetrics;
using detail::NullStream;

// `sell` and `shadow` are the kSellCS data plane (both null otherwise):
// runtime pointers rather than a third template axis — the per-iteration
// `sell != nullptr` branch is noise next to an O(nnz) sweep, and the
// blocked/reference instantiations stay exactly as before.
template <class Faults, class Metrics, class Stream, bool Blocked>
SharedResult solve_shared_impl(const CsrMatrix& a, const Vector& b,
                               const Vector& x0, const SharedOptions& opts,
                               const partition::Partition& part,
                               const Vector& inv_diag,
                               const fault::FaultPlan* plan,
                               const BlockedCsr* blocked, const SellCsr* sell,
                               SharedF32Vector* shadow) {
  const index_t n = a.num_rows();

  SharedVector x(n, opts.record_trace);
  SharedVector r(n, /*traced=*/false);
  // Single-threaded setup: this thread is momentarily the sole writer of
  // both shared vectors (the workers have not been forked yet).
  x.writer_role().assert_held();
  r.writer_role().assert_held();
  x.init(x0);
  {
    Vector r0(static_cast<std::size_t>(n));
    a.residual(x0, b, r0);
    r.init(r0);
  }
  const double r0_norm = [&] {
    Vector tmp(static_cast<std::size_t>(n));
    a.residual(x0, b, tmp);
    const double nrm = vec::norm1(tmp);
    return nrm > 0.0 ? nrm : 1.0;
  }();
  if constexpr (Stream::enabled) {
    // Telemetry denominator for the monitor's global residual estimate;
    // single-threaded setup, before any beacon of this run.
    opts.stream->set_residual_scale(r0_norm);
  }

  std::vector<std::atomic<int>> flags(
      static_cast<std::size_t>(opts.num_threads));
  // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
  for (auto& f : flags) f.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<index_t>> iter_counts(
      static_cast<std::size_t>(opts.num_threads));
  // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
  for (auto& c : iter_counts) c.store(0, std::memory_order_relaxed);
  std::atomic<int> stop{0};

  SharedResult result;
  result.iterations_per_thread.assign(
      static_cast<std::size_t>(opts.num_threads), 0);
  std::vector<std::vector<SharedHistoryPoint>> histories(
      static_cast<std::size_t>(opts.num_threads));
  std::vector<std::vector<model::RelaxationEvent>> thread_events(
      static_cast<std::size_t>(opts.num_threads));
  std::vector<fault::FaultLog> fault_logs(
      static_cast<std::size_t>(opts.num_threads));

  WallTimer timer;

  // OpenMP fork/join synchronization happens inside libgomp (futexes TSan
  // cannot see); hand TSan the happens-before edges explicitly. Everything
  // crossing threads *inside* the region is std::atomic and needs nothing.
  AJAC_TSAN_RELEASE(&result);

#pragma omp parallel num_threads(static_cast<int>(opts.num_threads))
  {
    AJAC_TSAN_ACQUIRE(&result);
    const auto t = static_cast<index_t>(omp_get_thread_num());
    const index_t lo = part.part_begin(t);
    const index_t hi = part.part_end(t);
    const double delay =
        opts.delay_us.empty() ? 0.0 : opts.delay_us[static_cast<std::size_t>(t)];
    // Relax->commit carrier for the reference kernels. The blocked kernels
    // need no private carrier: each thread is the sole writer of its own
    // rows of the shared r, so the residual published during step 1 reads
    // back bit-exact in commit_block.
    std::vector<double> local_r(
        Blocked ? std::size_t{0} : static_cast<std::size_t>(hi - lo));
    auto& my_history = histories[static_cast<std::size_t>(t)];
    auto& my_events = thread_events[static_cast<std::size_t>(t)];
    if (opts.record_history) {
      // Reserve outside the timed loop: a reallocating push_back inside the
      // relaxation loop would stall this thread mid-run and perturb the
      // asynchronous interleaving being measured. Threads park once they
      // reach max_iterations, so the local iteration count (and therefore
      // the history) is bounded by it exactly.
      my_history.reserve(static_cast<std::size_t>(opts.max_iterations));
    }
    Faults faults(a, x0, plan, t, lo, hi, x);
    Metrics metrics(opts.metrics, t, timer);
    Stream stream(opts.stream, t, timer);

    // Sampled row policies: per-thread sampler (no shared state; see
    // row_policy.hpp for the draw-coordinate discipline) and, when
    // instrumented, the per-row draw counts behind the row-selection-skew
    // metric. Natural order pays for neither.
    const bool sampled = is_sampled(opts.policy);
    std::optional<RowSampler> sampler;
    // Scratch for the weighted refresh: |true residual| of each own row,
    // computed in a first pass so the weight of row i can sum its whole
    // stencil (see the refresh below). Sized once, outside the timed loop.
    std::vector<double> snapshot_r;
    if (sampled) {
      sampler.emplace(opts.policy, opts.policy_seed, t, lo, hi,
                      opts.weight_refresh);
      if (opts.policy == RowPolicy::kResidualWeighted) {
        snapshot_r.assign(static_cast<std::size_t>(hi - lo), 0.0);
      }
    }
    [[maybe_unused]] std::vector<std::uint32_t> pick_counts;
    if constexpr (Metrics::enabled) {
      if (sampled) pick_counts.assign(static_cast<std::size_t>(hi - lo), 0);
    }

    // Blocked path: thread-private mirror of the own rows, allocated and
    // filled here so the owning thread first-touches its own pages.
    [[maybe_unused]] const BlockedCsr::Block* blk = nullptr;
    [[maybe_unused]] OwnBlockState own;
    // kSellCS path: SELL interior view plus the dense ghost buffer,
    // likewise allocated here for first touch.
    [[maybe_unused]] const SellCsr::Block* sblk = nullptr;
    std::vector<double> ghosts;

    // The partition makes this thread the sole writer of rows [lo, hi) of
    // x and r, and of its private mirror: claim the roles every protocol
    // write and kernel call below requires. Claims, not locks — ownership
    // is established by the partition, so there is nothing to acquire.
    x.writer_role().assert_held();
    r.writer_role().assert_held();
    own.owner.assert_held();

    if constexpr (Blocked) {
      blk = &blocked->block(t);
      refresh_own_block(*blk, x, own);
      if (sell != nullptr) {
        sblk = &sell->block(t);
        ghosts.assign(blk->ghost_cols.size(), 0.0);
      }
    }

    // Verification gate: the flag array is based on racy reads of the
    // shared residual, which can be arbitrarily stale when threads are
    // oversubscribed on few cores. Before actually stopping, recompute a
    // fresh global residual from the current shared x (or check the true
    // iteration counters); only a verified check may raise `stop`.
    auto verify_and_maybe_stop = [&]() {
      bool all_at_max = true;
      for (auto& c : iter_counts) {
        // racy-ok(monotonic): counters only grow; a stale read can only
        // delay the stop decision, never produce a premature one.
        if (c.load(std::memory_order_relaxed) < opts.max_iterations) {
          all_at_max = false;
          break;
        }
      }
      bool tol_met = false;
      if (!all_at_max && opts.tolerance > 0.0) {
        double fresh = 0.0;
        for (index_t i = 0; i < n; ++i) {
          double acc = b[i];
          const auto [cols, vals] = a.row(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            acc -= vals[p] * x.read(cols[p]);
          }
          fresh += std::abs(acc);
        }
        tol_met = fresh / r0_norm <= opts.tolerance;
      }
      if (all_at_max || tol_met) {
        // racy-ok(stop): 0 -> 1 broadcast; readers poll it and there is no
        // dependent data to publish (results are read after the join).
        stop.store(1, std::memory_order_relaxed);
        if constexpr (Metrics::enabled) metrics.stop_decided();
      }
    };

    index_t iter = 0;
    [[maybe_unused]] double last_own_norm = 0.0;
    // racy-ok(stop): stop only transitions 0 -> 1; a stale read costs one
    // extra polling pass, nothing more.
    while (stop.load(std::memory_order_relaxed) == 0) {
      if (iter >= opts.max_iterations) {
        // Parked at the iteration cap. Relaxing further would make the
        // executed (thread, iteration) set — and with it the fault log and
        // relaxation totals — depend on how long the slower threads take
        // to flag, i.e. on scheduler timing. This thread's own flag went
        // up when iter reached the cap, so just keep polling the others
        // and re-verifying until the stop is decided.
        int parked_done = 0;
        // racy-ok(flag): flags are hints; verify_and_maybe_stop re-checks.
        for (auto& f : flags) parked_done += f.load(std::memory_order_relaxed);
        if (parked_done == static_cast<int>(opts.num_threads)) {
          verify_and_maybe_stop();
        }
        sched_yield();
        continue;
      }
      if constexpr (Metrics::enabled) metrics.iteration_begin();
      if (delay > 0.0) {
        spin_wait_us(delay);
        if constexpr (Metrics::enabled) metrics.spin_wait(delay);
      }
      if constexpr (Faults::enabled) faults.begin_iteration(iter);
      if constexpr (Faults::enabled && Blocked) {
        // A crash recovery with state reset rewrote the shared x on the own
        // rows behind the mirror; reload it (versions included) before any
        // kernel reads through it.
        if (faults.consume_state_reset()) refresh_own_block(*blk, x, own);
      }
      if constexpr (Metrics::enabled) metrics.sync_faults(faults);

      // Step 1: residual on own rows from the shared (racy) x.
      if (sampled) {
        // Sampled policies: block-size in-place relaxations of drawn rows
        // (iteration counting, termination, and total_relaxations keep
        // their natural-order meaning). The weighted sampler rebuilds its
        // prefix sum here, at the iteration boundary, in two passes: the
        // TRUE residual of every own row recomputed from an x snapshot
        // (never the published r, whose pre-update values go stale under
        // in-place draws), then the stencil-smoothed weight (|A| |r|)_i
        // over the own block — see row_policy.hpp for why both the
        // recompute and the smoothing are load-bearing. Weights read x
        // directly, bypassing fault injection: the policy stream must not
        // consume fault decisions.
        if (sampler->refresh_due(iter)) {
          for (index_t i = lo; i < hi; ++i) {
            const auto [cols, vals] = a.row(i);
            double acc = b[i];
            for (std::size_t p = 0; p < cols.size(); ++p) {
              acc -= vals[p] * x.read_snapshot(cols[p]);
            }
            snapshot_r[static_cast<std::size_t>(i - lo)] = std::abs(acc);
          }
          sampler->refresh_weights([&](index_t i) {
            const auto [cols, vals] = a.row(i);
            double w = 0.0;
            for (std::size_t p = 0; p < cols.size(); ++p) {
              const index_t j = cols[p];
              if (j >= lo && j < hi) {
                w += std::abs(vals[p]) *
                     snapshot_r[static_cast<std::size_t>(j - lo)];
              }
            }
            return w;
          });
          if constexpr (Metrics::enabled) metrics.weight_refresh();
          if constexpr (Stream::enabled) stream.weight_refresh();
        }
        const index_t draws = hi - lo;
        for (index_t slot = 0; slot < draws; ++slot) {
          const index_t i = sampler->next(iter, slot);
          if constexpr (Metrics::enabled) {
            ++pick_counts[static_cast<std::size_t>(i - lo)];
          }
          if constexpr (Blocked) {
            if (opts.record_trace) {
              relax_row_sampled_traced(*blk, a, b, own, x, faults, metrics,
                                       iter, r, my_events, i);
            } else {
              relax_row_sampled(*blk, a, b, own, x, r, faults, i);
            }
          } else if (opts.record_trace) {
            model::RelaxationEvent event;
            event.row = i;
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            event.reads.reserve(cols.size());
            for (std::size_t p = 0; p < cols.size(); ++p) {
              const index_t j = cols[p];
              double aij = vals[p];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == p) aij = flipped.value;
              }
              if (j == i) {
                acc -= aij *
                       faults.read_versioned(x, j, metrics.retry_sink()).first;
                continue;
              }
              const auto [value, version] =
                  faults.read_versioned(x, j, metrics.retry_sink());
              acc -= aij * value;
              if constexpr (Metrics::enabled) metrics.staleness(iter, version);
              event.reads.push_back({j, version});
            }
            r.write(i, acc);
            x.write(i, x.read(i) + inv_diag[i] * acc);
            my_events.push_back(std::move(event));
          } else {
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            for (std::size_t p = 0; p < cols.size(); ++p) {
              double aij = vals[p];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == p) aij = flipped.value;
              }
              acc -= aij * faults.read(x, cols[p]);
            }
            r.write(i, acc);
            x.write(i, x.read(i) + inv_diag[i] * acc);
          }
        }
      } else if (opts.local_gauss_seidel) {
        // In-place forward sweep: each row's update is visible to the
        // following rows (and to other threads) immediately.
        if constexpr (Blocked) {
          relax_block_gs(*blk, a, b, own, x, r, faults);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            for (std::size_t pp = 0; pp < cols.size(); ++pp) {
              double aij = vals[pp];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == pp) aij = flipped.value;
              }
              acc -= aij * faults.read(x, cols[pp]);
            }
            local_r[i - lo] = acc;
            r.write(i, acc);
            x.write(i, x.read(i) + inv_diag[i] * acc);
          }
        }
      } else if (opts.record_trace) {
        if constexpr (Blocked) {
          relax_traced(*blk, a, b, own, x, faults, metrics, iter, r,
                       my_events);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            model::RelaxationEvent event;
            event.row = i;
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            event.reads.reserve(cols.size());
            for (std::size_t p = 0; p < cols.size(); ++p) {
              const index_t j = cols[p];
              double aij = vals[p];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == p) aij = flipped.value;
              }
              if (j == i) {
                acc -= aij *
                       faults.read_versioned(x, j, metrics.retry_sink()).first;
                continue;
              }
              const auto [value, version] =
                  faults.read_versioned(x, j, metrics.retry_sink());
              acc -= aij * value;
              if constexpr (Metrics::enabled) metrics.staleness(iter, version);
              event.reads.push_back({j, version});
            }
            local_r[i - lo] = acc;
            my_events.push_back(std::move(event));
          }
        }
      } else {
        if constexpr (Blocked) {
          if (sell != nullptr) {
            // kSellCS: refresh the dense ghost buffer once (from the fp32
            // shadow when one exists, else the authoritative fp64 vector),
            // then relax the SELL-packed interior and the buffered
            // boundary. Faults/trace/GS/sampling never reach this branch
            // (rejected in solve_shared).
            if (shadow != nullptr) {
              refresh_ghosts_f32(*blk, *shadow, ghosts);
            } else {
              refresh_ghosts(*blk, x, ghosts);
            }
            if constexpr (Metrics::enabled) metrics.ghost_refresh();
            relax_interior_sell(*sblk, b, own, r);
            relax_boundary_buffered(*blk, b, own, ghosts, r);
          } else {
            relax_interior(*blk, a, b, own, faults, r);
            relax_boundary(*blk, a, b, own, x, faults, r);
          }
        } else {
          for (index_t i = lo; i < hi; ++i) {
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            for (std::size_t p = 0; p < cols.size(); ++p) {
              double aij = vals[p];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == p) aij = flipped.value;
              }
              acc -= aij * faults.read(x, cols[p]);
            }
            local_r[i - lo] = acc;
          }
        }
      }
      if constexpr (Metrics::enabled && Blocked) {
        metrics.read_mix(blk->local_nnz, blk->ghost_nnz);
      }
      if constexpr (!Blocked) {
        // The blocked kernels publish each row's residual to r as part of
        // step 1 (the GS sweep and the sampled policies write it in-place
        // on both paths); only the reference Jacobi step needs this
        // separate pass.
        if (!opts.local_gauss_seidel && !sampled) {
          for (index_t i = lo; i < hi; ++i) r.write(i, local_r[i - lo]);
        }
      }

      if (opts.synchronous) {
#pragma omp barrier
      }

      // Step 2: correct own rows (already done in-place for the GS sweep
      // and the sampled policies).
      if (!opts.local_gauss_seidel && !sampled) {
        if constexpr (Blocked) {
          commit_block(*blk, own, x, r);
          if (shadow != nullptr) {
            // fp32 ghost runs: republish the freshly committed own rows to
            // the float shadow neighbours refresh from. The partition makes
            // this thread the shadow's sole writer on these rows.
            shadow->writer_role().assert_held();
            publish_shadow(*blk, own, *shadow);
          }
        } else {
          for (index_t i = lo; i < hi; ++i) {
            x.write(i, x.read(i) + inv_diag[i] * local_r[i - lo]);
          }
        }
      }
      ++iter;
      // racy-ok(monotonic): published for the verification gate; it only
      // needs an eventually-fresh lower bound.
      iter_counts[static_cast<std::size_t>(t)].store(
          iter, std::memory_order_relaxed);

      // Step 3: convergence check — norm of the whole shared residual
      // (racy reads, the paper's scheme).
      if constexpr (Metrics::enabled) metrics.residual_check_begin();
      double norm = 0.0;
      if constexpr (Stream::enabled) {
        // Same scan with the own-block terms mirrored into a second
        // accumulator for the beacon: every term still lands in `norm` in
        // the original row order, so the streamed run's residual check is
        // bitwise the unstreamed one's.
        double own_sum = 0.0;
        for (index_t i = 0; i < lo; ++i) norm += std::abs(r.read(i));
        for (index_t i = lo; i < hi; ++i) {
          const double v = std::abs(r.read(i));
          norm += v;
          own_sum += v;
        }
        for (index_t i = hi; i < n; ++i) norm += std::abs(r.read(i));
        last_own_norm = own_sum;
      } else {
        for (index_t i = 0; i < n; ++i) norm += std::abs(r.read(i));
      }
      const double rel = norm / r0_norm;
      if constexpr (Metrics::enabled) metrics.residual_check_end();
      if (opts.record_history) {
        // `rel` sums racy relaxed reads of r that interleave with other
        // threads' writes: this point records the residual *as this thread
        // saw it*, not a consistent global norm. The serial post-run check
        // (final_rel_residual_1) is the trustworthy value.
        my_history.push_back({timer.seconds(), t, iter, rel});
      }
      const bool my_done =
          (opts.tolerance > 0.0 && rel <= opts.tolerance) ||
          iter >= opts.max_iterations;
      // racy-ok(flag): the paper's termination flags rest on racy residual
      // reads by design; the verification gate re-checks before stopping.
      flags[static_cast<std::size_t>(t)].store(my_done ? 1 : 0,
                                               std::memory_order_relaxed);
      if constexpr (Metrics::enabled) metrics.flag_update(my_done, iter);

      if (opts.synchronous) {
#pragma omp barrier
      }
      int done_count = 0;
      // racy-ok(flag): hint scan; a stale flag only defers verification.
      for (auto& f : flags) done_count += f.load(std::memory_order_relaxed);
      if (done_count == static_cast<int>(opts.num_threads)) {
        verify_and_maybe_stop();
      }
      if (opts.synchronous) {
        // Keep lockstep: every thread must pass the same number of
        // barriers, and all see the verified stop decision together.
#pragma omp barrier
      }
      if constexpr (Metrics::enabled) metrics.iteration_end(iter - 1, hi - lo);
      if constexpr (Stream::enabled) {
        if (stream.due(iter)) {
          stream.publish(iter, hi - lo, last_own_norm,
                         sampled ? static_cast<std::uint64_t>(iter) *
                                       static_cast<std::uint64_t>(hi - lo)
                                 : 0);
        }
      }
      // racy-ok(stop): monotonic 0 -> 1, polled.
      if (opts.yield &&
          stop.load(std::memory_order_relaxed) == 0) {
        sched_yield();
      }
    }
    if constexpr (Stream::enabled) {
      // Terminal beacon: the monitor always sees this thread's final state
      // even when the last iteration missed the stride.
      stream.finish(iter, hi - lo, last_own_norm,
                    sampled ? static_cast<std::uint64_t>(iter) *
                                  static_cast<std::uint64_t>(hi - lo)
                            : 0);
    }
    result.iterations_per_thread[static_cast<std::size_t>(t)] = iter;
    if constexpr (Metrics::enabled) {
      if (sampled) metrics.policy_counts(pick_counts);
    }
    if constexpr (Faults::enabled) {
      fault_logs[static_cast<std::size_t>(t)] = faults.take_log();
    }
    AJAC_TSAN_RELEASE(&result);
  }
  AJAC_TSAN_ACQUIRE(&result);

  result.seconds = timer.seconds();
  result.x.resize(static_cast<std::size_t>(n));
  x.snapshot(result.x);

  // Independent serial verification of the final residual.
  Vector final_r(static_cast<std::size_t>(n));
  a.residual(result.x, b, final_r);
  result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;

  // A thread descheduled mid-iteration may have committed a stale update
  // after the verified stop; polish sequentially until the tolerance
  // verifiably holds (bounded — the state is near the fixed point).
  if (opts.final_polish && opts.tolerance > 0.0 &&
      result.final_rel_residual_1 > opts.tolerance) {
    [[maybe_unused]] double polish_t0_us = 0.0;
    if constexpr (Metrics::enabled) polish_t0_us = timer.seconds() * 1e6;
    const index_t polish_cap = 20 * opts.num_threads + 200;
    while (result.polish_sweeps < polish_cap &&
           result.final_rel_residual_1 > opts.tolerance) {
      for (index_t i = 0; i < n; ++i) {
        result.x[i] += inv_diag[i] * final_r[i];
      }
      a.residual(result.x, b, final_r);
      result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;
      ++result.polish_sweeps;
    }
    if constexpr (Metrics::enabled) {
      obs::ActorSlot& slot0 = opts.metrics->actor(0);
      // Post-join epilogue: the workers are gone, this thread owns slot 0.
      slot0.owner.assert_held();
      slot0.add(obs::Counter::kPolishSweeps,
                static_cast<std::uint64_t>(result.polish_sweeps));
      slot0.span(obs::TraceKind::kPolish, polish_t0_us,
                 timer.seconds() * 1e6, result.polish_sweeps);
    }
  }
  if constexpr (Metrics::enabled) {
    // The whole solve (parallel phase + serial verification + polish) as
    // one span on actor 0's lane. Post-join: this thread owns the slot.
    obs::ActorSlot& slot0 = opts.metrics->actor(0);
    slot0.owner.assert_held();
    slot0.span(obs::TraceKind::kSolve, 0.0, timer.seconds() * 1e6);
  }
  result.converged =
      opts.tolerance > 0.0 && result.final_rel_residual_1 <= opts.tolerance;
  for (index_t t = 0; t < opts.num_threads; ++t) {
    result.total_relaxations +=
        result.iterations_per_thread[static_cast<std::size_t>(t)] *
        part.part_size(t);
  }

  for (auto& h : histories) {
    result.history.insert(result.history.end(), h.begin(), h.end());
  }
  std::sort(result.history.begin(), result.history.end(),
            [](const SharedHistoryPoint& p1, const SharedHistoryPoint& p2) {
              return p1.seconds < p2.seconds;
            });

  if (opts.record_trace) {
    model::RelaxationTrace trace(n);
    // Per-row order is preserved because each row belongs to one thread
    // and threads append their events in execution order.
    for (const auto& events : thread_events) {
      for (const auto& e : events) trace.add_event(e);
    }
    result.trace = std::move(trace);
  }
  if constexpr (Faults::enabled) {
    for (auto& log : fault_logs) {
      result.fault_events.insert(result.fault_events.end(), log.begin(),
                                 log.end());
    }
    fault::canonicalize(result.fault_events);
  }
  return result;
}

/// Fold the runtime kernel choice into the compile-time Blocked flag, so
/// the faults/metrics dispatch below stays a flat 2x2 (x stream).
template <class Faults, class Metrics, class Stream>
SharedResult dispatch_kernel(const CsrMatrix& a, const Vector& b,
                             const Vector& x0, const SharedOptions& opts,
                             const partition::Partition& part,
                             const Vector& inv_diag,
                             const fault::FaultPlan* plan,
                             const BlockedCsr* blocked, const SellCsr* sell,
                             SharedF32Vector* shadow) {
  if (blocked != nullptr) {
    return solve_shared_impl<Faults, Metrics, Stream, true>(
        a, b, x0, opts, part, inv_diag, plan, blocked, sell, shadow);
  }
  return solve_shared_impl<Faults, Metrics, Stream, false>(
      a, b, x0, opts, part, inv_diag, plan, nullptr, nullptr, nullptr);
}

/// Fold the telemetry-hub choice into the Stream hook axis; the null path
/// instantiates NullStream, whose hooks compile away entirely.
template <class Faults, class Metrics>
SharedResult dispatch_stream(const CsrMatrix& a, const Vector& b,
                             const Vector& x0, const SharedOptions& opts,
                             const partition::Partition& part,
                             const Vector& inv_diag,
                             const fault::FaultPlan* plan,
                             const BlockedCsr* blocked, const SellCsr* sell,
                             SharedF32Vector* shadow) {
  if (opts.stream != nullptr) {
    return dispatch_kernel<Faults, Metrics, ActiveStream>(
        a, b, x0, opts, part, inv_diag, plan, blocked, sell, shadow);
  }
  return dispatch_kernel<Faults, Metrics, NullStream>(
      a, b, x0, opts, part, inv_diag, plan, blocked, sell, shadow);
}

}  // namespace

SharedResult solve_shared(const CsrMatrix& a, const Vector& b,
                          const Vector& x0, const SharedOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(opts.num_threads >= 1);
  AJAC_CHECK(opts.max_iterations >= 1);
  if (!opts.delay_us.empty()) {
    AJAC_CHECK(opts.delay_us.size() ==
               static_cast<std::size_t>(opts.num_threads));
  }
  AJAC_CHECK_MSG(!(opts.local_gauss_seidel && opts.synchronous),
                 "the in-place local sweep is only meaningful without "
                 "barriers (asynchronous mode)");
  AJAC_CHECK_MSG(!(opts.local_gauss_seidel && opts.record_trace),
                 "read-version traces assume the Jacobi local sweep");
  AJAC_CHECK_MSG(!(is_sampled(opts.policy) && opts.synchronous),
                 "sampled row policies relax in place and have no "
                 "synchronous meaning (asynchronous mode only)");
  AJAC_CHECK_MSG(!(is_sampled(opts.policy) && opts.local_gauss_seidel),
                 "sampled row policies define their own in-place schedule; "
                 "local_gauss_seidel does not compose with them");
  AJAC_CHECK_MSG(opts.weight_refresh >= 1,
                 "weight_refresh must be a positive iteration cadence");
  const bool sellcs = opts.kernel == KernelKind::kSellCS;
  AJAC_CHECK_MSG(!(sellcs && opts.record_trace),
                 "kSellCS amortizes ghost reads into per-iteration buffer "
                 "refreshes; per-read version traces need kBlocked or "
                 "kReference");
  AJAC_CHECK_MSG(!(sellcs && opts.local_gauss_seidel),
                 "the in-place local sweep reads its own fresh updates "
                 "row-by-row; the SELL repack relaxes rows out of order "
                 "(use kBlocked)");
  AJAC_CHECK_MSG(!(sellcs && is_sampled(opts.policy)),
                 "sampled row policies relax drawn rows in place; the SELL "
                 "interior relaxes whole chunks (use kBlocked)");
  AJAC_CHECK_MSG(
      !(opts.ghost_precision == GhostPrecision::kFp32 && !sellcs),
      "fp32 ghost publication is part of the kSellCS data plane; the "
      "blocked and reference kernels read the fp64 vector per entry");

  const partition::Partition part =
      opts.partition.value_or(partition::contiguous_partition(
          n, opts.num_threads));
  AJAC_CHECK(part.num_parts() == opts.num_threads);
  AJAC_CHECK(part.num_rows() == n);

  // Debug invariant layer: full structural audit of the inputs before the
  // threads start (compiled out in release builds).
  AJAC_DBG_VALIDATE(validate::csr_structure(
      a, {.require_sorted_rows = true, .require_diagonal = true,
          .require_finite = true, .require_square = true}));
  AJAC_DBG_VALIDATE(partition::validate(part, n));
  AJAC_DBG_VALIDATE(validate::finite(b, "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0, "x0"));

  Vector inv_diag = a.diagonal();
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(inv_diag[i] != 0.0, "zero diagonal at row " << i);
    inv_diag[i] = 1.0 / inv_diag[i];
  }

  const fault::FaultPlan* plan =
      opts.fault_plan && !opts.fault_plan->empty() ? opts.fault_plan.get()
                                                   : nullptr;
  if (plan != nullptr) {
    AJAC_CHECK_MSG(!opts.synchronous,
                   "fault injection targets the asynchronous runtime (the "
                   "synchronous barriers serialize every fault away)");
    AJAC_CHECK_MSG(!sellcs,
                   "fault injection is defined per shared read; the kSellCS "
                   "buffered data plane amortizes those reads away (use "
                   "kBlocked)");
    plan->validate(opts.num_threads);
  }

  obs::MetricsRegistry* metrics = opts.metrics;
  if (metrics != nullptr) {
    metrics->set_actor_kind("thread");
    // Hint: one iteration span per local iteration plus a handful of
    // instants; reserving here keeps the timed loop reallocation-free.
    metrics->reset(opts.num_threads,
                   static_cast<std::size_t>(opts.max_iterations) + 64);
  }

  // The blocked layout is built once per solve, before the threads start
  // (its constructor runs its own first-touch parallel fill). Construction
  // is O(nnz) with a binary search only on ghost entries.
  std::optional<BlockedCsr> blocked_a;
  if (opts.kernel != KernelKind::kReference) {
    blocked_a.emplace(a, std::span<const index_t>(part.block_starts));
  }
  const BlockedCsr* blocked = blocked_a ? &*blocked_a : nullptr;

  // kSellCS additions: the SELL interior repack (boundary rows keep
  // relaxing through the blocked layout) and, for fp32 ghosts, the float
  // shadow of x that neighbours refresh from. Both built before the
  // threads start; the shadow starts at x0 so the first refresh reads the
  // same values the blocked path would.
  std::optional<SellCsr> sell_a;
  if (sellcs) sell_a.emplace(*blocked_a);
  const SellCsr* sell = sell_a ? &*sell_a : nullptr;
  std::optional<SharedF32Vector> shadow_a;
  if (opts.ghost_precision == GhostPrecision::kFp32) {
    shadow_a.emplace(n);
    // Single-threaded setup: momentarily the sole writer (as for x and r).
    shadow_a->writer_role().assert_held();
    shadow_a->init(x0);
  }
  SharedF32Vector* shadow = shadow_a ? &*shadow_a : nullptr;

  if (opts.stream != nullptr) {
    opts.stream->begin_run(opts.num_threads, "thread", opts.tolerance,
                           obs::ResidualConvention::kOwnBlockSum,
                           /*sim_time=*/false);
  }

  // 2x2 (x2 kernel, x2 stream) dispatch: faults, metrics, and telemetry
  // each compile to no-ops when off, so the common (no plan, no registry,
  // no hub) path is exactly the plain solver.
  if (plan != nullptr && metrics != nullptr) {
    return dispatch_stream<ActiveFaults, ActiveMetrics>(
        a, b, x0, opts, part, inv_diag, plan, blocked, sell, shadow);
  }
  if (plan != nullptr) {
    return dispatch_stream<ActiveFaults, NullMetrics>(
        a, b, x0, opts, part, inv_diag, plan, blocked, sell, shadow);
  }
  if (metrics != nullptr) {
    return dispatch_stream<NullFaults, ActiveMetrics>(
        a, b, x0, opts, part, inv_diag, nullptr, blocked, sell, shadow);
  }
  return dispatch_stream<NullFaults, NullMetrics>(
      a, b, x0, opts, part, inv_diag, nullptr, blocked, sell, shadow);
}

}  // namespace ajac::runtime
