#include "ajac/runtime/shared_jacobi.hpp"

#include <omp.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <span>
#include <utility>

#include "ajac/obs/metrics.hpp"
#include "ajac/runtime/blocked_kernels.hpp"
#include "ajac/runtime/shared_vector.hpp"
#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"

namespace ajac::runtime {

namespace {

// FlippedEntry lives in blocked_kernels.hpp now: the blocked kernels apply
// the same transient corruption the reference loops below do.

/// Fault context for the default (no plan) path. `enabled` is false and
/// every hook site in solve_shared_impl is `if constexpr`-guarded, so this
/// instantiation compiles to exactly the pre-fault solver: the zero-fault
/// path carries no fault branches at all.
struct NullFaults {
  static constexpr bool enabled = false;

  NullFaults(const CsrMatrix& /*a*/, const Vector& /*x0*/,
             const fault::FaultPlan* /*plan*/, index_t /*thread*/,
             index_t /*lo*/, index_t /*hi*/, SharedVector& /*x*/) {}

  void begin_iteration(index_t /*iter*/) {}
  [[nodiscard]] bool consume_state_reset() { return false; }
  bool flip(index_t /*row*/, std::span<const index_t> /*cols*/,
            std::span<const double> /*vals*/, FlippedEntry& /*out*/) {
    return false;
  }
  [[nodiscard]] double read(const SharedVector& x, index_t j) const {
    return x.read(j);
  }
  [[nodiscard]] std::pair<double, index_t> read_versioned(
      const SharedVector& x, index_t j, std::uint64_t* retries) const {
    return x.read_versioned(j, retries);
  }
  [[nodiscard]] fault::FaultLog take_log() { return {}; }
};

/// Per-thread fault injector. All state is thread-local; every decision is
/// a FaultClock hash of (seed, thread, iteration[, row]), so the injected
/// sequence is independent of how the OS interleaves the threads.
class ActiveFaults {
 public:
  static constexpr bool enabled = true;

  ActiveFaults(const CsrMatrix& a, const Vector& x0,
               const fault::FaultPlan* plan, index_t thread, index_t lo,
               index_t hi, SharedVector& x)
      : clock_(plan->seed), x0_(&x0), x_(&x), thread_(thread), lo_(lo),
        hi_(hi) {
    for (const auto& s : plan->stragglers) {
      if (s.actor == thread) straggler_ = &s;
    }
    for (const auto& s : plan->stale_reads) {
      if (s.actor == thread || s.actor == -1) stale_ = &s;
    }
    for (const auto& s : plan->crashes) {
      if (s.actor == thread) crash_ = &s;
    }
    for (const auto& s : plan->bit_flips) {
      if (s.actor == thread || s.actor == -1) flips_.push_back(&s);
    }
    if (stale_ != nullptr) {
      // The off-block columns this thread's rows read — the "ghost layer"
      // a stale window freezes. Own-block reads (including the in-place
      // Gauss-Seidel sweep) always see live values.
      for (index_t i = lo; i < hi; ++i) {
        for (const index_t j : a.row_cols(i)) {
          if (j < lo || j >= hi) ghost_cols_.push_back(j);
        }
      }
      std::sort(ghost_cols_.begin(), ghost_cols_.end());
      ghost_cols_.erase(std::unique(ghost_cols_.begin(), ghost_cols_.end()),
                        ghost_cols_.end());
      ghost_values_.resize(ghost_cols_.size());
      ghost_versions_.assign(ghost_cols_.size(), 0);
    }
  }

  /// Straggler stall, crash-and-recover, and stale-window bookkeeping, in
  /// that order, at the top of local iteration `iter`.
  void begin_iteration(index_t iter) {
    iter_ = iter;
    if (straggler_ != nullptr) {
      const bool on =
          fault::duty_active(straggler_->period, straggler_->duty, iter);
      if (on && !straggler_on_) {
        log_.push_back({fault::FaultKind::kStragglerOn, thread_, iter, 0, 0});
      }
      straggler_on_ = on;
      if (on) {
        spin_wait_us(straggler_->extra_delay_us);
        stalled_us_ += straggler_->extra_delay_us;
      }
    }
    if (crash_ != nullptr && !crashed_ && iter >= crash_->crash_iteration) {
      // A crash in shared memory is a worker that stops participating for
      // dead_seconds and then resumes — optionally from the initial guess
      // on its rows (lost memory). The blocking wait is exactly that: no
      // relaxations, no flag updates, neighbors keep reading its last
      // published values.
      crashed_ = true;
      log_.push_back({fault::FaultKind::kCrash, thread_, iter, 0, 0});
      spin_wait_us(crash_->dead_seconds * 1e6);
      stalled_us_ += crash_->dead_seconds * 1e6;
      if (crash_->reset_state_on_recovery) {
        for (index_t i = lo_; i < hi_; ++i) x_->write(i, (*x0_)[i]);
        // The write went behind any thread-private mirror of the own rows;
        // the blocked kernel path polls consume_state_reset() and reloads.
        state_reset_ = true;
      }
      log_.push_back({fault::FaultKind::kRecover, thread_, iter, 0, 0});
    }
    if (stale_ != nullptr) {
      const bool on = fault::duty_active(stale_->period, stale_->duty, iter);
      if (on && !stale_on_) {
        log_.push_back({fault::FaultKind::kStaleWindowOn, thread_, iter, 0, 0});
        for (std::size_t k = 0; k < ghost_cols_.size(); ++k) {
          if (x_->traced()) {
            const auto [value, version] = x_->read_versioned(ghost_cols_[k]);
            ghost_values_[k] = value;
            ghost_versions_[k] = version;
          } else {
            ghost_values_[k] = x_->read(ghost_cols_[k]);
          }
        }
      }
      stale_on_ = on;
    }
  }

  /// True exactly once after a crash recovery rewrote this thread's rows of
  /// the shared x from the initial guess (lost memory). Consuming clears it.
  [[nodiscard]] bool consume_state_reset() {
    return std::exchange(state_reset_, false);
  }

  /// Transient bit flip for this (iteration, row): returns true and fills
  /// `out` when one off-diagonal entry should be read corrupted.
  bool flip(index_t row, std::span<const index_t> cols,
            std::span<const double> vals, FlippedEntry& out) {
    for (const fault::BitFlipSpec* s : flips_) {
      if (iter_ < s->first_iteration || iter_ >= s->last_iteration) continue;
      if (!clock_.bernoulli(s->probability, fault::FaultClock::kBitFlipTrigger,
                            static_cast<std::uint64_t>(thread_),
                            static_cast<std::uint64_t>(iter_),
                            static_cast<std::uint64_t>(row))) {
        continue;
      }
      std::size_t off_diag = 0;
      for (const index_t j : cols) off_diag += (j != row) ? 1 : 0;
      if (off_diag == 0) continue;
      const std::uint64_t target =
          clock_.pick(off_diag, fault::FaultClock::kBitFlipEntry,
                      static_cast<std::uint64_t>(thread_),
                      static_cast<std::uint64_t>(iter_),
                      static_cast<std::uint64_t>(row));
      std::uint64_t seen = 0;
      std::size_t entry = 0;
      for (std::size_t p = 0; p < cols.size(); ++p) {
        if (cols[p] == row) continue;
        if (seen++ == target) {
          entry = p;
          break;
        }
      }
      const int bit =
          s->bit >= 0
              ? s->bit
              : static_cast<int>(clock_.pick(
                    52, fault::FaultClock::kBitFlipBit,
                    static_cast<std::uint64_t>(thread_),
                    static_cast<std::uint64_t>(iter_),
                    static_cast<std::uint64_t>(row)));
      out.entry = entry;
      out.value = fault::flip_bit(vals[entry], bit);
      log_.push_back({fault::FaultKind::kBitFlip, thread_, iter_, row,
                      static_cast<index_t>(bit)});
      return true;
    }
    return false;
  }

  /// Reads go through the injector: inside a stale window, off-block
  /// columns come from the frozen snapshot instead of the live vector.
  [[nodiscard]] double read(const SharedVector& x, index_t j) const {
    if (stale_on_ && (j < lo_ || j >= hi_)) {
      return ghost_values_[ghost_slot(j)];
    }
    return x.read(j);
  }

  [[nodiscard]] std::pair<double, index_t> read_versioned(
      const SharedVector& x, index_t j, std::uint64_t* retries) const {
    if (stale_on_ && (j < lo_ || j >= hi_)) {
      const std::size_t k = ghost_slot(j);
      return {ghost_values_[k], ghost_versions_[k]};
    }
    return x.read_versioned(j, retries);
  }

  /// Append-only within the thread; the metrics layer diffs its size to
  /// timestamp this iteration's injections.
  [[nodiscard]] const fault::FaultLog& log() const { return log_; }

  /// Cumulative injected stall (straggler delays + crash dead time), in
  /// microseconds; the metrics layer diffs it per iteration.
  [[nodiscard]] double stalled_us() const { return stalled_us_; }

  [[nodiscard]] fault::FaultLog take_log() { return std::move(log_); }

 private:
  [[nodiscard]] std::size_t ghost_slot(index_t j) const {
    const auto it =
        std::lower_bound(ghost_cols_.begin(), ghost_cols_.end(), j);
    AJAC_DBG_CHECK(it != ghost_cols_.end() && *it == j);
    return static_cast<std::size_t>(it - ghost_cols_.begin());
  }

  fault::FaultClock clock_;
  const Vector* x0_;
  SharedVector* x_;
  index_t thread_;
  index_t lo_;
  index_t hi_;
  index_t iter_ = 0;

  const fault::StragglerSpec* straggler_ = nullptr;
  const fault::StaleReadSpec* stale_ = nullptr;
  const fault::CrashSpec* crash_ = nullptr;
  std::vector<const fault::BitFlipSpec*> flips_;

  bool straggler_on_ = false;
  bool stale_on_ = false;
  bool crashed_ = false;
  bool state_reset_ = false;
  double stalled_us_ = 0.0;

  std::vector<index_t> ghost_cols_;  ///< sorted off-block columns
  std::vector<double> ghost_values_;
  std::vector<index_t> ghost_versions_;

  fault::FaultLog log_;
};

/// Metrics context for the default (no registry) path. Mirrors NullFaults:
/// `enabled` is false and every hook site is `if constexpr`-guarded, so the
/// uninstrumented solve carries no metrics branches, no extra timer reads,
/// and produces bitwise the results of a build without the metrics layer.
struct NullMetrics {
  static constexpr bool enabled = false;

  NullMetrics(obs::MetricsRegistry* /*reg*/, index_t /*thread*/,
              const WallTimer& /*timer*/) {}

  void iteration_begin() {}
  void spin_wait(double /*us*/) {}
  template <class Faults>
  void sync_faults(const Faults& /*faults*/) {}
  void staleness(index_t /*iter*/, index_t /*version*/) {}
  void read_mix(index_t /*local_entries*/, index_t /*ghost_entries*/) {}
  [[nodiscard]] std::uint64_t* retry_sink() { return nullptr; }
  void residual_check_begin() {}
  void residual_check_end() {}
  void iteration_end(index_t /*iter*/, index_t /*rows*/) {}
  void flag_update(bool /*my_done*/, index_t /*iter*/) {}
  void stop_decided() {}
};

[[nodiscard]] obs::TraceKind fault_trace_kind(fault::FaultKind k) {
  switch (k) {
    case fault::FaultKind::kStragglerOn: return obs::TraceKind::kStragglerOn;
    case fault::FaultKind::kStaleWindowOn:
      return obs::TraceKind::kStaleWindowOn;
    case fault::FaultKind::kMessageDrop: return obs::TraceKind::kMessageDrop;
    case fault::FaultKind::kMessageDuplicate:
      return obs::TraceKind::kMessageDuplicate;
    case fault::FaultKind::kMessageReorder:
      return obs::TraceKind::kMessageReorder;
    case fault::FaultKind::kBitFlip: return obs::TraceKind::kBitFlip;
    case fault::FaultKind::kCrash: return obs::TraceKind::kCrash;
    case fault::FaultKind::kRecover: return obs::TraceKind::kRecover;
  }
  return obs::TraceKind::kBitFlip;  // unreachable
}

/// Per-thread recorder writing into this thread's ActorSlot. All state is
/// thread-local; the only shared object touched is the slot, which has a
/// single writer by the registry's threading contract.
class ActiveMetrics {
 public:
  static constexpr bool enabled = true;

  ActiveMetrics(obs::MetricsRegistry* reg, index_t thread,
                const WallTimer& timer)
      : slot_(&reg->actor(thread)), timer_(&timer) {}

  void iteration_begin() { t0_us_ = timer_->seconds() * 1e6; }

  /// Injected busy-wait (per-thread delay or straggler stall), attributed
  /// by duration rather than timed: the wait is synthetic and exact.
  void spin_wait(double us) {
    slot_->add(obs::Counter::kSpinWaitNs,
               static_cast<std::uint64_t>(us * 1e3));
  }

  /// Timestamp the injections the fault layer just performed. Its log is
  /// append-only within the thread, so entries past the last seen size are
  /// this iteration's; they become timeline instants (arg0 = the log
  /// entry's detail field: row for bit flips, 0 otherwise).
  template <class Faults>
  void sync_faults(const Faults& faults) {
    if constexpr (Faults::enabled) {
      const double stalled = faults.stalled_us();
      if (stalled > seen_stall_us_) {
        slot_->add(obs::Counter::kSpinWaitNs,
                   static_cast<std::uint64_t>((stalled - seen_stall_us_) *
                                              1e3));
        seen_stall_us_ = stalled;
      }
      const fault::FaultLog& log = faults.log();
      if (log.size() == seen_faults_) return;
      const double now_us = timer_->seconds() * 1e6;
      for (; seen_faults_ < log.size(); ++seen_faults_) {
        const fault::FaultEvent& e = log[seen_faults_];
        slot_->add(obs::Counter::kFaultEvents);
        slot_->instant(fault_trace_kind(e.kind), now_us, e.detail, e.detail2);
      }
    }
  }

  /// One cross-block versioned read: how many versions behind a synchronous
  /// schedule it was. Under lockstep Jacobi a reader in local iteration
  /// `iter` (0-based) sees version `iter` of every neighbor; the shortfall
  /// is the staleness l of the paper's Φ(l) propagation analysis.
  void staleness(index_t iter, index_t version) {
    const std::uint64_t lag =
        version < iter ? static_cast<std::uint64_t>(iter - version) : 0;
    slot_->record(obs::Hist::kReadStaleness, lag);
  }

  /// Blocked kernels only: how many matrix entries this iteration resolved
  /// from the thread-private mirror vs through the SharedVector. The counts
  /// are precomputed per block (local_nnz/ghost_nnz), so the hook costs two
  /// counter adds per iteration, nothing per entry. The reference path
  /// leaves both lanes at zero.
  void read_mix(index_t local_entries, index_t ghost_entries) {
    slot_->add(obs::Counter::kLocalReads,
               static_cast<std::uint64_t>(local_entries));
    slot_->add(obs::Counter::kGhostReads,
               static_cast<std::uint64_t>(ghost_entries));
  }

  /// Thread-local seqlock retry accumulator, flushed per iteration.
  [[nodiscard]] std::uint64_t* retry_sink() { return &retries_; }

  void residual_check_begin() { tr0_us_ = timer_->seconds() * 1e6; }
  void residual_check_end() {
    const double us = timer_->seconds() * 1e6 - tr0_us_;
    slot_->add(obs::Counter::kResidualCheckNs,
               static_cast<std::uint64_t>(us * 1e3));
    slot_->record(obs::Hist::kResidualCheckUs,
                  static_cast<std::uint64_t>(us));
  }

  void iteration_end(index_t iter, index_t rows) {
    const double t1_us = timer_->seconds() * 1e6;
    slot_->add(obs::Counter::kIterations);
    slot_->add(obs::Counter::kRelaxations, static_cast<std::uint64_t>(rows));
    if (retries_ != 0) {
      slot_->add(obs::Counter::kSeqlockRetries, retries_);
      retries_ = 0;
    }
    slot_->record(obs::Hist::kIterationUs,
                  static_cast<std::uint64_t>(t1_us - t0_us_));
    slot_->span(obs::TraceKind::kIteration, t0_us_, t1_us, iter);
  }

  void flag_update(bool my_done, index_t iter) {
    if (my_done == flag_up_) return;
    flag_up_ = my_done;
    const double now_us = timer_->seconds() * 1e6;
    if (my_done) {
      slot_->add(obs::Counter::kFlagRaises);
      slot_->instant(obs::TraceKind::kFlagRaise, now_us, iter);
    } else {
      slot_->instant(obs::TraceKind::kFlagLower, now_us, iter);
    }
  }

  void stop_decided() {
    slot_->instant(obs::TraceKind::kStop, timer_->seconds() * 1e6);
  }

 private:
  obs::ActorSlot* slot_;
  const WallTimer* timer_;
  double t0_us_ = 0.0;
  double tr0_us_ = 0.0;
  double seen_stall_us_ = 0.0;
  std::uint64_t retries_ = 0;
  std::size_t seen_faults_ = 0;
  bool flag_up_ = false;
};

template <class Faults, class Metrics, bool Blocked>
SharedResult solve_shared_impl(const CsrMatrix& a, const Vector& b,
                               const Vector& x0, const SharedOptions& opts,
                               const partition::Partition& part,
                               const Vector& inv_diag,
                               const fault::FaultPlan* plan,
                               const BlockedCsr* blocked) {
  const index_t n = a.num_rows();

  SharedVector x(n, opts.record_trace);
  SharedVector r(n, /*traced=*/false);
  x.init(x0);
  {
    Vector r0(static_cast<std::size_t>(n));
    a.residual(x0, b, r0);
    r.init(r0);
  }
  const double r0_norm = [&] {
    Vector tmp(static_cast<std::size_t>(n));
    a.residual(x0, b, tmp);
    const double nrm = vec::norm1(tmp);
    return nrm > 0.0 ? nrm : 1.0;
  }();

  std::vector<std::atomic<int>> flags(
      static_cast<std::size_t>(opts.num_threads));
  for (auto& f : flags) f.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<index_t>> iter_counts(
      static_cast<std::size_t>(opts.num_threads));
  for (auto& c : iter_counts) c.store(0, std::memory_order_relaxed);
  std::atomic<int> stop{0};

  SharedResult result;
  result.iterations_per_thread.assign(
      static_cast<std::size_t>(opts.num_threads), 0);
  std::vector<std::vector<SharedHistoryPoint>> histories(
      static_cast<std::size_t>(opts.num_threads));
  std::vector<std::vector<model::RelaxationEvent>> thread_events(
      static_cast<std::size_t>(opts.num_threads));
  std::vector<fault::FaultLog> fault_logs(
      static_cast<std::size_t>(opts.num_threads));

  WallTimer timer;

  // OpenMP fork/join synchronization happens inside libgomp (futexes TSan
  // cannot see); hand TSan the happens-before edges explicitly. Everything
  // crossing threads *inside* the region is std::atomic and needs nothing.
  AJAC_TSAN_RELEASE(&result);

#pragma omp parallel num_threads(static_cast<int>(opts.num_threads))
  {
    AJAC_TSAN_ACQUIRE(&result);
    const auto t = static_cast<index_t>(omp_get_thread_num());
    const index_t lo = part.part_begin(t);
    const index_t hi = part.part_end(t);
    const double delay =
        opts.delay_us.empty() ? 0.0 : opts.delay_us[static_cast<std::size_t>(t)];
    // Relax->commit carrier for the reference kernels. The blocked kernels
    // need no private carrier: each thread is the sole writer of its own
    // rows of the shared r, so the residual published during step 1 reads
    // back bit-exact in commit_block.
    std::vector<double> local_r(
        Blocked ? std::size_t{0} : static_cast<std::size_t>(hi - lo));
    auto& my_history = histories[static_cast<std::size_t>(t)];
    auto& my_events = thread_events[static_cast<std::size_t>(t)];
    if (opts.record_history) {
      // Reserve outside the timed loop: a reallocating push_back inside the
      // relaxation loop would stall this thread mid-run and perturb the
      // asynchronous interleaving being measured. Threads can run past
      // max_iterations (they keep relaxing until every flag is up), so this
      // is a hint, not a bound.
      my_history.reserve(static_cast<std::size_t>(opts.max_iterations) + 64);
    }
    Faults faults(a, x0, plan, t, lo, hi, x);
    Metrics metrics(opts.metrics, t, timer);

    // Blocked path: thread-private mirror of the own rows, allocated and
    // filled here so the owning thread first-touches its own pages.
    [[maybe_unused]] const BlockedCsr::Block* blk = nullptr;
    [[maybe_unused]] OwnBlockState own;
    if constexpr (Blocked) {
      blk = &blocked->block(t);
      refresh_own_block(*blk, x, own);
    }

    // Verification gate: the flag array is based on racy reads of the
    // shared residual, which can be arbitrarily stale when threads are
    // oversubscribed on few cores. Before actually stopping, recompute a
    // fresh global residual from the current shared x (or check the true
    // iteration counters); only a verified check may raise `stop`.
    auto verify_and_maybe_stop = [&]() {
      bool all_at_max = true;
      for (auto& c : iter_counts) {
        if (c.load(std::memory_order_relaxed) < opts.max_iterations) {
          all_at_max = false;
          break;
        }
      }
      bool tol_met = false;
      if (!all_at_max && opts.tolerance > 0.0) {
        double fresh = 0.0;
        for (index_t i = 0; i < n; ++i) {
          double acc = b[i];
          const auto [cols, vals] = a.row(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            acc -= vals[p] * x.read(cols[p]);
          }
          fresh += std::abs(acc);
        }
        tol_met = fresh / r0_norm <= opts.tolerance;
      }
      if (all_at_max || tol_met) {
        stop.store(1, std::memory_order_relaxed);
        if constexpr (Metrics::enabled) metrics.stop_decided();
      }
    };

    index_t iter = 0;
    while (stop.load(std::memory_order_relaxed) == 0) {
      if constexpr (Metrics::enabled) metrics.iteration_begin();
      if (delay > 0.0) {
        spin_wait_us(delay);
        if constexpr (Metrics::enabled) metrics.spin_wait(delay);
      }
      if constexpr (Faults::enabled) faults.begin_iteration(iter);
      if constexpr (Faults::enabled && Blocked) {
        // A crash recovery with state reset rewrote the shared x on the own
        // rows behind the mirror; reload it (versions included) before any
        // kernel reads through it.
        if (faults.consume_state_reset()) refresh_own_block(*blk, x, own);
      }
      if constexpr (Metrics::enabled) metrics.sync_faults(faults);

      // Step 1: residual on own rows from the shared (racy) x.
      if (opts.local_gauss_seidel) {
        // In-place forward sweep: each row's update is visible to the
        // following rows (and to other threads) immediately.
        if constexpr (Blocked) {
          relax_block_gs(*blk, a, b, own, x, r, faults);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            for (std::size_t pp = 0; pp < cols.size(); ++pp) {
              double aij = vals[pp];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == pp) aij = flipped.value;
              }
              acc -= aij * faults.read(x, cols[pp]);
            }
            local_r[i - lo] = acc;
            r.write(i, acc);
            x.write(i, x.read(i) + inv_diag[i] * acc);
          }
        }
      } else if (opts.record_trace) {
        if constexpr (Blocked) {
          relax_traced(*blk, a, b, own, x, faults, metrics, iter, r,
                       my_events);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            model::RelaxationEvent event;
            event.row = i;
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            event.reads.reserve(cols.size());
            for (std::size_t p = 0; p < cols.size(); ++p) {
              const index_t j = cols[p];
              double aij = vals[p];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == p) aij = flipped.value;
              }
              if (j == i) {
                acc -= aij *
                       faults.read_versioned(x, j, metrics.retry_sink()).first;
                continue;
              }
              const auto [value, version] =
                  faults.read_versioned(x, j, metrics.retry_sink());
              acc -= aij * value;
              if constexpr (Metrics::enabled) metrics.staleness(iter, version);
              event.reads.push_back({j, version});
            }
            local_r[i - lo] = acc;
            my_events.push_back(std::move(event));
          }
        }
      } else {
        if constexpr (Blocked) {
          relax_interior(*blk, a, b, own, faults, r);
          relax_boundary(*blk, a, b, own, x, faults, r);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            double acc = b[i];
            const auto [cols, vals] = a.row(i);
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            for (std::size_t p = 0; p < cols.size(); ++p) {
              double aij = vals[p];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == p) aij = flipped.value;
              }
              acc -= aij * faults.read(x, cols[p]);
            }
            local_r[i - lo] = acc;
          }
        }
      }
      if constexpr (Metrics::enabled && Blocked) {
        metrics.read_mix(blk->local_nnz, blk->ghost_nnz);
      }
      if constexpr (!Blocked) {
        // The blocked kernels publish each row's residual to r as part of
        // step 1 (and the GS sweep writes it in-place on both paths); only
        // the reference Jacobi step needs this separate pass.
        if (!opts.local_gauss_seidel) {
          for (index_t i = lo; i < hi; ++i) r.write(i, local_r[i - lo]);
        }
      }

      if (opts.synchronous) {
#pragma omp barrier
      }

      // Step 2: correct own rows (already done in-place for the GS sweep).
      if (!opts.local_gauss_seidel) {
        if constexpr (Blocked) {
          commit_block(*blk, own, x, r);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            x.write(i, x.read(i) + inv_diag[i] * local_r[i - lo]);
          }
        }
      }
      ++iter;
      iter_counts[static_cast<std::size_t>(t)].store(
          iter, std::memory_order_relaxed);

      // Step 3: convergence check — norm of the whole shared residual
      // (racy reads, the paper's scheme).
      if constexpr (Metrics::enabled) metrics.residual_check_begin();
      double norm = 0.0;
      for (index_t i = 0; i < n; ++i) norm += std::abs(r.read(i));
      const double rel = norm / r0_norm;
      if constexpr (Metrics::enabled) metrics.residual_check_end();
      if (opts.record_history) {
        // `rel` sums racy relaxed reads of r that interleave with other
        // threads' writes: this point records the residual *as this thread
        // saw it*, not a consistent global norm. The serial post-run check
        // (final_rel_residual_1) is the trustworthy value.
        my_history.push_back({timer.seconds(), t, iter, rel});
      }
      const bool my_done =
          (opts.tolerance > 0.0 && rel <= opts.tolerance) ||
          iter >= opts.max_iterations;
      flags[static_cast<std::size_t>(t)].store(my_done ? 1 : 0,
                                               std::memory_order_relaxed);
      if constexpr (Metrics::enabled) metrics.flag_update(my_done, iter);

      if (opts.synchronous) {
#pragma omp barrier
      }
      int done_count = 0;
      for (auto& f : flags) done_count += f.load(std::memory_order_relaxed);
      if (done_count == static_cast<int>(opts.num_threads)) {
        verify_and_maybe_stop();
      }
      if (opts.synchronous) {
        // Keep lockstep: every thread must pass the same number of
        // barriers, and all see the verified stop decision together.
#pragma omp barrier
      }
      if constexpr (Metrics::enabled) metrics.iteration_end(iter - 1, hi - lo);
      if (opts.yield &&
          stop.load(std::memory_order_relaxed) == 0) {
        sched_yield();
      }
    }
    result.iterations_per_thread[static_cast<std::size_t>(t)] = iter;
    if constexpr (Faults::enabled) {
      fault_logs[static_cast<std::size_t>(t)] = faults.take_log();
    }
    AJAC_TSAN_RELEASE(&result);
  }
  AJAC_TSAN_ACQUIRE(&result);

  result.seconds = timer.seconds();
  result.x.resize(static_cast<std::size_t>(n));
  x.snapshot(result.x);

  // Independent serial verification of the final residual.
  Vector final_r(static_cast<std::size_t>(n));
  a.residual(result.x, b, final_r);
  result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;

  // A thread descheduled mid-iteration may have committed a stale update
  // after the verified stop; polish sequentially until the tolerance
  // verifiably holds (bounded — the state is near the fixed point).
  if (opts.final_polish && opts.tolerance > 0.0 &&
      result.final_rel_residual_1 > opts.tolerance) {
    [[maybe_unused]] double polish_t0_us = 0.0;
    if constexpr (Metrics::enabled) polish_t0_us = timer.seconds() * 1e6;
    const index_t polish_cap = 20 * opts.num_threads + 200;
    while (result.polish_sweeps < polish_cap &&
           result.final_rel_residual_1 > opts.tolerance) {
      for (index_t i = 0; i < n; ++i) {
        result.x[i] += inv_diag[i] * final_r[i];
      }
      a.residual(result.x, b, final_r);
      result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;
      ++result.polish_sweeps;
    }
    if constexpr (Metrics::enabled) {
      obs::ActorSlot& slot0 = opts.metrics->actor(0);
      slot0.add(obs::Counter::kPolishSweeps,
                static_cast<std::uint64_t>(result.polish_sweeps));
      slot0.span(obs::TraceKind::kPolish, polish_t0_us,
                 timer.seconds() * 1e6, result.polish_sweeps);
    }
  }
  if constexpr (Metrics::enabled) {
    // The whole solve (parallel phase + serial verification + polish) as
    // one span on actor 0's lane.
    opts.metrics->actor(0).span(obs::TraceKind::kSolve, 0.0,
                                timer.seconds() * 1e6);
  }
  result.converged =
      opts.tolerance > 0.0 && result.final_rel_residual_1 <= opts.tolerance;
  for (index_t t = 0; t < opts.num_threads; ++t) {
    result.total_relaxations +=
        result.iterations_per_thread[static_cast<std::size_t>(t)] *
        part.part_size(t);
  }

  for (auto& h : histories) {
    result.history.insert(result.history.end(), h.begin(), h.end());
  }
  std::sort(result.history.begin(), result.history.end(),
            [](const SharedHistoryPoint& p1, const SharedHistoryPoint& p2) {
              return p1.seconds < p2.seconds;
            });

  if (opts.record_trace) {
    model::RelaxationTrace trace(n);
    // Per-row order is preserved because each row belongs to one thread
    // and threads append their events in execution order.
    for (const auto& events : thread_events) {
      for (const auto& e : events) trace.add_event(e);
    }
    result.trace = std::move(trace);
  }
  if constexpr (Faults::enabled) {
    for (auto& log : fault_logs) {
      result.fault_events.insert(result.fault_events.end(), log.begin(),
                                 log.end());
    }
    fault::canonicalize(result.fault_events);
  }
  return result;
}

/// Fold the runtime kernel choice into the compile-time Blocked flag, so
/// the faults/metrics dispatch below stays a flat 2x2.
template <class Faults, class Metrics>
SharedResult dispatch_kernel(const CsrMatrix& a, const Vector& b,
                             const Vector& x0, const SharedOptions& opts,
                             const partition::Partition& part,
                             const Vector& inv_diag,
                             const fault::FaultPlan* plan,
                             const BlockedCsr* blocked) {
  if (blocked != nullptr) {
    return solve_shared_impl<Faults, Metrics, true>(a, b, x0, opts, part,
                                                    inv_diag, plan, blocked);
  }
  return solve_shared_impl<Faults, Metrics, false>(a, b, x0, opts, part,
                                                   inv_diag, plan, nullptr);
}

}  // namespace

SharedResult solve_shared(const CsrMatrix& a, const Vector& b,
                          const Vector& x0, const SharedOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(opts.num_threads >= 1);
  AJAC_CHECK(opts.max_iterations >= 1);
  if (!opts.delay_us.empty()) {
    AJAC_CHECK(opts.delay_us.size() ==
               static_cast<std::size_t>(opts.num_threads));
  }
  AJAC_CHECK_MSG(!(opts.local_gauss_seidel && opts.synchronous),
                 "the in-place local sweep is only meaningful without "
                 "barriers (asynchronous mode)");
  AJAC_CHECK_MSG(!(opts.local_gauss_seidel && opts.record_trace),
                 "read-version traces assume the Jacobi local sweep");

  const partition::Partition part =
      opts.partition.value_or(partition::contiguous_partition(
          n, opts.num_threads));
  AJAC_CHECK(part.num_parts() == opts.num_threads);
  AJAC_CHECK(part.num_rows() == n);

  // Debug invariant layer: full structural audit of the inputs before the
  // threads start (compiled out in release builds).
  AJAC_DBG_VALIDATE(validate::csr_structure(
      a, {.require_sorted_rows = true, .require_diagonal = true,
          .require_finite = true, .require_square = true}));
  AJAC_DBG_VALIDATE(partition::validate(part, n));
  AJAC_DBG_VALIDATE(validate::finite(b, "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0, "x0"));

  Vector inv_diag = a.diagonal();
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(inv_diag[i] != 0.0, "zero diagonal at row " << i);
    inv_diag[i] = 1.0 / inv_diag[i];
  }

  const fault::FaultPlan* plan =
      opts.fault_plan && !opts.fault_plan->empty() ? opts.fault_plan.get()
                                                   : nullptr;
  if (plan != nullptr) {
    AJAC_CHECK_MSG(!opts.synchronous,
                   "fault injection targets the asynchronous runtime (the "
                   "synchronous barriers serialize every fault away)");
    plan->validate(opts.num_threads);
  }

  obs::MetricsRegistry* metrics = opts.metrics;
  if (metrics != nullptr) {
    metrics->set_actor_kind("thread");
    // Hint: one iteration span per local iteration plus a handful of
    // instants; reserving here keeps the timed loop reallocation-free.
    metrics->reset(opts.num_threads,
                   static_cast<std::size_t>(opts.max_iterations) + 64);
  }

  // The blocked layout is built once per solve, before the threads start
  // (its constructor runs its own first-touch parallel fill). Construction
  // is O(nnz) with a binary search only on ghost entries.
  std::optional<BlockedCsr> blocked_a;
  if (opts.kernel == KernelKind::kBlocked) {
    blocked_a.emplace(a, std::span<const index_t>(part.block_starts));
  }
  const BlockedCsr* blocked = blocked_a ? &*blocked_a : nullptr;

  // 2x2 (x2 for the kernel choice) dispatch: faults and metrics each
  // compile to no-ops when off, so the common (no plan, no registry) path
  // is exactly the plain solver.
  if (plan != nullptr && metrics != nullptr) {
    return dispatch_kernel<ActiveFaults, ActiveMetrics>(a, b, x0, opts, part,
                                                        inv_diag, plan,
                                                        blocked);
  }
  if (plan != nullptr) {
    return dispatch_kernel<ActiveFaults, NullMetrics>(a, b, x0, opts, part,
                                                      inv_diag, plan, blocked);
  }
  if (metrics != nullptr) {
    return dispatch_kernel<NullFaults, ActiveMetrics>(a, b, x0, opts, part,
                                                      inv_diag, nullptr,
                                                      blocked);
  }
  return dispatch_kernel<NullFaults, NullMetrics>(a, b, x0, opts, part,
                                                  inv_diag, nullptr, blocked);
}

}  // namespace ajac::runtime
