#pragma once
// Shared value array for the *batched* asynchronous shared-memory runtime:
// the multi-RHS analogue of SharedVector (see shared_vector.hpp for the
// base memory-model discussion).
//
// Layout matches sparse::MultiVector — row-major n x k with a padded lead
// dimension — so a relaxation of row i touches k contiguous atomic
// doubles. Plain reads and writes stay per-lane relaxed atomics: races
// are intended, exactly as in the scalar runtime, and each lane c is an
// independent instance of the paper's scheme.
//
// The seqlock, however, is per ROW, not per element. The single-writer
// contract of the runtime is per-row ownership, and a batched writer
// publishes all k lanes of row i in one protected interval:
//
//   writer:  seq[i].store(s+1, relaxed)        // open (odd)
//            values[i*lead + c].store(release)  for c = 0..k-1
//            seq[i].store(s+2, release)         // close (even)
//   reader:  s1 = seq[i].load(acquire); if (s1 odd) retry
//            v[c] = values[i*lead + c].load(acquire)  for c = 0..k-1
//            s2 = seq[i].load(relaxed); if (s1 != s2) retry
//
// One version number per row means all k columns share one version
// stream: a versioned read returns a k-wide row snapshot tagged with the
// single write count that produced *all* of it. That is exactly what the
// Sec. IV trace analysis needs — the batch path relaxes all k lanes of a
// row from one set of input reads, so "which update of row j did this
// relaxation consume" is a per-row question, and recording it per lane
// would add k-1 redundant counters per row while allowing the lanes of
// one recorded read to disagree. The acquire/release choreography is the
// per-element seqlock's (TSan-modelable, no fences), with the value
// acquire loads collectively standing in for the read fence: any lane
// load that observes a new value forces the trailing s2 load to observe
// the bumped sequence number and retry.
//
// Concurrency contract: any number of concurrent readers; at most one
// writer per row at a time. As in SharedVector, the writer side is
// machine-checked: init() and write_row() require the SoleWriterRole
// capability claimed via writer_role().assert_held(); readers need
// nothing. Rows are cache-line-aligned (base allocation
// via CacheAlignedAllocator + lead padding for k > 1), so per-thread row
// blocks never false-share; k = 1 keeps lead 1 and degenerates to the
// SharedVector layout and guarantees.

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "ajac/sparse/multi_vector.hpp"
#include "ajac/sparse/types.hpp"
#include "ajac/util/aligned.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"

namespace ajac::runtime {

class SharedMultiVector {
 public:
  SharedMultiVector(index_t n, index_t k, bool traced = false)
      : n_(n), k_(k), lead_(MultiVector::default_lead(k)), traced_(traced),
        values_(static_cast<std::size_t>(n) * static_cast<std::size_t>(lead_)) {
    AJAC_CHECK(n >= 0 && k >= 1);
    if (traced_) {
      seq_ = SeqArray(static_cast<std::size_t>(n));
      // racy-ok(init): single-threaded construction, no reader exists yet.
      for (auto& s : seq_) s.store(0, std::memory_order_relaxed);
    }
  }

  /// The sole-writer capability of this vector (see SharedVector).
  [[nodiscard]] const SoleWriterRole& writer_role() const
      AJAC_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  [[nodiscard]] index_t num_rows() const noexcept { return n_; }
  [[nodiscard]] index_t num_cols() const noexcept { return k_; }
  [[nodiscard]] bool traced() const noexcept { return traced_; }

  /// Single-threaded initialization (before the solve's threads start).
  void init(const MultiVector& x) AJAC_REQUIRES(writer_role_) {
    AJAC_DBG_CHECK(x.num_rows() == n_ && x.num_cols() == k_);
    for (index_t i = 0; i < n_; ++i) {
      const double* xr = x.row(i);
      std::atomic<double>* vr = row_ptr(i);
      for (index_t c = 0; c < k_; ++c) {
        // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
        vr[c].store(xr[c], std::memory_order_relaxed);
      }
    }
  }

  /// Plain racy read of one lane.
  [[nodiscard]] double read(index_t i, index_t c) const {
    AJAC_DBG_CHECK(in_range(i) && c >= 0 && c < k_);
    // racy-ok(intended-race): the paper's racy read, one lane.
    return row_ptr(i)[c].load(std::memory_order_relaxed);
  }

  /// Plain racy read of all k lanes of row i into `out`. The lanes are
  /// read independently (relaxed), so the row may be torn across a
  /// concurrent write — by contract that is fine on the untraced path,
  /// just as scalar reads may interleave arbitrarily with writes.
  void read_row(index_t i, std::span<double> out) const {
    AJAC_DBG_CHECK(in_range(i));
    AJAC_DBG_CHECK(out.size() == static_cast<std::size_t>(k_));
    const std::atomic<double>* vr = row_ptr(i);
    for (index_t c = 0; c < k_; ++c) {
      // racy-ok(intended-race): untraced row read; lanes may tear across a
      // concurrent write_row by contract.
      out[static_cast<std::size_t>(c)] =
          vr[c].load(std::memory_order_relaxed);
    }
  }

  /// Seqlock read: all k lanes of row i as one consistent snapshot, plus
  /// the row version that produced it. Only valid when traced. Retry
  /// discipline matches SharedVector::read_versioned (bounded spin, then
  /// yield); `retries` counts failed attempts for the metrics layer.
  index_t read_row_versioned(index_t i, std::span<double> out,
                             std::uint64_t* retries = nullptr) const {
    AJAC_DBG_CHECK(in_range(i));
    AJAC_DBG_CHECK(out.size() == static_cast<std::size_t>(k_));
    AJAC_DBG_CHECK_MSG(traced_,
                       "read_row_versioned on an untraced SharedMultiVector");
    const auto& seq = seq_[static_cast<std::size_t>(i)];
    const std::atomic<double>* vr = row_ptr(i);
    for (int spins = 0;; ++spins) {
      const std::int64_t s1 = seq.load(std::memory_order_acquire);
      if (!(s1 & 1)) {
        for (index_t c = 0; c < k_; ++c) {
          out[static_cast<std::size_t>(c)] =
              vr[c].load(std::memory_order_acquire);
        }
        // racy-ok(seqlock-validate): ordered after the lane reads by the
        // acquire value loads above.
        const std::int64_t s2 = seq.load(std::memory_order_relaxed);
        if (s1 == s2) return static_cast<index_t>(s1 / 2);
      }
      if (retries != nullptr) ++*retries;
      if (spins < kSpinLimit) {
        cpu_relax();
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  /// Publish all k lanes of row i. One seqlock interval covers the whole
  /// row, so the row version advances once per relaxation of row i no
  /// matter how many columns the batch carries.
  void write_row(index_t i, std::span<const double> v)
      AJAC_REQUIRES(writer_role_) {
    AJAC_DBG_CHECK(in_range(i));
    AJAC_DBG_CHECK(v.size() == static_cast<std::size_t>(k_));
    std::atomic<double>* vr = row_ptr(i);
    if (traced_) {
      auto& seq = seq_[static_cast<std::size_t>(i)];
      // racy-ok(seqlock-open): only the sole writer mutates the row's seq.
      const std::int64_t s = seq.load(std::memory_order_relaxed);
      AJAC_DBG_CHECK_MSG(
          !(s & 1), "concurrent writers on SharedMultiVector row " << i);
      // racy-ok(seqlock-open): opening (odd) store; a reader seeing it
      // retries, publication rides on the release stores below.
      seq.store(s + 1, std::memory_order_relaxed);
      for (index_t c = 0; c < k_; ++c) {
        vr[c].store(v[static_cast<std::size_t>(c)],
                    std::memory_order_release);
      }
      seq.store(s + 2, std::memory_order_release);
    } else {
      for (index_t c = 0; c < k_; ++c) {
        // racy-ok(intended-race): the paper's racy write (untraced path).
        vr[c].store(v[static_cast<std::size_t>(c)],
                    std::memory_order_relaxed);
      }
    }
  }

  /// Number of completed writes to row i (traced vectors only).
  [[nodiscard]] index_t version(index_t i) const {
    AJAC_DBG_CHECK(in_range(i));
    AJAC_DBG_CHECK(traced_);
    return static_cast<index_t>(
        seq_[static_cast<std::size_t>(i)].load(std::memory_order_acquire) /
        2);
  }

  void snapshot(MultiVector& out) const {
    AJAC_DBG_CHECK(out.num_rows() == n_ && out.num_cols() == k_);
    std::vector<double> row(static_cast<std::size_t>(k_));
    for (index_t i = 0; i < n_; ++i) {
      read_row(i, row);
      double* orow = out.row(i);
      for (index_t c = 0; c < k_; ++c) {
        orow[c] = row[static_cast<std::size_t>(c)];
      }
    }
  }

 private:
  static constexpr int kSpinLimit = 64;

  [[nodiscard]] bool in_range(index_t i) const noexcept { return i >= 0 && i < n_; }

  [[nodiscard]] std::atomic<double>* row_ptr(index_t i) {
    return values_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(lead_);
  }
  [[nodiscard]] const std::atomic<double>* row_ptr(index_t i) const {
    return values_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(lead_);
  }

  using ValueArray =
      std::vector<std::atomic<double>, CacheAlignedAllocator<std::atomic<double>>>;
  using SeqArray = std::vector<std::atomic<std::int64_t>,
                               CacheAlignedAllocator<std::atomic<std::int64_t>>>;

  index_t n_;
  index_t k_;
  index_t lead_;
  bool traced_;
  ValueArray values_;
  SeqArray seq_;
  SoleWriterRole writer_role_;
};

}  // namespace ajac::runtime
