#pragma once
// Shared value array for the asynchronous shared-memory runtime.
//
// This is the C++-legal form of the paper's relaxation scheme: "writing or
// reading an aligned double is atomic on modern Intel processors" (Sec. V)
// becomes an array of std::atomic<double> accessed with relaxed ordering.
// The races between plain read() and write() are *intended* — they are
// what makes the method asynchronous — and because every access is atomic
// they are benign under both the C++ memory model and ThreadSanitizer
// (relaxed atomics are never data races, so a TSan run needs no
// annotations here).
//
// When tracing is on, each entry carries a seqlock so a reader can pair a
// value with the write count ("version") that produced it, feeding the
// propagation-matrix analysis of Sec. IV-A/Fig. 2. The seqlock uses
// per-element acquire/release orderings rather than std::atomic_thread_fence:
// TSan does not model fences, but it models acquire/release accesses
// precisely, so this formulation is verifiable while the fence-based one is
// not (and tools/lint.sh bans raw fences outside ajac/util/annotate.hpp).
//
// Concurrency contract: any number of concurrent readers; at most one
// writer per element at a time (in the runtime each row has exactly one
// owning thread). A second concurrent writer to the same element would
// corrupt the seqlock protocol; debug builds assert against it.
//
// The writer side of that contract is machine-checked: init() and write()
// require the vector's SoleWriterRole capability (-Wthread-safety), which
// a worker claims with `x.writer_role().assert_held()` once the partition
// has made it the sole writer of its rows. Readers never need the role —
// concurrent racy reads are the point — so read()/read_versioned()/
// version()/snapshot() are unannotated.
//
// False sharing at block boundaries: the runtime partitions rows into
// contiguous per-thread blocks, so the only elements two threads both
// write are the ones on either side of a block boundary — and if those
// land in one 64-byte cache line, the neighbouring threads ping-pong that
// line on every relaxation even though they never write the same element.
// Both arrays therefore use CacheAlignedAllocator: the base address is
// line-aligned, so element 8m sits exactly on a line boundary and any
// boundary at a multiple of 8 rows (all equal-block partitions of the
// power-of-two bench problems) shares no lines at all; for odd-sized
// blocks at most the single straddling line is shared, never an
// accidental extra one from a misaligned base. SharedMultiVector gives
// the stronger guarantee — its padded lead makes every row a whole number
// of lines, so block boundaries (always row-granular) never share a line.

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "ajac/sparse/types.hpp"
#include "ajac/util/aligned.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"

namespace ajac::runtime {

class SharedVector {
 public:
  explicit SharedVector(index_t n, bool traced = false)
      : values_(static_cast<std::size_t>(n)), traced_(traced) {
    if (traced_) {
      seq_ = SeqArray(static_cast<std::size_t>(n));
      // racy-ok(init): single-threaded construction, no reader exists yet.
      for (auto& s : seq_) s.store(0, std::memory_order_relaxed);
    }
  }

  /// The sole-writer capability of this vector. The runtime's partition
  /// (one owning thread per row block) is what actually confers the role;
  /// claim it with writer_role().assert_held() before mutating.
  [[nodiscard]] const SoleWriterRole& writer_role() const
      AJAC_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  /// Single-threaded initialization (before the solve's threads start).
  void init(std::span<const double> x) AJAC_REQUIRES(writer_role_) {
    AJAC_DBG_CHECK(x.size() == values_.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
      values_[i].store(x[i], std::memory_order_relaxed);
    }
  }

  /// Plain racy read (the paper's scheme).
  [[nodiscard]] double read(index_t i) const {
    AJAC_DBG_CHECK(in_range(i));
    // racy-ok(intended-race): the paper's racy read; tearing-free because
    // the element is an aligned atomic double.
    return values_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Racy read for heuristic snapshots taken at an iteration boundary
  /// (the residual-weighted sampler's per-row |r_i| weights). Same load as
  /// read(), but under a distinct justification: the value steers *which*
  /// row is sampled next, never what is computed, so any momentarily stale
  /// element only biases the draw distribution. Reading once per refresh
  /// cadence — instead of per draw — is what fixes the latent staleness of
  /// weighting by the live rel_residual_1 values: within a refresh window
  /// the weights are a single consistent snapshot, so the draw sequence is
  /// a deterministic function of (seed, snapshot), not of the interleaving
  /// between draws.
  [[nodiscard]] double read_snapshot(index_t i) const {
    AJAC_DBG_CHECK(in_range(i));
    // racy-ok(weight-snapshot): heuristic sampling weight captured once per
    // refresh cadence; staleness biases row choice, never correctness.
    return values_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Read value + version consistently (seqlock). Only valid when traced.
  ///
  /// Retry discipline: a reader that observes a write in progress (odd
  /// sequence number) or a torn interval (s1 != s2) spins with a CPU relax
  /// hint for a bounded number of attempts, then yields the OS thread —
  /// on oversubscribed machines the writer may be descheduled mid-write
  /// and a bare busy-wait would burn its whole time slice.
  ///
  /// `retries`, when non-null, is incremented once per failed attempt —
  /// the seqlock contention signal the metrics layer reports. The counter
  /// must be thread-local to the caller (it is written without atomics).
  [[nodiscard]] std::pair<double, index_t> read_versioned(
      index_t i, std::uint64_t* retries = nullptr) const {
    AJAC_DBG_CHECK(in_range(i));
    AJAC_DBG_CHECK_MSG(traced_, "read_versioned on an untraced SharedVector");
    const auto& seq = seq_[static_cast<std::size_t>(i)];
    const auto& value = values_[static_cast<std::size_t>(i)];
    for (int spins = 0;; ++spins) {
      // Acquire pairs with the writer's release of the closing sequence
      // number: after seeing an even s1 we see the matching value.
      const std::int64_t s1 = seq.load(std::memory_order_acquire);
      if (!(s1 & 1)) {
        // The acquire load of the value keeps the s2 load below from being
        // reordered before it (this replaces the acquire fence of the
        // classic formulation), and pairs with the writer's release store
        // of the value: a reader that sees the new value must then see
        // s2 >= s1 + 1 and retry.
        const double v = value.load(std::memory_order_acquire);
        // racy-ok(seqlock-validate): the closing check may be relaxed — the
        // acquire value load above already orders it after the value read.
        const std::int64_t s2 = seq.load(std::memory_order_relaxed);
        if (s1 == s2) return {v, static_cast<index_t>(s1 / 2)};
      }
      if (retries != nullptr) ++*retries;
      if (spins < kSpinLimit) {
        cpu_relax();
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  void write(index_t i, double v) AJAC_REQUIRES(writer_role_) {
    AJAC_DBG_CHECK(in_range(i));
    if (traced_) {
      auto& seq = seq_[static_cast<std::size_t>(i)];
      // racy-ok(seqlock-open): only the sole writer mutates seq, so its own
      // last store is the only thing this load can observe.
      const std::int64_t s = seq.load(std::memory_order_relaxed);
      AJAC_DBG_CHECK_MSG(!(s & 1),
                         "concurrent writers on SharedVector element " << i);
      // racy-ok(seqlock-open): opening (odd) store needs no release — a
      // reader seeing it simply retries; the value + closing stores below
      // carry the publication.
      seq.store(s + 1, std::memory_order_relaxed);
      // Release: a reader that acquires this value also sees the odd
      // sequence number above, so it cannot pair the new value with the
      // old version (replaces the release fence of the classic seqlock).
      values_[static_cast<std::size_t>(i)].store(v,
                                                 std::memory_order_release);
      seq.store(s + 2, std::memory_order_release);
    } else {
      // racy-ok(intended-race): the paper's racy write (untraced path).
      values_[static_cast<std::size_t>(i)].store(v,
                                                 std::memory_order_relaxed);
    }
  }

  /// Number of completed writes to element i (traced vectors only).
  [[nodiscard]] index_t version(index_t i) const {
    AJAC_DBG_CHECK(in_range(i));
    AJAC_DBG_CHECK(traced_);
    return static_cast<index_t>(
        seq_[static_cast<std::size_t>(i)].load(std::memory_order_acquire) /
        2);
  }

  [[nodiscard]] bool traced() const noexcept { return traced_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  void snapshot(std::span<double> out) const {
    AJAC_DBG_CHECK(out.size() == values_.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = read(static_cast<index_t>(i));
    }
  }

 private:
  static constexpr int kSpinLimit = 64;

  [[nodiscard]] bool in_range(index_t i) const noexcept {
    return i >= 0 && static_cast<std::size_t>(i) < values_.size();
  }

  using ValueArray =
      std::vector<std::atomic<double>, CacheAlignedAllocator<std::atomic<double>>>;
  using SeqArray = std::vector<std::atomic<std::int64_t>,
                               CacheAlignedAllocator<std::atomic<std::int64_t>>>;

  ValueArray values_;
  SeqArray seq_;
  bool traced_;
  SoleWriterRole writer_role_;
};

/// Single-precision shadow of a SharedVector, for the mixed-precision
/// ghost publication of the kSellCS kernel path (SharedOptions::
/// ghost_precision == kFp32). Owners publish their committed iterates here
/// *in addition to* the authoritative fp64 vector; neighbours refresh
/// their dense ghost buffers from this shadow, halving the boundary read
/// traffic. Everything that decides — residual checks, the verified-stop
/// protocol, the final serial verification — keeps reading the fp64
/// vector, so the paper's termination story is untouched; the shadow only
/// perturbs *which* (slightly rounded) neighbour values a relaxation
/// consumes, which asynchronous convergence tolerates by construction.
///
/// Same concurrency contract as the untraced SharedVector: any number of
/// racy readers, one writer per element (machine-checked via the
/// SoleWriterRole), aligned atomic floats so reads never tear. Never
/// traced — fp32 ghosts and read-version traces are mutually exclusive at
/// the options layer.
class SharedF32Vector {
 public:
  explicit SharedF32Vector(index_t n)
      : values_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] const SoleWriterRole& writer_role() const
      AJAC_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  /// Single-threaded initialization (before the solve's threads start).
  void init(std::span<const double> x) AJAC_REQUIRES(writer_role_) {
    AJAC_DBG_CHECK(x.size() == values_.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
      values_[i].store(static_cast<float>(x[i]), std::memory_order_relaxed);
    }
  }

  /// Plain racy read (the paper's scheme, narrowed to fp32).
  [[nodiscard]] float read(index_t i) const {
    AJAC_DBG_CHECK(in_range(i));
    // racy-ok(intended-race): the paper's racy read; tearing-free because
    // the element is an aligned atomic float.
    return values_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  void write(index_t i, double v) AJAC_REQUIRES(writer_role_) {
    AJAC_DBG_CHECK(in_range(i));
    // racy-ok(intended-race): the paper's racy write, narrowed to fp32
    // (ghost publication only; the fp64 vector stays authoritative).
    values_[static_cast<std::size_t>(i)].store(static_cast<float>(v),
                                               std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

 private:
  [[nodiscard]] bool in_range(index_t i) const noexcept {
    return i >= 0 && static_cast<std::size_t>(i) < values_.size();
  }

  using F32Array =
      std::vector<std::atomic<float>, CacheAlignedAllocator<std::atomic<float>>>;

  F32Array values_;
  SoleWriterRole writer_role_;
};

}  // namespace ajac::runtime
