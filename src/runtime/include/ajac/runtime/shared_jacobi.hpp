#pragma once
// Shared-memory synchronous/asynchronous Jacobi (paper Sec. V).
//
// Each OpenMP thread owns a contiguous block of rows and repeats
//   1. compute the residual r = b - A x on its rows (reading shared x),
//   2. correct x = x + D^{-1} r on its rows,
//   3. check convergence,
// with barriers after 1 and 3 in the synchronous variant and no barriers
// in the asynchronous one. x and r live in shared arrays of
// std::atomic<double> accessed with relaxed ordering — the C++-legal form
// of the paper's "writing or reading an aligned double is atomic on modern
// Intel processors". Termination uses the paper's flag array: a thread
// raises its flag when its stopping criterion holds and keeps relaxing
// until every flag is up.
//
// An optional trace mode records, for every relaxation, the version of
// each off-diagonal value it read (a seqlock pairs values with write
// counters), feeding the propagation-matrix analysis of Sec. IV-A/Fig. 2.

#include <memory>
#include <optional>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/solvers/common.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::obs {
class MetricsRegistry;
class TelemetryHub;
}

namespace ajac::runtime {

/// Which relaxation kernels the solve dispatches to.
enum class KernelKind {
  /// Unsplit CSR rows, every column read through the SharedVector — the
  /// paper's scheme verbatim; kept as the differential-testing oracle.
  kReference,
  /// Partition-aware local/ghost split (sparse/blocked_csr.hpp): own-block
  /// columns come from a thread-private mirror, interior rows skip the
  /// shared vector entirely, only boundary-row ghost columns pay for
  /// synchronized reads. Bitwise-equivalent to kReference whenever the two
  /// would read the same values (num_threads=1, synchronous mode).
  kBlocked,
  /// Bandwidth-engineered large-n path (runtime/sell_kernels.hpp): interior
  /// rows relax through a SELL-C-sigma repack with int32 local column
  /// offsets and software prefetch (sparse/sell_csr.hpp); boundary rows
  /// gather their ghost columns from a dense per-thread buffer refreshed
  /// once per local iteration instead of per-entry shared reads; and with
  /// ghost_precision = kFp32 the refresh reads a float shadow, halving
  /// boundary traffic. Bitwise-equivalent to kBlocked whenever the reads
  /// see the same values (num_threads=1, or synchronous mode, with fp64
  /// ghosts). Not composable with record_trace, local_gauss_seidel,
  /// sampled row policies, fault plans, or the batch path (checked).
  kSellCS,
};

/// Precision at which committed iterates are *published for neighbours'
/// ghost reads* on the kSellCS path. The authoritative x, every residual,
/// the commit arithmetic, and the verified-stop / final-polish termination
/// checks always stay fp64 — kFp32 only narrows what boundary rows read,
/// trading ~1e-7 relative rounding noise on ghost reads for half the
/// boundary read traffic. The noise is re-injected every sweep, so it puts
/// a *floor* under the achievable residual: boundary rows keep absorbing
/// O(eps_fp32) perturbations and the fp64-verified relative residual
/// stalls around 1e-7 (observed ~5e-7 on a 128x128 FD Laplacian).
/// Tolerances at or below that floor never verify — the solve runs to
/// max_iterations and reports converged=false honestly. Use kFp32 for
/// moderate tolerances (>= ~1e-6) where bandwidth, not accuracy, is the
/// binding constraint.
enum class GhostPrecision {
  kFp64,  ///< ghosts read the authoritative vector (default; bitwise path)
  kFp32,  ///< ghosts read a float shadow published after each commit
};

struct SharedOptions {
  index_t num_threads = 4;
  bool synchronous = false;
  /// Stop when ||r||_1 / ||r(0)||_1 <= tolerance. 0 disables the residual
  /// criterion (pure iteration-count runs, Fig. 5(b)).
  double tolerance = 1e-3;
  /// Per-thread local iteration cap; a thread raises its flag at this
  /// count even if the tolerance is not met.
  index_t max_iterations = 10000;
  /// Busy-wait injected before each iteration of thread t (microseconds);
  /// empty = no delays. This reproduces the paper's artificially slowed
  /// thread (Sec. VII-B).
  std::vector<double> delay_us;
  /// Record (wall time, residual norm) history points.
  bool record_history = true;
  /// Record read-version traces for the propagation analysis. Adds seqlock
  /// overhead; intended for the small Fig. 2 matrices.
  bool record_trace = false;
  /// Relax each owned row in place (one forward Gauss-Seidel pass over the
  /// block per iteration) instead of the paper's compute-then-commit
  /// Jacobi step. Asynchronous mode only: with barriers the in-place
  /// variant would race with neighbors' reads non-deterministically.
  bool local_gauss_seidel = false;
  /// Rows per thread come from this partition; by default rows are split
  /// into equal contiguous blocks.
  std::optional<partition::Partition> partition;
  /// Yield the CPU after every local iteration. On machines with fewer
  /// cores than threads this turns the OS scheduler's long time slices
  /// into a fine-grained round-robin, much closer to truly concurrent
  /// execution; used by the trace experiments (Fig. 2).
  bool yield = false;
  /// On heavily oversubscribed machines a thread descheduled mid-iteration
  /// can commit a very stale update after the stop decision, leaving the
  /// final state slightly above tolerance (asynchronous termination
  /// detection is an open problem — Sec. VI). With final_polish the solver
  /// runs sequential Jacobi sweeps after the parallel phase until the
  /// tolerance verifiably holds; the sweep count is reported in
  /// SharedResult::polish_sweeps (0 on genuinely parallel hardware).
  bool final_polish = true;
  /// Fault-injection plan (see ajac/fault/fault_plan.hpp). Null or empty
  /// keeps the zero-fault path branch-free: the solve dispatches to a
  /// template instantiation whose injection hooks compile to no-ops.
  /// Asynchronous mode only — the synchronous barriers define the
  /// interesting faults away.
  std::shared_ptr<const fault::FaultPlan> fault_plan;
  /// Observability sink (see ajac/obs/metrics.hpp): per-thread relaxation
  /// counts and rates, seqlock retry counts, a read-staleness histogram
  /// (record_trace runs — staleness needs the seqlock versions), residual-
  /// check and spin-wait time, and a timeline of iteration spans /
  /// flag-raise / fault instants exportable via obs::TraceEventSink. The
  /// registry is reset for num_threads actors on entry; snapshot it after
  /// the solve returns. Null keeps the uninstrumented path branch-free:
  /// the solve dispatches to a template instantiation whose recording
  /// hooks compile to no-ops (same pattern as the fault hooks), so results
  /// are bitwise those of a build without the metrics layer.
  obs::MetricsRegistry* metrics = nullptr;
  /// Live telemetry hub (see ajac/obs/stream.hpp): each thread publishes
  /// coarse progress beacons (iteration, own-block residual, relaxation
  /// and policy-draw counts) into its own lock-free ring every
  /// `beacon_stride`-th iteration, for a ConvergenceMonitor to consume
  /// concurrently. Null keeps the non-streaming path branch-free — the
  /// solve dispatches to a template instantiation whose publish hooks
  /// compile to no-ops, so results are bitwise those of a build without
  /// the telemetry layer. The hub must outlive the solve and be sized for
  /// num_threads actors (TelemetryOptions::max_actors).
  obs::TelemetryHub* stream = nullptr;
  /// Relaxation kernels (see KernelKind). The blocked layer is the default;
  /// kReference selects the original unsplit path (differential testing,
  /// perf baselines).
  KernelKind kernel = KernelKind::kBlocked;
  /// Ghost publication precision (kSellCS only; see GhostPrecision).
  /// kFp32 requires kernel == kSellCS (checked).
  GhostPrecision ghost_precision = GhostPrecision::kFp64;
  /// Row-selection policy (see ajac/runtime/row_policy.hpp). The default
  /// natural-order sweep is the paper's schedule and leaves the solve
  /// bitwise identical to a build without the policy layer. Sampled
  /// policies draw block-size rows per local iteration and relax them in
  /// place; asynchronous mode only (with barriers, a sampled schedule has
  /// no natural synchronous meaning), and exclusive with
  /// local_gauss_seidel (sampling *is* the in-place schedule).
  RowPolicy policy = RowPolicy::kNaturalOrder;
  /// Residual-weighted sampling rebuilds its |r_i| prefix sum every this
  /// many local iterations (at the iteration boundary, from a consistent
  /// own-row snapshot). Smaller tracks the residual more closely; larger
  /// amortizes the rebuild.
  index_t weight_refresh = 8;
  /// Seed of the policy draw streams. PolicyClock salts it, so the same
  /// value may safely seed the fault plan: policy draws never perturb
  /// fault decisions and vice versa.
  std::uint64_t policy_seed = 0x5eedfa17ULL;
};

struct SharedHistoryPoint {
  double seconds = 0.0;        ///< wall-clock since solve start
  index_t thread = 0;
  index_t local_iteration = 0;
  double rel_residual_1 = 0.0;  ///< as seen by that thread (racy read)
};

struct SharedResult {
  Vector x;
  double seconds = 0.0;                 ///< total wall-clock
  bool converged = false;               ///< final serial check vs tolerance
  double final_rel_residual_1 = 0.0;    ///< computed serially after the run
  index_t total_relaxations = 0;
  index_t polish_sweeps = 0;  ///< sequential cleanup sweeps (see final_polish)
  std::vector<index_t> iterations_per_thread;
  std::vector<SharedHistoryPoint> history;  ///< merged, time-ordered
  std::optional<model::RelaxationTrace> trace;
  /// Everything the fault plan injected, in canonical order (empty
  /// without a plan). Carries logical coordinates only, so two runs of
  /// the same plan compare bitwise.
  fault::FaultLog fault_events;
};

/// Run shared-memory Jacobi (synchronous or asynchronous per options).
[[nodiscard]] SharedResult solve_shared(const CsrMatrix& a, const Vector& b,
                                        const Vector& x0,
                                        const SharedOptions& opts);

/// Result of a batched (multi-RHS) shared-memory solve. Everything that was
/// a scalar per run in SharedResult becomes one entry per column; the
/// columns are independent systems sharing one matrix traversal.
struct SharedBatchResult {
  MultiVector x;                      ///< n x k solution batch
  double seconds = 0.0;               ///< total wall-clock
  std::vector<bool> converged;        ///< per column, final serial check
  Vector final_rel_residual_1;        ///< per column, computed serially
  std::vector<index_t> stop_iteration;  ///< per column: verified-stop iteration
  std::vector<index_t> polish_sweeps;   ///< per column (see final_polish)
  /// Per column: row relaxations performed while the column was still
  /// converging (frozen lanes keep riding in the SIMD unit but no longer
  /// count as useful work).
  std::vector<index_t> relaxations_per_column;
  index_t total_relaxations = 0;      ///< sum of relaxations_per_column
  std::vector<index_t> iterations_per_thread;
  /// Injected faults in canonical order (empty without a plan); decisions
  /// use the same (seed, thread, iteration, row) FaultClock coordinates as
  /// the single-RHS path, one decision per row applied to all k lanes.
  fault::FaultLog fault_events;
};

/// Run shared-memory Jacobi on k right-hand sides at once (b and x0 are
/// n x k; column c of the result solves A x = b(:,c) from x0(:,c)). The
/// batch shares every CSR gather across the k columns and keeps per-column
/// convergence state: a column whose verified stop has fired is frozen
/// (excluded from flags, commits, and the residual check) while the other
/// columns keep iterating. In synchronous mode, and asynchronously at one
/// thread, each column is bitwise identical to the corresponding single-RHS
/// solve_shared run.
///
/// Unsupported on the batch path (checked): record_trace, record_history,
/// and local_gauss_seidel.
[[nodiscard]] SharedBatchResult solve_shared_batch(const CsrMatrix& a,
                                                   const MultiVector& b,
                                                   const MultiVector& x0,
                                                   const SharedOptions& opts);

}  // namespace ajac::runtime
