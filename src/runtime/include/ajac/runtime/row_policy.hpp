#pragma once
// Pluggable row-selection policies for the asynchronous runtimes.
//
// The paper's schedule — every worker sweeps its block in natural order —
// is one point in a larger design space. Avron/Druinsky/Gupta
// (arXiv:1304.6475) prove convergence rates for uniform-random row
// selection, and residual-weighted sampling relaxes the "hottest" rows
// (largest |r_i|) more often. Both are implemented here as per-worker
// samplers that the shared runtime (solve_shared / solve_shared_batch)
// and the distributed simulator plug into their relaxation loops.
//
// Determinism discipline mirrors fault::FaultClock: every draw is a pure
// hash of (seed, stream, worker, iteration, slot) — no stateful RNG, no
// cross-worker state — so a schedule is a function of the seed alone,
// independent of thread interleaving, and replayable through the Φ(l)
// propagation model. Policy draws and fault decisions must never perturb
// each other, so PolicyClock salts its seed: at equal user seeds the two
// clocks hash into unrelated streams (the k=1/scalar fault-determinism
// contracts rely on this; see tests/runtime/policy_determinism_test.cpp).
//
// The weighted sampler never reads the live residual per draw. Every
// `weight_refresh` local iterations, at the iteration boundary, the runtime
// recomputes the *true* own-row residuals from a racy-but-consistent-enough
// snapshot of x (SharedVector::read_snapshot / SharedMultiVector::read_row),
// smooths them through the row stencil — w_i = (|A| |r|)_i restricted to
// the own block — and rebuilds a prefix sum over the smoothed weights,
// clamped and mixed with a uniform floor (see kWeightCap / kUniformMix);
// between refreshes the weights are frozen. Each ingredient is
// load-bearing:
//
//  * TRUE residuals, not the published r: r holds each row's *pre-update*
//    residual from its last relaxation, which under repeated in-place
//    draws is stale in exactly the way that misleads the sampler.
//  * Stencil smoothing: a snapshot taken right after a row was relaxed
//    shows it at ~0, but relaxing its neighbors regrows it within a few
//    draws — weights frozen on the raw snapshot spend the whole window
//    hammering the hot half of a coupled component while starving the
//    freshly-zeroed half, which degrades a 10x win over natural order to
//    parity (measured on the skewed fixture in policy_rate_test.cpp).
//    (|A| |r|)_i marks the entire component hot: it is the residual mass
//    one propagation step away from row i, the same lens as the paper's
//    propagation-matrix model.
//
// The refresh keeps the hot path allocation-free and makes the draw
// sequence a deterministic function of (seed, snapshot sequence) instead
// of the racy instantaneous residual.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ajac/sparse/types.hpp"
#include "ajac/util/check.hpp"

namespace ajac::runtime {

/// How a worker picks the next row of its block to relax.
enum class RowPolicy : std::uint8_t {
  kNaturalOrder = 0,      ///< ascending sweep (the paper's schedule; default)
  kUniformRandom = 1,     ///< iid uniform draws from the own block
  kResidualWeighted = 2,  ///< draws ~ stencil-smoothed residual snapshot
};

/// Sampled policies relax rows in place (Gauss–Seidel-style commit: each
/// draw reads the latest own-block values, like local_gauss_seidel) and
/// draw block-size rows per local iteration, so iteration counting,
/// termination, and total_relaxations keep their natural-order meaning.
[[nodiscard]] constexpr bool is_sampled(RowPolicy policy) noexcept {
  return policy != RowPolicy::kNaturalOrder;
}

/// Stable CLI/report name of a policy.
[[nodiscard]] constexpr const char* policy_name(RowPolicy policy) noexcept {
  switch (policy) {
    case RowPolicy::kNaturalOrder:
      return "natural";
    case RowPolicy::kUniformRandom:
      return "uniform";
    case RowPolicy::kResidualWeighted:
      return "weighted";
  }
  return "?";
}

/// Keyed hash producing per-draw uniform bits. A draw is addressed by
/// (stream, worker, iteration, slot); the construction is FaultClock's
/// SplitMix64-finalizer chain with the seed salted so that policy draws
/// and fault decisions made from the same user seed are independent.
class PolicyClock {
 public:
  /// Draw streams. Separate streams make the uniform fallback and the
  /// weighted inversion for the same coordinates independent decisions.
  enum Stream : std::uint64_t {
    kRowPick = 1,     ///< uniform row draw
    kWeightPick = 2,  ///< residual-weighted draw (prefix-sum inversion)
  };

  /// Distinguishes the policy stream family from FaultClock's at equal
  /// seeds. Never change it: golden policy traces pin the draws.
  static constexpr std::uint64_t kSeedSalt = 0xa5a5c0dedeadbeefULL;

  explicit constexpr PolicyClock(std::uint64_t seed) noexcept
      : seed_(seed ^ kSeedSalt) {}

  [[nodiscard]] constexpr std::uint64_t bits(std::uint64_t stream,
                                             std::uint64_t a, std::uint64_t b,
                                             std::uint64_t c = 0) const noexcept {
    std::uint64_t z = mix(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    z = mix(z ^ mix(a + 0xbf58476d1ce4e5b9ULL));
    z = mix(z ^ mix(b + 0x94d049bb133111ebULL));
    z = mix(z ^ mix(c + 0xd6e8feb86659fd93ULL));
    return z;
  }

  /// Uniform double in [0, 1) for this draw.
  [[nodiscard]] constexpr double uniform(std::uint64_t stream, std::uint64_t a,
                                         std::uint64_t b,
                                         std::uint64_t c = 0) const noexcept {
    return static_cast<double>(bits(stream, a, b, c) >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n), n >= 1. Modulo bias is irrelevant at the
  /// n's used here (block row counts).
  [[nodiscard]] constexpr std::uint64_t pick(std::uint64_t n,
                                             std::uint64_t stream,
                                             std::uint64_t a, std::uint64_t b,
                                             std::uint64_t c = 0) const noexcept {
    return bits(stream, a, b, c) % n;
  }

 private:
  static constexpr std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_;
};

/// Per-worker row sampler over the contiguous own block [lo, hi). One
/// instance per worker, no shared mutable state: sampling never
/// synchronizes workers. Construction sizes the weighted prefix-sum buffer
/// once; the hot path (`next`) is allocation-free.
class RowSampler {
 public:
  RowSampler(RowPolicy policy, std::uint64_t seed, index_t worker, index_t lo,
             index_t hi, index_t weight_refresh)
      : policy_(policy),
        clock_(seed),
        worker_(static_cast<std::uint64_t>(worker)),
        lo_(lo),
        size_(hi - lo),
        weight_refresh_(weight_refresh) {
    AJAC_CHECK(hi >= lo);
    AJAC_CHECK_MSG(weight_refresh >= 1,
                   "weight_refresh " << weight_refresh << " < 1");
    if (policy_ == RowPolicy::kResidualWeighted) {
      prefix_.assign(static_cast<std::size_t>(size_), 0.0);
    }
  }

  [[nodiscard]] RowPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] index_t block_size() const noexcept { return size_; }

  /// True when the weighted prefix sum must be rebuilt before local
  /// iteration `iter` starts. Natural/uniform never refresh.
  [[nodiscard]] bool refresh_due(index_t iter) const noexcept {
    return policy_ == RowPolicy::kResidualWeighted &&
           iter % weight_refresh_ == 0;
  }

  /// Uniform-exploration mass blended into every weighted snapshot: each
  /// row receives an extra kUniformMix * mean on top of its own (clamped)
  /// weight. Pure greedy sampling is not ergodic — a row whose snapshot
  /// weight is stale-small (its true residual grew because a neighbor was
  /// relaxed after the snapshot) would get weight ~0 and never be drawn
  /// again, parking the solve at a non-solution fixed point. The floor
  /// guarantees every row a draw probability of at least kUniformMix /
  /// (n (1 + kUniformMix)), so stale rows are revisited within O(n)
  /// draws. Never change it: golden policy traces pin the draws.
  static constexpr double kUniformMix = 0.25;

  /// Per-row weights are clamped to kWeightCap * mean(|w|) before the
  /// exploration floor. Weights are frozen for a whole refresh window
  /// (weight_refresh iterations = many block-size draw rounds), and
  /// relaxing a row kills its actual residual on the first draw — so
  /// sampling *proportional* to a frozen snapshot re-draws the few
  /// hottest rows long after they stopped being hot, wasting most of the
  /// window. The clamp bounds any row's draw rate at ~kWeightCap times
  /// uniform-within-the-hot-set while keeping cold rows cold, which is
  /// what makes residual weighting actually beat natural order on
  /// skewed problems (see tests/runtime/policy_rate_test.cpp). Never
  /// change it: golden policy traces pin the draws.
  static constexpr double kWeightCap = 2.0;

  /// Rebuild the prefix sum from `weight(i)` over global rows i in
  /// [lo, hi). The callable supplies the per-row residual snapshot (sign
  /// is ignored); the stored weight is min(|w_i|, kWeightCap * mean(|w|))
  /// + kUniformMix * mean(clamped) — see kWeightCap and kUniformMix.
  template <typename WeightFn>
  void refresh_weights(WeightFn&& weight) {
    if (size_ == 0) {
      total_ = 0.0;
      return;
    }
    const auto n = static_cast<double>(size_);
    double raw_total = 0.0;
    for (index_t li = 0; li < size_; ++li) {
      const double w = std::abs(weight(lo_ + li));
      prefix_[static_cast<std::size_t>(li)] = w;  // raw, cumulated below
      raw_total += w;
    }
    if (raw_total <= 0.0) {
      total_ = 0.0;  // next() falls back to the uniform stream
      return;
    }
    const double cap = kWeightCap * raw_total / n;
    double clamped_total = 0.0;
    for (index_t li = 0; li < size_; ++li) {
      clamped_total += std::min(prefix_[static_cast<std::size_t>(li)], cap);
      prefix_[static_cast<std::size_t>(li)] = clamped_total;
    }
    const double floor = kUniformMix * clamped_total / n;
    for (index_t li = 0; li < size_; ++li) {
      prefix_[static_cast<std::size_t>(li)] +=
          floor * static_cast<double>(li + 1);
    }
    total_ = clamped_total * (1.0 + kUniformMix);
  }

  /// Global row for draw `slot` of local iteration `iter`. Requires a
  /// non-empty block (workers with empty blocks make zero draws).
  [[nodiscard]] index_t next(index_t iter, index_t slot) const noexcept {
    const auto it = static_cast<std::uint64_t>(iter);
    const auto sl = static_cast<std::uint64_t>(slot);
    if (policy_ == RowPolicy::kResidualWeighted && total_ > 0.0) {
      const double target =
          clock_.uniform(PolicyClock::kWeightPick, worker_, it, sl) * total_;
      // First row whose cumulative weight exceeds the target; upper_bound
      // skips zero-weight rows (their prefix equals the predecessor's).
      const auto pos = static_cast<index_t>(
          std::upper_bound(prefix_.begin(), prefix_.end(), target) -
          prefix_.begin());
      return lo_ + std::min(pos, size_ - 1);
    }
    // kUniformRandom, or weighted over an all-zero snapshot (converged
    // block): uniform draw from its own stream.
    return lo_ + static_cast<index_t>(
                     clock_.pick(static_cast<std::uint64_t>(size_),
                                 PolicyClock::kRowPick, worker_, it, sl));
  }

 private:
  RowPolicy policy_;
  PolicyClock clock_;
  std::uint64_t worker_;
  index_t lo_;
  index_t size_;
  index_t weight_refresh_;
  std::vector<double> prefix_;  ///< cumulative weight snapshot (weighted only)
  double total_ = 0.0;
};

}  // namespace ajac::runtime
