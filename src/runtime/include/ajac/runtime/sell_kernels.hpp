#pragma once
// Bandwidth-engineered relaxation kernels — the KernelKind::kSellCS path
// of solve_shared (the "rebuilt data plane" of the large-n experiments).
//
// Three coordinated changes over the blocked kernels, all aimed at the
// memory-bound regime (>= 10^7 unknowns, where a sweep streams the matrix
// from DRAM and the paper's async-beats-sync effect actually lives):
//
//   1. Dense ghost buffers. Instead of scattering a SharedVector (or
//      injector) read into the middle of every boundary row's gather, each
//      thread renumbers its ghost columns once (BlockedCsr::ghost_cols is
//      already the compact L2GMap-style table) and refreshes a dense
//      double buffer once per local iteration. Boundary rows then gather
//      unit-indexed from private memory; the shared cache lines are
//      touched ghost-count times per sweep, not ghost-nnz times.
//   2. Optional fp32 ghost publication (SharedOptions::ghost_precision).
//      Owners additionally publish committed iterates to a SharedF32Vector
//      shadow; neighbours refresh their ghost buffers from it, halving
//      boundary read traffic. All residuals, the verified-stop protocol,
//      and the commit arithmetic stay fp64 (see shared_vector.hpp).
//   3. SELL-C-sigma interior (sparse/sell_csr.hpp): int32 local column
//      offsets (half the index stream), slice-major unit-stride value
//      walks, and a software prefetch of the next slice's x gathers.
//
// Bitwise contract: with fp64 ghosts, one thread or synchronous mode makes
// x stable throughout step 1, so the once-per-iteration ghost refresh
// reads exactly the values the blocked kernels' per-entry reads would, and
// the SELL slice accumulation visits each row's entries in CSR order (see
// sell_csr.hpp). kSellCS is then bit-identical to kBlocked — the contract
// the kernel-equivalence suite extends to this path. Asynchronously at
// multiple threads the refresh coarsens ghost staleness to iteration
// granularity, a legal asynchronous schedule (the model's staleness bound
// grows by at most one local iteration).
//
// Not composable (checked in solve_shared): fault plans, record_trace,
// local_gauss_seidel, and sampled row policies stay on the blocked path —
// their semantics are defined in terms of per-read injection/versioning,
// which the buffered data plane deliberately amortizes away.

#include <cstddef>
#include <span>

#include "ajac/runtime/blocked_kernels.hpp"
#include "ajac/runtime/shared_vector.hpp"
#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/sparse/sell_csr.hpp"
#include "ajac/sparse/types.hpp"
#include "ajac/util/annotate.hpp"

namespace ajac::runtime {

/// Portable software-prefetch hint (read, moderate temporal locality).
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/2);
#else
  (void)p;
#endif
}

/// Refresh the dense ghost buffer from the authoritative fp64 vector: one
/// racy read per distinct ghost column per local iteration.
inline void refresh_ghosts(const BlockedCsr::Block& blk, const SharedVector& x,
                           std::span<double> ghosts) {
  for (std::size_t s = 0; s < blk.ghost_cols.size(); ++s) {
    ghosts[s] = x.read(blk.ghost_cols[s]);
  }
}

/// Refresh the dense ghost buffer from the fp32 shadow (half the read
/// traffic); widened back to double once, here, so the relaxation
/// arithmetic itself stays fp64.
inline void refresh_ghosts_f32(const BlockedCsr::Block& blk,
                               const SharedF32Vector& shadow,
                               std::span<double> ghosts) {
  for (std::size_t s = 0; s < blk.ghost_cols.size(); ++s) {
    ghosts[s] = static_cast<double>(shadow.read(blk.ghost_cols[s]));
  }
}

/// Publish the block's committed iterates to the fp32 shadow (fp32 ghost
/// runs only; called right after commit_block, whose mirror holds exactly
/// the values just written to the fp64 x).
inline void publish_shadow(const BlockedCsr::Block& blk,
                           const OwnBlockState& own, SharedF32Vector& shadow)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(shadow.writer_role()) {
  for (index_t i = blk.lo; i < blk.hi; ++i) {
    shadow.write(i, own.x[static_cast<std::size_t>(i - blk.lo)]);
  }
}

/// Residual on the SELL-packed interior rows. Slice-major: slice s of a
/// chunk streams cols/vals unit-stride and gathers from the private
/// mirror; because rows are sorted by descending length within the chunk,
/// the active rows of every slice are a prefix (`cnt`), so there are no
/// padding entries and no wasted flops. Each row's entries are consumed in
/// source CSR order (slice s == entry s), keeping the accumulation
/// bitwise the blocked kernel's. Residuals publish to r per row, like
/// relax_interior.
inline void relax_interior_sell(const SellCsr::Block& sblk,
                                std::span<const double> b,
                                const OwnBlockState& own, SharedVector& r)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(r.writer_role()) {
  const double* xs = own.x.data();
  const std::size_t limit = sblk.cols.size();
  const index_t packed = sblk.num_packed_rows();
  double acc[SellCsr::kChunk];
  for (index_t c = 0; c < sblk.num_chunks; ++c) {
    const index_t first = c * SellCsr::kChunk;
    const index_t nrows = std::min<index_t>(SellCsr::kChunk, packed - first);
    for (index_t rr = 0; rr < nrows; ++rr) {
      acc[rr] = b[static_cast<std::size_t>(
          sblk.rows[static_cast<std::size_t>(first + rr)])];
    }
    auto base = static_cast<std::size_t>(
        sblk.chunk_ptr[static_cast<std::size_t>(c)]);
    index_t cnt = nrows;
    const std::int32_t width =
        nrows > 0 ? sblk.row_len[static_cast<std::size_t>(first)] : 0;
    for (std::int32_t s = 0; s < width; ++s) {
      // Rows shorter than s + 1 drop off the back of the prefix.
      while (cnt > 0 &&
             sblk.row_len[static_cast<std::size_t>(first + cnt - 1)] <= s) {
        --cnt;
      }
      const std::size_t next = base + static_cast<std::size_t>(cnt);
      // Software prefetch of the next slice's x gathers: its column
      // offsets are the very next entries of the cols stream.
      if (next + static_cast<std::size_t>(cnt) <= limit) {
        for (index_t rr = 0; rr < cnt; ++rr) {
          prefetch_read(
              &xs[sblk.cols[next + static_cast<std::size_t>(rr)]]);
        }
      }
      for (index_t rr = 0; rr < cnt; ++rr) {
        const std::size_t p = base + static_cast<std::size_t>(rr);
        acc[rr] -= sblk.vals[p] * xs[sblk.cols[p]];
      }
      base = next;
    }
    for (index_t rr = 0; rr < nrows; ++rr) {
      r.write(sblk.rows[static_cast<std::size_t>(first + rr)], acc[rr]);
    }
  }
}

/// Residual on the boundary rows with ghost entries gathered from the
/// dense per-thread ghost buffer (refreshed once per iteration) instead of
/// per-entry SharedVector reads. Local entries come from the mirror, like
/// relax_boundary.
inline void relax_boundary_buffered(const BlockedCsr::Block& blk,
                                    std::span<const double> b,
                                    const OwnBlockState& own,
                                    std::span<const double> ghosts,
                                    SharedVector& r)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(r.writer_role()) {
  for (const index_t i : blk.boundary_rows) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
    const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
    double acc = b[static_cast<std::size_t>(i)];
    for (std::size_t p = begin; p < end; ++p) {
      const index_t code = blk.col_code[p];
      const double xj =
          BlockedCsr::is_ghost(code)
              ? ghosts[static_cast<std::size_t>(BlockedCsr::ghost_slot(code))]
              : own.x[static_cast<std::size_t>(code)];
      acc -= blk.values[p] * xj;
    }
    r.write(i, acc);
  }
}

}  // namespace ajac::runtime
