#pragma once
// Fused relaxation kernels over the partition-aware BlockedCsr layout
// (sparse/blocked_csr.hpp) — the KernelKind::kBlocked path of solve_shared.
//
// The owning thread keeps a private mirror (OwnBlockState) of its own slice
// of the shared x: it is the only writer of those elements, so the mirror
// is exact by construction and local column reads need no atomics, no
// seqlock, and no cache-line ping-pong. Only ghost columns — values owned
// by other threads — go through the SharedVector (and the fault injector,
// which may serve frozen stale-window snapshots for exactly those columns).
//
// Bitwise contract with the reference kernels: every kernel accumulates a
// row's residual in the row's original CSR entry order (BlockedCsr
// preserves it), reads values that are bitwise those the reference path
// would read from the same vector state, and commits in ascending row
// order with the same `x + inv_diag * r` expression. Given identical read
// values — guaranteed at num_threads=1 and in synchronous mode, where x is
// stable throughout step 1 — blocked and reference solves are bitwise
// identical. The kernel-equivalence suite (tests/runtime/kernel_equiv_*)
// holds this line.
//
// Faults template parameter: the per-thread injector of shared_jacobi.cpp
// (NullFaults compiles every hook away). Bit flips index entries by their
// position within the row, which the blocked layout preserves, so the flip
// decision and the corrupted entry match the reference path exactly.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "ajac/model/trace.hpp"
#include "ajac/runtime/shared_multi_vector.hpp"
#include "ajac/runtime/shared_vector.hpp"
#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/sparse/types.hpp"
#include "ajac/util/annotate.hpp"

namespace ajac::runtime {

/// A transiently corrupted matrix read: entry index within the row and the
/// value (one bit flipped) the relaxation uses instead of the stored one.
struct FlippedEntry {
  std::size_t entry = 0;
  double value = 0.0;
};

/// Thread-private mirror of the thread's own rows of the shared x. The
/// owner is the sole writer of those elements, so the mirror (and, when
/// tracing, the write-count mirror) is exact — local reads come from here.
/// The mirror arrays are guarded by the owner role: only the owning thread
/// (which claims `owner` at region entry) may touch them, and every kernel
/// below declares which roles it needs.
struct OwnBlockState {
  SoleWriterRole owner;  ///< claimed by the owning thread at region entry
  std::vector<double> x AJAC_SOLE_WRITER(owner);  ///< x[lo..hi), kept exact
  std::vector<index_t> version
      AJAC_SOLE_WRITER(owner);  ///< seqlock versions; empty when untraced
};

/// (Re)load the mirror from the shared vector. Called once inside the
/// parallel region (first touch: the owning thread allocates and fills its
/// own mirror) and again after a crash-with-state-reset fault wrote x0
/// directly to the shared x behind the mirror's back.
inline void refresh_own_block(const BlockedCsr::Block& blk,
                              const SharedVector& x, OwnBlockState& own)
    AJAC_REQUIRES(own.owner) {
  const auto rows = static_cast<std::size_t>(blk.num_rows());
  own.x.resize(rows);
  for (index_t i = blk.lo; i < blk.hi; ++i) {
    own.x[static_cast<std::size_t>(i - blk.lo)] = x.read(i);
  }
  if (x.traced()) {
    own.version.resize(rows);
    for (index_t i = blk.lo; i < blk.hi; ++i) {
      own.version[static_cast<std::size_t>(i - blk.lo)] = x.version(i);
    }
  }
}

/// Residual on the block's interior rows — every column local, so the
/// inner loop touches only private arrays: no atomics, no seqlocks, no
/// branches (the fault hooks compile away under NullFaults), and a memory
/// access pattern the vectorizer can handle. Summation stays in CSR entry
/// order; only loads are vectorizable, never the accumulation order.
///
/// Each row's residual is published to the shared r as it is computed —
/// the blocked kernels fuse away the reference path's separate publication
/// pass. Reads of r are racy by contract (the paper's stopping scheme), so
/// other threads observing a row's residual one pass earlier is legal; at
/// one thread and in synchronous mode the values every consumer sees are
/// unchanged, keeping the bitwise contract intact.
template <class Faults>
inline void relax_interior(const BlockedCsr::Block& blk, const CsrMatrix& a,
                           std::span<const double> b,
                           const OwnBlockState& own, Faults& faults,
                           SharedVector& r)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(r.writer_role()) {
  for (const index_t i : blk.interior_rows) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
    const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
    double acc = b[static_cast<std::size_t>(i)];
    if constexpr (Faults::enabled) {
      const auto row = a.row(i);
      FlippedEntry flipped;
      const bool has_flip = faults.flip(i, row.cols, row.vals, flipped);
      for (std::size_t p = begin; p < end; ++p) {
        double aij = blk.values[p];
        if (has_flip && p - begin == flipped.entry) aij = flipped.value;
        acc -= aij * own.x[static_cast<std::size_t>(blk.col_code[p])];
      }
    } else {
      for (std::size_t p = begin; p < end; ++p) {
        acc -= blk.values[p] *
               own.x[static_cast<std::size_t>(blk.col_code[p])];
      }
    }
    r.write(i, acc);
  }
}

/// Residual on the block's boundary rows: local entries from the mirror,
/// ghost entries through the injector (live relaxed-atomic reads, or the
/// frozen snapshot inside a stale window). Publishes each row's residual
/// to r like relax_interior.
template <class Faults>
inline void relax_boundary(const BlockedCsr::Block& blk, const CsrMatrix& a,
                           std::span<const double> b,
                           const OwnBlockState& own, const SharedVector& x,
                           Faults& faults, SharedVector& r)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(r.writer_role()) {
  for (const index_t i : blk.boundary_rows) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
    const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
    double acc = b[static_cast<std::size_t>(i)];
    FlippedEntry flipped;
    bool has_flip = false;
    if constexpr (Faults::enabled) {
      const auto row = a.row(i);
      has_flip = faults.flip(i, row.cols, row.vals, flipped);
    }
    for (std::size_t p = begin; p < end; ++p) {
      double aij = blk.values[p];
      if constexpr (Faults::enabled) {
        if (has_flip && p - begin == flipped.entry) aij = flipped.value;
      }
      const index_t code = blk.col_code[p];
      const double xj =
          BlockedCsr::is_ghost(code)
              ? faults.read(x, blk.ghost_cols[static_cast<std::size_t>(
                                   BlockedCsr::ghost_slot(code))])
              : own.x[static_cast<std::size_t>(code)];
      acc -= aij * xj;
    }
    r.write(i, acc);
  }
}

/// Commit the Jacobi correction on the block, ascending row order: the
/// same `x_i + inv_diag_i * r_i` the reference step 2 evaluates (the
/// mirror read replaces x.read — exact, single writer), then keep the
/// mirror and its version count in sync with the shared write.
inline void commit_block(const BlockedCsr::Block& blk, OwnBlockState& own,
                         SharedVector& x, const SharedVector& r)
    AJAC_REQUIRES(own.owner, x.writer_role()) {
  for (index_t i = blk.lo; i < blk.hi; ++i) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const double nx = own.x[li] + blk.inv_diag[li] * r.read(i);
    x.write(i, nx);
    own.x[li] = nx;
  }
  // Every x.write above bumped the element's seqlock once.
  for (auto& v : own.version) ++v;
}

/// In-place forward Gauss-Seidel sweep over the block (ascending rows, so
/// interior/boundary fusion does not apply): each row's update is visible
/// to the following rows via the mirror and to other threads via x
/// immediately, matching the reference sweep bitwise.
template <class Faults>
inline void relax_block_gs(const BlockedCsr::Block& blk, const CsrMatrix& a,
                           std::span<const double> b, OwnBlockState& own,
                           SharedVector& x, SharedVector& r, Faults& faults)
    AJAC_REQUIRES(own.owner, x.writer_role(), r.writer_role()) {
  for (index_t i = blk.lo; i < blk.hi; ++i) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
    const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
    double acc = b[static_cast<std::size_t>(i)];
    FlippedEntry flipped;
    bool has_flip = false;
    if constexpr (Faults::enabled) {
      const auto row = a.row(i);
      has_flip = faults.flip(i, row.cols, row.vals, flipped);
    }
    for (std::size_t p = begin; p < end; ++p) {
      double aij = blk.values[p];
      if constexpr (Faults::enabled) {
        if (has_flip && p - begin == flipped.entry) aij = flipped.value;
      }
      const index_t code = blk.col_code[p];
      const double xj =
          BlockedCsr::is_ghost(code)
              ? faults.read(x, blk.ghost_cols[static_cast<std::size_t>(
                                   BlockedCsr::ghost_slot(code))])
              : own.x[static_cast<std::size_t>(code)];
      acc -= aij * xj;
    }
    r.write(i, acc);
    const double nx = own.x[li] + blk.inv_diag[li] * acc;
    x.write(i, nx);
    own.x[li] = nx;
  }
}

/// Traced relaxation (record_trace runs): like relax_interior +
/// relax_boundary but pairing every off-diagonal read with its seqlock
/// version for the propagation analysis. Local reads take the version from
/// the mirror — the owner is the only writer, so the mirrored count *is*
/// the seqlock version, with none of the seqlock's retry protocol.
/// Publishes each row's residual to r like relax_interior.
template <class Faults, class Metrics>
inline void relax_traced(const BlockedCsr::Block& blk, const CsrMatrix& a,
                         std::span<const double> b, const OwnBlockState& own,
                         const SharedVector& x, Faults& faults,
                         Metrics& metrics, index_t iter, SharedVector& r,
                         std::vector<model::RelaxationEvent>& events)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(r.writer_role()) {
  auto relax_row = [&](index_t i) {
    // Lambdas are analyzed as separate functions: re-claim the enclosing
    // kernel's roles (held by its REQUIRES contract) for this body.
    own.owner.assert_shared();
    r.writer_role().assert_held();
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
    const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
    model::RelaxationEvent event;
    event.row = i;
    event.reads.reserve(end - begin);
    double acc = b[static_cast<std::size_t>(i)];
    FlippedEntry flipped;
    bool has_flip = false;
    if constexpr (Faults::enabled) {
      const auto row = a.row(i);
      has_flip = faults.flip(i, row.cols, row.vals, flipped);
    }
    for (std::size_t p = begin; p < end; ++p) {
      double aij = blk.values[p];
      if constexpr (Faults::enabled) {
        if (has_flip && p - begin == flipped.entry) aij = flipped.value;
      }
      const index_t code = blk.col_code[p];
      if (!BlockedCsr::is_ghost(code)) {
        acc -= aij * own.x[static_cast<std::size_t>(code)];
        const index_t j = blk.lo + code;
        if (j == i) continue;
        const index_t version = own.version[static_cast<std::size_t>(code)];
        if constexpr (Metrics::enabled) metrics.staleness(iter, version);
        event.reads.push_back({j, version});
        continue;
      }
      const index_t j =
          blk.ghost_cols[static_cast<std::size_t>(BlockedCsr::ghost_slot(code))];
      const auto [value, version] =
          faults.read_versioned(x, j, metrics.retry_sink());
      acc -= aij * value;
      if constexpr (Metrics::enabled) metrics.staleness(iter, version);
      event.reads.push_back({j, version});
    }
    r.write(i, acc);
    events.push_back(std::move(event));
  };
  for (const index_t i : blk.interior_rows) relax_row(i);
  for (const index_t i : blk.boundary_rows) relax_row(i);
}

/// One sampled in-place relaxation of own row i (the row a RowSampler
/// drew): residual from the latest mirror/ghost values, published to r,
/// then the correction committed immediately — like one row of
/// relax_block_gs, except the row order comes from the policy instead of
/// the ascending sweep. Later draws of the same local iteration see the
/// update through the mirror; other threads see it through x.
template <class Faults>
inline void relax_row_sampled(const BlockedCsr::Block& blk, const CsrMatrix& a,
                              std::span<const double> b, OwnBlockState& own,
                              SharedVector& x, SharedVector& r, Faults& faults,
                              index_t i)
    AJAC_REQUIRES(own.owner, x.writer_role(), r.writer_role()) {
  const auto li = static_cast<std::size_t>(i - blk.lo);
  const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
  const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
  double acc = b[static_cast<std::size_t>(i)];
  FlippedEntry flipped;
  bool has_flip = false;
  if constexpr (Faults::enabled) {
    const auto row = a.row(i);
    has_flip = faults.flip(i, row.cols, row.vals, flipped);
  }
  for (std::size_t p = begin; p < end; ++p) {
    double aij = blk.values[p];
    if constexpr (Faults::enabled) {
      if (has_flip && p - begin == flipped.entry) aij = flipped.value;
    }
    const index_t code = blk.col_code[p];
    const double xj =
        BlockedCsr::is_ghost(code)
            ? faults.read(x, blk.ghost_cols[static_cast<std::size_t>(
                                 BlockedCsr::ghost_slot(code))])
            : own.x[static_cast<std::size_t>(code)];
    acc -= aij * xj;
  }
  r.write(i, acc);
  const double nx = own.x[li] + blk.inv_diag[li] * acc;
  x.write(i, nx);
  own.x[li] = nx;
}

/// Traced sampled relaxation: relax_row_sampled plus the read-version
/// recording of relax_traced. The in-place commit bumps the row's seqlock
/// once, so the version mirror advances with the write — a row drawn twice
/// in one iteration records two distinct versions, exactly what the
/// propagation analysis needs to order repeated relaxations.
template <class Faults, class Metrics>
inline void relax_row_sampled_traced(
    const BlockedCsr::Block& blk, const CsrMatrix& a, std::span<const double> b,
    OwnBlockState& own, SharedVector& x, Faults& faults, Metrics& metrics,
    index_t iter, SharedVector& r,
    std::vector<model::RelaxationEvent>& events, index_t i)
    AJAC_REQUIRES(own.owner, x.writer_role(), r.writer_role()) {
  const auto li = static_cast<std::size_t>(i - blk.lo);
  const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
  const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
  model::RelaxationEvent event;
  event.row = i;
  event.reads.reserve(end - begin);
  double acc = b[static_cast<std::size_t>(i)];
  FlippedEntry flipped;
  bool has_flip = false;
  if constexpr (Faults::enabled) {
    const auto row = a.row(i);
    has_flip = faults.flip(i, row.cols, row.vals, flipped);
  }
  for (std::size_t p = begin; p < end; ++p) {
    double aij = blk.values[p];
    if constexpr (Faults::enabled) {
      if (has_flip && p - begin == flipped.entry) aij = flipped.value;
    }
    const index_t code = blk.col_code[p];
    if (!BlockedCsr::is_ghost(code)) {
      acc -= aij * own.x[static_cast<std::size_t>(code)];
      const index_t j = blk.lo + code;
      if (j == i) continue;
      const index_t version = own.version[static_cast<std::size_t>(code)];
      if constexpr (Metrics::enabled) metrics.staleness(iter, version);
      event.reads.push_back({j, version});
      continue;
    }
    const index_t j =
        blk.ghost_cols[static_cast<std::size_t>(BlockedCsr::ghost_slot(code))];
    const auto [value, version] =
        faults.read_versioned(x, j, metrics.retry_sink());
    acc -= aij * value;
    if constexpr (Metrics::enabled) metrics.staleness(iter, version);
    event.reads.push_back({j, version});
  }
  r.write(i, acc);
  const double nx = own.x[li] + blk.inv_diag[li] * acc;
  x.write(i, nx);
  own.x[li] = nx;
  ++own.version[li];  // the x.write bumped the element's seqlock once
  events.push_back(std::move(event));
}

// ---------------------------------------------------------------------------
// Multi-RHS (batched) kernels. Same structure as their scalar counterparts,
// but every per-row scalar becomes k contiguous lanes: the CSR gather
// (row_ptr/col_code/values loads, the ghost-vs-local branch, the fault
// decision) is paid once per matrix entry and amortized over k unit-stride
// `#pragma omp simd` FMAs. Per lane, the accumulation order and the commit
// expression are bitwise the scalar kernels', so column c of a batch solve
// reproduces a single-RHS solve of column c whenever the two would read the
// same values (num_threads=1, synchronous mode).
//
// All batch kernels take caller-provided scratch spans (k lanes each) so the
// hot loop performs no allocation; solve_shared_batch sizes them once per
// thread before the iteration loop.

/// Thread-private mirror of the thread's own rows of the shared batch x
/// (batch analogue of OwnBlockState; the batch path is never traced, so no
/// version mirror is needed).
struct OwnBlockBatchState {
  SoleWriterRole owner;  ///< claimed by the owning thread at region entry
  MultiVector x AJAC_SOLE_WRITER(owner);  ///< rows [lo, hi) x k, kept exact
};

/// (Re)load the mirror from the shared batch vector. Called once inside the
/// parallel region (first touch) and again after a crash-with-state-reset
/// fault rewrote the shared rows behind the mirror's back.
inline void refresh_own_block_batch(const BlockedCsr::Block& blk,
                                    const SharedMultiVector& x,
                                    OwnBlockBatchState& own)
    AJAC_REQUIRES(own.owner) {
  const index_t k = x.num_cols();
  if (own.x.num_rows() != blk.num_rows() || own.x.num_cols() != k) {
    own.x = MultiVector(blk.num_rows(), k);
  }
  for (index_t i = blk.lo; i < blk.hi; ++i) {
    double* dst = own.x.row(i - blk.lo);
    x.read_row(i, {dst, static_cast<std::size_t>(k)});
  }
}

/// Batched residual on the block's interior rows (all columns local — only
/// private arrays inside the entry loop). `acc` is k lanes of scratch.
template <class Faults>
inline void relax_interior_batch(const BlockedCsr::Block& blk,
                                 const CsrMatrix& a, const MultiVector& b,
                                 const OwnBlockBatchState& own, Faults& faults,
                                 SharedMultiVector& r, std::span<double> acc)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(r.writer_role()) {
  const index_t k = b.num_cols();
  for (const index_t i : blk.interior_rows) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
    const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
    const double* br = b.row(i);
#pragma omp simd
    for (index_t c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] = br[c];
    FlippedEntry flipped;
    bool has_flip = false;
    if constexpr (Faults::enabled) {
      const auto row = a.row(i);
      has_flip = faults.flip(i, row.cols, row.vals, flipped);
    }
    for (std::size_t p = begin; p < end; ++p) {
      double aij = blk.values[p];
      if constexpr (Faults::enabled) {
        if (has_flip && p - begin == flipped.entry) aij = flipped.value;
      }
      const double* xr =
          own.x.row(static_cast<index_t>(blk.col_code[p]));
#pragma omp simd
      for (index_t c = 0; c < k; ++c) {
        acc[static_cast<std::size_t>(c)] -= aij * xr[c];
      }
    }
    r.write_row(i, acc.subspan(0, static_cast<std::size_t>(k)));
  }
}

/// Batched residual on the block's boundary rows: local entries from the
/// mirror, ghost entries as k-wide row reads through the injector (live
/// relaxed reads, or the frozen row snapshot inside a stale window). `acc`
/// and `ghost` are k lanes of scratch each.
template <class Faults>
inline void relax_boundary_batch(const BlockedCsr::Block& blk,
                                 const CsrMatrix& a, const MultiVector& b,
                                 const OwnBlockBatchState& own,
                                 const SharedMultiVector& x, Faults& faults,
                                 SharedMultiVector& r, std::span<double> acc,
                                 std::span<double> ghost)
    AJAC_REQUIRES_SHARED(own.owner) AJAC_REQUIRES(r.writer_role()) {
  const index_t k = b.num_cols();
  for (const index_t i : blk.boundary_rows) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
    const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
    const double* br = b.row(i);
#pragma omp simd
    for (index_t c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] = br[c];
    FlippedEntry flipped;
    bool has_flip = false;
    if constexpr (Faults::enabled) {
      const auto row = a.row(i);
      has_flip = faults.flip(i, row.cols, row.vals, flipped);
    }
    for (std::size_t p = begin; p < end; ++p) {
      double aij = blk.values[p];
      if constexpr (Faults::enabled) {
        if (has_flip && p - begin == flipped.entry) aij = flipped.value;
      }
      const index_t code = blk.col_code[p];
      const double* xr;
      if (BlockedCsr::is_ghost(code)) {
        faults.read_row(x,
                        blk.ghost_cols[static_cast<std::size_t>(
                            BlockedCsr::ghost_slot(code))],
                        ghost.subspan(0, static_cast<std::size_t>(k)));
        xr = ghost.data();
      } else {
        xr = own.x.row(static_cast<index_t>(code));
      }
#pragma omp simd
      for (index_t c = 0; c < k; ++c) {
        acc[static_cast<std::size_t>(c)] -= aij * xr[c];
      }
    }
    r.write_row(i, acc.subspan(0, static_cast<std::size_t>(k)));
  }
}

/// Batched commit, ascending row order, with per-column freezing: lane c
/// applies `x + inv_diag * r` only while active[c] != 0.0 — a column whose
/// verified per-column stop has fired keeps riding in the SIMD lane (the
/// blend costs nothing) but its value no longer moves, which is what makes
/// the final column state bitwise a single-RHS solve that stopped there.
/// The frozen lanes republish their unchanged bits through write_row: a
/// same-bits store is invisible to every racy reader. `rrow` is k lanes of
/// scratch.
inline void commit_block_batch(const BlockedCsr::Block& blk,
                               OwnBlockBatchState& own, SharedMultiVector& x,
                               const SharedMultiVector& r,
                               std::span<const double> active,
                               std::span<double> rrow)
    AJAC_REQUIRES(own.owner, x.writer_role()) {
  const index_t k = x.num_cols();
  for (index_t i = blk.lo; i < blk.hi; ++i) {
    const auto li = static_cast<std::size_t>(i - blk.lo);
    r.read_row(i, rrow.subspan(0, static_cast<std::size_t>(k)));
    double* ox = own.x.row(static_cast<index_t>(li));
    const double inv = blk.inv_diag[li];
#pragma omp simd
    for (index_t c = 0; c < k; ++c) {
      const double nx = ox[c] + inv * rrow[static_cast<std::size_t>(c)];
      ox[c] = active[static_cast<std::size_t>(c)] != 0.0 ? nx : ox[c];
    }
    x.write_row(i, {ox, static_cast<std::size_t>(k)});
  }
}

/// One sampled in-place batched relaxation of own row i: the k-lane
/// residual is computed from the latest mirror/ghost rows (one gather,
/// k FMAs — same amortization as relax_boundary_batch), published to r,
/// and the correction committed immediately with the per-column freeze
/// blend of commit_block_batch. Frozen lanes keep their bits, so a
/// column's final state stays policy-schedule-only — which draws happened
/// — never perturbed by the other columns' lifetimes.
template <class Faults>
inline void relax_row_sampled_batch(
    const BlockedCsr::Block& blk, const CsrMatrix& a, const MultiVector& b,
    OwnBlockBatchState& own, SharedMultiVector& x, Faults& faults,
    SharedMultiVector& r, std::span<const double> active,
    std::span<double> acc, std::span<double> ghost, index_t i)
    AJAC_REQUIRES(own.owner, x.writer_role(), r.writer_role()) {
  const index_t k = b.num_cols();
  const auto li = static_cast<std::size_t>(i - blk.lo);
  const auto begin = static_cast<std::size_t>(blk.row_ptr[li]);
  const auto end = static_cast<std::size_t>(blk.row_ptr[li + 1]);
  const double* br = b.row(i);
#pragma omp simd
  for (index_t c = 0; c < k; ++c) acc[static_cast<std::size_t>(c)] = br[c];
  FlippedEntry flipped;
  bool has_flip = false;
  if constexpr (Faults::enabled) {
    const auto row = a.row(i);
    has_flip = faults.flip(i, row.cols, row.vals, flipped);
  }
  for (std::size_t p = begin; p < end; ++p) {
    double aij = blk.values[p];
    if constexpr (Faults::enabled) {
      if (has_flip && p - begin == flipped.entry) aij = flipped.value;
    }
    const index_t code = blk.col_code[p];
    const double* xr;
    if (BlockedCsr::is_ghost(code)) {
      faults.read_row(x,
                      blk.ghost_cols[static_cast<std::size_t>(
                          BlockedCsr::ghost_slot(code))],
                      ghost.subspan(0, static_cast<std::size_t>(k)));
      xr = ghost.data();
    } else {
      xr = own.x.row(static_cast<index_t>(code));
    }
#pragma omp simd
    for (index_t c = 0; c < k; ++c) {
      acc[static_cast<std::size_t>(c)] -= aij * xr[c];
    }
  }
  r.write_row(i, acc.subspan(0, static_cast<std::size_t>(k)));
  double* ox = own.x.row(static_cast<index_t>(li));
  const double inv = blk.inv_diag[li];
#pragma omp simd
  for (index_t c = 0; c < k; ++c) {
    const double nx = ox[c] + inv * acc[static_cast<std::size_t>(c)];
    ox[c] = active[static_cast<std::size_t>(c)] != 0.0 ? nx : ox[c];
  }
  x.write_row(i, {ox, static_cast<std::size_t>(k)});
}

}  // namespace ajac::runtime
