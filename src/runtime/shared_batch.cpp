// Batched (multi-RHS) shared-memory Jacobi: k independent systems sharing
// one matrix traversal (see solve_shared_batch in shared_jacobi.hpp).
//
// Control flow replicates solve_shared_impl (shared_jacobi.cpp) with every
// per-run scalar widened to k lanes and the convergence machinery made
// per-column: per-(thread, column) flags, a per-column verified stop, and a
// per-column freeze. The bitwise contract — column c of a synchronous (or
// 1-thread asynchronous) batch equals the single-RHS solve of column c —
// rests on three invariants held throughout this file:
//
//   1. Per lane, every arithmetic expression (residual accumulation in CSR
//      entry order, `x + inv_diag * r`, the ascending-row residual-norm
//      sum, the verify scan, the polish sweep) is the scalar path's
//      expression evaluated on the same values in the same order.
//   2. A column freezes at exactly the iteration boundary where its
//      single-RHS run would have exited the while loop: the verified stop
//      of iteration m masks the column's commits from iteration m+1 on, so
//      its x never moves again (frozen lanes keep riding in the SIMD unit,
//      republishing identical bits).
//   3. Frozen columns are excluded from flags, verify, and the stop
//      decision, so the remaining columns' control flow is unaffected by
//      how many neighbors already converged.

#include <omp.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ajac/obs/metrics.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/runtime/blocked_kernels.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/runtime/shared_multi_vector.hpp"
#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"
#include "solve_hooks.hpp"

namespace ajac::runtime {

namespace {

using detail::ActiveBatchFaults;
using detail::ActiveMetrics;
using detail::ActiveStream;
using detail::NullBatchFaults;
using detail::NullMetrics;
using detail::NullStream;

template <class Faults, class Metrics, class Stream, bool Blocked>
SharedBatchResult solve_shared_batch_impl(
    const CsrMatrix& a, const MultiVector& b, const MultiVector& x0,
    const SharedOptions& opts, const partition::Partition& part,
    const Vector& inv_diag, const fault::FaultPlan* plan,
    const BlockedCsr* blocked) {
  const index_t n = a.num_rows();
  const index_t k = b.num_cols();
  const auto k_sz = static_cast<std::size_t>(k);

  SharedMultiVector x(n, k, /*traced=*/false);
  SharedMultiVector r(n, k, /*traced=*/false);
  // Single-threaded setup: this thread is momentarily the sole writer of
  // both shared vectors (the workers have not been forked yet).
  x.writer_role().assert_held();
  r.writer_role().assert_held();
  x.init(x0);
  MultiVector r0(n, k);
  mv::residual(a, x0, b, r0);
  r.init(r0);
  // Per-column r0 norm, bitwise the scalar path's (mv::colwise_norm1 sums
  // rows ascending, exactly vec::norm1 of the column).
  Vector r0_norm(k_sz);
  mv::colwise_norm1(r0, r0_norm);
  for (double& v : r0_norm) v = v > 0.0 ? v : 1.0;

  // flags[t * k + c]: thread t's stopping criterion for column c.
  std::vector<std::atomic<int>> flags(
      static_cast<std::size_t>(opts.num_threads) * k_sz);
  // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
  for (auto& f : flags) f.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<int>> col_stopped(k_sz);
  // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
  for (auto& s : col_stopped) s.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<index_t>> iter_counts(
      static_cast<std::size_t>(opts.num_threads));
  // racy-ok(init): single-threaded setup; the OpenMP fork publishes it.
  for (auto& c : iter_counts) c.store(0, std::memory_order_relaxed);
  std::atomic<int> stop{0};

  SharedBatchResult result;
  result.iterations_per_thread.assign(
      static_cast<std::size_t>(opts.num_threads), 0);
  result.stop_iteration.assign(k_sz, 0);
  result.relaxations_per_column.assign(k_sz, 0);
  std::vector<std::vector<index_t>> col_relax(
      static_cast<std::size_t>(opts.num_threads));
  std::vector<fault::FaultLog> fault_logs(
      static_cast<std::size_t>(opts.num_threads));

  WallTimer timer;

  // Fork/join happens-before edges for TSan (libgomp futexes are invisible
  // to it); everything crossing threads inside the region is std::atomic.
  AJAC_TSAN_RELEASE(&result);

#pragma omp parallel num_threads(static_cast<int>(opts.num_threads))
  {
    AJAC_TSAN_ACQUIRE(&result);
    const auto t = static_cast<index_t>(omp_get_thread_num());
    const index_t lo = part.part_begin(t);
    const index_t hi = part.part_end(t);
    const index_t rows = hi - lo;
    const double delay =
        opts.delay_us.empty() ? 0.0
                              : opts.delay_us[static_cast<std::size_t>(t)];

    // All per-iteration scratch is sized here, before the loop: the hot
    // path performs no allocation (satellite requirement — the per-column
    // norm reduction in particular runs in the hoisted `norms` buffer).
    std::vector<double> active(k_sz, 1.0);  ///< 1.0 = column still converging
    std::vector<double> norms(k_sz, 0.0);
    std::vector<double> acc(k_sz, 0.0);
    std::vector<double> ghost(k_sz, 0.0);
    std::vector<double> rrow(k_sz, 0.0);
    std::vector<double> xrow(k_sz, 0.0);
    auto& my_col_relax = col_relax[static_cast<std::size_t>(t)];
    my_col_relax.assign(k_sz, 0);
    // Relax->commit carrier for the reference kernels (batch analogue of
    // local_r); the blocked kernels publish residual rows inline instead.
    MultiVector local_r(Blocked ? 0 : rows, k);

    Faults faults(a, x0, plan, t, lo, hi, x);
    Metrics metrics(opts.metrics, t, timer);
    Stream stream(opts.stream, t, timer);
    // Own-block per-column partial norms for the beacon (hoisted with the
    // rest of the per-iteration scratch; sized 0 on the null path).
    [[maybe_unused]] std::vector<double> own_norms(
        Stream::enabled ? k_sz : std::size_t{0}, 0.0);

    // Sampled row-selection policy: per-thread counter-based stream over
    // the own rows, same (policy_seed, thread, iter, slot) coordinates as
    // the single-RHS path — k = 1 batch runs draw the same rows bitwise.
    const bool sampled = is_sampled(opts.policy);
    std::optional<RowSampler> sampler;
    // Scratch for the weighted refresh: lane-max |true residual| of each
    // own row, first pass of the stencil-smoothed weights (see below).
    std::vector<double> snapshot_r;
    if (sampled) {
      sampler.emplace(opts.policy, opts.policy_seed, t, lo, hi,
                      opts.weight_refresh);
      if (opts.policy == RowPolicy::kResidualWeighted) {
        snapshot_r.assign(static_cast<std::size_t>(rows), 0.0);
      }
    }
    [[maybe_unused]] std::vector<std::uint32_t> pick_counts;
    if constexpr (Metrics::enabled) {
      if (sampled) pick_counts.assign(static_cast<std::size_t>(rows), 0);
    }

    [[maybe_unused]] const BlockedCsr::Block* blk = nullptr;
    [[maybe_unused]] OwnBlockBatchState own;

    // The partition makes this thread the sole writer of rows [lo, hi) of
    // x and r, and of its private mirror: claim the roles every protocol
    // write and kernel call below requires (claims, not locks).
    x.writer_role().assert_held();
    r.writer_role().assert_held();
    own.owner.assert_held();

    if constexpr (Blocked) {
      blk = &blocked->block(t);
      refresh_own_block_batch(*blk, x, own);
    }

    // Per-column verification gate, mirroring verify_and_maybe_stop of the
    // single-RHS path: flags rest on racy residual reads, so before a
    // column actually stops, recompute a fresh residual of that column
    // from the current shared x (or check the true iteration counters).
    auto verify_column = [&](index_t c, index_t iter) {
      bool all_at_max = true;
      for (auto& cnt : iter_counts) {
        // racy-ok(monotonic): counters only grow; a stale read can only
        // delay the stop decision, never produce a premature one.
        if (cnt.load(std::memory_order_relaxed) < opts.max_iterations) {
          all_at_max = false;
          break;
        }
      }
      bool tol_met = false;
      if (!all_at_max && opts.tolerance > 0.0) {
        double fresh = 0.0;
        for (index_t i = 0; i < n; ++i) {
          double row_acc = b(i, c);
          const auto [cols, vals] = a.row(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            row_acc -= vals[p] * x.read(cols[p], c);
          }
          fresh += std::abs(row_acc);
        }
        tol_met = fresh / r0_norm[static_cast<std::size_t>(c)] <=
                  opts.tolerance;
      }
      if (all_at_max || tol_met) {
        // racy-ok(monotonic): 0 -> 1 latch; the exchange only elects the
        // single writer of stop_iteration (read after the join).
        if (col_stopped[static_cast<std::size_t>(c)].exchange(
                1, std::memory_order_relaxed) == 0) {
          // Winner records where the column stopped; read after the join.
          result.stop_iteration[static_cast<std::size_t>(c)] = iter;
        }
      }
    };

    // Per-column stop poll: verify any column whose every per-thread flag
    // is up, then broadcast the global stop once all columns are stopped.
    auto poll_column_stops = [&](index_t it) {
      for (index_t c = 0; c < k; ++c) {
        // racy-ok(monotonic): 0 -> 1 latch; stale reads only defer work.
        if (col_stopped[static_cast<std::size_t>(c)].load(
                std::memory_order_relaxed) != 0) {
          continue;
        }
        int done_count = 0;
        for (index_t tt = 0; tt < opts.num_threads; ++tt) {
          // racy-ok(flag): flag hints; verify_column re-checks for real.
          done_count += flags[static_cast<std::size_t>(tt) * k_sz +
                              static_cast<std::size_t>(c)]
                            .load(std::memory_order_relaxed);
        }
        if (done_count == static_cast<int>(opts.num_threads)) {
          verify_column(c, it);
        }
      }
      index_t stopped = 0;
      for (auto& s : col_stopped) {
        // racy-ok(monotonic): 0 -> 1 latch, polled.
        stopped += s.load(std::memory_order_relaxed) != 0 ? 1 : 0;
      }
      // racy-ok(stop): 0 -> 1 broadcast; the exchange elects the single
      // recorder of the stop event, results are read after the join.
      if (stopped == k && stop.exchange(1, std::memory_order_relaxed) == 0) {
        if constexpr (Metrics::enabled) metrics.stop_decided();
      }
    };

    index_t iter = 0;
    [[maybe_unused]] double last_own_rel = 0.0;
    // racy-ok(stop): stop only transitions 0 -> 1; a stale read costs one
    // extra polling pass, nothing more.
    while (stop.load(std::memory_order_relaxed) == 0) {
      if (iter >= opts.max_iterations) {
        // Parked at the iteration cap (see shared_jacobi.cpp): relaxing
        // past the cap would make the executed (thread, iteration) set —
        // and with it the fault log — scheduler-timed. This thread's flags
        // for every active column went up when iter reached the cap; keep
        // polling the other threads' flags until every column stops.
        poll_column_stops(iter);
        sched_yield();
        continue;
      }
      if constexpr (Metrics::enabled) metrics.iteration_begin();
      if (delay > 0.0) {
        spin_wait_us(delay);
        if constexpr (Metrics::enabled) metrics.spin_wait(delay);
      }
      if constexpr (Faults::enabled) faults.begin_iteration(iter);
      if constexpr (Faults::enabled && Blocked) {
        if (faults.consume_state_reset()) refresh_own_block_batch(*blk, x, own);
      }
      if constexpr (Metrics::enabled) metrics.sync_faults(faults);

      // Refresh the freeze mask. col_stopped only ever goes 0 -> 1, so a
      // racy read is safe: once a thread observes a column stopped it stays
      // stopped. In synchronous mode the stores happen before the previous
      // iteration's closing barrier, so all threads flip the mask together
      // — the alignment the bitwise contract needs.
      index_t active_cols = 0;
      for (index_t c = 0; c < k; ++c) {
        // racy-ok(monotonic): 0 -> 1 latch; observing the stop late keeps
        // the lane riding (and republishing identical bits) one more pass.
        const bool on =
            col_stopped[static_cast<std::size_t>(c)].load(
                std::memory_order_relaxed) == 0;
        active[static_cast<std::size_t>(c)] = on ? 1.0 : 0.0;
        active_cols += on ? 1 : 0;
      }

      // Step 1: batched residual on own rows from the shared (racy) x.
      // All k lanes are computed, frozen ones included — a frozen lane
      // recomputes its (already final) residual from a frozen column,
      // which costs nothing extra and keeps the SIMD loop maskless.
      if (sampled) {
        // Sampled policies relax in place: each draw recomputes row i's
        // residual and commits the masked correction immediately, so the
        // separate step-2 commit below is skipped. Draw count per local
        // iteration equals the block size, keeping the iteration /
        // relaxation bookkeeping identical to the sweeping kernels.
        if (sampler->refresh_due(iter)) {
          // Two passes, mirroring the single-RHS refresh: lane-max |true
          // residual| of each own row recomputed from an x snapshot (not
          // the published r, whose pre-update values go stale under
          // in-place draws), then the stencil-smoothed weight (|A| |r|)_i
          // over the own block — see row_policy.hpp. Reads bypass fault
          // injection: the policy stream must not consume fault decisions.
          for (index_t i = lo; i < hi; ++i) {
            const auto [cols, vals] = a.row(i);
            const double* br = b.row(i);
            for (index_t c = 0; c < k; ++c) {
              rrow[static_cast<std::size_t>(c)] = br[c];
            }
            for (std::size_t p = 0; p < cols.size(); ++p) {
              x.read_row(cols[p], xrow);
              for (index_t c = 0; c < k; ++c) {
                rrow[static_cast<std::size_t>(c)] -=
                    vals[p] * xrow[static_cast<std::size_t>(c)];
              }
            }
            double m = 0.0;
            for (index_t c = 0; c < k; ++c) {
              m = std::max(m, std::abs(rrow[static_cast<std::size_t>(c)]));
            }
            snapshot_r[static_cast<std::size_t>(i - lo)] = m;
          }
          sampler->refresh_weights([&](index_t i) {
            const auto [cols, vals] = a.row(i);
            double w = 0.0;
            for (std::size_t p = 0; p < cols.size(); ++p) {
              const index_t j = cols[p];
              if (j >= lo && j < hi) {
                w += std::abs(vals[p]) *
                     snapshot_r[static_cast<std::size_t>(j - lo)];
              }
            }
            return w;
          });
          if constexpr (Metrics::enabled) metrics.weight_refresh();
          if constexpr (Stream::enabled) stream.weight_refresh();
        }
        for (index_t slot = 0; slot < rows; ++slot) {
          const index_t i = sampler->next(iter, slot);
          if constexpr (Metrics::enabled) {
            ++pick_counts[static_cast<std::size_t>(i - lo)];
          }
          if constexpr (Blocked) {
            relax_row_sampled_batch(*blk, a, b, own, x, faults, r, active,
                                    acc, ghost, i);
          } else {
            const auto [cols, vals] = a.row(i);
            const double* br = b.row(i);
#pragma omp simd
            for (index_t c = 0; c < k; ++c) {
              acc[static_cast<std::size_t>(c)] = br[c];
            }
            FlippedEntry flipped;
            bool has_flip = false;
            if constexpr (Faults::enabled) {
              has_flip = faults.flip(i, cols, vals, flipped);
            }
            for (std::size_t p = 0; p < cols.size(); ++p) {
              double aij = vals[p];
              if constexpr (Faults::enabled) {
                if (has_flip && flipped.entry == p) aij = flipped.value;
              }
              faults.read_row(x, cols[p], xrow);
#pragma omp simd
              for (index_t c = 0; c < k; ++c) {
                acc[static_cast<std::size_t>(c)] -=
                    aij * xrow[static_cast<std::size_t>(c)];
              }
            }
            r.write_row(i, {acc.data(), k_sz});
            x.read_row(i, xrow);
            const double inv = inv_diag[i];
#pragma omp simd
            for (index_t c = 0; c < k; ++c) {
              const double nx = xrow[static_cast<std::size_t>(c)] +
                                inv * acc[static_cast<std::size_t>(c)];
              xrow[static_cast<std::size_t>(c)] =
                  active[static_cast<std::size_t>(c)] != 0.0
                      ? nx
                      : xrow[static_cast<std::size_t>(c)];
            }
            x.write_row(i, xrow);
          }
        }
      } else if constexpr (Blocked) {
        relax_interior_batch(*blk, a, b, own, faults, r, acc);
        relax_boundary_batch(*blk, a, b, own, x, faults, r, acc, ghost);
      } else {
        for (index_t i = lo; i < hi; ++i) {
          const auto [cols, vals] = a.row(i);
          const double* br = b.row(i);
          double* lr = local_r.row(i - lo);
#pragma omp simd
          for (index_t c = 0; c < k; ++c) lr[c] = br[c];
          FlippedEntry flipped;
          bool has_flip = false;
          if constexpr (Faults::enabled) {
            has_flip = faults.flip(i, cols, vals, flipped);
          }
          for (std::size_t p = 0; p < cols.size(); ++p) {
            double aij = vals[p];
            if constexpr (Faults::enabled) {
              if (has_flip && flipped.entry == p) aij = flipped.value;
            }
            faults.read_row(x, cols[p], xrow);
#pragma omp simd
            for (index_t c = 0; c < k; ++c) {
              lr[c] -= aij * xrow[static_cast<std::size_t>(c)];
            }
          }
        }
        for (index_t i = lo; i < hi; ++i) {
          r.write_row(i, {local_r.row(i - lo), k_sz});
        }
      }
      if constexpr (Metrics::enabled && Blocked) {
        metrics.read_mix(blk->local_nnz, blk->ghost_nnz);
      }

      if (opts.synchronous) {
#pragma omp barrier
      }

      // Step 2: correct own rows — masked per column (invariant 2). The
      // sampled policies already committed in place per draw.
      if (!sampled) {
        if constexpr (Blocked) {
          commit_block_batch(*blk, own, x, r, active, rrow);
        } else {
          for (index_t i = lo; i < hi; ++i) {
            x.read_row(i, xrow);
            const double* lr = local_r.row(i - lo);
            const double inv = inv_diag[i];
#pragma omp simd
            for (index_t c = 0; c < k; ++c) {
              const double nx =
                  xrow[static_cast<std::size_t>(c)] + inv * lr[c];
              xrow[static_cast<std::size_t>(c)] =
                  active[static_cast<std::size_t>(c)] != 0.0
                      ? nx
                      : xrow[static_cast<std::size_t>(c)];
            }
            x.write_row(i, xrow);
          }
        }
      }
      ++iter;
      // racy-ok(monotonic): published for the verification gate; it only
      // needs an eventually-fresh lower bound.
      iter_counts[static_cast<std::size_t>(t)].store(
          iter, std::memory_order_relaxed);
      for (index_t c = 0; c < k; ++c) {
        if (active[static_cast<std::size_t>(c)] != 0.0) {
          my_col_relax[static_cast<std::size_t>(c)] += rows;
        }
      }
      if constexpr (Metrics::enabled) {
        metrics.batch_iteration(rows, active_cols);
      }

      // Step 3: per-column convergence check — the whole shared residual,
      // racy reads, accumulated column-blocked into the hoisted `norms`
      // buffer (rows ascending per column, bitwise the scalar scan).
      if constexpr (Metrics::enabled) metrics.residual_check_begin();
      std::fill(norms.begin(), norms.end(), 0.0);
      if constexpr (Stream::enabled) {
        // Same scan with the own rows' terms mirrored into the per-column
        // own-block accumulators for the beacon: every term still lands in
        // `norms` in the original row order, so the streamed run's residual
        // check is bitwise the unstreamed one's.
        std::fill(own_norms.begin(), own_norms.end(), 0.0);
        for (index_t i = 0; i < n; ++i) {
          r.read_row(i, rrow);
          if (i >= lo && i < hi) {
#pragma omp simd
            for (index_t c = 0; c < k; ++c) {
              const double v = std::abs(rrow[static_cast<std::size_t>(c)]);
              norms[static_cast<std::size_t>(c)] += v;
              own_norms[static_cast<std::size_t>(c)] += v;
            }
          } else {
#pragma omp simd
            for (index_t c = 0; c < k; ++c) {
              norms[static_cast<std::size_t>(c)] +=
                  std::abs(rrow[static_cast<std::size_t>(c)]);
            }
          }
        }
      } else {
        for (index_t i = 0; i < n; ++i) {
          r.read_row(i, rrow);
#pragma omp simd
          for (index_t c = 0; c < k; ++c) {
            norms[static_cast<std::size_t>(c)] +=
                std::abs(rrow[static_cast<std::size_t>(c)]);
          }
        }
      }
      if constexpr (Metrics::enabled) metrics.residual_check_end();
      if constexpr (Stream::enabled) {
        // Beacon value under kUpperBoundMax: worst still-relative lane,
        // max over columns of (own-block column norm / column r0 norm).
        double worst = 0.0;
        for (index_t c = 0; c < k; ++c) {
          worst = std::max(worst, own_norms[static_cast<std::size_t>(c)] /
                                      r0_norm[static_cast<std::size_t>(c)]);
        }
        last_own_rel = worst;
      }

      bool my_all_done = true;
      for (index_t c = 0; c < k; ++c) {
        if (active[static_cast<std::size_t>(c)] == 0.0) continue;
        const double rel =
            norms[static_cast<std::size_t>(c)] /
            r0_norm[static_cast<std::size_t>(c)];
        const bool my_done =
            (opts.tolerance > 0.0 && rel <= opts.tolerance) ||
            iter >= opts.max_iterations;
        // racy-ok(flag): the paper's termination flags rest on racy
        // residual reads by design; verify_column re-checks before a
        // column actually stops.
        flags[static_cast<std::size_t>(t) * k_sz +
              static_cast<std::size_t>(c)]
            .store(my_done ? 1 : 0, std::memory_order_relaxed);
        my_all_done = my_all_done && my_done;
      }
      if constexpr (Metrics::enabled) {
        if (active_cols > 0) metrics.flag_update(my_all_done, iter);
      }

      if (opts.synchronous) {
#pragma omp barrier
      }
      poll_column_stops(iter);
      if (opts.synchronous) {
        // Keep lockstep: every thread must pass the same number of
        // barriers, and all see the verified stop decisions together.
#pragma omp barrier
      }
      if constexpr (Metrics::enabled) metrics.iteration_end(iter - 1, rows);
      if constexpr (Stream::enabled) {
        if (stream.due(iter)) {
          stream.publish(iter, rows, last_own_rel,
                         sampled ? static_cast<std::uint64_t>(iter) *
                                       static_cast<std::uint64_t>(rows)
                                 : 0);
        }
      }
      // racy-ok(stop): monotonic 0 -> 1, polled.
      if (opts.yield && stop.load(std::memory_order_relaxed) == 0) {
        sched_yield();
      }
    }
    if constexpr (Stream::enabled) {
      // Terminal beacon: the monitor always sees this thread's final state
      // even when the last iteration missed the stride.
      stream.finish(iter, rows, last_own_rel,
                    sampled ? static_cast<std::uint64_t>(iter) *
                                  static_cast<std::uint64_t>(rows)
                            : 0);
    }
    result.iterations_per_thread[static_cast<std::size_t>(t)] = iter;
    if constexpr (Metrics::enabled) {
      if (sampled) metrics.policy_counts(pick_counts);
    }
    if constexpr (Faults::enabled) {
      fault_logs[static_cast<std::size_t>(t)] = faults.take_log();
    }
    AJAC_TSAN_RELEASE(&result);
  }
  AJAC_TSAN_ACQUIRE(&result);

  result.seconds = timer.seconds();
  result.x = MultiVector(n, k);
  x.snapshot(result.x);

  // Per-column serial verification + polish, each column exactly the
  // single-RHS epilogue on its extracted column (invariant 1).
  result.converged.assign(k_sz, false);
  result.final_rel_residual_1.assign(k_sz, 0.0);
  result.polish_sweeps.assign(k_sz, 0);
  [[maybe_unused]] double polish_t0_us = 0.0;
  if constexpr (Metrics::enabled) polish_t0_us = timer.seconds() * 1e6;
  index_t total_polish = 0;
  for (index_t c = 0; c < k; ++c) {
    const auto cs = static_cast<std::size_t>(c);
    Vector xc = result.x.column(c);
    const Vector bc = b.column(c);
    Vector final_r(static_cast<std::size_t>(n));
    a.residual(xc, bc, final_r);
    double rel = vec::norm1(final_r) / r0_norm[cs];
    if (opts.final_polish && opts.tolerance > 0.0 && rel > opts.tolerance) {
      const index_t polish_cap = 20 * opts.num_threads + 200;
      index_t sweeps = 0;
      while (sweeps < polish_cap && rel > opts.tolerance) {
        for (index_t i = 0; i < n; ++i) {
          xc[static_cast<std::size_t>(i)] += inv_diag[i] * final_r[i];
        }
        a.residual(xc, bc, final_r);
        rel = vec::norm1(final_r) / r0_norm[cs];
        ++sweeps;
      }
      result.polish_sweeps[cs] = sweeps;
      total_polish += sweeps;
      result.x.set_column(c, xc);
    }
    result.final_rel_residual_1[cs] = rel;
    result.converged[cs] = opts.tolerance > 0.0 && rel <= opts.tolerance;
  }
  if constexpr (Metrics::enabled) {
    obs::ActorSlot& slot0 = opts.metrics->actor(0);
    // Post-join epilogue: the workers are gone, this thread owns slot 0.
    slot0.owner.assert_held();
    if (total_polish > 0) {
      slot0.add(obs::Counter::kPolishSweeps,
                static_cast<std::uint64_t>(total_polish));
      slot0.span(obs::TraceKind::kPolish, polish_t0_us,
                 timer.seconds() * 1e6, total_polish);
    }
    slot0.span(obs::TraceKind::kSolve, 0.0, timer.seconds() * 1e6);
  }

  for (index_t c = 0; c < k; ++c) {
    index_t sum = 0;
    for (index_t t = 0; t < opts.num_threads; ++t) {
      sum += col_relax[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
    }
    result.relaxations_per_column[static_cast<std::size_t>(c)] = sum;
    result.total_relaxations += sum;
    if constexpr (Metrics::enabled) {
      obs::ActorSlot& sl = opts.metrics->actor(0);
      sl.owner.assert_held();  // post-join epilogue
      sl.record(obs::Hist::kColumnRelaxations,
                static_cast<std::uint64_t>(sum));
    }
  }

  if constexpr (Faults::enabled) {
    for (auto& log : fault_logs) {
      result.fault_events.insert(result.fault_events.end(), log.begin(),
                                 log.end());
    }
    fault::canonicalize(result.fault_events);
  }
  return result;
}

/// Fold the runtime kernel choice into the compile-time Blocked flag, so
/// the faults/metrics dispatch below stays a flat 2x2 (x stream).
template <class Faults, class Metrics, class Stream>
SharedBatchResult dispatch_batch_kernel(
    const CsrMatrix& a, const MultiVector& b, const MultiVector& x0,
    const SharedOptions& opts, const partition::Partition& part,
    const Vector& inv_diag, const fault::FaultPlan* plan,
    const BlockedCsr* blocked) {
  if (blocked != nullptr) {
    return solve_shared_batch_impl<Faults, Metrics, Stream, true>(
        a, b, x0, opts, part, inv_diag, plan, blocked);
  }
  return solve_shared_batch_impl<Faults, Metrics, Stream, false>(
      a, b, x0, opts, part, inv_diag, plan, nullptr);
}

/// Fold the telemetry-hub choice into the Stream hook axis; the null path
/// instantiates NullStream, whose hooks compile away entirely.
template <class Faults, class Metrics>
SharedBatchResult dispatch_batch_stream(
    const CsrMatrix& a, const MultiVector& b, const MultiVector& x0,
    const SharedOptions& opts, const partition::Partition& part,
    const Vector& inv_diag, const fault::FaultPlan* plan,
    const BlockedCsr* blocked) {
  if (opts.stream != nullptr) {
    return dispatch_batch_kernel<Faults, Metrics, ActiveStream>(
        a, b, x0, opts, part, inv_diag, plan, blocked);
  }
  return dispatch_batch_kernel<Faults, Metrics, NullStream>(
      a, b, x0, opts, part, inv_diag, plan, blocked);
}

}  // namespace

SharedBatchResult solve_shared_batch(const CsrMatrix& a, const MultiVector& b,
                                     const MultiVector& x0,
                                     const SharedOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.num_rows() == n && x0.num_rows() == n);
  AJAC_CHECK(b.num_cols() >= 1);
  AJAC_CHECK_MSG(b.num_cols() == x0.num_cols(),
                 "b and x0 must carry the same number of columns");
  AJAC_CHECK(opts.num_threads >= 1);
  AJAC_CHECK(opts.max_iterations >= 1);
  if (!opts.delay_us.empty()) {
    AJAC_CHECK(opts.delay_us.size() ==
               static_cast<std::size_t>(opts.num_threads));
  }
  AJAC_CHECK_MSG(!opts.record_trace,
                 "read-version traces are single-RHS only (the batch seqlock "
                 "is per row; use solve_shared for Sec. IV trace runs)");
  AJAC_CHECK_MSG(!opts.record_history,
                 "per-thread residual histories are single-RHS only; batch "
                 "runs report per-column results instead");
  AJAC_CHECK_MSG(!opts.local_gauss_seidel,
                 "the in-place local sweep has no batched kernel");
  AJAC_CHECK_MSG(!(is_sampled(opts.policy) && opts.synchronous),
                 "sampled row policies relax in place and have no "
                 "synchronous meaning (asynchronous mode only)");
  AJAC_CHECK_MSG(opts.weight_refresh >= 1,
                 "weight_refresh must be a positive iteration cadence");
  AJAC_CHECK_MSG(opts.kernel != KernelKind::kSellCS,
                 "the bandwidth-engineered kSellCS data plane has no batched "
                 "kernel (use kBlocked for multi-RHS runs)");
  AJAC_CHECK_MSG(opts.ghost_precision == GhostPrecision::kFp64,
                 "fp32 ghost publication is kSellCS-only, which the batch "
                 "path does not support");

  const partition::Partition part =
      opts.partition.value_or(partition::contiguous_partition(
          n, opts.num_threads));
  AJAC_CHECK(part.num_parts() == opts.num_threads);
  AJAC_CHECK(part.num_rows() == n);

  AJAC_DBG_VALIDATE(validate::csr_structure(
      a, {.require_sorted_rows = true, .require_diagonal = true,
          .require_finite = true, .require_square = true}));
  AJAC_DBG_VALIDATE(partition::validate(part, n));
  AJAC_DBG_VALIDATE(validate::finite(b.raw(), "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0.raw(), "x0"));

  Vector inv_diag = a.diagonal();
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(inv_diag[i] != 0.0, "zero diagonal at row " << i);
    inv_diag[i] = 1.0 / inv_diag[i];
  }

  const fault::FaultPlan* plan =
      opts.fault_plan && !opts.fault_plan->empty() ? opts.fault_plan.get()
                                                   : nullptr;
  if (plan != nullptr) {
    AJAC_CHECK_MSG(!opts.synchronous,
                   "fault injection targets the asynchronous runtime (the "
                   "synchronous barriers serialize every fault away)");
    plan->validate(opts.num_threads);
  }

  obs::MetricsRegistry* metrics = opts.metrics;
  if (metrics != nullptr) {
    metrics->set_actor_kind("thread");
    metrics->reset(opts.num_threads,
                   static_cast<std::size_t>(opts.max_iterations) + 64);
  }

  std::optional<BlockedCsr> blocked_a;
  if (opts.kernel == KernelKind::kBlocked) {
    blocked_a.emplace(a, std::span<const index_t>(part.block_starts));
  }
  const BlockedCsr* blocked = blocked_a ? &*blocked_a : nullptr;

  if (opts.stream != nullptr) {
    opts.stream->begin_run(opts.num_threads, "thread", opts.tolerance,
                           obs::ResidualConvention::kUpperBoundMax,
                           /*sim_time=*/false);
  }

  if (plan != nullptr && metrics != nullptr) {
    return dispatch_batch_stream<ActiveBatchFaults, ActiveMetrics>(
        a, b, x0, opts, part, inv_diag, plan, blocked);
  }
  if (plan != nullptr) {
    return dispatch_batch_stream<ActiveBatchFaults, NullMetrics>(
        a, b, x0, opts, part, inv_diag, plan, blocked);
  }
  if (metrics != nullptr) {
    return dispatch_batch_stream<NullBatchFaults, ActiveMetrics>(
        a, b, x0, opts, part, inv_diag, nullptr, blocked);
  }
  return dispatch_batch_stream<NullBatchFaults, NullMetrics>(
      a, b, x0, opts, part, inv_diag, nullptr, blocked);
}

}  // namespace ajac::runtime
