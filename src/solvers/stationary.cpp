#include "ajac/solvers/stationary.hpp"

#include <cmath>

#include "ajac/obs/metrics.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"

namespace ajac::solvers {

namespace {

double residual_norm(std::span<const double> r, ResidualNorm which) {
  switch (which) {
    case ResidualNorm::kL1:
      return vec::norm1(r);
    case ResidualNorm::kL2:
      return vec::norm2(r);
    case ResidualNorm::kLinf:
      return vec::norm_inf(r);
  }
  return 0.0;
}

Vector inverse_diagonal(const CsrMatrix& a) {
  Vector d = a.diagonal();
  for (std::size_t i = 0; i < d.size(); ++i) {
    AJAC_CHECK_MSG(d[i] != 0.0, "zero diagonal at row " << i);
    d[i] = 1.0 / d[i];
  }
  return d;
}

/// Shared driver: `sweep` mutates x in place once per iteration; the
/// residual is recomputed afterwards for the history (matching the paper's
/// compute-residual / correct / check structure).
template <typename Sweep>
SolveResult iterate(const CsrMatrix& a, const Vector& b, const Vector& x0,
                    const SolveOptions& opts, Sweep&& sweep) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(opts.record_every >= 1);
  AJAC_DBG_VALIDATE(validate::csr_structure(a, {.require_square = true}));
  AJAC_DBG_VALIDATE(validate::finite(b, "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0, "x0"));

  SolveResult result;
  result.x = x0;
  Vector r(static_cast<std::size_t>(n));
  a.residual(result.x, b, r);
  const double r0 = residual_norm(r, opts.norm);
  const double denom = r0 > 0.0 ? r0 : 1.0;
  result.history.push_back({0, r0 / denom});

  // Metrics are plain branches here: the solver is sequential and the
  // recording sits outside the sweep itself.
  obs::MetricsRegistry* const metrics = opts.metrics;
  if (metrics != nullptr) {
    metrics->set_actor_kind("solver");
    metrics->reset(1, static_cast<std::size_t>(opts.max_iterations) + 8);
  }
  WallTimer timer;

  for (index_t k = 1; k <= opts.max_iterations; ++k) {
    const double t0_us = metrics != nullptr ? timer.seconds() * 1e6 : 0.0;
    sweep(result.x, r);
    a.residual(result.x, b, r);
    if (metrics != nullptr) {
      const double t1_us = timer.seconds() * 1e6;
      obs::ActorSlot& s = metrics->actor(0);
      s.owner.assert_held();  // single-threaded solver: it owns its slot
      s.add(obs::Counter::kIterations);
      s.add(obs::Counter::kRelaxations, static_cast<std::uint64_t>(n));
      s.record(obs::Hist::kIterationUs,
               static_cast<std::uint64_t>(t1_us - t0_us));
      s.span(obs::TraceKind::kIteration, t0_us, t1_us, k);
    }
    const double rel = residual_norm(r, opts.norm) / denom;
    result.iterations = k;
    if (k % opts.record_every == 0) result.history.push_back({k, rel});
    if (rel <= opts.tolerance) {
      if (k % opts.record_every != 0) result.history.push_back({k, rel});
      result.converged = true;
      break;
    }
    if (!std::isfinite(rel)) break;  // diverged past double range
  }
  if (metrics != nullptr) {
    obs::ActorSlot& s = metrics->actor(0);
    s.owner.assert_held();  // single-threaded solver: it owns its slot
    s.span(obs::TraceKind::kSolve, 0.0, timer.seconds() * 1e6,
           result.iterations);
  }
  result.final_rel_residual = result.history.back().rel_residual;
  return result;
}

}  // namespace

SolveResult jacobi(const CsrMatrix& a, const Vector& b, const Vector& x0,
                   const SolveOptions& opts) {
  return weighted_jacobi(a, b, x0, 1.0, opts);
}

SolveResult weighted_jacobi(const CsrMatrix& a, const Vector& b,
                            const Vector& x0, double omega,
                            const SolveOptions& opts) {
  const Vector inv_d = inverse_diagonal(a);
  const index_t n = a.num_rows();
  return iterate(a, b, x0, opts, [&, omega](Vector& x, Vector& r) {
    // r holds b - A x from the previous residual computation.
    for (index_t i = 0; i < n; ++i) x[i] += omega * inv_d[i] * r[i];
  });
}

SolveResult gauss_seidel(const CsrMatrix& a, const Vector& b, const Vector& x0,
                         const SolveOptions& opts) {
  return sor(a, b, x0, 1.0, opts);
}

SolveResult sor(const CsrMatrix& a, const Vector& b, const Vector& x0,
                double omega, const SolveOptions& opts) {
  const Vector inv_d = inverse_diagonal(a);
  const index_t n = a.num_rows();
  return iterate(a, b, x0, opts, [&, omega](Vector& x, Vector& /*r*/) {
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
    for (index_t i = 0; i < n; ++i) {
      double ri = b[i];
      for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        ri -= values[p] * x[col_idx[p]];
      }
      x[i] += omega * inv_d[i] * ri;
    }
  });
}

SolveResult ssor(const CsrMatrix& a, const Vector& b, const Vector& x0,
                 double omega, const SolveOptions& opts) {
  const Vector inv_d = inverse_diagonal(a);
  const index_t n = a.num_rows();
  return iterate(a, b, x0, opts, [&, omega](Vector& x, Vector& /*r*/) {
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
    auto relax_row = [&](index_t i) {
      double ri = b[i];
      for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        ri -= values[p] * x[col_idx[p]];
      }
      x[i] += omega * inv_d[i] * ri;
    };
    for (index_t i = 0; i < n; ++i) relax_row(i);
    for (index_t i = n - 1; i >= 0; --i) relax_row(i);
  });
}

SolveResult gauss_seidel_backward(const CsrMatrix& a, const Vector& b,
                                  const Vector& x0, const SolveOptions& opts) {
  const Vector inv_d = inverse_diagonal(a);
  const index_t n = a.num_rows();
  return iterate(a, b, x0, opts, [&](Vector& x, Vector& /*r*/) {
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
    for (index_t i = n - 1; i >= 0; --i) {
      double ri = b[i];
      for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        ri -= values[p] * x[col_idx[p]];
      }
      x[i] += inv_d[i] * ri;
    }
  });
}

SolveResult multicolor_gauss_seidel(const CsrMatrix& a, const Vector& b,
                                    const Vector& x0,
                                    const std::vector<index_t>& colors,
                                    index_t num_colors,
                                    const SolveOptions& opts) {
  AJAC_CHECK(colors.size() == static_cast<std::size_t>(a.num_rows()));
  AJAC_CHECK(num_colors >= 1);
  const Vector inv_d = inverse_diagonal(a);
  std::vector<std::vector<index_t>> by_color(
      static_cast<std::size_t>(num_colors));
  for (index_t i = 0; i < a.num_rows(); ++i) {
    AJAC_CHECK(colors[i] >= 0 && colors[i] < num_colors);
    by_color[colors[i]].push_back(i);
  }
  return iterate(a, b, x0, opts, [&](Vector& x, Vector& /*r*/) {
    for (const auto& rows : by_color) {
      // Rows of one color are independent: Jacobi-update them against the
      // current x (additive within the color, multiplicative across).
      const auto row_ptr = a.row_ptr();
      const auto col_idx = a.col_idx();
      const auto values = a.values();
      for (index_t i : rows) {
        double ri = b[i];
        for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
          ri -= values[p] * x[col_idx[p]];
        }
        x[i] += inv_d[i] * ri;
      }
    }
  });
}

SolveResult inexact_block_jacobi(const CsrMatrix& a, const Vector& b,
                                 const Vector& x0,
                                 const std::vector<index_t>& block_starts,
                                 index_t inner_sweeps,
                                 const SolveOptions& opts) {
  AJAC_CHECK(block_starts.size() >= 2);
  AJAC_CHECK(block_starts.front() == 0);
  AJAC_CHECK(block_starts.back() == a.num_rows());
  AJAC_CHECK(inner_sweeps >= 1);
  const Vector inv_d = inverse_diagonal(a);
  const auto num_blocks = static_cast<index_t>(block_starts.size()) - 1;

  return iterate(a, b, x0, opts, [&](Vector& x, Vector& /*r*/) {
    // All blocks read the same pre-sweep state (additive across blocks):
    // snapshot x, run GS inside each block against the snapshot's
    // off-block values, then commit.
    const Vector snapshot = x;
    for (index_t blk = 0; blk < num_blocks; ++blk) {
      const index_t lo = block_starts[blk];
      const index_t hi = block_starts[blk + 1];
      AJAC_CHECK(lo <= hi);
      // Local copy of this block, iterated against the global snapshot.
      Vector local(snapshot.begin() + lo, snapshot.begin() + hi);
      for (index_t sweep = 0; sweep < inner_sweeps; ++sweep) {
        for (index_t i = lo; i < hi; ++i) {
          double ri = b[i];
          const auto cols = a.row_cols(i);
          const auto vals = a.row_values(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            const index_t j = cols[p];
            const double xj =
                (j >= lo && j < hi) ? local[j - lo] : snapshot[j];
            ri -= vals[p] * xj;
          }
          local[i - lo] += inv_d[i] * ri;
        }
      }
      std::copy(local.begin(), local.end(), x.begin() + lo);
    }
  });
}

}  // namespace ajac::solvers
