#pragma once
// Shared option/result types for the sequential reference solvers.

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac::obs {
class MetricsRegistry;
}

namespace ajac::solvers {

enum class ResidualNorm { kL1, kL2, kLinf };

struct SolveOptions {
  double tolerance = 1e-6;          ///< on the relative residual norm
  ResidualNorm norm = ResidualNorm::kL1;  ///< paper plots 1-norms
  index_t max_iterations = 10000;   ///< sweeps over all rows
  index_t record_every = 1;         ///< history granularity
  /// Observability sink (see ajac/obs/metrics.hpp): per-sweep wall-clock
  /// timings and iteration spans on a single "solver" lane. Null leaves
  /// the solve untouched.
  obs::MetricsRegistry* metrics = nullptr;
};

struct IterationPoint {
  index_t iteration = 0;
  double rel_residual = 0.0;
};

struct SolveResult {
  Vector x;
  std::vector<IterationPoint> history;
  index_t iterations = 0;
  bool converged = false;
  double final_rel_residual = 0.0;
};

}  // namespace ajac::solvers
