#pragma once
// Conjugate-gradient baselines. The paper positions (asynchronous)
// stationary methods against "current state-of-the-art iterative methods"
// whose synchronization points (dot products!) are the exascale problem
// (Sec. I). CG is that comparator: two global reductions per iteration.
// We provide plain CG and Jacobi-preconditioned CG, plus a synchronization
// count so the harness can weigh iterations against reductions.

#include "ajac/solvers/common.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::solvers {

struct CgResult {
  Vector x;
  std::vector<IterationPoint> history;  ///< relative residual 2-norm
  index_t iterations = 0;
  bool converged = false;
  double final_rel_residual = 0.0;
  /// Global synchronization points a distributed run would need: two dot
  /// products per iteration plus the initial norm.
  index_t synchronizations = 0;
};

struct CgOptions {
  double tolerance = 1e-8;       ///< on ||r||_2 / ||r0||_2
  index_t max_iterations = 10000;
  bool jacobi_preconditioner = false;  ///< M = D
  /// Observability sink (see ajac/obs/metrics.hpp): per-iteration timings
  /// on a single "solver" lane. Null leaves the solve untouched.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Conjugate gradients for SPD A. Breaks down (returns converged=false)
/// if A is not positive definite along the search directions.
[[nodiscard]] CgResult conjugate_gradient(const CsrMatrix& a, const Vector& b,
                                          const Vector& x0,
                                          const CgOptions& opts = {});

}  // namespace ajac::solvers
