#pragma once
// Sequential stationary iterative methods (Sec. II of the paper): the
// baselines every experiment compares against, and the methods Sec. IV-B
// shows to be special cases of propagation-matrix sequences.

#include "ajac/solvers/common.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::solvers {

/// Synchronous Jacobi in residual-correction form, exactly the paper's
/// implementation skeleton (Sec. V): r = b - A x; x = x + D^{-1} r.
[[nodiscard]] SolveResult jacobi(const CsrMatrix& a, const Vector& b,
                                 const Vector& x0,
                                 const SolveOptions& opts = {});

/// Weighted (damped) Jacobi: x = x + omega * D^{-1} r.
[[nodiscard]] SolveResult weighted_jacobi(const CsrMatrix& a, const Vector& b,
                                          const Vector& x0, double omega,
                                          const SolveOptions& opts = {});

/// Gauss–Seidel with natural (ascending) ordering: M = L (lower triangular
/// part of A including the diagonal).
[[nodiscard]] SolveResult gauss_seidel(const CsrMatrix& a, const Vector& b,
                                       const Vector& x0,
                                       const SolveOptions& opts = {});

/// Backward Gauss–Seidel (descending row order).
[[nodiscard]] SolveResult gauss_seidel_backward(const CsrMatrix& a,
                                                const Vector& b,
                                                const Vector& x0,
                                                const SolveOptions& opts = {});

/// Successive over-relaxation with parameter omega (omega = 1 is GS).
[[nodiscard]] SolveResult sor(const CsrMatrix& a, const Vector& b,
                              const Vector& x0, double omega,
                              const SolveOptions& opts = {});

/// Symmetric SOR: one forward then one backward SOR pass per iteration
/// (omega = 1 gives symmetric Gauss-Seidel). The iteration operator is
/// symmetric for SPD A, making SSOR usable as a CG preconditioner.
[[nodiscard]] SolveResult ssor(const CsrMatrix& a, const Vector& b,
                               const Vector& x0, double omega,
                               const SolveOptions& opts = {});

/// Multicolor Gauss–Seidel: rows of each color relax in parallel
/// (additively), colors sweep sequentially (multiplicatively). `colors`
/// must be a valid coloring of A's pattern.
[[nodiscard]] SolveResult multicolor_gauss_seidel(
    const CsrMatrix& a, const Vector& b, const Vector& x0,
    const std::vector<index_t>& colors, index_t num_colors,
    const SolveOptions& opts = {});

/// Inexact block Jacobi on contiguous blocks: each sweep applies
/// `inner_sweeps` Gauss–Seidel passes *within* each block, blocks updated
/// additively from the same global state (Jager & Bradley's inexact block
/// Jacobi baseline). `block_starts` has one entry per block plus a final
/// sentinel equal to n.
[[nodiscard]] SolveResult inexact_block_jacobi(
    const CsrMatrix& a, const Vector& b, const Vector& x0,
    const std::vector<index_t>& block_starts, index_t inner_sweeps = 1,
    const SolveOptions& opts = {});

}  // namespace ajac::solvers
