#include "ajac/solvers/krylov.hpp"

#include <cmath>

#include "ajac/obs/metrics.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"

namespace ajac::solvers {

CgResult conjugate_gradient(const CsrMatrix& a, const Vector& b,
                            const Vector& x0, const CgOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_DBG_VALIDATE(validate::csr_structure(a, {.require_square = true}));
  AJAC_DBG_VALIDATE(validate::finite(b, "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0, "x0"));

  Vector inv_diag;
  if (opts.jacobi_preconditioner) {
    inv_diag = a.diagonal();
    for (double& d : inv_diag) {
      AJAC_CHECK_MSG(d > 0.0, "Jacobi preconditioner needs a positive "
                              "diagonal");
      d = 1.0 / d;
    }
  }

  CgResult result;
  result.x = x0;
  Vector r(static_cast<std::size_t>(n));
  a.residual(result.x, b, r);
  const double r0_norm = vec::norm2(r);
  const double denom = r0_norm > 0.0 ? r0_norm : 1.0;
  result.history.push_back({0, r0_norm / denom});
  result.synchronizations = 1;  // initial norm
  if (r0_norm == 0.0) {
    result.converged = true;
    return result;
  }

  Vector z = r;
  if (opts.jacobi_preconditioner) {
    for (index_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  }
  Vector p = z;
  Vector ap(static_cast<std::size_t>(n));
  double rz = vec::dot(r, z);
  ++result.synchronizations;

  obs::MetricsRegistry* const metrics = opts.metrics;
  if (metrics != nullptr) {
    metrics->set_actor_kind("solver");
    metrics->reset(1, static_cast<std::size_t>(opts.max_iterations) + 8);
  }
  WallTimer timer;
  auto record_iteration = [&](index_t k, double t0_us) {
    const double t1_us = timer.seconds() * 1e6;
    obs::ActorSlot& s = metrics->actor(0);
    s.owner.assert_held();  // single-threaded solver: it owns its slot
    s.add(obs::Counter::kIterations);
    s.record(obs::Hist::kIterationUs,
             static_cast<std::uint64_t>(t1_us - t0_us));
    s.span(obs::TraceKind::kIteration, t0_us, t1_us, k);
  };

  for (index_t k = 1; k <= opts.max_iterations; ++k) {
    const double t0_us = metrics != nullptr ? timer.seconds() * 1e6 : 0.0;
    a.spmv(p, ap);
    const double pap = vec::dot(p, ap);
    ++result.synchronizations;
    if (pap <= 0.0) {
      // Not SPD along p (or numerical breakdown).
      result.iterations = k;
      result.final_rel_residual = vec::norm2(r) / denom;
      return result;
    }
    const double alpha = rz / pap;
    vec::axpy(alpha, p, result.x);
    vec::axpy(-alpha, ap, r);

    if (opts.jacobi_preconditioner) {
      for (index_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    } else {
      z = r;
    }
    const double rz_next = vec::dot(r, z);
    ++result.synchronizations;
    const double rel = vec::norm2(r) / denom;
    result.iterations = k;
    result.history.push_back({k, rel});
    if (metrics != nullptr) record_iteration(k, t0_us);
    if (rel <= opts.tolerance) {
      result.converged = true;
      break;
    }
    const double beta = rz_next / rz;
    rz = rz_next;
    vec::xpby(z, beta, p);
  }
  if (metrics != nullptr) {
    obs::ActorSlot& s = metrics->actor(0);
    s.owner.assert_held();  // single-threaded solver: it owns its slot
    s.span(obs::TraceKind::kSolve, 0.0, timer.seconds() * 1e6,
           result.iterations);
  }
  result.final_rel_residual = result.history.back().rel_residual;
  return result;
}

}  // namespace ajac::solvers
