#include "ajac/eig/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::eig {

namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

}  // namespace

std::vector<double> tridiag_eigenvalues(std::vector<double> alpha,
                                        std::vector<double> beta) {
  const auto m = static_cast<index_t>(alpha.size());
  AJAC_CHECK(beta.size() + 1 == alpha.size() || (m == 0 && beta.empty()));
  if (m == 0) return {};
  // QL with implicit shifts (tql1-style, eigenvalues only).
  std::vector<double> d = std::move(alpha);
  std::vector<double> e(static_cast<std::size_t>(m), 0.0);
  std::copy(beta.begin(), beta.end(), e.begin());  // e[0..m-2], e[m-1]=0

  for (index_t l = 0; l < m; ++l) {
    index_t iter = 0;
    index_t mm;
    do {
      for (mm = l; mm + 1 < m; ++mm) {
        const double dd = std::abs(d[mm]) + std::abs(d[mm + 1]);
        if (std::abs(e[mm]) <= 1e-300 + 2.3e-16 * dd) break;
      }
      if (mm != l) {
        AJAC_CHECK_MSG(iter++ < 50, "tridiag QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[mm] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        index_t i = mm - 1;
        bool underflow = false;
        for (; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[mm] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (underflow && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[mm] = 0.0;
      }
    } while (mm != l);
  }
  std::sort(d.begin(), d.end());
  return d;
}

LanczosResult lanczos_extreme(const LinearOperator& op,
                              const LanczosOptions& opts) {
  AJAC_CHECK(op.dimension > 0);
  const auto n = static_cast<std::size_t>(op.dimension);
  const index_t max_steps =
      std::min<index_t>(opts.max_steps, op.dimension);

  LanczosResult result;
  std::vector<Vector> basis;  // full reorthogonalization needs all vectors
  std::vector<double> alpha;
  std::vector<double> beta;

  Vector v(n);
  Vector w(n);
  Rng rng(opts.seed);
  vec::fill_uniform(v, rng);
  {
    const double nrm = vec::norm2(v);
    AJAC_CHECK(nrm > 0.0);
    for (double& x : v) x /= nrm;
  }
  basis.push_back(v);

  double prev_min = 0.0;
  double prev_max = 0.0;
  for (index_t k = 0; k < max_steps; ++k) {
    op.apply(basis.back(), w);
    const double a = vec::dot(basis.back(), w);
    alpha.push_back(a);
    // w -= a*v_k + b_{k-1}*v_{k-1}
    vec::axpy(-a, basis.back(), w);
    if (k > 0) vec::axpy(-beta.back(), basis[basis.size() - 2], w);
    // Full reorthogonalization (twice is enough).
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vector& q : basis) {
        const double proj = vec::dot(q, w);
        if (proj != 0.0) vec::axpy(-proj, q, w);
      }
    }
    const double b = vec::norm2(w);
    result.steps = k + 1;

    result.ritz_values = tridiag_eigenvalues(alpha, beta);
    result.lambda_min = result.ritz_values.front();
    result.lambda_max = result.ritz_values.back();

    const bool stabilized =
        k >= 8 &&
        std::abs(result.lambda_min - prev_min) <=
            opts.tolerance * std::max(1.0, std::abs(result.lambda_min)) &&
        std::abs(result.lambda_max - prev_max) <=
            opts.tolerance * std::max(1.0, std::abs(result.lambda_max));
    if (stabilized || b <= 1e-14) {
      // b ~ 0 means the Krylov space is invariant: Ritz values are exact.
      result.converged = true;
      return result;
    }
    prev_min = result.lambda_min;
    prev_max = result.lambda_max;

    beta.push_back(b);
    Vector next(n);
    for (std::size_t i = 0; i < n; ++i) next[i] = w[i] / b;
    basis.push_back(std::move(next));
  }
  result.converged = false;
  return result;
}

double jacobi_spectral_radius_spd(const CsrMatrix& a,
                                  const LanczosOptions& opts) {
  const CsrMatrix scaled = scale_to_unit_diagonal(a);
  const LanczosResult r = lanczos_extreme(make_operator(scaled), opts);
  return std::max(std::abs(1.0 - r.lambda_min), std::abs(1.0 - r.lambda_max));
}

double optimal_jacobi_omega(const CsrMatrix& a, const LanczosOptions& opts) {
  const CsrMatrix scaled = scale_to_unit_diagonal(a);
  const LanczosResult r = lanczos_extreme(make_operator(scaled), opts);
  AJAC_CHECK_MSG(r.lambda_min > 0.0,
                 "optimal_jacobi_omega requires a positive definite matrix");
  return 2.0 / (r.lambda_min + r.lambda_max);
}

}  // namespace ajac::eig
