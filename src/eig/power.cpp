#include "ajac/eig/power.hpp"

#include <cmath>

#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::eig {

PowerResult power_method(const LinearOperator& op, const PowerOptions& opts) {
  AJAC_CHECK(op.dimension > 0);
  AJAC_CHECK(op.apply != nullptr);
  const auto n = static_cast<std::size_t>(op.dimension);

  PowerResult result;
  Vector v(n);
  Vector w(n);
  Rng rng(opts.seed);
  vec::fill_uniform(v, rng);
  double norm = vec::norm2(v);
  AJAC_CHECK(norm > 0.0);
  for (double& x : v) x /= norm;

  // For operators with a +rho/-rho dominant pair (e.g. the Jacobi iteration
  // matrix of a bipartite-like FD Laplacian), the iterate oscillates and the
  // eigenpair residual never vanishes, but ||Op v_k|| still converges to
  // rho. Track the last magnitudes and accept stabilization as convergence.
  double mag_prev1 = -1.0;
  double mag_prev2 = -1.0;

  for (index_t k = 0; k < opts.max_iterations; ++k) {
    op.apply(v, w);
    const double rayleigh = vec::dot(v, w);  // v is unit-norm
    const double wnorm = vec::norm2(w);
    result.iterations = k + 1;
    if (wnorm == 0.0) {
      // v is in the null space; the dominant eigenvalue along this start
      // vector is 0.
      result.eigenvalue = 0.0;
      result.magnitude = 0.0;
      result.eigenvector = v;
      result.converged = true;
      return result;
    }
    // Eigenpair residual ||Av - (v'Av) v||.
    double resid2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = w[i] - rayleigh * v[i];
      resid2 += r * r;
    }
    result.eigenvalue = rayleigh;
    result.magnitude = wnorm;  // ||Av|| -> |lambda| for unit v
    const bool eigenpair_ok =
        std::sqrt(resid2) <= opts.tolerance * std::max(1.0, wnorm);
    const bool magnitude_ok =
        k >= 16 && mag_prev2 > 0.0 &&
        std::abs(wnorm - mag_prev2) <= 10.0 * opts.tolerance * wnorm &&
        std::abs(wnorm - mag_prev1) <= 0.5 * wnorm;  // reject wild swings
    if (eigenpair_ok || magnitude_ok) {
      for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / wnorm;
      result.eigenvector = v;
      result.converged = true;
      return result;
    }
    mag_prev2 = mag_prev1;
    mag_prev1 = wnorm;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / wnorm;
  }
  result.eigenvector = v;
  result.converged = false;
  return result;
}

double spectral_radius_jacobi(const CsrMatrix& a, const PowerOptions& opts) {
  return power_method(make_jacobi_operator(a), opts).magnitude;
}

double spectral_radius_abs_jacobi(const CsrMatrix& a,
                                  const PowerOptions& opts) {
  return power_method(make_abs_jacobi_operator(a), opts).magnitude;
}

}  // namespace ajac::eig
