#pragma once
// Symmetric Lanczos with full reorthogonalization, plus the implicit-shift
// QL eigensolver for the resulting tridiagonal matrix. Used to compute
// accurate extreme eigenvalues of large symmetric operators (lambda_min /
// lambda_max of the scaled A, hence rho(G) = max |1 - lambda|), much faster
// than power iteration when the spectrum is clustered.

#include "ajac/eig/operators.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::eig {

struct LanczosOptions {
  index_t max_steps = 200;     ///< Krylov dimension cap
  double tolerance = 1e-10;    ///< Ritz-value stabilization tolerance
  std::uint64_t seed = 42;
};

struct LanczosResult {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  std::vector<double> ritz_values;  ///< all Ritz values, ascending
  index_t steps = 0;
  bool converged = false;
};

/// Extreme eigenvalues of a symmetric operator.
[[nodiscard]] LanczosResult lanczos_extreme(const LinearOperator& op,
                                            const LanczosOptions& opts = {});

/// All eigenvalues of the symmetric tridiagonal matrix with diagonal
/// `alpha` (size m) and off-diagonal `beta` (size m-1), ascending. QL with
/// implicit shifts; O(m^2).
[[nodiscard]] std::vector<double> tridiag_eigenvalues(
    std::vector<double> alpha, std::vector<double> beta);

/// rho(G) for the Jacobi iteration matrix of a symmetric positive definite
/// A via Lanczos on the symmetrized operator: G = I - D^{-1}A is similar to
/// I - D^{-1/2} A D^{-1/2}, so rho(G) = max(|1 - lambda_min|, |1 -
/// lambda_max|) over eigenvalues of the scaled matrix. Requires positive
/// diagonal.
[[nodiscard]] double jacobi_spectral_radius_spd(const CsrMatrix& a,
                                                const LanczosOptions& opts = {});

/// The optimal damping factor for weighted Jacobi on SPD A:
/// omega* = 2 / (lambda_min + lambda_max) of D^{-1/2} A D^{-1/2}, which
/// minimizes rho(I - omega D^{-1} A). Always makes weighted Jacobi
/// convergent on SPD systems — the classical fix for matrices like the
/// paper's FE example where plain Jacobi (omega = 1) diverges.
[[nodiscard]] double optimal_jacobi_omega(const CsrMatrix& a,
                                          const LanczosOptions& opts = {});

}  // namespace ajac::eig
