#pragma once
// Linear-operator abstraction for the eigenvalue tooling: anything that can
// apply y = Op(x) on vectors of a fixed dimension. Lets the same power
// method run on A, the Jacobi iteration matrix G = I - D^{-1}A (never
// formed densely), |G|, or a masked propagation matrix.

#include <functional>
#include <span>

#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::eig {

struct LinearOperator {
  index_t dimension = 0;
  /// Must write Op(x) into y; x and y never alias.
  std::function<void(std::span<const double> /*x*/, std::span<double> /*y*/)>
      apply;
};

/// Wrap a CSR matrix as an operator (y = A x).
[[nodiscard]] LinearOperator make_operator(const CsrMatrix& a);

/// The Jacobi iteration/propagation operator y = (I - D^{-1} A) x, applied
/// matrix-free. For unit-diagonal A this is y = x - A x.
[[nodiscard]] LinearOperator make_jacobi_operator(const CsrMatrix& a);

/// y = |G| x where G = I - D^{-1}A entrywise-absolute (Chazan–Miranker's
/// convergence condition for asynchronous iterations is rho(|G|) < 1).
[[nodiscard]] LinearOperator make_abs_jacobi_operator(const CsrMatrix& a);

}  // namespace ajac::eig
