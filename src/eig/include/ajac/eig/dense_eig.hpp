#pragma once
// Cyclic Jacobi rotation eigensolver for small dense symmetric matrices.
// Exact spectra of model-scale matrices: used by the propagation-matrix
// theory tests (interlacing, Theorem 1) and by the analysis examples.

#include "ajac/sparse/dense.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac::eig {

struct DenseEigResult {
  std::vector<double> eigenvalues;  ///< ascending
  DenseMatrix eigenvectors;         ///< column k pairs with eigenvalues[k]
  index_t sweeps = 0;
  bool converged = false;
};

/// All eigenvalues (and eigenvectors) of a dense symmetric matrix by the
/// cyclic-by-row Jacobi rotation method. O(n^3) per sweep; intended for
/// n up to a few thousand.
[[nodiscard]] DenseEigResult dense_symmetric_eig(const DenseMatrix& a,
                                                 double tolerance = 1e-12,
                                                 index_t max_sweeps = 64);

/// Spectral radius of a (possibly nonsymmetric) dense matrix, computed by
/// unshifted QR-free power iteration on pairs — provided for the small
/// propagation matrices, which are nonsymmetric. Uses the similarity
/// G(active block symmetric) when possible; otherwise falls back to many
/// power iterations with deflation-free restarts and returns the largest
/// magnitude found (a lower bound that is tight in practice for the
/// propagation matrices, whose dominant eigenvalues are real).
[[nodiscard]] double dense_spectral_radius_power(const DenseMatrix& a,
                                                 index_t iterations = 2000,
                                                 index_t restarts = 4);

}  // namespace ajac::eig
