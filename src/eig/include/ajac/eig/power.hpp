#pragma once
// Power iteration for the dominant eigenvalue. Used to estimate rho(G),
// rho(|G|), and lambda_max of scaled matrices when classifying generated
// test problems (Jacobi converges iff rho(G) < 1).

#include "ajac/eig/operators.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::eig {

struct PowerOptions {
  index_t max_iterations = 5000;
  double tolerance = 1e-10;  ///< on the eigenpair residual ||Av - lv||/|l|
  std::uint64_t seed = 42;
};

struct PowerResult {
  double eigenvalue = 0.0;  ///< signed Rayleigh quotient (symmetric ops)
  double magnitude = 0.0;   ///< |eigenvalue| — the spectral-radius estimate
  Vector eigenvector;
  index_t iterations = 0;
  bool converged = false;
};

/// Dominant eigenpair of `op` by normalized power iteration with Rayleigh
/// quotient. Intended for operators that are symmetric or entrywise
/// nonnegative (both cases the library needs); for such operators the
/// magnitude converges to the spectral radius.
[[nodiscard]] PowerResult power_method(const LinearOperator& op,
                                       const PowerOptions& opts = {});

/// rho(G) for the Jacobi iteration matrix of A (matrix-free).
[[nodiscard]] double spectral_radius_jacobi(const CsrMatrix& a,
                                            const PowerOptions& opts = {});

/// rho(|G|), the Chazan–Miranker asynchronous-convergence quantity.
[[nodiscard]] double spectral_radius_abs_jacobi(const CsrMatrix& a,
                                                const PowerOptions& opts = {});

}  // namespace ajac::eig
