#include "ajac/eig/dense_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::eig {

DenseEigResult dense_symmetric_eig(const DenseMatrix& a_in, double tolerance,
                                   index_t max_sweeps) {
  AJAC_CHECK(a_in.num_rows() == a_in.num_cols());
  AJAC_CHECK_MSG(a_in.is_symmetric(1e-12 * (1.0 + a_in.norm_inf())),
                 "dense_symmetric_eig requires a symmetric matrix");
  const index_t n = a_in.num_rows();
  DenseMatrix a = a_in;
  DenseMatrix v = DenseMatrix::identity(n);

  auto offdiag_norm = [&]() {
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) acc += a(i, j) * a(i, j);
    }
    return std::sqrt(2.0 * acc);
  };

  DenseEigResult result;
  const double scale = std::max(1.0, a.norm_fro());
  for (index_t sweep = 0; sweep < max_sweeps; ++sweep) {
    result.sweeps = sweep + 1;
    if (offdiag_norm() <= tolerance * scale) {
      result.converged = true;
      break;
    }
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (index_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (index_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (index_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!result.converged && offdiag_norm() <= tolerance * scale) {
    result.converged = true;
  }

  // Sort eigenvalues ascending and permute eigenvector columns to match.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(),
            [&](index_t x, index_t y) { return a(x, x) < a(y, y); });
  result.eigenvalues.resize(static_cast<std::size_t>(n));
  result.eigenvectors = DenseMatrix(n, n);
  for (index_t k = 0; k < n; ++k) {
    result.eigenvalues[k] = a(order[k], order[k]);
    for (index_t i = 0; i < n; ++i) {
      result.eigenvectors(i, k) = v(i, order[k]);
    }
  }
  return result;
}

double dense_spectral_radius_power(const DenseMatrix& a, index_t iterations,
                                   index_t restarts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  if (n == 0) return 0.0;
  const auto un = static_cast<std::size_t>(n);
  double best = 0.0;
  Rng rng(12345);
  for (index_t r = 0; r < restarts; ++r) {
    Vector x(un);
    Vector y(un);
    for (double& xi : x) xi = rng.uniform(-1.0, 1.0);
    double nrm = 0.0;
    for (double xi : x) nrm += xi * xi;
    nrm = std::sqrt(nrm);
    for (double& xi : x) xi /= nrm;
    double mag = 0.0;
    for (index_t k = 0; k < iterations; ++k) {
      a.gemv(x, y);
      double ynorm = 0.0;
      for (double yi : y) ynorm += yi * yi;
      ynorm = std::sqrt(ynorm);
      if (ynorm == 0.0) {
        mag = 0.0;
        break;
      }
      mag = ynorm;
      for (std::size_t i = 0; i < un; ++i) x[i] = y[i] / ynorm;
    }
    best = std::max(best, mag);
  }
  return best;
}

}  // namespace ajac::eig
