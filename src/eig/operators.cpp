#include "ajac/eig/operators.hpp"

#include <cmath>
#include <memory>

#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/util/check.hpp"

namespace ajac::eig {

LinearOperator make_operator(const CsrMatrix& a) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  auto mat = std::make_shared<CsrMatrix>(a);
  return LinearOperator{
      a.num_rows(),
      [mat](std::span<const double> x, std::span<double> y) {
        mat->spmv(x, y);
      }};
}

LinearOperator make_jacobi_operator(const CsrMatrix& a) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  auto mat = std::make_shared<CsrMatrix>(a);
  auto inv_diag = std::make_shared<Vector>(a.diagonal());
  for (double& d : *inv_diag) {
    AJAC_CHECK_MSG(d != 0.0, "zero diagonal in Jacobi operator");
    d = 1.0 / d;
  }
  return LinearOperator{
      a.num_rows(),
      [mat, inv_diag](std::span<const double> x, std::span<double> y) {
        mat->spmv(x, y);
        const auto n = static_cast<index_t>(x.size());
        for (index_t i = 0; i < n; ++i) {
          y[i] = x[i] - (*inv_diag)[i] * y[i];
        }
      }};
}

LinearOperator make_abs_jacobi_operator(const CsrMatrix& a) {
  // |G| is formed explicitly (same sparsity as A minus the diagonal).
  auto g_abs =
      std::make_shared<CsrMatrix>(entrywise_abs(jacobi_iteration_matrix(a)));
  return LinearOperator{
      a.num_rows(),
      [g_abs](std::span<const double> x, std::span<double> y) {
        g_abs->spmv(x, y);
      }};
}

}  // namespace ajac::eig
