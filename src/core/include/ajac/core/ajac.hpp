#pragma once
// Umbrella header and high-level facade for the async-jacobi library.
//
// Layers (each usable on its own):
//   ajac/sparse/*     sparse-matrix substrate (CSR, kernels, I/O)
//   ajac/gen/*        test-matrix generators (FD, FE, Table-I analogues)
//   ajac/partition/*  graph partitioning (METIS stand-in)
//   ajac/eig/*        eigenvalue tooling (power, Lanczos, dense Jacobi)
//   ajac/model/*      propagation-matrix model (the paper's contribution)
//   ajac/solvers/*    sequential stationary baselines
//   ajac/runtime/*    shared-memory async Jacobi (OpenMP)
//   ajac/distsim/*    distributed-memory async Jacobi (discrete-event sim)
//   ajac/mesh/*       concurrent message-passing mesh (std::thread + SPSC)
//
// This header provides one-call entry points for the common cases.

#include <string>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/mesh/mesh_jacobi.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/multi_vector.hpp"

namespace ajac {

/// Library version string.
[[nodiscard]] const char* version();

/// Execution backends for the facade.
enum class Backend {
  kSequential,     ///< reference solver (solvers::jacobi)
  kModel,          ///< propagation-matrix model executor
  kSharedMemory,   ///< OpenMP threads, shared arrays (paper Sec. V)
  kDistributedSim, ///< discrete-event distributed runtime (paper Sec. VI)
  kMesh,           ///< real message-passing agents (std::thread + queues)
};

struct SolveConfig {
  Backend backend = Backend::kSharedMemory;
  bool synchronous = false;   ///< ignored by kSequential (always sync)
  index_t parallelism = 4;    ///< threads / simulated processes
  double tolerance = 1e-6;    ///< relative residual 1-norm
  index_t max_iterations = 10000;
  std::uint64_t seed = 1;
  /// kDistributedSim: reorder with the built-in partitioner first (highly
  /// recommended; mirrors the paper's METIS step).
  bool partition_first = true;
  /// kSharedMemory: relaxation kernel family — the partition-aware blocked
  /// kernels (default), the reference kernels that read every column
  /// through the shared vector, or the bandwidth-engineered kSellCS path
  /// for large problems (SELL-C-sigma interior, dense ghost buffers; see
  /// runtime::KernelKind).
  runtime::KernelKind shared_kernel = runtime::KernelKind::kBlocked;
  /// kSharedMemory, blocked/kSellCS kernels: balance the contiguous row
  /// partition by nonzero count instead of row count (default). On graded
  /// meshes and Matrix Market imports row-balanced blocks can differ 2x+
  /// in nnz, and the slowest block sets the convergence clock. Row
  /// balancing remains available for reproducing older runs; an explicit
  /// runtime partition always wins over this switch. The reference kernel
  /// ignores it (its baselines are defined on row-balanced blocks).
  bool balance_by_nnz = true;
  /// kSharedMemory with shared_kernel == kSellCS: precision at which
  /// committed iterates are published for neighbours' ghost reads
  /// (runtime::GhostPrecision). Residuals and termination stay fp64.
  runtime::GhostPrecision ghost_precision = runtime::GhostPrecision::kFp64;
  /// kSharedMemory: number of right-hand sides solved together. 1 runs the
  /// single-RHS path; > 1 routes through solve_shared_batch (b must carry
  /// exactly num_rhs columns via solve_batch), amortizing every matrix
  /// traversal over the batch.
  index_t num_rhs = 1;
  /// kSharedMemory / kDistributedSim: row-selection policy for the
  /// asynchronous sweep. kNaturalOrder (default) keeps the runtimes
  /// bitwise identical to their pre-policy behavior; the sampled policies
  /// draw rows from counter-based streams seeded by `seed` (see
  /// runtime::RowPolicy). Asynchronous mode only.
  runtime::RowPolicy policy = runtime::RowPolicy::kNaturalOrder;
  /// Sampled kResidualWeighted policy: iterations between |r_i| weight
  /// rebuilds (must be >= 1).
  index_t weight_refresh = 8;
  /// kSharedMemory / kDistributedSim: live telemetry hub (see
  /// ajac/obs/stream.hpp). nullptr disables streaming; the off path is
  /// bitwise identical to a build without telemetry.
  obs::TelemetryHub* stream = nullptr;
};

struct Solution {
  Vector x;
  bool converged = false;
  double rel_residual_1 = 0.0;
  index_t iterations = 0;      ///< sweeps / max local iterations
  index_t relaxations = 0;     ///< total single-row relaxations
  double seconds = 0.0;        ///< wall-clock (shared) or simulated (dist)
};

/// Solve A x = b starting from x0 on the chosen backend. A must be square
/// with a nonzero diagonal; for the distributed backend A should have a
/// symmetric pattern (ghost exchange assumes it).
[[nodiscard]] Solution solve(const CsrMatrix& a, const Vector& b,
                             const Vector& x0, const SolveConfig& config);

/// Convenience for SPD systems: scales A to unit diagonal, runs the
/// requested backend, and maps the solution back to the original scaling.
[[nodiscard]] Solution solve_spd(const CsrMatrix& a, const Vector& b,
                                 const SolveConfig& config);

/// Batched solve: everything in Solution, one entry per column.
struct BatchSolution {
  MultiVector x;                   ///< n x k solution batch
  std::vector<bool> converged;     ///< per column
  Vector rel_residual_1;           ///< per column
  std::vector<index_t> iterations; ///< per column: verified-stop iteration
  std::vector<index_t> relaxations;  ///< per column: active row relaxations
  double seconds = 0.0;
};

/// Solve A x(:,c) = b(:,c) for all k columns at once on the shared-memory
/// backend (config.num_rhs must equal b.num_cols(); other backends have no
/// batched path). Shares each CSR traversal across the batch; see
/// runtime::solve_shared_batch for the per-column convergence contract.
[[nodiscard]] BatchSolution solve_batch(const CsrMatrix& a,
                                        const MultiVector& b,
                                        const MultiVector& x0,
                                        const SolveConfig& config);

/// Batched analogue of solve_spd: scales A to unit diagonal, solves all
/// columns at once, and maps each column back to the original scaling.
[[nodiscard]] BatchSolution solve_spd_batch(const CsrMatrix& a,
                                            const MultiVector& b,
                                            const SolveConfig& config);

}  // namespace ajac
