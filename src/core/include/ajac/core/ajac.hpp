#pragma once
// Umbrella header and high-level facade for the async-jacobi library.
//
// Layers (each usable on its own):
//   ajac/sparse/*     sparse-matrix substrate (CSR, kernels, I/O)
//   ajac/gen/*        test-matrix generators (FD, FE, Table-I analogues)
//   ajac/partition/*  graph partitioning (METIS stand-in)
//   ajac/eig/*        eigenvalue tooling (power, Lanczos, dense Jacobi)
//   ajac/model/*      propagation-matrix model (the paper's contribution)
//   ajac/solvers/*    sequential stationary baselines
//   ajac/runtime/*    shared-memory async Jacobi (OpenMP)
//   ajac/distsim/*    distributed-memory async Jacobi (discrete-event sim)
//
// This header provides one-call entry points for the common cases.

#include <string>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac {

/// Library version string.
[[nodiscard]] const char* version();

/// Execution backends for the facade.
enum class Backend {
  kSequential,     ///< reference solver (solvers::jacobi)
  kModel,          ///< propagation-matrix model executor
  kSharedMemory,   ///< OpenMP threads, shared arrays (paper Sec. V)
  kDistributedSim, ///< discrete-event distributed runtime (paper Sec. VI)
};

struct SolveConfig {
  Backend backend = Backend::kSharedMemory;
  bool synchronous = false;   ///< ignored by kSequential (always sync)
  index_t parallelism = 4;    ///< threads / simulated processes
  double tolerance = 1e-6;    ///< relative residual 1-norm
  index_t max_iterations = 10000;
  std::uint64_t seed = 1;
  /// kDistributedSim: reorder with the built-in partitioner first (highly
  /// recommended; mirrors the paper's METIS step).
  bool partition_first = true;
  /// kSharedMemory: relaxation kernel family — the partition-aware blocked
  /// kernels (default) or the reference kernels that read every column
  /// through the shared vector.
  runtime::KernelKind shared_kernel = runtime::KernelKind::kBlocked;
};

struct Solution {
  Vector x;
  bool converged = false;
  double rel_residual_1 = 0.0;
  index_t iterations = 0;      ///< sweeps / max local iterations
  index_t relaxations = 0;     ///< total single-row relaxations
  double seconds = 0.0;        ///< wall-clock (shared) or simulated (dist)
};

/// Solve A x = b starting from x0 on the chosen backend. A must be square
/// with a nonzero diagonal; for the distributed backend A should have a
/// symmetric pattern (ghost exchange assumes it).
[[nodiscard]] Solution solve(const CsrMatrix& a, const Vector& b,
                             const Vector& x0, const SolveConfig& config);

/// Convenience for SPD systems: scales A to unit diagonal, runs the
/// requested backend, and maps the solution back to the original scaling.
[[nodiscard]] Solution solve_spd(const CsrMatrix& a, const Vector& b,
                                 const SolveConfig& config);

}  // namespace ajac
