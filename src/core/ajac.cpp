#include "ajac/core/ajac.hpp"

#include <cmath>
#include <thread>

#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"

namespace ajac {

const char* version() { return "1.0.0"; }

Solution solve(const CsrMatrix& a, const Vector& b, const Vector& x0,
               const SolveConfig& config) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  AJAC_CHECK(config.parallelism >= 1);
  Solution sol;
  switch (config.backend) {
    case Backend::kSequential: {
      solvers::SolveOptions opts;
      opts.tolerance = config.tolerance;
      opts.max_iterations = config.max_iterations;
      WallTimer timer;
      const solvers::SolveResult r = solvers::jacobi(a, b, x0, opts);
      sol.seconds = timer.seconds();
      sol.x = r.x;
      sol.converged = r.converged;
      sol.rel_residual_1 = r.final_rel_residual;
      sol.iterations = r.iterations;
      sol.relaxations = r.iterations * a.num_rows();
      return sol;
    }
    case Backend::kModel: {
      model::ExecutorOptions opts;
      opts.tolerance = config.tolerance;
      opts.max_steps = config.max_iterations;
      WallTimer timer;
      const model::ModelResult r = model::run_synchronous(a, b, x0, opts);
      sol.seconds = timer.seconds();
      sol.x = r.x;
      sol.converged = r.converged;
      sol.rel_residual_1 = r.final_rel_residual_1;
      sol.iterations = r.steps;
      sol.relaxations = r.relaxations;
      return sol;
    }
    case Backend::kSharedMemory: {
      runtime::SharedOptions opts;
      opts.num_threads = config.parallelism;
      opts.synchronous = config.synchronous;
      opts.tolerance = config.tolerance;
      opts.max_iterations = config.max_iterations;
      opts.record_history = false;
      opts.kernel = config.shared_kernel;
      opts.ghost_precision = config.ghost_precision;
      opts.policy = config.policy;
      opts.weight_refresh = config.weight_refresh;
      opts.policy_seed = config.seed;
      opts.stream = config.stream;
      // nnz-balanced blocks for the partition-aware kernels (the facade
      // default). The runtime's own default stays row-balanced, so direct
      // SharedOptions users — and every recorded golden trace — are
      // untouched.
      if (config.balance_by_nnz && config.parallelism > 1 &&
          config.shared_kernel != runtime::KernelKind::kReference) {
        opts.partition =
            partition::nnz_balanced_partition(a, config.parallelism);
      }
      const runtime::SharedResult r = runtime::solve_shared(a, b, x0, opts);
      sol.seconds = r.seconds;
      sol.x = r.x;
      sol.converged = r.converged;
      sol.rel_residual_1 = r.final_rel_residual_1;
      index_t max_iter = 0;
      for (index_t it : r.iterations_per_thread) {
        max_iter = std::max(max_iter, it);
      }
      sol.iterations = max_iter;
      sol.relaxations = r.total_relaxations;
      return sol;
    }
    case Backend::kMesh: {
      mesh::MeshOptions opts;
      opts.num_agents = config.parallelism;
      opts.synchronous = config.synchronous;
      opts.tolerance = config.tolerance;
      opts.max_iterations = config.max_iterations;
      opts.record_history = false;
      // Oversubscribed host: without a per-iteration yield each agent
      // burns its whole scheduling quantum relaxing against frozen ghost
      // values and iteration counts measure the OS scheduler, not the
      // algorithm (DESIGN.md §5g).
      opts.yield = static_cast<unsigned>(config.parallelism) >
                   std::thread::hardware_concurrency();
      const mesh::MeshResult r = mesh::solve_mesh(a, b, x0, opts);
      sol.seconds = r.seconds;
      sol.x = r.x;
      sol.converged = r.converged;
      sol.rel_residual_1 = r.final_rel_residual_1;
      index_t max_iter = 0;
      for (index_t it : r.iterations_per_agent) {
        max_iter = std::max(max_iter, it);
      }
      sol.iterations = max_iter;
      sol.relaxations = r.total_relaxations;
      return sol;
    }
    case Backend::kDistributedSim: {
      distsim::DistOptions opts;
      opts.num_processes = config.parallelism;
      opts.synchronous = config.synchronous;
      opts.max_iterations = config.max_iterations;
      opts.tolerance = config.tolerance;
      opts.seed = config.seed;
      opts.policy = config.policy;
      opts.weight_refresh = config.weight_refresh;
      opts.stream = config.stream;

      const CsrMatrix* matrix = &a;
      const Vector* rhs = &b;
      const Vector* start = &x0;
      CsrMatrix permuted;
      Vector pb;
      Vector px0;
      partition::Partition part;
      partition::PartitionedSystem sys{
          Permutation::identity(a.num_rows()), {}};
      if (config.partition_first && config.parallelism > 1) {
        sys = partition::graph_growing_partition(a, config.parallelism,
                                                 config.seed);
        permuted = sys.perm.apply_symmetric(a);
        pb = sys.perm.apply(b);
        px0 = sys.perm.apply(x0);
        matrix = &permuted;
        rhs = &pb;
        start = &px0;
        part = sys.partition;
      } else {
        part = partition::contiguous_partition(a.num_rows(),
                                               config.parallelism);
      }
      const distsim::DistResult r =
          distsim::solve_distributed(*matrix, *rhs, *start, part, opts);
      sol.seconds = r.sim_seconds;
      sol.converged = r.reached_tolerance;
      sol.rel_residual_1 = r.final_rel_residual_1;
      sol.relaxations = r.total_relaxations;
      index_t max_iter = 0;
      for (index_t it : r.iterations_per_process) {
        max_iter = std::max(max_iter, it);
      }
      sol.iterations = max_iter;
      sol.x = (config.partition_first && config.parallelism > 1)
                  ? sys.perm.apply_inverse(r.x)
                  : r.x;
      return sol;
    }
  }
  AJAC_CHECK_MSG(false, "unknown backend");
  return sol;
}

Solution solve_spd(const CsrMatrix& a, const Vector& b,
                   const SolveConfig& config) {
  Vector scaled_b = b;
  const CsrMatrix scaled = scale_to_unit_diagonal(a, &scaled_b);
  Vector x0(static_cast<std::size_t>(a.num_rows()), 0.0);
  Solution sol = solve(scaled, scaled_b, x0, config);
  // The scaled system solves D^{1/2} x, so map back: x = D^{-1/2} y.
  const Vector d = a.diagonal();
  for (std::size_t i = 0; i < sol.x.size(); ++i) {
    sol.x[i] /= std::sqrt(d[i]);
  }
  return sol;
}

BatchSolution solve_batch(const CsrMatrix& a, const MultiVector& b,
                          const MultiVector& x0, const SolveConfig& config) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  AJAC_CHECK(config.parallelism >= 1);
  AJAC_CHECK_MSG(config.backend == Backend::kSharedMemory,
                 "batched solves run on the shared-memory backend only");
  AJAC_CHECK_MSG(config.num_rhs == b.num_cols(),
                 "config.num_rhs must equal b.num_cols()");
  runtime::SharedOptions opts;
  opts.num_threads = config.parallelism;
  opts.synchronous = config.synchronous;
  opts.tolerance = config.tolerance;
  opts.max_iterations = config.max_iterations;
  opts.record_history = false;
  opts.kernel = config.shared_kernel;
  opts.ghost_precision = config.ghost_precision;
  opts.policy = config.policy;
  opts.weight_refresh = config.weight_refresh;
  opts.policy_seed = config.seed;
  opts.stream = config.stream;
  // Same facade-level nnz balancing as the single-RHS path.
  if (config.balance_by_nnz && config.parallelism > 1 &&
      config.shared_kernel != runtime::KernelKind::kReference) {
    opts.partition = partition::nnz_balanced_partition(a, config.parallelism);
  }
  runtime::SharedBatchResult r = runtime::solve_shared_batch(a, b, x0, opts);
  BatchSolution sol;
  sol.x = std::move(r.x);
  sol.converged = std::move(r.converged);
  sol.rel_residual_1 = std::move(r.final_rel_residual_1);
  sol.iterations = std::move(r.stop_iteration);
  sol.relaxations = std::move(r.relaxations_per_column);
  sol.seconds = r.seconds;
  return sol;
}

BatchSolution solve_spd_batch(const CsrMatrix& a, const MultiVector& b,
                              const SolveConfig& config) {
  const index_t n = a.num_rows();
  const index_t k = b.num_cols();
  // Scale the system once; each RHS column scales by the same D^{-1/2}.
  Vector probe(static_cast<std::size_t>(n), 0.0);
  const CsrMatrix scaled = scale_to_unit_diagonal(a, &probe);
  const Vector d = a.diagonal();
  MultiVector scaled_b(n, k);
  for (index_t i = 0; i < n; ++i) {
    const double s = 1.0 / std::sqrt(d[static_cast<std::size_t>(i)]);
    const double* src = b.row(i);
    double* dst = scaled_b.row(i);
    for (index_t c = 0; c < k; ++c) dst[c] = src[c] * s;
  }
  MultiVector x0(n, k);
  BatchSolution sol = solve_batch(scaled, scaled_b, x0, config);
  // The scaled system solves D^{1/2} x, so map back: x = D^{-1/2} y.
  for (index_t i = 0; i < n; ++i) {
    const double s = 1.0 / std::sqrt(d[static_cast<std::size_t>(i)]);
    double* row = sol.x.row(i);
    for (index_t c = 0; c < k; ++c) row[c] *= s;
  }
  return sol;
}

}  // namespace ajac
