#include "ajac/partition/partition.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::partition {

index_t Partition::owner(index_t row) const {
  AJAC_DCHECK(row >= 0 && row < num_rows());
  const auto it =
      std::upper_bound(block_starts.begin(), block_starts.end(), row);
  return static_cast<index_t>(it - block_starts.begin()) - 1;
}

Partition contiguous_partition(index_t n, index_t num_parts) {
  AJAC_CHECK(n >= 0 && num_parts >= 1);
  Partition p;
  p.block_starts.resize(static_cast<std::size_t>(num_parts) + 1);
  const index_t base = n / num_parts;
  const index_t extra = n % num_parts;
  p.block_starts[0] = 0;
  for (index_t k = 0; k < num_parts; ++k) {
    p.block_starts[k + 1] = p.block_starts[k] + base + (k < extra ? 1 : 0);
  }
  return p;
}

Partition nnz_balanced_partition(const CsrMatrix& a, index_t num_parts) {
  AJAC_CHECK(num_parts >= 1);
  const index_t n = a.num_rows();
  // Prefix sum of row nnz; boundary k sits at the prefix entry nearest to
  // k/num_parts of the total (binary search), clamped so no part is empty
  // while rows remain and the tail parts can still each get one row. Each
  // cut lands within one row's nonzeros of its target, so no part exceeds
  // the ideal share by more than ~two maximal rows.
  std::vector<index_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + a.row_nnz(i);
  }
  const index_t total = prefix[static_cast<std::size_t>(n)];
  Partition p;
  p.block_starts.resize(static_cast<std::size_t>(num_parts) + 1);
  p.block_starts[0] = 0;
  for (index_t k = 1; k < num_parts; ++k) {
    const index_t target =
        static_cast<index_t>((static_cast<double>(total) * k) / num_parts);
    const auto it =
        std::lower_bound(prefix.begin() + 1, prefix.end(), target);
    auto cut = it == prefix.end()
                   ? n
                   : static_cast<index_t>(it - prefix.begin());
    if (cut > 0 && it != prefix.end() &&
        target - prefix[static_cast<std::size_t>(cut) - 1] <
            prefix[static_cast<std::size_t>(cut)] - target) {
      --cut;  // the previous row boundary is closer to the target
    }
    const index_t prev = p.block_starts[static_cast<std::size_t>(k) - 1];
    const index_t parts_left = num_parts - k;  // parts after this boundary
    cut = std::max(cut, std::min(prev + 1, n - parts_left));
    cut = std::min(cut, std::max(prev, n - parts_left));
    p.block_starts[static_cast<std::size_t>(k)] = std::max(cut, prev);
  }
  p.block_starts[static_cast<std::size_t>(num_parts)] = n;
  return p;
}

void validate(const Partition& p, index_t num_rows) {
  AJAC_CHECK_MSG(p.block_starts.size() >= 2,
                 "partition needs at least one part (block_starts size "
                     << p.block_starts.size() << ")");
  AJAC_CHECK_MSG(p.block_starts.front() == 0,
                 "partition must start at row 0, got "
                     << p.block_starts.front());
  for (std::size_t k = 1; k < p.block_starts.size(); ++k) {
    AJAC_CHECK_MSG(p.block_starts[k - 1] <= p.block_starts[k],
                   "partition block_starts not monotone at part " << k - 1
                       << ": " << p.block_starts[k - 1] << " > "
                       << p.block_starts[k]);
  }
  AJAC_CHECK_MSG(p.block_starts.back() == num_rows,
                 "partition covers rows [0," << p.block_starts.back()
                     << ") but the system has " << num_rows << " rows");
}

namespace {

/// BFS from `start`, returning the vertex order and the last level set.
/// Ties broken by ascending degree (Cuthill–McKee style).
std::vector<index_t> bfs_order(const CsrMatrix& a, index_t start,
                               const std::vector<index_t>& degree) {
  const index_t n = a.num_rows();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<index_t> frontier;
  auto visit_component = [&](index_t s) {
    seen[s] = 1;
    frontier.push(s);
    while (!frontier.empty()) {
      const index_t u = frontier.front();
      frontier.pop();
      order.push_back(u);
      std::vector<index_t> nbrs;
      for (index_t v : a.row_cols(u)) {
        if (v != u && !seen[v]) {
          seen[v] = 1;
          nbrs.push_back(v);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
        return degree[x] < degree[y] || (degree[x] == degree[y] && x < y);
      });
      for (index_t v : nbrs) frontier.push(v);
    }
  };
  visit_component(start);
  for (index_t s = 0; s < n; ++s) {
    if (!seen[s]) visit_component(s);
  }
  return order;
}

/// Pseudo-peripheral vertex: repeat BFS from the farthest minimum-degree
/// vertex of the last level until the eccentricity stops growing.
index_t pseudo_peripheral(const CsrMatrix& a,
                          const std::vector<index_t>& degree) {
  const index_t n = a.num_rows();
  if (n == 0) return 0;
  index_t start = 0;
  for (index_t i = 1; i < n; ++i) {
    if (degree[i] < degree[start]) start = i;
  }
  index_t prev_depth = -1;
  for (int pass = 0; pass < 8; ++pass) {
    std::vector<index_t> level(static_cast<std::size_t>(n), index_t{-1});
    std::queue<index_t> frontier;
    level[start] = 0;
    frontier.push(start);
    index_t depth = 0;
    index_t farthest = start;
    while (!frontier.empty()) {
      const index_t u = frontier.front();
      frontier.pop();
      for (index_t v : a.row_cols(u)) {
        if (v != u && level[v] < 0) {
          level[v] = level[u] + 1;
          if (level[v] > depth ||
              (level[v] == depth && degree[v] < degree[farthest])) {
            depth = level[v];
            farthest = v;
          }
          frontier.push(v);
        }
      }
    }
    if (depth <= prev_depth) break;
    prev_depth = depth;
    start = farthest;
  }
  return start;
}

}  // namespace

Permutation cuthill_mckee(const CsrMatrix& a, bool reverse) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) degree[i] = a.row_nnz(i);
  std::vector<index_t> order =
      bfs_order(a, n > 0 ? pseudo_peripheral(a, degree) : 0, degree);
  if (reverse) std::reverse(order.begin(), order.end());
  return Permutation(std::move(order));
}

PartitionedSystem graph_growing_partition(const CsrMatrix& a,
                                          index_t num_parts,
                                          std::uint64_t seed,
                                          bool balance_by_nnz) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  AJAC_CHECK(num_parts >= 1);
  const index_t n = a.num_rows();
  AJAC_CHECK_MSG(num_parts <= std::max<index_t>(n, 1),
                 "more parts than rows");

  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) degree[i] = a.row_nnz(i);
  // Row weight: 1 for row balancing, nnz for work balancing.
  auto weight = [&](index_t i) {
    return balance_by_nnz ? a.row_nnz(i) : index_t{1};
  };
  index_t total_weight = 0;
  for (index_t i = 0; i < n; ++i) total_weight += weight(i);

  // Grow parts one after another along a global Cuthill–McKee-ish BFS
  // order: take the next `target` unassigned vertices in BFS-from-frontier
  // order, which keeps each part connected (within a component) and the
  // boundary short.
  const std::vector<index_t> global_order =
      bfs_order(a, n > 0 ? pseudo_peripheral(a, degree) : 0, degree);

  std::vector<index_t> part(static_cast<std::size_t>(n), index_t{-1});
  std::vector<std::vector<index_t>> members(
      static_cast<std::size_t>(num_parts));
  std::vector<index_t> part_weight(static_cast<std::size_t>(num_parts), 0);
  {
    std::size_t cursor = 0;
    for (index_t p = 0; p < num_parts; ++p) {
      // Even split of the REMAINING weight over the remaining parts, so
      // rounding never starves the last parts.
      index_t remaining_weight = total_weight;
      for (index_t q = 0; q < p; ++q) remaining_weight -= part_weight[q];
      const index_t target =
          std::max<index_t>(1, remaining_weight / (num_parts - p));
      // Region-grow from the first unassigned vertex in global order.
      std::queue<index_t> frontier;
      while (part_weight[p] < target) {
        if (frontier.empty()) {
          while (cursor < global_order.size() &&
                 part[global_order[cursor]] != -1) {
            ++cursor;
          }
          if (cursor >= global_order.size()) break;
          const index_t s = global_order[cursor];
          part[s] = p;
          members[p].push_back(s);
          part_weight[p] += weight(s);
          frontier.push(s);
          continue;
        }
        const index_t u = frontier.front();
        frontier.pop();
        for (index_t v : a.row_cols(u)) {
          if (v == u || part[v] != -1) continue;
          if (part_weight[p] >= target) break;
          part[v] = p;
          members[p].push_back(v);
          part_weight[p] += weight(v);
          frontier.push(v);
        }
      }
    }
    // Any stragglers (disconnected leftovers) go to the lightest parts.
    for (index_t i : global_order) {
      if (part[i] != -1) continue;
      index_t lightest = 0;
      for (index_t p = 1; p < num_parts; ++p) {
        if (part_weight[p] < part_weight[lightest]) lightest = p;
      }
      part[i] = lightest;
      members[lightest].push_back(i);
      part_weight[lightest] += weight(i);
    }
    // Guarantee non-empty parts: steal one row from the heaviest
    // multi-row part for each empty one.
    for (index_t p = 0; p < num_parts; ++p) {
      if (!members[p].empty()) continue;
      index_t donor = 0;
      for (index_t q = 1; q < num_parts; ++q) {
        if (members[q].size() > members[donor].size()) donor = q;
      }
      AJAC_CHECK(members[donor].size() > 1);
      const index_t row = members[donor].back();
      members[donor].pop_back();
      part_weight[donor] -= weight(row);
      members[p].push_back(row);
      part_weight[p] += weight(row);
      part[row] = p;
    }
  }

  // Boundary refinement: move a boundary vertex to the neighboring part
  // where most of its edges live, if that strictly reduces the cut and
  // keeps balance within 10%.
  {
    Rng rng(seed);
    const double max_size =
        1.1 * static_cast<double>(total_weight) /
            static_cast<double>(num_parts) +
        static_cast<double>(balance_by_nnz ? a.num_nonzeros() / n : 1);
    for (int pass = 0; pass < 4; ++pass) {
      index_t moves = 0;
      for (index_t i = 0; i < n; ++i) {
        const index_t home = part[i];
        // Count edges to each adjacent part.
        index_t best_part = home;
        index_t home_edges = 0;
        index_t best_edges = 0;
        std::vector<std::pair<index_t, index_t>> counts;
        for (index_t v : a.row_cols(i)) {
          if (v == i) continue;
          const index_t p = part[v];
          bool found = false;
          for (auto& [cp, cnt] : counts) {
            if (cp == p) {
              ++cnt;
              found = true;
              break;
            }
          }
          if (!found) counts.emplace_back(p, 1);
        }
        for (const auto& [cp, cnt] : counts) {
          if (cp == home) home_edges = cnt;
        }
        for (const auto& [cp, cnt] : counts) {
          if (cp != home && cnt > best_edges) {
            best_edges = cnt;
            best_part = cp;
          }
        }
        if (best_part != home && best_edges > home_edges &&
            static_cast<double>(part_weight[best_part] + weight(i)) <=
                max_size &&
            members[home].size() > 1) {
          // Move i.
          auto& src = members[home];
          src.erase(std::find(src.begin(), src.end(), i));
          members[best_part].push_back(i);
          part_weight[home] -= weight(i);
          part_weight[best_part] += weight(i);
          part[i] = best_part;
          ++moves;
        }
      }
      if (moves == 0) break;
    }
  }

  // Build the part-major permutation and the contiguous partition.
  PartitionedSystem out{Permutation::identity(std::max<index_t>(n, 0)),
                        Partition{}};
  std::vector<index_t> new_to_old;
  new_to_old.reserve(static_cast<std::size_t>(n));
  out.partition.block_starts.assign(1, 0);
  for (index_t p = 0; p < num_parts; ++p) {
    // Keep BFS discovery order within the part for locality.
    for (index_t i : members[p]) new_to_old.push_back(i);
    out.partition.block_starts.push_back(
        static_cast<index_t>(new_to_old.size()));
  }
  out.perm = Permutation(std::move(new_to_old));
  return out;
}

PartitionStats compute_stats(const CsrMatrix& a, const Partition& p) {
  AJAC_CHECK(a.num_rows() == p.num_rows());
  PartitionStats stats;
  stats.min_part = a.num_rows();
  for (index_t k = 0; k < p.num_parts(); ++k) {
    stats.max_part = std::max(stats.max_part, p.part_size(k));
    stats.min_part = std::min(stats.min_part, p.part_size(k));
  }
  for (index_t k = 0; k < p.num_parts(); ++k) {
    for (index_t i = p.part_begin(k); i < p.part_end(k); ++i) {
      bool boundary = false;
      for (index_t j : a.row_cols(i)) {
        if (j < p.part_begin(k) || j >= p.part_end(k)) {
          ++stats.edge_cut;
          boundary = true;
        }
      }
      if (boundary) ++stats.boundary_rows;
    }
  }
  const double ideal = static_cast<double>(a.num_rows()) /
                       static_cast<double>(p.num_parts());
  stats.imbalance =
      ideal > 0.0 ? static_cast<double>(stats.max_part) / ideal - 1.0 : 0.0;
  return stats;
}

BlockedCsr blocked_csr(const CsrMatrix& a, const Partition& p) {
  validate(p, a.num_rows());
  return BlockedCsr(a, p.block_starts);
}

}  // namespace ajac::partition
