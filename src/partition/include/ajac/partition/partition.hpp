#pragma once
// Graph partitioning substrate. The paper partitions its matrices with
// METIS and assigns each process a contiguous subdomain (Sec. V/VI/VII-A);
// here we provide the equivalent in-tree machinery: a balanced greedy
// graph-growing partitioner with boundary refinement, Cuthill–McKee
// ordering, and the permutation that renumbers each part contiguously.

#include <vector>

#include "ajac/sparse/permute.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class BlockedCsr;
class CsrMatrix;
}

namespace ajac::partition {

/// A partition of rows [0, n) into `num_parts` contiguous blocks:
/// part p owns rows [block_starts[p], block_starts[p+1]).
struct Partition {
  std::vector<index_t> block_starts;  ///< size num_parts + 1

  [[nodiscard]] index_t num_parts() const {
    return static_cast<index_t>(block_starts.size()) - 1;
  }
  [[nodiscard]] index_t num_rows() const { return block_starts.back(); }
  [[nodiscard]] index_t part_begin(index_t p) const {
    return block_starts[p];
  }
  [[nodiscard]] index_t part_end(index_t p) const {
    return block_starts[p + 1];
  }
  [[nodiscard]] index_t part_size(index_t p) const {
    return block_starts[p + 1] - block_starts[p];
  }
  /// Owner of row i (binary search).
  [[nodiscard]] index_t owner(index_t row) const;
};

/// Evenly sized contiguous blocks in the matrix's existing order — what a
/// naive distributed assignment does.
[[nodiscard]] Partition contiguous_partition(index_t n, index_t num_parts);

/// Contiguous blocks balanced by nonzero count instead of row count: part
/// boundaries are cut where the nnz prefix sum crosses each k/num_parts
/// fraction of the total, so every thread streams roughly the same number
/// of matrix entries per sweep. For matrices with skewed row densities the
/// row-balanced split hands the densest block up to several times the work
/// of the lightest one — the straggler the paper's asynchronous runs keep
/// waiting on. Keeps the matrix's existing row order (no permutation), so
/// it composes with BlockedCsr exactly like contiguous_partition. When
/// enough rows remain, every part is guaranteed at least one row.
[[nodiscard]] Partition nnz_balanced_partition(const CsrMatrix& a,
                                               index_t num_parts);

/// Debug-layer validator: throws std::logic_error unless `p` is a valid
/// partition of rows [0, num_rows) — at least one part, block_starts
/// starting at 0, non-decreasing (parts disjoint), and ending at num_rows
/// (parts cover every row). Wire into hot paths via AJAC_DBG_VALIDATE.
void validate(const Partition& p, index_t num_rows);

struct PartitionedSystem {
  Permutation perm;      ///< new_to_old row order
  Partition partition;   ///< contiguous blocks in the *permuted* order
};

/// Greedy graph-growing partitioner (the METIS stand-in): grows
/// `num_parts` balanced regions by BFS from spread-out seeds, applies a
/// boundary-refinement pass to reduce the edge cut, and returns the
/// permutation that renumbers each part contiguously (part-major, BFS
/// order within a part). Apply `perm.apply_symmetric(a)` to get the
/// reordered matrix the distributed runtimes consume.
///
/// With `balance_by_nnz` the parts are balanced by nonzero count (i.e.
/// relaxation work) rather than row count — the right choice for matrices
/// with skewed row densities, since a rank's iteration cost is
/// proportional to its nonzeros.
[[nodiscard]] PartitionedSystem graph_growing_partition(
    const CsrMatrix& a, index_t num_parts, std::uint64_t seed = 1,
    bool balance_by_nnz = false);

/// (Reverse) Cuthill–McKee ordering: BFS by ascending degree from a
/// pseudo-peripheral vertex. Reduces bandwidth so contiguous blocks have
/// small boundaries.
[[nodiscard]] Permutation cuthill_mckee(const CsrMatrix& a,
                                        bool reverse = true);

struct PartitionStats {
  index_t edge_cut = 0;       ///< off-diagonal entries crossing parts (directed count)
  index_t boundary_rows = 0;  ///< rows with at least one cross-part edge
  index_t max_part = 0;
  index_t min_part = 0;
  double imbalance = 0.0;     ///< max_part / ideal - 1
};

[[nodiscard]] PartitionStats compute_stats(const CsrMatrix& a,
                                           const Partition& p);

/// Build the partition-aware blocked layout for `a`: one BlockedCsr block
/// per part of `p`, with each block's columns pre-classified as local
/// (inside the part's own row range) or ghost (owned by another part).
/// Validates `p` against the matrix first. This is the factory the
/// shared-memory runtime's Blocked kernel path consumes.
[[nodiscard]] BlockedCsr blocked_csr(const CsrMatrix& a, const Partition& p);

}  // namespace ajac::partition
