#pragma once
// Finite-difference test matrices.
//
// The paper's "FD" matrices are five-point centered-difference
// discretizations of the Laplace equation on a rectangular domain with
// uniform spacing: irreducibly W.D.D., SPD, ρ(G) < 1 (Sec. VII-A). We also
// provide 3D 7-point and variable-coefficient variants for the Table-I
// analogues.

#include <functional>

#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
class Rng;
}  // namespace ajac

namespace ajac::gen {

/// 2D 5-point Laplacian on an nx-by-ny grid (Dirichlet boundary folded in):
/// diagonal 4, off-diagonals -1. n = nx*ny rows, row-major grid ordering.
[[nodiscard]] CsrMatrix fd_laplacian_2d(index_t nx, index_t ny);

/// 3D 7-point Laplacian on nx*ny*nz grid: diagonal 6, off-diagonals -1.
[[nodiscard]] CsrMatrix fd_laplacian_3d(index_t nx, index_t ny, index_t nz);

/// 2D 5-point discretization of -div(c(x,y) grad u) with a cell-centered
/// harmonic-mean-free scheme: the edge between grid points p and q gets
/// weight (c(p)+c(q))/2 where c is evaluated at grid points. Remains SPD
/// and W.D.D. for c > 0.
[[nodiscard]] CsrMatrix fd_varcoef_2d(
    index_t nx, index_t ny,
    const std::function<double(double /*x*/, double /*y*/)>& coef);

/// 3D analogue of fd_varcoef_2d.
[[nodiscard]] CsrMatrix fd_varcoef_3d(
    index_t nx, index_t ny, index_t nz,
    const std::function<double(double, double, double)>& coef);

/// Piecewise-random coefficient field with the given contrast: the domain
/// is split into blocks_x * blocks_y blocks, each with a coefficient drawn
/// log-uniformly from [1, contrast]. Models heterogeneous media
/// (thermal/ecology-type problems).
[[nodiscard]] CsrMatrix fd_random_blocks_2d(index_t nx, index_t ny,
                                            index_t blocks_x, index_t blocks_y,
                                            double contrast, Rng& rng);

/// 3D version of fd_random_blocks_2d.
[[nodiscard]] CsrMatrix fd_random_blocks_3d(index_t nx, index_t ny, index_t nz,
                                            index_t blocks, double contrast,
                                            Rng& rng);

/// 1D 3-point Laplacian (tridiag(-1, 2, -1)); the smallest W.D.D. matrices
/// for model unit tests.
[[nodiscard]] CsrMatrix fd_laplacian_1d(index_t n);

/// 2D 9-point Laplacian (Moore neighborhood): diagonal 8, all eight
/// neighbors -1. Denser stencil than the 5-point operator — more coupling
/// per row, so asynchronous staleness has more surface to act on.
[[nodiscard]] CsrMatrix fd_laplacian_2d_9pt(index_t nx, index_t ny);

/// Anisotropic 2D Laplacian: -eps*u_xx - u_yy discretized with the
/// 5-point stencil (x-edges weighted eps). Strong anisotropy makes point
/// Jacobi converge very slowly in the weak direction — a classic hard
/// case for relaxation methods.
[[nodiscard]] CsrMatrix fd_anisotropic_2d(index_t nx, index_t ny, double eps);

/// Random sparse irreducibly weakly-diagonally-dominant SPD matrix:
/// a connected random graph Laplacian (ring + `extra_edges` random
/// chords, weights in [0.5, 2]) plus a small diagonal shift on a few
/// rows. The workhorse for property-based tests of the W.D.D. theory
/// (Theorem 1, monotonicity) on unstructured patterns.
[[nodiscard]] CsrMatrix random_wdd_matrix(index_t n, index_t extra_edges,
                                          Rng& rng);

/// The paper's small FD test matrices, reconstructed from the figure
/// captions by shape:
///   Fig. 2 CPU  — "FD matrix, 40 rows, 174 nonzeros"   => 5 x 8 grid.
///   Fig. 2 Phi  — "FD matrix, 272 rows, 1294 nonzeros" => 16 x 17 grid.
///   Figs. 3/4   — "FD matrix, 68 rows, 298 nonzeros"   => 4 x 17 grid.
///   Fig. 5      — "FD matrix, 4624 rows, 22848 nonzeros" => 68 x 68 grid.
/// Each of these grids reproduces the stated row and nonzero counts
/// exactly (verified in tests/gen/fd_test.cpp).
[[nodiscard]] CsrMatrix paper_fd_40();
[[nodiscard]] CsrMatrix paper_fd_68();
[[nodiscard]] CsrMatrix paper_fd_272();
[[nodiscard]] CsrMatrix paper_fd_4624();

}  // namespace ajac::gen
