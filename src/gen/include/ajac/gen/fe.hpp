#pragma once
// P1 (linear triangle) finite-element stiffness matrices for the Laplace
// equation on a square domain.
//
// The paper's "FE" matrix is "an unstructured finite element discretization
// of the Laplace equation on a square domain. The matrix is not W.D.D., but
// approximately half the rows have the W.D.D. property. The matrix is
// symmetric positive definite, and ρ(G) > 1." (Sec. VII-A.)
//
// We reproduce that class of matrix with a genuine FE assembly on a
// jittered, sheared, anisotropically stretched triangulation. The shear and
// stretch make most triangles obtuse; for P1 elements the off-diagonal
// stiffness entry of an edge is -(cot α + cot β)/2 over the two opposite
// angles, so obtuse angles generate *positive* off-diagonal entries. Since
// interior row sums are zero before boundary elimination, a row with
// positive off-diagonal mass P has sum_{j≠i} |a_ij| = a_ii + 2P and loses
// weak diagonal dominance; with enough such rows,
// lambda_max(D^{-1/2} A D^{-1/2}) exceeds 2 and rho(G) > 1 — synchronous
// Jacobi diverges while A stays SPD.

#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::gen {

struct FeMeshOptions {
  /// Interior grid resolution: the system has nx*ny unknowns (boundary
  /// vertices carry homogeneous Dirichlet conditions and are eliminated).
  index_t nx = 32;
  index_t ny = 32;
  /// Vertex jitter as a fraction of the local spacing, in [0, 0.5). An
  /// untangling pass guarantees no triangle inverts regardless of jitter.
  double jitter = 0.35;
  /// Fraction of interior vertices that receive jitter. Jittering only a
  /// subset leaves regular (W.D.D.) patches between distorted regions,
  /// matching the paper's "approximately half the rows have the W.D.D.
  /// property".
  double jitter_fraction = 0.15;
  /// Shear: x <- x + shear * y. Shear systematically produces obtuse
  /// angles (135° at shear = 1) and hence positive off-diagonal entries.
  double shear = 0.0;
  /// Anisotropic stretch of the y-axis metric.
  double aspect = 1.0;
  /// Randomize the diagonal used to split each quad into two triangles
  /// ("unstructured" connectivity); otherwise alternate (criss-cross).
  bool random_diagonals = true;
  std::uint64_t seed = 1234;
};

/// Assemble the P1 stiffness matrix for -Δu = f with homogeneous Dirichlet
/// boundary on the triangulation described by `opts`. SPD by construction
/// (it is a Galerkin stiffness matrix on a valid mesh).
[[nodiscard]] CsrMatrix fe_laplacian_2d(const FeMeshOptions& opts);

/// The paper's FE test matrix analogue: 3081 rows (79 x 39 interior grid),
/// with roughly half the rows W.D.D. and rho(G) > 1 (both properties are
/// asserted in tests/gen/fe_test.cpp using the eig module).
[[nodiscard]] CsrMatrix paper_fe_3081();

/// Dubcova2 analogue (Table I): the same matrix family at Dubcova2's exact
/// size, 65025 = 255^2 rows; Jacobi diverges on it, as the paper reports.
[[nodiscard]] CsrMatrix dubcova2_analogue(index_t scale = 255);

}  // namespace ajac::gen
