#pragma once
// Synthetic analogues of the SuiteSparse matrices in the paper's Table I.
//
// The original files are not available offline, so each matrix is replaced
// by a generated matrix that preserves the property driving the paper's
// experiments: symmetric positive definite, Jacobi-convergent (except the
// Dubcova2 analogue, which is Jacobi-divergent like the original), with a
// comparable stencil character and row-degree profile. Sizes default to a
// reduced scale so that the hundreds of convergence runs behind Figs. 7–9
// fit in a single-machine session; `scale` grows them toward the original
// dimensions (scale = 1.0 reproduces the reduced defaults listed below,
// and the table in bench_table1 prints both the analogue's actual size and
// the original's).
//
// Mapping (paper -> analogue):
//   thermal2        (1,227,087 eq) -> 3D 7-pt FD, random block coefficient
//                                     contrast 1e2 (steady-state thermal).
//   G3_circuit      (1,585,478 eq) -> 2D grid Laplacian + random long-range
//                                     resistor links (circuit graph).
//   ecology2          (999,999 eq) -> heterogeneous 2D 5-pt FD.
//   apache2           (715,176 eq) -> structured 3D 7-pt FD.
//   parabolic_fem     (525,825 eq) -> implicit-Euler step I + tau*L, 2D.
//   thermomech_dm     (204,316 eq) -> smaller 3D variable-coefficient FD.
//   Dubcova2           (65,025 eq) -> P1 FE on distorted mesh, rho(G) > 1.

#include <string>
#include <vector>

#include "ajac/gen/problem.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac::gen {

struct AnalogueInfo {
  std::string name;              ///< SuiteSparse name it stands in for
  index_t paper_equations;       ///< Table I "Equations"
  index_t paper_nonzeros;        ///< Table I "Non-zeros"
  bool jacobi_converges;         ///< paper-reported behaviour
  std::string construction;      ///< one-line description of the analogue
};

/// Static catalogue of the seven Table-I problems, in the paper's order.
[[nodiscard]] const std::vector<AnalogueInfo>& table1_catalogue();

/// Generate one analogue by its SuiteSparse name (e.g. "thermal2").
/// `scale` in (0, +inf) multiplies the default reduced linear dimensions
/// (scale=1 gives ~40k-90k rows per problem). Throws on unknown names.
[[nodiscard]] CsrMatrix make_analogue(const std::string& name,
                                      double scale = 1.0,
                                      std::uint64_t seed = 7);

/// All seven as ready-to-solve problems (unit-diagonal scaling + random
/// b/x0), in Table-I order. Set `skip_divergent` to drop Dubcova2, which
/// the paper excludes from Figs. 7 and 8.
[[nodiscard]] std::vector<LinearProblem> make_table1_problems(
    double scale = 1.0, std::uint64_t seed = 7, bool skip_divergent = false);

}  // namespace ajac::gen
