#pragma once
// Linear-problem setup following the paper's protocol (Sec. VII-A):
// symmetric A scaled to unit diagonal, random right-hand side b and random
// initial approximation x0, both uniform in [-1, 1].

#include <string>

#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac::gen {

struct LinearProblem {
  std::string name;
  CsrMatrix a;  ///< unit-diagonal symmetric matrix
  Vector b;     ///< right-hand side, uniform in [-1, 1]
  Vector x0;    ///< initial approximation, uniform in [-1, 1]
};

/// Build a LinearProblem from a raw SPD matrix: applies the symmetric
/// scaling D^{-1/2} A D^{-1/2}, then draws b and x0 from `seed`.
[[nodiscard]] LinearProblem make_problem(std::string name, const CsrMatrix& a,
                                         std::uint64_t seed);

}  // namespace ajac::gen
