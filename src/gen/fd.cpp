#include "ajac/gen/fd.hpp"

#include <cmath>

#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::gen {

namespace {

/// Grid index helpers (row-major: x fastest).
constexpr index_t idx2(index_t nx, index_t i, index_t j) { return j * nx + i; }
constexpr index_t idx3(index_t nx, index_t ny, index_t i, index_t j,
                       index_t k) {
  return (k * ny + j) * nx + i;
}

}  // namespace

CsrMatrix fd_laplacian_1d(index_t n) {
  AJAC_CHECK(n >= 1);
  CooBuilder coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) coo.add(i, i - 1, -1.0);
    if (i + 1 < n) coo.add(i, i + 1, -1.0);
  }
  return coo.to_csr();
}

CsrMatrix fd_laplacian_2d(index_t nx, index_t ny) {
  AJAC_CHECK(nx >= 1 && ny >= 1);
  CooBuilder coo(nx * ny, nx * ny);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = idx2(nx, i, j);
      coo.add(row, row, 4.0);
      if (i > 0) coo.add(row, idx2(nx, i - 1, j), -1.0);
      if (i + 1 < nx) coo.add(row, idx2(nx, i + 1, j), -1.0);
      if (j > 0) coo.add(row, idx2(nx, i, j - 1), -1.0);
      if (j + 1 < ny) coo.add(row, idx2(nx, i, j + 1), -1.0);
    }
  }
  return coo.to_csr();
}

CsrMatrix fd_laplacian_3d(index_t nx, index_t ny, index_t nz) {
  AJAC_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  CooBuilder coo(nx * ny * nz, nx * ny * nz);
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t row = idx3(nx, ny, i, j, k);
        coo.add(row, row, 6.0);
        if (i > 0) coo.add(row, idx3(nx, ny, i - 1, j, k), -1.0);
        if (i + 1 < nx) coo.add(row, idx3(nx, ny, i + 1, j, k), -1.0);
        if (j > 0) coo.add(row, idx3(nx, ny, i, j - 1, k), -1.0);
        if (j + 1 < ny) coo.add(row, idx3(nx, ny, i, j + 1, k), -1.0);
        if (k > 0) coo.add(row, idx3(nx, ny, i, j, k - 1), -1.0);
        if (k + 1 < nz) coo.add(row, idx3(nx, ny, i, j, k + 1), -1.0);
      }
    }
  }
  return coo.to_csr();
}

CsrMatrix fd_varcoef_2d(
    index_t nx, index_t ny,
    const std::function<double(double, double)>& coef) {
  AJAC_CHECK(nx >= 1 && ny >= 1);
  const double hx = 1.0 / static_cast<double>(nx + 1);
  const double hy = 1.0 / static_cast<double>(ny + 1);
  auto c_at = [&](index_t i, index_t j) {
    const double c = coef(static_cast<double>(i + 1) * hx,
                          static_cast<double>(j + 1) * hy);
    AJAC_CHECK_MSG(c > 0.0, "coefficient must be positive");
    return c;
  };
  CooBuilder coo(nx * ny, nx * ny);
  // Assemble edge by edge: edge weight w contributes w to both diagonals
  // and -w to both off-diagonal positions, keeping A symmetric.
  // Dirichlet boundary edges contribute only to the diagonal, preserving
  // irreducible weak diagonal dominance.
  auto add_edge = [&](index_t r, index_t c, double w) {
    coo.add(r, r, w);
    coo.add(c, c, w);
    coo.add(r, c, -w);
    coo.add(c, r, -w);
  };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = idx2(nx, i, j);
      const double ci = c_at(i, j);
      if (i + 1 < nx) add_edge(row, idx2(nx, i + 1, j), 0.5 * (ci + c_at(i + 1, j)));
      if (j + 1 < ny) add_edge(row, idx2(nx, i, j + 1), 0.5 * (ci + c_at(i, j + 1)));
      // Boundary stubs (Dirichlet): west/east/south/north edges that leave
      // the grid add only to the diagonal.
      if (i == 0) coo.add(row, row, ci);
      if (i + 1 == nx) coo.add(row, row, ci);
      if (j == 0) coo.add(row, row, ci);
      if (j + 1 == ny) coo.add(row, row, ci);
    }
  }
  return coo.to_csr();
}

CsrMatrix fd_varcoef_3d(
    index_t nx, index_t ny, index_t nz,
    const std::function<double(double, double, double)>& coef) {
  AJAC_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  const double hx = 1.0 / static_cast<double>(nx + 1);
  const double hy = 1.0 / static_cast<double>(ny + 1);
  const double hz = 1.0 / static_cast<double>(nz + 1);
  auto c_at = [&](index_t i, index_t j, index_t k) {
    const double c = coef(static_cast<double>(i + 1) * hx,
                          static_cast<double>(j + 1) * hy,
                          static_cast<double>(k + 1) * hz);
    AJAC_CHECK_MSG(c > 0.0, "coefficient must be positive");
    return c;
  };
  CooBuilder coo(nx * ny * nz, nx * ny * nz);
  auto add_edge = [&](index_t r, index_t c, double w) {
    coo.add(r, r, w);
    coo.add(c, c, w);
    coo.add(r, c, -w);
    coo.add(c, r, -w);
  };
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t row = idx3(nx, ny, i, j, k);
        const double ci = c_at(i, j, k);
        if (i + 1 < nx) {
          add_edge(row, idx3(nx, ny, i + 1, j, k), 0.5 * (ci + c_at(i + 1, j, k)));
        }
        if (j + 1 < ny) {
          add_edge(row, idx3(nx, ny, i, j + 1, k), 0.5 * (ci + c_at(i, j + 1, k)));
        }
        if (k + 1 < nz) {
          add_edge(row, idx3(nx, ny, i, j, k + 1), 0.5 * (ci + c_at(i, j, k + 1)));
        }
        if (i == 0) coo.add(row, row, ci);
        if (i + 1 == nx) coo.add(row, row, ci);
        if (j == 0) coo.add(row, row, ci);
        if (j + 1 == ny) coo.add(row, row, ci);
        if (k == 0) coo.add(row, row, ci);
        if (k + 1 == nz) coo.add(row, row, ci);
      }
    }
  }
  return coo.to_csr();
}

CsrMatrix fd_random_blocks_2d(index_t nx, index_t ny, index_t blocks_x,
                              index_t blocks_y, double contrast, Rng& rng) {
  AJAC_CHECK(blocks_x >= 1 && blocks_y >= 1 && contrast >= 1.0);
  std::vector<double> block_coef(
      static_cast<std::size_t>(blocks_x * blocks_y));
  const double log_contrast = std::log(contrast);
  for (double& c : block_coef) c = std::exp(rng.uniform() * log_contrast);
  auto coef = [&](double x, double y) {
    auto bx = static_cast<index_t>(x * static_cast<double>(blocks_x));
    auto by = static_cast<index_t>(y * static_cast<double>(blocks_y));
    bx = std::min(bx, blocks_x - 1);
    by = std::min(by, blocks_y - 1);
    return block_coef[by * blocks_x + bx];
  };
  return fd_varcoef_2d(nx, ny, coef);
}

CsrMatrix fd_random_blocks_3d(index_t nx, index_t ny, index_t nz,
                              index_t blocks, double contrast, Rng& rng) {
  AJAC_CHECK(blocks >= 1 && contrast >= 1.0);
  std::vector<double> block_coef(
      static_cast<std::size_t>(blocks * blocks * blocks));
  const double log_contrast = std::log(contrast);
  for (double& c : block_coef) c = std::exp(rng.uniform() * log_contrast);
  auto coef = [&](double x, double y, double z) {
    auto b = [&](double t) {
      auto v = static_cast<index_t>(t * static_cast<double>(blocks));
      return std::min(v, blocks - 1);
    };
    return block_coef[(b(z) * blocks + b(y)) * blocks + b(x)];
  };
  return fd_varcoef_3d(nx, ny, nz, coef);
}

CsrMatrix fd_laplacian_2d_9pt(index_t nx, index_t ny) {
  AJAC_CHECK(nx >= 1 && ny >= 1);
  CooBuilder coo(nx * ny, nx * ny);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = idx2(nx, i, j);
      coo.add(row, row, 8.0);
      for (index_t dj = -1; dj <= 1; ++dj) {
        for (index_t di = -1; di <= 1; ++di) {
          if (di == 0 && dj == 0) continue;
          const index_t ii = i + di;
          const index_t jj = j + dj;
          if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) continue;
          coo.add(row, idx2(nx, ii, jj), -1.0);
        }
      }
    }
  }
  return coo.to_csr();
}

CsrMatrix fd_anisotropic_2d(index_t nx, index_t ny, double eps) {
  AJAC_CHECK(nx >= 1 && ny >= 1);
  AJAC_CHECK(eps > 0.0);
  CooBuilder coo(nx * ny, nx * ny);
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = idx2(nx, i, j);
      coo.add(row, row, 2.0 * eps + 2.0);
      if (i > 0) coo.add(row, idx2(nx, i - 1, j), -eps);
      if (i + 1 < nx) coo.add(row, idx2(nx, i + 1, j), -eps);
      if (j > 0) coo.add(row, idx2(nx, i, j - 1), -1.0);
      if (j + 1 < ny) coo.add(row, idx2(nx, i, j + 1), -1.0);
    }
  }
  return coo.to_csr();
}

CsrMatrix random_wdd_matrix(index_t n, index_t extra_edges, Rng& rng) {
  AJAC_CHECK(n >= 2);
  CooBuilder coo(n, n);
  auto add_edge = [&](index_t u, index_t v, double w) {
    coo.add(u, u, w);
    coo.add(v, v, w);
    coo.add(u, v, -w);
    coo.add(v, u, -w);
  };
  // Ring keeps the graph connected (irreducible).
  for (index_t i = 0; i < n; ++i) {
    add_edge(i, (i + 1) % n, rng.uniform(0.5, 2.0));
  }
  for (index_t k = 0; k < extra_edges; ++k) {
    const index_t u = static_cast<index_t>(rng.uniform_index(n));
    const index_t v = static_cast<index_t>(rng.uniform_index(n));
    if (u != v) add_edge(u, v, rng.uniform(0.5, 2.0));
  }
  // Shift a few rows so the matrix is nonsingular (strictly dominant
  // there, weakly elsewhere).
  const index_t shifted = std::max<index_t>(1, n / 16);
  for (index_t k = 0; k < shifted; ++k) {
    const index_t u = static_cast<index_t>(rng.uniform_index(n));
    coo.add(u, u, rng.uniform(0.5, 1.5));
  }
  return coo.to_csr(/*drop_zeros=*/true);
}

CsrMatrix paper_fd_40() { return fd_laplacian_2d(5, 8); }
CsrMatrix paper_fd_68() { return fd_laplacian_2d(4, 17); }
CsrMatrix paper_fd_272() { return fd_laplacian_2d(16, 17); }
CsrMatrix paper_fd_4624() { return fd_laplacian_2d(68, 68); }

}  // namespace ajac::gen
