#include "ajac/gen/fe.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::gen {

namespace {

struct Point {
  double x;
  double y;
};

double triangle_det(const Point& p0, const Point& p1, const Point& p2) {
  return (p1.x - p0.x) * (p2.y - p0.y) - (p2.x - p0.x) * (p1.y - p0.y);
}

/// Element stiffness for a P1 triangle with vertices p0, p1, p2 (CCW):
/// K_ij = (b_i b_j + c_i c_j) / (4 |T|).
std::array<std::array<double, 3>, 3> element_stiffness(const Point& p0,
                                                       const Point& p1,
                                                       const Point& p2) {
  const double b[3] = {p1.y - p2.y, p2.y - p0.y, p0.y - p1.y};
  const double c[3] = {p2.x - p1.x, p0.x - p2.x, p1.x - p0.x};
  const double det = triangle_det(p0, p1, p2);
  AJAC_CHECK_MSG(det > 0.0, "degenerate or inverted triangle");
  const double inv4a = 1.0 / (2.0 * det);  // 1/(4*area), area = det/2
  std::array<std::array<double, 3>, 3> k{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      k[i][j] = (b[i] * b[j] + c[i] * c[j]) * inv4a;
    }
  }
  return k;
}

}  // namespace

CsrMatrix fe_laplacian_2d(const FeMeshOptions& opts) {
  AJAC_CHECK(opts.nx >= 1 && opts.ny >= 1);
  AJAC_CHECK(opts.jitter >= 0.0 && opts.jitter < 0.5);
  AJAC_CHECK(opts.aspect > 0.0);

  const index_t vx = opts.nx + 2;  // vertices per row, incl. boundary
  const index_t vy = opts.ny + 2;
  const double hx = 1.0 / static_cast<double>(vx - 1);
  const double hy = 1.0 / static_cast<double>(vy - 1);
  Rng rng(opts.seed);

  auto vertex_id = [&](index_t i, index_t j) { return j * vx + i; };

  // Jitter offsets in units of (hx, hy). Boundary vertices stay put so the
  // domain remains a square.
  std::vector<Point> offset(static_cast<std::size_t>(vx * vy), Point{0, 0});
  for (index_t j = 1; j + 1 < vy; ++j) {
    for (index_t i = 1; i + 1 < vx; ++i) {
      const Point jitter{opts.jitter * rng.uniform(-1.0, 1.0),
                         opts.jitter * rng.uniform(-1.0, 1.0)};
      if (rng.uniform() < opts.jitter_fraction) {
        offset[vertex_id(i, j)] = jitter;
      }
    }
  }

  // Per-quad diagonal choice, fixed before untangling so the mesh topology
  // is stable.
  std::vector<char> split_main(static_cast<std::size_t>((vx - 1) * (vy - 1)));
  for (index_t j = 0; j + 1 < vy; ++j) {
    for (index_t i = 0; i + 1 < vx; ++i) {
      split_main[j * (vx - 1) + i] = opts.random_diagonals
                                         ? static_cast<char>(rng.next() & 1u)
                                         : static_cast<char>((i + j) & 1);
    }
  }

  // Positions in *logical* (pre-shear, pre-stretch) coordinates. Validity
  // is checked here; shear and stretch are affine with positive
  // determinant, so a valid logical mesh stays valid after transform.
  auto logical_point = [&](index_t i, index_t j, double damp) {
    const Point& off = offset[vertex_id(i, j)];
    return Point{(static_cast<double>(i) + damp * off.x) * hx,
                 (static_cast<double>(j) + damp * off.y) * hy};
  };

  // Untangling pass: damp the jitter of any vertex incident to a
  // near-degenerate triangle. Converges because damp -> 0 reproduces the
  // structured (valid) mesh.
  std::vector<double> damp(static_cast<std::size_t>(vx * vy), 1.0);
  const double min_det = 0.05 * hx * hy;
  for (int sweep = 0; sweep < 64; ++sweep) {
    bool changed = false;
    auto check_triangle = [&](index_t a, index_t b, index_t c,
                              index_t ai, index_t aj, index_t bi, index_t bj,
                              index_t ci, index_t cj) {
      const Point pa = logical_point(ai, aj, damp[a]);
      const Point pb = logical_point(bi, bj, damp[b]);
      const Point pc = logical_point(ci, cj, damp[c]);
      if (triangle_det(pa, pb, pc) <= min_det) {
        damp[a] *= 0.5;
        damp[b] *= 0.5;
        damp[c] *= 0.5;
        changed = true;
      }
    };
    for (index_t j = 0; j + 1 < vy; ++j) {
      for (index_t i = 0; i + 1 < vx; ++i) {
        const index_t v00 = vertex_id(i, j), v10 = vertex_id(i + 1, j);
        const index_t v01 = vertex_id(i, j + 1), v11 = vertex_id(i + 1, j + 1);
        if (split_main[j * (vx - 1) + i]) {
          check_triangle(v00, v10, v11, i, j, i + 1, j, i + 1, j + 1);
          check_triangle(v00, v11, v01, i, j, i + 1, j + 1, i, j + 1);
        } else {
          check_triangle(v00, v10, v01, i, j, i + 1, j, i, j + 1);
          check_triangle(v10, v11, v01, i + 1, j, i + 1, j + 1, i, j + 1);
        }
      }
    }
    if (!changed) break;
  }

  // Final physical coordinates: logical -> shear -> stretch.
  std::vector<Point> pts(static_cast<std::size_t>(vx * vy));
  for (index_t j = 0; j < vy; ++j) {
    for (index_t i = 0; i < vx; ++i) {
      const index_t v = vertex_id(i, j);
      const Point lp = logical_point(i, j, damp[v]);
      pts[v] = Point{lp.x + opts.shear * lp.y, lp.y * opts.aspect};
    }
  }

  // Unknown numbering: interior vertices only, row-major.
  std::vector<index_t> unknown(static_cast<std::size_t>(vx * vy), index_t{-1});
  {
    index_t next = 0;
    for (index_t j = 1; j + 1 < vy; ++j) {
      for (index_t i = 1; i + 1 < vx; ++i) {
        unknown[vertex_id(i, j)] = next++;
      }
    }
    AJAC_CHECK(next == opts.nx * opts.ny);
  }

  const index_t n = opts.nx * opts.ny;
  CooBuilder coo(n, n);
  auto assemble_triangle = [&](index_t v0, index_t v1, index_t v2) {
    const auto k = element_stiffness(pts[v0], pts[v1], pts[v2]);
    const index_t ids[3] = {unknown[v0], unknown[v1], unknown[v2]};
    for (int a = 0; a < 3; ++a) {
      if (ids[a] < 0) continue;  // Dirichlet row eliminated
      for (int bcol = 0; bcol < 3; ++bcol) {
        if (ids[bcol] < 0) continue;  // Dirichlet column eliminated
        coo.add(ids[a], ids[bcol], k[a][bcol]);
      }
    }
  };

  for (index_t j = 0; j + 1 < vy; ++j) {
    for (index_t i = 0; i + 1 < vx; ++i) {
      const index_t v00 = vertex_id(i, j), v10 = vertex_id(i + 1, j);
      const index_t v01 = vertex_id(i, j + 1), v11 = vertex_id(i + 1, j + 1);
      if (split_main[j * (vx - 1) + i]) {
        assemble_triangle(v00, v10, v11);
        assemble_triangle(v00, v11, v01);
      } else {
        assemble_triangle(v00, v10, v01);
        assemble_triangle(v10, v11, v01);
      }
    }
  }
  return coo.to_csr(/*drop_zeros=*/false);
}

CsrMatrix paper_fe_3081() {
  FeMeshOptions opts;
  opts.nx = 79;
  opts.ny = 39;
  opts.jitter = 0.35;
  opts.jitter_fraction = 0.15;
  opts.shear = 0.0;
  opts.aspect = 1.0;
  opts.random_diagonals = true;
  opts.seed = 20180521;
  return fe_laplacian_2d(opts);
}

CsrMatrix dubcova2_analogue(index_t scale) {
  FeMeshOptions opts;
  opts.nx = scale;
  opts.ny = scale;
  // Milder distortion than paper_fe_3081: the real Dubcova2 is only just
  // Jacobi-divergent; this setting gives rho(G) ~ 1.05 at the default
  // sizes (Jacobi diverges, asynchronous high-rank runs can converge).
  opts.jitter = 0.28;
  opts.jitter_fraction = 0.15;
  opts.shear = 0.0;
  opts.aspect = 1.0;
  opts.random_diagonals = true;
  opts.seed = 65025;
  return fe_laplacian_2d(opts);
}

}  // namespace ajac::gen
