#include "ajac/gen/analogues.hpp"

#include <cmath>
#include <stdexcept>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::gen {

namespace {

index_t scaled(index_t base, double scale) {
  return std::max<index_t>(2, static_cast<index_t>(std::lround(
                                  static_cast<double>(base) * scale)));
}

/// 2D grid Laplacian plus `extra_links` random long-range "resistor"
/// edges, mimicking the power-grid structure of G3_circuit: mostly local
/// connectivity with sparse long wires. Edge weights in [0.5, 2].
CsrMatrix circuit_graph(index_t nx, index_t ny, index_t extra_links,
                        Rng& rng) {
  const index_t n = nx * ny;
  CooBuilder coo(n, n);
  auto add_edge = [&](index_t u, index_t v, double w) {
    coo.add(u, u, w);
    coo.add(v, v, w);
    coo.add(u, v, -w);
    coo.add(v, u, -w);
  };
  auto id = [&](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const double w1 = rng.uniform(0.5, 2.0);
      const double w2 = rng.uniform(0.5, 2.0);
      if (i + 1 < nx) add_edge(id(i, j), id(i + 1, j), w1);
      if (j + 1 < ny) add_edge(id(i, j), id(i, j + 1), w2);
    }
  }
  for (index_t k = 0; k < extra_links; ++k) {
    const index_t u = static_cast<index_t>(rng.uniform_index(n));
    const index_t v = static_cast<index_t>(rng.uniform_index(n));
    if (u != v) add_edge(u, v, rng.uniform(0.5, 2.0));
  }
  // Ground a sparse subset of nodes (diagonal shift) so the Laplacian is
  // nonsingular, like a circuit with voltage sources / pad connections.
  const index_t grounded = std::max<index_t>(1, n / 100);
  for (index_t k = 0; k < grounded; ++k) {
    const index_t u = static_cast<index_t>(rng.uniform_index(n));
    coo.add(u, u, rng.uniform(0.5, 2.0));
  }
  return coo.to_csr();
}

/// I + tau * L: one implicit-Euler step of a parabolic (heat) problem, the
/// structure of parabolic_fem. Strictly diagonally dominant SPD.
CsrMatrix parabolic_step(index_t nx, index_t ny, double tau) {
  const CsrMatrix lap = fd_laplacian_2d(nx, ny);
  std::vector<index_t> row_ptr(lap.row_ptr().begin(), lap.row_ptr().end());
  std::vector<index_t> col_idx(lap.col_idx().begin(), lap.col_idx().end());
  std::vector<double> values(lap.values().begin(), lap.values().end());
  for (index_t i = 0; i < lap.num_rows(); ++i) {
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      values[p] *= tau;
      if (col_idx[p] == i) values[p] += 1.0;
    }
  }
  return CsrMatrix(lap.num_rows(), lap.num_cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

}  // namespace

const std::vector<AnalogueInfo>& table1_catalogue() {
  static const std::vector<AnalogueInfo> catalogue = {
      {"thermal2", 1227087, 8579355, true,
       "3D 7-pt FD, random-block coefficient, contrast 1e2"},
      {"G3_circuit", 1585478, 7660826, true,
       "2D grid Laplacian + random long-range resistor links"},
      {"ecology2", 999999, 4995991, true, "heterogeneous 2D 5-pt FD"},
      {"apache2", 715176, 4817870, true, "structured 3D 7-pt FD"},
      {"parabolic_fem", 525825, 3674625, true,
       "implicit-Euler step I + tau*L on a 2D grid"},
      {"thermomech_dm", 204316, 1423116, true,
       "small 3D variable-coefficient FD"},
      {"Dubcova2", 65025, 1030225, false,
       "P1 FE stiffness on distorted mesh, rho(G) > 1"},
  };
  return catalogue;
}

CsrMatrix make_analogue(const std::string& name, double scale,
                        std::uint64_t seed) {
  Rng rng(seed);
  if (name == "thermal2") {
    const index_t m = scaled(44, std::cbrt(scale));
    return fd_random_blocks_3d(m, m, m, /*blocks=*/4, /*contrast=*/100.0, rng);
  }
  if (name == "G3_circuit") {
    const index_t m = scaled(310, std::sqrt(scale));
    return circuit_graph(m, m, /*extra_links=*/m * m / 25, rng);
  }
  if (name == "ecology2") {
    const index_t m = scaled(280, std::sqrt(scale));
    return fd_random_blocks_2d(m, m, /*blocks_x=*/8, /*blocks_y=*/8,
                               /*contrast=*/30.0, rng);
  }
  if (name == "apache2") {
    const index_t m = scaled(40, std::cbrt(scale));
    return fd_laplacian_3d(m, m, m);
  }
  if (name == "parabolic_fem") {
    const index_t m = scaled(230, std::sqrt(scale));
    return parabolic_step(m, m, /*tau=*/5.0);
  }
  if (name == "thermomech_dm") {
    const index_t m = scaled(30, std::cbrt(scale));
    return fd_random_blocks_3d(m, m, m, /*blocks=*/3, /*contrast=*/10.0, rng);
  }
  if (name == "Dubcova2") {
    const index_t m = scaled(255, std::sqrt(scale));
    return dubcova2_analogue(m);
  }
  throw std::invalid_argument("unknown Table-I matrix name: " + name);
}

std::vector<LinearProblem> make_table1_problems(double scale,
                                                std::uint64_t seed,
                                                bool skip_divergent) {
  std::vector<LinearProblem> problems;
  for (const AnalogueInfo& info : table1_catalogue()) {
    if (skip_divergent && !info.jacobi_converges) continue;
    problems.push_back(
        make_problem(info.name, make_analogue(info.name, scale, seed), seed));
  }
  return problems;
}

}  // namespace ajac::gen
