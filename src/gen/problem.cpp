#include "ajac/gen/problem.hpp"

#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::gen {

LinearProblem make_problem(std::string name, const CsrMatrix& a,
                           std::uint64_t seed) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  LinearProblem p;
  p.name = std::move(name);
  p.a = scale_to_unit_diagonal(a);
  const auto n = static_cast<std::size_t>(a.num_rows());
  p.b.resize(n);
  p.x0.resize(n);
  Rng rng(seed);
  vec::fill_uniform(p.b, rng);
  vec::fill_uniform(p.x0, rng);
  return p;
}

}  // namespace ajac::gen
