#include "ajac/sparse/mm_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("matrix market: " + what);
}

std::string lowercase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) fail("cannot open " + path);
  return read_matrix_market(in);
}

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  object = lowercase(object);
  format = lowercase(format);
  field = lowercase(field);
  symmetry = lowercase(symmetry);
  if (object != "matrix") fail("unsupported object '" + object + "'");
  if (format != "coordinate") fail("unsupported format '" + format + "'");
  const bool is_pattern = field == "pattern";
  if (field != "real" && field != "integer" && !is_pattern) {
    fail("unsupported field '" + field + "'");
  }
  const bool is_symmetric = symmetry == "symmetric";
  if (symmetry != "general" && !is_symmetric) {
    fail("unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  index_t rows = 0, cols = 0, nnz = 0;
  sizes >> rows >> cols >> nnz;
  if (!sizes || rows <= 0 || cols <= 0 || nnz < 0) fail("bad size line");

  CooBuilder coo(rows, cols);
  for (index_t k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) fail("unexpected end of file");
    std::istringstream entry(line);
    index_t i = 0, j = 0;
    double v = 1.0;
    entry >> i >> j;
    if (!is_pattern) entry >> v;
    if (!entry) fail("bad entry line: " + line);
    if (i < 1 || i > rows || j < 1 || j > cols) fail("index out of range");
    if (is_symmetric) {
      coo.add_symmetric(i - 1, j - 1, v);
    } else {
      coo.add(i - 1, j - 1, v);
    }
  }
  return coo.to_csr();
}

void write_matrix_market(const CsrMatrix& a, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) fail("cannot open " + path + " for writing");
  write_matrix_market(a, out);
}

Vector read_vector_market(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) fail("cannot open " + path);
  return read_vector_market(in);
}

Vector read_vector_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  if (lowercase(object) != "matrix" || lowercase(format) != "array") {
    fail("expected 'matrix array' for a dense vector");
  }
  if (lowercase(field) != "real" && lowercase(field) != "integer") {
    fail("unsupported array field '" + field + "'");
  }
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  index_t rows = 0, cols = 0;
  sizes >> rows >> cols;
  if (!sizes || rows <= 0 || cols != 1) fail("expected an n x 1 array");
  Vector x(static_cast<std::size_t>(rows));
  for (index_t i = 0; i < rows; ++i) {
    if (!(in >> x[i])) fail("truncated array data");
  }
  return x;
}

void write_vector_market(const Vector& x, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) fail("cannot open " + path + " for writing");
  write_vector_market(x, out);
}

void write_vector_market(const Vector& x, std::ostream& out) {
  out << "%%MatrixMarket matrix array real general\n";
  out << x.size() << " 1\n";
  out.precision(17);
  for (double v : x) out << v << '\n';
}

void write_matrix_market(const CsrMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by async_jacobi\n";
  out << a.num_rows() << ' ' << a.num_cols() << ' ' << a.num_nonzeros()
      << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

}  // namespace ajac
