#include "ajac/sparse/properties.hpp"

#include <cmath>
#include <queue>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

bool row_is_wdd(const CsrMatrix& a, index_t i) {
  double diag = 0.0;
  double offdiag = 0.0;
  const auto cols = a.row_cols(i);
  const auto vals = a.row_values(i);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (cols[k] == i) {
      diag = std::abs(vals[k]);
    } else {
      offdiag += std::abs(vals[k]);
    }
  }
  // Tolerate roundoff in generated/scaled matrices: a row whose off-diagonal
  // sum exceeds the diagonal by a few ulps is still W.D.D. for our purposes.
  return diag * (1.0 + 1e-13) >= offdiag;
}

bool is_weakly_diag_dominant(const CsrMatrix& a) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  for (index_t i = 0; i < a.num_rows(); ++i) {
    if (!row_is_wdd(a, i)) return false;
  }
  return true;
}

double wdd_fraction(const CsrMatrix& a) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  if (a.num_rows() == 0) return 1.0;
  index_t count = 0;
  for (index_t i = 0; i < a.num_rows(); ++i) {
    if (row_is_wdd(a, i)) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(a.num_rows());
}

bool has_unit_diagonal(const CsrMatrix& a, double tol) {
  if (a.num_rows() != a.num_cols()) return false;
  for (index_t i = 0; i < a.num_rows(); ++i) {
    if (std::abs(a.at(i, i) - 1.0) > tol) return false;
  }
  return true;
}

bool is_irreducible(const CsrMatrix& a) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  if (n == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<index_t> frontier;
  frontier.push(0);
  seen[0] = 1;
  index_t visited = 1;
  while (!frontier.empty()) {
    const index_t u = frontier.front();
    frontier.pop();
    for (index_t v : a.row_cols(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n;
}

std::vector<index_t> offdiag_degrees(const CsrMatrix& a) {
  std::vector<index_t> deg(static_cast<std::size_t>(a.num_rows()), 0);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      if (j != i) ++deg[i];
    }
  }
  return deg;
}

}  // namespace ajac
