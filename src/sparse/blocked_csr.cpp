#include "ajac/sparse/blocked_csr.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/annotate.hpp"

namespace ajac {

namespace {

void validate_block_starts(std::span<const index_t> block_starts,
                           index_t num_rows) {
  if (block_starts.size() < 2) {
    throw std::logic_error("BlockedCsr: block_starts needs >= 2 entries");
  }
  if (block_starts.front() != 0) {
    throw std::logic_error("BlockedCsr: block_starts must begin at 0");
  }
  if (block_starts.back() != num_rows) {
    throw std::logic_error("BlockedCsr: block_starts must end at num_rows");
  }
  for (std::size_t t = 1; t < block_starts.size(); ++t) {
    if (block_starts[t] < block_starts[t - 1]) {
      throw std::logic_error("BlockedCsr: block_starts must be non-decreasing");
    }
  }
}

/// Fill one block from its rows of `a`. Runs on the thread that will later
/// relax the block (first touch).
BlockedCsr::Block build_block(const CsrMatrix& a, index_t lo, index_t hi) {
  BlockedCsr::Block blk;
  blk.lo = lo;
  blk.hi = hi;
  const index_t rows = hi - lo;

  blk.row_ptr.resize(static_cast<std::size_t>(rows) + 1, 0);
  index_t nnz = 0;
  for (index_t i = lo; i < hi; ++i) {
    nnz += a.row_nnz(i);
    blk.row_ptr[static_cast<std::size_t>(i - lo) + 1] = nnz;
  }

  // Pass 1: collect the block's ghost columns (sorted, unique) so ghost
  // slots are independent of entry order within rows.
  for (index_t i = lo; i < hi; ++i) {
    for (const index_t j : a.row_cols(i)) {
      if (j < lo || j >= hi) blk.ghost_cols.push_back(j);
    }
  }
  std::sort(blk.ghost_cols.begin(), blk.ghost_cols.end());
  blk.ghost_cols.erase(
      std::unique(blk.ghost_cols.begin(), blk.ghost_cols.end()),
      blk.ghost_cols.end());

  // The block's rows are contiguous in the parent CSR, so the value slice
  // is a zero-copy view (row_values of an empty row still points at the
  // right offset).
  if (rows > 0) {
    blk.values = {a.row_values(lo).data(), static_cast<std::size_t>(nnz)};
  }

  // Pass 2: encode entries in their original order and split rows into
  // interior (no ghost entries) and boundary.
  blk.col_code.reserve(static_cast<std::size_t>(nnz));
  blk.interior_rows.reserve(static_cast<std::size_t>(rows));
  blk.inv_diag.resize(static_cast<std::size_t>(rows), 0.0);
  for (index_t i = lo; i < hi; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    bool has_ghost = false;
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const index_t j = cols[p];
      if (j == i && vals[p] != 0.0) {
        blk.inv_diag[static_cast<std::size_t>(i - lo)] = 1.0 / vals[p];
      }
      if (j >= lo && j < hi) {
        blk.col_code.push_back(j - lo);
        ++blk.local_nnz;
      } else {
        const auto it = std::lower_bound(blk.ghost_cols.begin(),
                                         blk.ghost_cols.end(), j);
        const auto slot =
            static_cast<index_t>(it - blk.ghost_cols.begin());
        blk.col_code.push_back(BlockedCsr::ghost_code(slot));
        ++blk.ghost_nnz;
        has_ghost = true;
      }
    }
    (has_ghost ? blk.boundary_rows : blk.interior_rows).push_back(i);
  }
  return blk;
}

}  // namespace

BlockedCsr::BlockedCsr(const CsrMatrix& a,
                       std::span<const index_t> block_starts) {
  validate_block_starts(block_starts, a.num_rows());
  num_rows_ = a.num_rows();
  num_cols_ = a.num_cols();
  nnz_ = a.num_nonzeros();
  const auto num_blocks = static_cast<index_t>(block_starts.size()) - 1;
  blocks_.resize(static_cast<std::size_t>(num_blocks));

  // schedule(static,1) pins block t to thread t % num_threads — the same
  // assignment solve_shared's parallel region uses — so first touch places
  // each block's arrays near its relaxing thread. The fork/join edges live
  // in uninstrumented libgomp, so hand them to TSan explicitly (the same
  // pattern solve_shared uses around its parallel region).
  AJAC_TSAN_RELEASE(&blocks_);
#pragma omp parallel for schedule(static, 1)
  for (index_t t = 0; t < num_blocks; ++t) {
    AJAC_TSAN_ACQUIRE(&blocks_);
    blocks_[static_cast<std::size_t>(t)] =
        build_block(a, block_starts[t], block_starts[t + 1]);
    AJAC_TSAN_RELEASE(&blocks_);
  }
  AJAC_TSAN_ACQUIRE(&blocks_);
}

CsrMatrix BlockedCsr::reassemble() const {
  std::vector<index_t> row_ptr;
  std::vector<index_t> col_idx;
  std::vector<double> values;
  row_ptr.reserve(static_cast<std::size_t>(num_rows_) + 1);
  col_idx.reserve(static_cast<std::size_t>(nnz_));
  values.reserve(static_cast<std::size_t>(nnz_));
  row_ptr.push_back(0);
  for (const Block& blk : blocks_) {
    for (index_t r = 0; r < blk.num_rows(); ++r) {
      const auto begin = static_cast<std::size_t>(blk.row_ptr[r]);
      const auto end = static_cast<std::size_t>(blk.row_ptr[r + 1]);
      for (std::size_t p = begin; p < end; ++p) {
        const index_t code = blk.col_code[p];
        col_idx.push_back(is_ghost(code)
                              ? blk.ghost_cols[static_cast<std::size_t>(
                                    ghost_slot(code))]
                              : blk.lo + code);
        values.push_back(blk.values[p]);
      }
      row_ptr.push_back(static_cast<index_t>(col_idx.size()));
    }
  }
  return CsrMatrix(num_rows_, num_cols_, std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

}  // namespace ajac
