#pragma once
// Partition-aware CSR layout for the shared-memory runtime.
//
// A BlockedCsr reshapes a CsrMatrix along a contiguous row partition
// (partition::Partition::block_starts) into per-owner blocks whose column
// indices are classified once, up front, by who owns them:
//
//   * local  — the column falls inside the block's own row range, so the
//     owning thread also owns the value it reads. Those reads never race:
//     the reader wrote the value itself, in program order, and can serve
//     them from a plain thread-private array with no atomics or seqlocks.
//   * ghost  — the column belongs to another block. Only these reads need
//     the SharedVector machinery (relaxed atomic loads, or versioned
//     seqlock reads in traced runs).
//
// Rows whose columns are all local are *interior*; rows touching at least
// one ghost column are *boundary*. The split is the shared-memory analogue
// of the local/ghost column maps distributed SpMV codes build (L2GMap) and
// of Skywing's interior/boundary actor decomposition: the expensive
// synchronized reads are confined to the boundary, which for banded
// matrices is a vanishing fraction of the block.
//
// Entry order within each row is preserved exactly, so a relaxation that
// walks a blocked row accumulates in the same order as one walking the
// original CSR row — blocked and reference kernels produce bitwise
// identical sums from identical inputs (the contract the differential
// kernel-equivalence suite pins down).
//
// Construction touches each block's arrays from an OpenMP thread chosen by
// the same static schedule the solver's parallel region uses, so on NUMA
// machines first-touch places a block's rows on the socket of the thread
// that will relax them.

#include <span>
#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

class BlockedCsr {
 public:
  /// Column codes: non-negative codes are local column offsets (global
  /// column j owned by a block starting at lo is stored as j - lo);
  /// negative codes address the block's ghost table (slot s stored as ~s).
  [[nodiscard]] static constexpr bool is_ghost(index_t code) noexcept {
    return code < 0;
  }
  [[nodiscard]] static constexpr index_t ghost_slot(index_t code) noexcept {
    return ~code;
  }
  [[nodiscard]] static constexpr index_t ghost_code(index_t slot) noexcept {
    return ~slot;
  }

  struct Block {
    index_t lo = 0;  ///< first row owned by this block
    index_t hi = 0;  ///< one past the last row owned by this block

    /// CSR over the block's rows in their original order: entries of local
    /// row r (global row lo + r) are [row_ptr[r], row_ptr[r + 1]).
    std::vector<index_t> row_ptr;
    /// Per entry: local offset or ~(ghost slot); see is_ghost/ghost_slot.
    /// Entry order within a row matches the source CSR row exactly.
    std::vector<index_t> col_code;
    /// The block's value slice, aliasing the source matrix's value array
    /// (the block's rows are contiguous in the parent CSR, so this is
    /// zero-copy). The BlockedCsr is a *view* in this one respect: it must
    /// not outlive the CsrMatrix it was built from.
    std::span<const double> values;

    /// Ghost slot -> global column, sorted ascending, unique per block.
    std::vector<index_t> ghost_cols;

    /// Global row ids, each row in exactly one list. Interior rows have no
    /// ghost entries (provable from col_code); boundary rows have >= 1.
    /// Both lists are ascending, so iterating interior then boundary walks
    /// each class in row order.
    std::vector<index_t> interior_rows;
    std::vector<index_t> boundary_rows;

    /// 1 / a_ii per owned row; 0.0 where the diagonal entry is missing or
    /// stored as zero (callers that relax must reject such matrices — the
    /// runtime validates before building).
    std::vector<double> inv_diag;

    index_t local_nnz = 0;  ///< entries with local codes
    index_t ghost_nnz = 0;  ///< entries with ghost codes

    [[nodiscard]] index_t num_rows() const noexcept { return hi - lo; }
  };

  BlockedCsr() = default;

  /// Split `a` along contiguous row blocks [block_starts[t],
  /// block_starts[t+1]). Requires block_starts to describe a valid
  /// partition of a.num_rows() (starts at 0, non-decreasing, ends at
  /// num_rows); empty blocks are allowed. Throws std::logic_error
  /// otherwise. Each block's `values` aliases `a`'s value array, so the
  /// BlockedCsr must not outlive `a`.
  BlockedCsr(const CsrMatrix& a, std::span<const index_t> block_starts);

  [[nodiscard]] index_t num_blocks() const noexcept {
    return static_cast<index_t>(blocks_.size());
  }
  [[nodiscard]] index_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] index_t num_cols() const noexcept { return num_cols_; }
  [[nodiscard]] index_t num_nonzeros() const noexcept { return nnz_; }

  [[nodiscard]] const Block& block(index_t t) const {
    return blocks_[static_cast<std::size_t>(t)];
  }

  /// Decode the blocked form back into a CsrMatrix. Exact inverse of
  /// construction: compares equal (operator==) to the source matrix —
  /// the reassembly property the prop_blocked_csr suite checks.
  [[nodiscard]] CsrMatrix reassemble() const;

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  index_t nnz_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace ajac
