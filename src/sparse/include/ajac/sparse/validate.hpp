#pragma once
// Structural validators for the debug invariant layer.
//
// Each validator throws std::logic_error (via AJAC_CHECK_MSG) naming the
// first violated invariant. They are cheap enough to call at API entry
// points but are typically wired into hot paths behind AJAC_DBG_VALIDATE,
// so release builds pay nothing:
//
//   AJAC_DBG_VALIDATE(validate::csr_structure(a, {.require_diagonal = true}));
//
// The CsrMatrix constructor already rejects malformed row_ptr / column
// ranges at construction time; these validators additionally cover the
// invariants the constructor deliberately does not enforce (sorted rows,
// full diagonal, finite values — values are mutable through
// mutable_values(), so finiteness can rot after construction).

#include <span>

#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::validate {

struct CsrRequirements {
  bool require_sorted_rows = true;   ///< strictly increasing columns per row
  bool require_diagonal = false;     ///< (i,i) stored for all i (square only)
  bool require_finite = true;        ///< no NaN/Inf stored values
  bool require_square = false;
};

/// Full structural audit of a CSR matrix: row_ptr monotone and consistent,
/// column indices in range, plus the requested optional invariants.
void csr_structure(const CsrMatrix& a, const CsrRequirements& req = {});

/// Every element finite (no NaN/Inf). `what` names the vector in the
/// failure message, e.g. "b" or "x at iteration boundary".
void finite(std::span<const double> v, const char* what);

}  // namespace ajac::validate
