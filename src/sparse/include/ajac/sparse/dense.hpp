#pragma once
// Small dense matrices, used by the propagation-matrix theory layer (norms
// and spectra of Ĝ(k)/Ĥ(k) for model-scale problems) and the dense Jacobi
// eigensolver. Row-major storage.

#include <span>
#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, double fill = 0.0);

  static DenseMatrix identity(index_t n);
  static DenseMatrix from_csr(const CsrMatrix& a);

  [[nodiscard]] index_t num_rows() const noexcept { return rows_; }
  [[nodiscard]] index_t num_cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(index_t i, index_t j) {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(index_t i, index_t j) const {
    return data_[i * cols_ + j];
  }

  [[nodiscard]] std::span<double> row(index_t i) {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const double> row(index_t i) const {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }

  /// y = A x.
  void gemv(std::span<const double> x, std::span<double> y) const;

  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;
  [[nodiscard]] DenseMatrix transpose() const;

  /// Induced norms: max column abs sum / max row abs sum, and Frobenius.
  [[nodiscard]] double norm1() const;
  [[nodiscard]] double norm_inf() const;
  [[nodiscard]] double norm_fro() const;

  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// max |a_ij - b_ij|.
  [[nodiscard]] double max_abs_diff(const DenseMatrix& other) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ajac
