#pragma once
// Symmetric permutations P A P^T. Used by the partitioner to reorder rows
// so each process owns a contiguous subdomain (the paper partitions with
// METIS and then treats each part as contiguous, Sec. VII-A), and by the
// propagation-matrix analysis of Sec. IV-C (ordering delayed rows first).

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

/// A permutation given as `new_to_old`: row i of the permuted matrix is row
/// new_to_old[i] of the original. Validates that it is a bijection.
class Permutation {
 public:
  explicit Permutation(std::vector<index_t> new_to_old);

  static Permutation identity(index_t n);

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(new_to_old_.size());
  }
  [[nodiscard]] index_t new_to_old(index_t i) const { return new_to_old_[i]; }
  [[nodiscard]] index_t old_to_new(index_t i) const { return old_to_new_[i]; }

  [[nodiscard]] Permutation inverse() const;

  /// P A P^T.
  [[nodiscard]] CsrMatrix apply_symmetric(const CsrMatrix& a) const;

  /// (P x)_i = x_{new_to_old[i]}.
  [[nodiscard]] Vector apply(const Vector& x) const;

  /// P^T y.
  [[nodiscard]] Vector apply_inverse(const Vector& y) const;

 private:
  std::vector<index_t> new_to_old_;
  std::vector<index_t> old_to_new_;
};

}  // namespace ajac
