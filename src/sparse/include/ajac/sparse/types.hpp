#pragma once
// Common scalar/index types for the sparse substrate.

#include <cstdint>
#include <vector>

namespace ajac {

/// Index type used for matrix dimensions and nonzero counts. 64-bit so the
/// Table-I-scale problems (millions of nonzeros) never overflow, even when
/// products of dimensions are formed.
using index_t = std::int64_t;

/// Dense vectors are plain contiguous arrays of doubles; the library
/// operates on them through std::span-like views in the kernels.
using Vector = std::vector<double>;

}  // namespace ajac
