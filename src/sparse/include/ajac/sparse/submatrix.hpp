#pragma once
// Principal submatrices and decoupled-block detection.
//
// Sec. IV-C/IV-D of the paper analyze delayed-process behaviour through the
// principal submatrix G̃ of the iteration matrix on the *active* rows, its
// interlaced eigenvalues, and the diagonal blocks that appear when removing
// delayed rows decouples the sparsity graph.

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

/// Extract the principal submatrix A(keep, keep). `keep` must be strictly
/// increasing; entries whose column is not kept are dropped.
[[nodiscard]] CsrMatrix principal_submatrix(const CsrMatrix& a,
                                            const std::vector<index_t>& keep);

/// Connected components of the undirected pattern graph of A (A assumed to
/// have symmetric pattern). Returns component id per row, 0-based.
[[nodiscard]] std::vector<index_t> connected_components(const CsrMatrix& a,
                                                        index_t* num_components);

/// Rows NOT in `removed` (complement of a sorted unique index set).
[[nodiscard]] std::vector<index_t> complement_rows(
    index_t n, const std::vector<index_t>& removed);

}  // namespace ajac
