#pragma once
// Structural and spectral-adjacent predicates the paper's theory relies on:
// weak diagonal dominance (W.D.D.), unit diagonal, irreducibility.

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

/// True if row i satisfies |a_ii| >= sum_{j != i} |a_ij|.
[[nodiscard]] bool row_is_wdd(const CsrMatrix& a, index_t i);

/// True if every row is weakly diagonally dominant.
[[nodiscard]] bool is_weakly_diag_dominant(const CsrMatrix& a);

/// Fraction of rows with the W.D.D. property (the paper's FE matrix has
/// roughly half of its rows W.D.D.).
[[nodiscard]] double wdd_fraction(const CsrMatrix& a);

/// True if a_ii == 1 for all i within tol.
[[nodiscard]] bool has_unit_diagonal(const CsrMatrix& a, double tol = 0.0);

/// True if the adjacency graph of A (pattern, ignoring values) is
/// connected, i.e. A is irreducible for symmetric patterns.
[[nodiscard]] bool is_irreducible(const CsrMatrix& a);

/// Per-row count of stored off-diagonal entries.
[[nodiscard]] std::vector<index_t> offdiag_degrees(const CsrMatrix& a);

}  // namespace ajac
