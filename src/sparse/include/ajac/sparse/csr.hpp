#pragma once
// Compressed-sparse-row matrix: the storage format used throughout the
// library (the paper stores its matrices in CSR as well, Sec. VII-A).

#include <span>
#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of fully-formed CSR arrays. row_ptr must have
  /// num_rows+1 entries, be non-decreasing, start at 0, and end at
  /// col_idx.size(); column indices must lie in [0, num_cols).
  CsrMatrix(index_t num_rows, index_t num_cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<double> values);

  [[nodiscard]] index_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] index_t num_cols() const noexcept { return num_cols_; }
  [[nodiscard]] index_t num_nonzeros() const noexcept {
    return static_cast<index_t>(values_.size());
  }

  [[nodiscard]] std::span<const index_t> row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const index_t> col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<double> mutable_values() noexcept { return values_; }

  /// Columns and values of row i, fetched with a single pair of row_ptr
  /// loads. Hot loops that need both spans should call row(i) once rather
  /// than row_cols(i) + row_values(i), which reads row_ptr twice each.
  struct RowView {
    std::span<const index_t> cols;
    std::span<const double> vals;
    [[nodiscard]] std::size_t size() const noexcept { return cols.size(); }
  };
  [[nodiscard]] RowView row(index_t i) const {
    const auto begin = static_cast<std::size_t>(row_ptr_[i]);
    const auto len = static_cast<std::size_t>(row_ptr_[i + 1]) - begin;
    return {{col_idx_.data() + begin, len}, {values_.data() + begin, len}};
  }

  /// Column indices / values of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<const double> row_values(index_t i) const {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] index_t row_nnz(index_t i) const {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Value at (i, j); 0 if not stored. O(log nnz(i)) via binary search
  /// (columns are sorted within each row).
  [[nodiscard]] double at(index_t i, index_t j) const;

  /// y = A x (serial).
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// y = A x with OpenMP row parallelism.
  void spmv_omp(std::span<const double> x, std::span<double> y) const;

  /// Dot product of row i with x: (A x)_i.
  [[nodiscard]] double row_dot(index_t i, std::span<const double> x) const;

  /// r = b - A x.
  void residual(std::span<const double> x, std::span<const double> b,
                std::span<double> r) const;

  /// Extract the diagonal; missing diagonal entries yield 0.
  [[nodiscard]] Vector diagonal() const;

  /// A^T as a new CSR matrix.
  [[nodiscard]] CsrMatrix transpose() const;

  /// Structural + numerical symmetry check: |a_ij - a_ji| <= tol for all
  /// stored entries (and entries stored on only one side compare to 0).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// True if every column index within every row is strictly increasing.
  [[nodiscard]] bool has_sorted_rows() const;

  /// True if entry (i,i) is stored for all i (square matrices only).
  [[nodiscard]] bool has_full_diagonal() const;

  [[nodiscard]] bool operator==(const CsrMatrix& other) const = default;

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::vector<index_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<double> values_;
};

/// n x n identity in CSR.
[[nodiscard]] CsrMatrix csr_identity(index_t n);

}  // namespace ajac
