#pragma once
// Dense multi-vector (a batch of k right-hand sides / iterates) for the
// batched solve paths.
//
// Layout is row-major n x k with a padded lead dimension: element (i, c)
// lives at data[i * lead + c]. The batched relaxation kernels walk one
// sparse matrix row and broadcast each a_ij against the k contiguous
// values of row j — the irregular CSR gather is paid once and feeds k
// unit-stride FMA lanes, which is the whole point of batching. The default
// lead rounds k up to a full cache line (8 doubles) so that, together with
// the 64-byte-aligned base allocation, every row starts on a cache-line
// boundary; k = 1 keeps lead = 1 (a padded scalar column would octuple the
// footprint for nothing — the single-RHS path is the SharedVector's job).
// An explicit lead >= k is accepted so tests can pin down that no kernel
// ever reads or writes the padding lanes (prop_multi_vector.cpp poisons
// them with NaN and checks results are unchanged).
//
// Padding lanes are zero-initialized at construction and are otherwise
// dead: every kernel in mv:: iterates lanes [0, k) only.

#include <span>
#include <vector>

#include "ajac/sparse/types.hpp"
#include "ajac/util/aligned.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

class CsrMatrix;

class MultiVector {
 public:
  /// Default lead dimension: k rounded up to a whole cache line of doubles
  /// (multiples of 8), except k = 1 which stays unpadded (see header note).
  [[nodiscard]] static constexpr index_t default_lead(index_t k) noexcept {
    return k <= 1 ? k : (k + 7) / 8 * 8;
  }

  MultiVector() = default;
  MultiVector(index_t n, index_t k) : MultiVector(n, k, default_lead(k)) {}
  MultiVector(index_t n, index_t k, index_t lead)
      : n_(n), k_(k), lead_(lead),
        data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(lead),
              0.0) {
    AJAC_CHECK(n >= 0 && k >= 1 && lead >= k);
  }

  [[nodiscard]] index_t num_rows() const noexcept { return n_; }
  [[nodiscard]] index_t num_cols() const noexcept { return k_; }
  [[nodiscard]] index_t lead() const noexcept { return lead_; }

  [[nodiscard]] double& operator()(index_t i, index_t c) {
    AJAC_DBG_CHECK(in_range(i, c));
    return data_[slot(i, c)];
  }
  [[nodiscard]] double operator()(index_t i, index_t c) const {
    AJAC_DBG_CHECK(in_range(i, c));
    return data_[slot(i, c)];
  }

  /// Pointer to row i's k contiguous lanes (plus lead - k padding lanes).
  [[nodiscard]] double* row(index_t i) {
    AJAC_DBG_CHECK(i >= 0 && i < n_);
    return data_.data() + slot(i, 0);
  }
  [[nodiscard]] const double* row(index_t i) const {
    AJAC_DBG_CHECK(i >= 0 && i < n_);
    return data_.data() + slot(i, 0);
  }

  /// Raw storage including padding lanes; tests use this to poison the
  /// padding. Size is num_rows() * lead().
  [[nodiscard]] std::span<double> raw() noexcept { return data_; }
  [[nodiscard]] std::span<const double> raw() const noexcept { return data_; }

  /// Copy column c out to a contiguous Vector.
  [[nodiscard]] Vector column(index_t c) const {
    AJAC_CHECK(c >= 0 && c < k_);
    Vector out(static_cast<std::size_t>(n_));
    for (index_t i = 0; i < n_; ++i) out[static_cast<std::size_t>(i)] = (*this)(i, c);
    return out;
  }

  void set_column(index_t c, std::span<const double> v) {
    AJAC_CHECK(c >= 0 && c < k_);
    AJAC_CHECK(v.size() == static_cast<std::size_t>(n_));
    for (index_t i = 0; i < n_; ++i) (*this)(i, c) = v[static_cast<std::size_t>(i)];
  }

  /// n x k multi-vector whose every column is `v` (broadcast).
  [[nodiscard]] static MultiVector broadcast(std::span<const double> v,
                                             index_t k) {
    MultiVector out(static_cast<index_t>(v.size()), k);
    for (index_t i = 0; i < out.n_; ++i) {
      double* r = out.row(i);
      for (index_t c = 0; c < k; ++c) r[c] = v[static_cast<std::size_t>(i)];
    }
    return out;
  }

 private:
  [[nodiscard]] bool in_range(index_t i, index_t c) const noexcept {
    return i >= 0 && i < n_ && c >= 0 && c < k_;
  }
  [[nodiscard]] std::size_t slot(index_t i, index_t c) const noexcept {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(lead_) +
           static_cast<std::size_t>(c);
  }

  index_t n_ = 0;
  index_t k_ = 1;
  index_t lead_ = 1;
  std::vector<double, CacheAlignedAllocator<double>> data_;
};

namespace mv {

/// y += alpha * x, lane by lane over the k real columns (padding untouched).
void axpy(double alpha, const MultiVector& x, MultiVector& y);

/// Per-column 1-norms: out[c] = sum_i |x(i, c)|, accumulated in ascending
/// row order so each column's sum is bitwise the scalar vec::norm1 of that
/// column. out.size() must be num_cols().
void colwise_norm1(const MultiVector& x, std::span<double> out);

/// Per-column 2-norms (sqrt of the ascending-row sum of squares).
void colwise_norm2(const MultiVector& x, std::span<double> out);

/// Per-column max-abs.
void colwise_norm_inf(const MultiVector& x, std::span<double> out);

/// Per-column max_i |x(i,c) - y(i,c)| — the batch analogue of
/// vec::max_abs_diff, for differential tests.
void colwise_max_abs_diff(const MultiVector& x, const MultiVector& y,
                          std::span<double> out);

/// r = b - A x for every column: one CSR traversal of A feeds all k lanes.
/// Each column's per-row accumulation runs in CSR entry order, so column c
/// of the result is bitwise CsrMatrix::residual of column c.
void residual(const CsrMatrix& a, const MultiVector& x, const MultiVector& b,
              MultiVector& r);

}  // namespace mv

}  // namespace ajac
