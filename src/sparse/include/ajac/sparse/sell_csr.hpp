#pragma once
// SELL-C-sigma interior layout for the bandwidth-engineered kernel path
// (KernelKind::kSellCS in the shared-memory runtime).
//
// A SellCsr repacks each BlockedCsr block's *interior* rows (all columns
// local — the SpMV-dominated bulk of a banded matrix) into sliced-ELL
// chunks of C = 8 rows. Within a sorting window of sigma rows the rows are
// ordered by descending nonzero count, so inside every chunk the rows with
// at least s + 1 entries form a prefix: slice s stores exactly those rows'
// s-th entries, contiguously, with no padding entries and no wasted
// multiply-by-zero flops (the beta = 1 packing of the SELL-C-sigma
// family). The per-entry streams this buys over the blocked CSR walk:
//
//   * column indices shrink from index_t (8 bytes) to std::int32_t local
//     offsets (4 bytes) — block-local column positions always fit, and at
//     bandwidth-bound sizes the index stream is pure traffic;
//   * values and indices are read unit-stride slice-major, a pattern the
//     vectorizer and the hardware prefetcher both handle, with an explicit
//     software prefetch of the next slice's x gathers layered on top (see
//     runtime/sell_kernels.hpp);
//   * row_ptr loads disappear — slice extents come from the sorted row
//     lengths, maintained as a running prefix count in the kernel.
//
// Bitwise contract: slice s of a row is entry s of that row in the source
// CSR order, so accumulating slice-by-slice sums each row's residual in
// exactly the order the blocked and reference kernels use. Given identical
// input values (one thread, or synchronous mode, with fp64 ghosts) the
// SELL interior produces bit-identical residuals; only the *order rows are
// visited in* changes, which step 1 of the Jacobi sweep cannot observe.
// The kernel-equivalence suite pins this down.
//
// Values are copied (reordered), unlike BlockedCsr's zero-copy aliasing:
// the permutation makes aliasing impossible. A SellCsr holds no reference
// to the source matrix or the BlockedCsr it was built from.
//
// Like BlockedCsr, construction first-touches each block's arrays from the
// OpenMP thread that will relax it (schedule(static, 1)).

#include <cstdint>
#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class BlockedCsr;

class SellCsr {
 public:
  /// Rows per chunk. 8 doubles of accumulator fit one cache line / two AVX2
  /// registers; larger C wastes tail slices on the mostly-uniform FD rows.
  static constexpr index_t kChunk = 8;
  /// Default sorting window: large enough to find uniform-length runs,
  /// small enough that the row permutation stays local and the x gathers
  /// keep their banded locality.
  static constexpr index_t kDefaultSigma = 128;

  struct Block {
    index_t lo = 0;          ///< first row owned by this block
    index_t num_chunks = 0;  ///< ceil(rows.size() / kChunk)

    /// Interior rows in pack order: descending nnz within each sigma
    /// window, original order between windows. Global row ids.
    std::vector<index_t> rows;
    /// Entries of packed row p (row_len[p] == source row nnz). Within a
    /// chunk, non-increasing — the prefix property the kernel relies on.
    std::vector<std::int32_t> row_len;
    /// Entry offset of chunk c in cols/vals; chunk c occupies
    /// [chunk_ptr[c], chunk_ptr[c + 1]).
    std::vector<index_t> chunk_ptr;
    /// Local column offsets (global column - lo), slice-major within each
    /// chunk: slice s holds entry s of every chunk row with row_len > s,
    /// in pack order, prefix-packed with no padding.
    std::vector<std::int32_t> cols;
    /// Matrix values, same packing as cols (copied, reordered).
    std::vector<double> vals;

    [[nodiscard]] index_t num_packed_rows() const noexcept {
      return static_cast<index_t>(rows.size());
    }
  };

  SellCsr() = default;

  /// Repack the interior rows of every block of `blocked`. Boundary rows
  /// are untouched — the runtime keeps relaxing them through the blocked
  /// layout's ghost machinery. Requires every block to have fewer than
  /// 2^31 rows (the int32 local-offset encoding; checked).
  explicit SellCsr(const BlockedCsr& blocked,
                   index_t sigma = kDefaultSigma);

  [[nodiscard]] index_t num_blocks() const noexcept {
    return static_cast<index_t>(blocks_.size());
  }
  [[nodiscard]] const Block& block(index_t t) const {
    return blocks_[static_cast<std::size_t>(t)];
  }

 private:
  std::vector<Block> blocks_;
};

}  // namespace ajac
