#pragma once
// Diagonal scalings. The paper assumes A is symmetric and "scaled to have
// unit diagonal values" (Sec. II-A), so that the Jacobi iteration matrix is
// G = I - A and B = C. For SPD A we use the symmetric two-sided scaling
// D^{-1/2} A D^{-1/2}, which preserves symmetry and positive definiteness.

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

/// Returns D^{-1/2} A D^{-1/2}. Requires a strictly positive stored
/// diagonal. If `b` is non-null, it is transformed consistently
/// (b <- D^{-1/2} b) so that the scaled system has solution D^{1/2} x.
[[nodiscard]] CsrMatrix scale_to_unit_diagonal(const CsrMatrix& a,
                                               Vector* b = nullptr);

/// Returns D^{-1} A (row scaling). Requires a nonzero stored diagonal.
/// If `b` is non-null, b <- D^{-1} b (solution unchanged).
[[nodiscard]] CsrMatrix scale_rows_by_diagonal(const CsrMatrix& a,
                                               Vector* b = nullptr);

/// The Jacobi iteration matrix G = I - D^{-1} A as an explicit CSR matrix
/// (diagonal entries of the result are 1 - a_ii/a_ii = 0 and are dropped).
[[nodiscard]] CsrMatrix jacobi_iteration_matrix(const CsrMatrix& a);

/// Entrywise absolute value |A|.
[[nodiscard]] CsrMatrix entrywise_abs(const CsrMatrix& a);

}  // namespace ajac
