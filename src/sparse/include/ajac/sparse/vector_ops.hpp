#pragma once
// Dense vector kernels: BLAS-1 style operations and the three norms the
// paper reasons about (L1 for residual propagation, Linf for error
// propagation, L2 for reporting).

#include <span>

#include "ajac/sparse/types.hpp"

namespace ajac {
class Rng;
}

namespace ajac::vec {

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = x + beta * y
void xpby(std::span<const double> x, double beta, std::span<double> y);

/// z = x - y
void sub(std::span<const double> x, std::span<const double> y,
         std::span<double> z);

[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

[[nodiscard]] double norm1(std::span<const double> x);
[[nodiscard]] double norm2(std::span<const double> x);
[[nodiscard]] double norm_inf(std::span<const double> x);

/// Fill with uniform random values in [lo, hi) — the paper's random x0 and
/// b are uniform in [-1, 1].
void fill_uniform(std::span<double> x, Rng& rng, double lo = -1.0,
                  double hi = 1.0);

void fill(std::span<double> x, double value);

/// max_i |x_i - y_i|
[[nodiscard]] double max_abs_diff(std::span<const double> x,
                                  std::span<const double> y);

}  // namespace ajac::vec
