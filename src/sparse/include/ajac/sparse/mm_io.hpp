#pragma once
// Matrix Market (coordinate, real) reader/writer so users can load the
// actual SuiteSparse files (Table I) when they have them, and so tests can
// round-trip generated matrices.

#include <iosfwd>
#include <string>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

/// Read a Matrix Market file. Supports `matrix coordinate real|integer
/// general|symmetric` and `pattern` (pattern entries get value 1.0).
/// Symmetric files are expanded to full storage. Throws std::runtime_error
/// on malformed input.
[[nodiscard]] CsrMatrix read_matrix_market(const std::string& path);
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);

/// Write in `matrix coordinate real general` format (1-based indices).
void write_matrix_market(const CsrMatrix& a, const std::string& path);
void write_matrix_market(const CsrMatrix& a, std::ostream& out);

/// Read a dense vector from `matrix array real general` format (an n x 1
/// array), the SuiteSparse convention for right-hand sides.
[[nodiscard]] Vector read_vector_market(const std::string& path);
[[nodiscard]] Vector read_vector_market(std::istream& in);

/// Write a dense vector in `matrix array real general` format.
void write_vector_market(const Vector& x, const std::string& path);
void write_vector_market(const Vector& x, std::ostream& out);

}  // namespace ajac
