#pragma once
// Coordinate-format builder for assembling sparse matrices.
//
// Generators and the FE assembly accumulate (i, j, v) triplets here, then
// convert to CSR once. Duplicate entries are summed during conversion, as
// finite-element assembly requires.

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

class CooBuilder {
 public:
  CooBuilder(index_t num_rows, index_t num_cols);

  /// Append one entry; duplicates are allowed and are summed by to_csr().
  void add(index_t row, index_t col, double value);

  /// Append value to (i,j) and (j,i); for i == j adds only once.
  void add_symmetric(index_t row, index_t col, double value);

  [[nodiscard]] index_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] index_t num_cols() const noexcept { return num_cols_; }
  [[nodiscard]] std::size_t num_entries() const noexcept {
    return rows_.size();
  }

  /// Convert to CSR with sorted column indices per row and duplicates
  /// summed. Entries whose magnitude is exactly zero after summation are
  /// kept (callers may want explicit zeros); use drop_zeros to remove them.
  [[nodiscard]] CsrMatrix to_csr(bool drop_zeros = false) const;

 private:
  index_t num_rows_;
  index_t num_cols_;
  std::vector<index_t> rows_;
  std::vector<index_t> cols_;
  std::vector<double> values_;
};

}  // namespace ajac
