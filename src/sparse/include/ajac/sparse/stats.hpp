#pragma once
// Structural statistics of sparse matrices: what a practitioner checks
// before choosing a partitioning/ordering, and what the bench harness
// prints when describing the generated Table-I analogues.

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac {

class CsrMatrix;

struct MatrixStats {
  index_t num_rows = 0;
  index_t num_nonzeros = 0;
  index_t bandwidth = 0;       ///< max |i - j| over stored entries
  index_t profile = 0;         ///< sum_i (i - min stored column of row i)
  index_t min_row_nnz = 0;
  index_t max_row_nnz = 0;
  double avg_row_nnz = 0.0;
  double diag_dominance_min = 0.0;  ///< min_i |a_ii| / sum_{j!=i} |a_ij|
  double positive_offdiag_fraction = 0.0;  ///< entries with a_ij > 0, i != j
  bool structurally_symmetric = false;
};

[[nodiscard]] MatrixStats compute_stats(const CsrMatrix& a);

/// Histogram of row nonzero counts; bucket k counts rows with k stored
/// entries (capped at `max_degree`, the final bucket collects the rest).
[[nodiscard]] std::vector<index_t> row_degree_histogram(const CsrMatrix& a,
                                                        index_t max_degree);

}  // namespace ajac
