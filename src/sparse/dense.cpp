#include "ajac/sparse/dense.hpp"

#include <cmath>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

DenseMatrix::DenseMatrix(index_t rows, index_t cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            fill) {
  AJAC_CHECK(rows >= 0 && cols >= 0);
}

DenseMatrix DenseMatrix::identity(index_t n) {
  DenseMatrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix m(a.num_rows(), a.num_cols());
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      m(i, cols[k]) += vals[k];
    }
  }
  return m;
}

void DenseMatrix::gemv(std::span<const double> x, std::span<double> y) const {
  AJAC_DCHECK(x.size() == static_cast<std::size_t>(cols_));
  AJAC_DCHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* r = data_.data() + i * cols_;
    for (index_t j = 0; j < cols_; ++j) acc += r[j] * x[j];
    y[i] = acc;
  }
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  AJAC_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (index_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double DenseMatrix::norm1() const {
  double best = 0.0;
  for (index_t j = 0; j < cols_; ++j) {
    double acc = 0.0;
    for (index_t i = 0; i < rows_; ++i) acc += std::abs((*this)(i, j));
    best = std::max(best, acc);
  }
  return best;
}

double DenseMatrix::norm_inf() const {
  double best = 0.0;
  for (index_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (index_t j = 0; j < cols_; ++j) acc += std::abs((*this)(i, j));
    best = std::max(best, acc);
  }
  return best;
}

double DenseMatrix::norm_fro() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t j = i + 1; j < cols_; ++j) {
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  AJAC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double acc = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    acc = std::max(acc, std::abs(data_[k] - other.data_[k]));
  }
  return acc;
}

}  // namespace ajac
