#include "ajac/sparse/sell_csr.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ajac/sparse/blocked_csr.hpp"
#include "ajac/util/annotate.hpp"

namespace ajac {

namespace {

/// Repack one block's interior rows. Runs on the thread that will later
/// relax the block (first touch).
SellCsr::Block build_block(const BlockedCsr::Block& src, index_t sigma) {
  SellCsr::Block blk;
  blk.lo = src.lo;
  if (src.num_rows() >= (index_t{1} << 31)) {
    throw std::logic_error(
        "SellCsr: block too large for int32 local column offsets");
  }

  const auto num_interior = static_cast<index_t>(src.interior_rows.size());
  blk.rows.resize(static_cast<std::size_t>(num_interior));
  std::copy(src.interior_rows.begin(), src.interior_rows.end(),
            blk.rows.begin());

  // Sort by descending nnz inside each sigma window (stable: equal-length
  // rows keep their banded order, preserving x-gather locality). Sorting
  // interior_rows positions, not raw row ids, keeps the comparator cheap.
  const auto row_nnz = [&src](index_t i) {
    const auto li = static_cast<std::size_t>(i - src.lo);
    return src.row_ptr[li + 1] - src.row_ptr[li];
  };
  for (index_t w = 0; w < num_interior; w += sigma) {
    const index_t end = std::min(w + sigma, num_interior);
    std::stable_sort(blk.rows.begin() + w, blk.rows.begin() + end,
                     [&row_nnz](index_t i1, index_t i2) {
                       return row_nnz(i1) > row_nnz(i2);
                     });
  }

  blk.row_len.resize(static_cast<std::size_t>(num_interior));
  std::size_t total = 0;
  for (std::size_t p = 0; p < blk.rows.size(); ++p) {
    blk.row_len[p] = static_cast<std::int32_t>(row_nnz(blk.rows[p]));
    total += static_cast<std::size_t>(blk.row_len[p]);
  }

  blk.num_chunks = (num_interior + SellCsr::kChunk - 1) / SellCsr::kChunk;
  blk.chunk_ptr.resize(static_cast<std::size_t>(blk.num_chunks) + 1, 0);
  blk.cols.resize(total);
  blk.vals.resize(total);

  // Slice-major prefix packing: within chunk c, slice s holds entry s of
  // every chunk row whose length exceeds s. Row lengths are non-increasing
  // inside the chunk (sorted above — a window never straddles a chunk
  // boundary because sigma is a multiple of kChunk; checked by the caller),
  // so those rows are a prefix and each slice is contiguous in pack order.
  std::size_t out = 0;
  for (index_t c = 0; c < blk.num_chunks; ++c) {
    blk.chunk_ptr[static_cast<std::size_t>(c)] = static_cast<index_t>(out);
    const auto first = static_cast<std::size_t>(c * SellCsr::kChunk);
    const auto rows_in_chunk = static_cast<std::size_t>(
        std::min<index_t>(SellCsr::kChunk, num_interior - c * SellCsr::kChunk));
    const std::int32_t width = blk.row_len[first];  // longest row leads
    for (std::int32_t s = 0; s < width; ++s) {
      for (std::size_t p = first; p < first + rows_in_chunk; ++p) {
        if (blk.row_len[p] <= s) break;  // prefix property: rest are shorter
        const index_t i = blk.rows[p];
        const auto li = static_cast<std::size_t>(i - src.lo);
        const auto entry =
            static_cast<std::size_t>(src.row_ptr[li]) +
            static_cast<std::size_t>(s);
        // Interior rows have no ghost entries: every code is a local offset.
        blk.cols[out] = static_cast<std::int32_t>(src.col_code[entry]);
        blk.vals[out] = src.values[entry];
        ++out;
      }
    }
  }
  blk.chunk_ptr[static_cast<std::size_t>(blk.num_chunks)] =
      static_cast<index_t>(out);
  return blk;
}

}  // namespace

SellCsr::SellCsr(const BlockedCsr& blocked, index_t sigma) {
  if (sigma < kChunk) sigma = kChunk;
  sigma -= sigma % kChunk;  // windows must align with chunk boundaries
  const index_t num_blocks = blocked.num_blocks();
  blocks_.resize(static_cast<std::size_t>(num_blocks));

  // Same static schedule as solve_shared's parallel region, so first touch
  // places each block's arrays near its relaxing thread; same explicit
  // TSan fork/join edges as BlockedCsr's fill.
  AJAC_TSAN_RELEASE(&blocks_);
#pragma omp parallel for schedule(static, 1)
  for (index_t t = 0; t < num_blocks; ++t) {
    AJAC_TSAN_ACQUIRE(&blocks_);
    blocks_[static_cast<std::size_t>(t)] = build_block(blocked.block(t), sigma);
    AJAC_TSAN_RELEASE(&blocks_);
  }
  AJAC_TSAN_ACQUIRE(&blocks_);
}

}  // namespace ajac
