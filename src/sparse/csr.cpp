#include "ajac/sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

CsrMatrix::CsrMatrix(index_t num_rows, index_t num_cols,
                     std::vector<index_t> row_ptr, std::vector<index_t> col_idx,
                     std::vector<double> values)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  AJAC_CHECK(num_rows_ >= 0 && num_cols_ >= 0);
  AJAC_CHECK_MSG(row_ptr_.size() == static_cast<std::size_t>(num_rows_) + 1,
                 "row_ptr size " << row_ptr_.size() << " != num_rows+1");
  AJAC_CHECK(col_idx_.size() == values_.size());
  AJAC_CHECK(row_ptr_.front() == 0);
  AJAC_CHECK(row_ptr_.back() == static_cast<index_t>(col_idx_.size()));
  for (index_t i = 0; i < num_rows_; ++i) {
    AJAC_CHECK_MSG(row_ptr_[i] <= row_ptr_[i + 1],
                   "row_ptr not monotone at row " << i);
  }
  for (index_t c : col_idx_) {
    AJAC_CHECK_MSG(c >= 0 && c < num_cols_, "column index " << c
                                                << " out of range [0,"
                                                << num_cols_ << ")");
  }
}

double CsrMatrix::at(index_t i, index_t j) const {
  AJAC_DCHECK(i >= 0 && i < num_rows_);
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + (it - cols.begin())];
}

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  AJAC_DCHECK(x.size() == static_cast<std::size_t>(num_cols_));
  AJAC_DCHECK(y.size() == static_cast<std::size_t>(num_rows_));
  for (index_t i = 0; i < num_rows_; ++i) {
    double acc = 0.0;
    for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      acc += values_[p] * x[col_idx_[p]];
    }
    y[i] = acc;
  }
}

void CsrMatrix::spmv_omp(std::span<const double> x, std::span<double> y) const {
  AJAC_DCHECK(x.size() == static_cast<std::size_t>(num_cols_));
  AJAC_DCHECK(y.size() == static_cast<std::size_t>(num_rows_));
  const double* xv = x.data();
  double* yv = y.data();
  // The fork/join edges live in libgomp futexes TSan cannot see: release
  // the caller's writes of x/y to the workers on entry, and publish each
  // worker's slice of y back to the caller on exit (no-ops outside TSan).
  AJAC_TSAN_RELEASE(this);
#pragma omp parallel
  {
    AJAC_TSAN_ACQUIRE(this);
#pragma omp for schedule(static)
    for (index_t i = 0; i < num_rows_; ++i) {
      double acc = 0.0;
      for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        acc += values_[p] * xv[col_idx_[p]];
      }
      yv[i] = acc;
    }
    AJAC_TSAN_RELEASE(this);
  }
  AJAC_TSAN_ACQUIRE(this);
}

double CsrMatrix::row_dot(index_t i, std::span<const double> x) const {
  AJAC_DCHECK(i >= 0 && i < num_rows_);
  double acc = 0.0;
  for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
    acc += values_[p] * x[col_idx_[p]];
  }
  return acc;
}

void CsrMatrix::residual(std::span<const double> x, std::span<const double> b,
                         std::span<double> r) const {
  AJAC_DCHECK(b.size() == static_cast<std::size_t>(num_rows_));
  AJAC_DCHECK(r.size() == static_cast<std::size_t>(num_rows_));
  // Accumulate as ((b - a_1 x_1) - a_2 x_2) - ...: the same association
  // the parallel runtimes use, so synchronous runs agree bitwise with the
  // sequential reference across all backends.
  for (index_t i = 0; i < num_rows_; ++i) {
    double acc = b[i];
    for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      acc -= values_[p] * x[col_idx_[p]];
    }
    r[i] = acc;
  }
}

Vector CsrMatrix::diagonal() const {
  Vector d(static_cast<std::size_t>(std::min(num_rows_, num_cols_)), 0.0);
  for (index_t i = 0; i < static_cast<index_t>(d.size()); ++i) {
    d[i] = at(i, i);
  }
  return d;
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<index_t> t_row_ptr(static_cast<std::size_t>(num_cols_) + 1, 0);
  for (index_t c : col_idx_) ++t_row_ptr[c + 1];
  for (index_t j = 0; j < num_cols_; ++j) t_row_ptr[j + 1] += t_row_ptr[j];

  std::vector<index_t> t_col_idx(col_idx_.size());
  std::vector<double> t_values(values_.size());
  std::vector<index_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  for (index_t i = 0; i < num_rows_; ++i) {
    for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const index_t dst = cursor[col_idx_[p]]++;
      t_col_idx[dst] = i;
      t_values[dst] = values_[p];
    }
  }
  // Rows of the transpose are filled in increasing source-row order, so
  // columns are already sorted.
  return CsrMatrix(num_cols_, num_rows_, std::move(t_row_ptr),
                   std::move(t_col_idx), std::move(t_values));
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (num_rows_ != num_cols_) return false;
  for (index_t i = 0; i < num_rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (std::abs(vals[k] - at(cols[k], i)) > tol) return false;
    }
  }
  return true;
}

bool CsrMatrix::has_sorted_rows() const {
  for (index_t i = 0; i < num_rows_; ++i) {
    const auto cols = row_cols(i);
    for (std::size_t k = 1; k < cols.size(); ++k) {
      if (cols[k - 1] >= cols[k]) return false;
    }
  }
  return true;
}

bool CsrMatrix::has_full_diagonal() const {
  if (num_rows_ != num_cols_) return false;
  for (index_t i = 0; i < num_rows_; ++i) {
    const auto cols = row_cols(i);
    if (!std::binary_search(cols.begin(), cols.end(), i)) return false;
  }
  return true;
}

CsrMatrix csr_identity(index_t n) {
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(n));
  std::vector<double> values(static_cast<std::size_t>(n), 1.0);
  for (index_t i = 0; i <= n; ++i) row_ptr[i] = i;
  for (index_t i = 0; i < n; ++i) col_idx[i] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace ajac
