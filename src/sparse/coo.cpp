#include "ajac/sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

CooBuilder::CooBuilder(index_t num_rows, index_t num_cols)
    : num_rows_(num_rows), num_cols_(num_cols) {
  AJAC_CHECK(num_rows >= 0 && num_cols >= 0);
}

void CooBuilder::add(index_t row, index_t col, double value) {
  AJAC_DCHECK(row >= 0 && row < num_rows_);
  AJAC_DCHECK(col >= 0 && col < num_cols_);
  rows_.push_back(row);
  cols_.push_back(col);
  values_.push_back(value);
}

void CooBuilder::add_symmetric(index_t row, index_t col, double value) {
  add(row, col, value);
  if (row != col) add(col, row, value);
}

CsrMatrix CooBuilder::to_csr(bool drop_zeros) const {
  const std::size_t nnz = rows_.size();
  // Counting sort by (row, col): first bucket entries by row, then sort
  // each row's slice by column and merge duplicates.
  std::vector<index_t> row_count(static_cast<std::size_t>(num_rows_) + 1, 0);
  for (index_t r : rows_) ++row_count[r + 1];
  for (index_t i = 0; i < num_rows_; ++i) row_count[i + 1] += row_count[i];

  std::vector<std::size_t> order(nnz);
  {
    std::vector<index_t> cursor(row_count.begin(), row_count.end() - 1);
    for (std::size_t k = 0; k < nnz; ++k) {
      order[cursor[rows_[k]]++] = k;
    }
  }

  std::vector<index_t> row_ptr(static_cast<std::size_t>(num_rows_) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(nnz);
  values.reserve(nnz);

  for (index_t i = 0; i < num_rows_; ++i) {
    const index_t begin = row_count[i];
    const index_t end = row_count[i + 1];
    // Sort this row's entry indices by column. Stability matters:
    // duplicates must be summed in insertion order, so that the result is
    // deterministic and add_symmetric yields bitwise-symmetric matrices
    // ((i,j) and (j,i) see their duplicates in the same order).
    std::stable_sort(
        order.begin() + begin, order.begin() + end,
        [&](std::size_t a, std::size_t b) { return cols_[a] < cols_[b]; });
    index_t p = begin;
    while (p < end) {
      const index_t col = cols_[order[p]];
      double sum = 0.0;
      while (p < end && cols_[order[p]] == col) {
        sum += values_[order[p]];
        ++p;
      }
      if (drop_zeros && sum == 0.0) continue;
      col_idx.push_back(col);
      values.push_back(sum);
    }
    row_ptr[i + 1] = static_cast<index_t>(col_idx.size());
  }

  return CsrMatrix(num_rows_, num_cols_, std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

}  // namespace ajac
