#include "ajac/sparse/stats.hpp"

#include <algorithm>
#include <cmath>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

MatrixStats compute_stats(const CsrMatrix& a) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  MatrixStats s;
  s.num_rows = a.num_rows();
  s.num_nonzeros = a.num_nonzeros();
  s.min_row_nnz = a.num_rows() > 0 ? a.num_nonzeros() : 0;
  s.diag_dominance_min = 1e300;
  index_t positive_offdiag = 0;
  index_t offdiag = 0;

  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    s.min_row_nnz = std::min<index_t>(s.min_row_nnz, cols.size());
    s.max_row_nnz = std::max<index_t>(s.max_row_nnz, cols.size());
    double diag = 0.0;
    double off_sum = 0.0;
    index_t min_col = i;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      s.bandwidth = std::max(s.bandwidth, std::abs(i - j));
      min_col = std::min(min_col, j);
      if (j == i) {
        diag = std::abs(vals[k]);
      } else {
        ++offdiag;
        off_sum += std::abs(vals[k]);
        if (vals[k] > 0.0) ++positive_offdiag;
      }
    }
    s.profile += i - min_col;
    if (off_sum > 0.0) {
      s.diag_dominance_min = std::min(s.diag_dominance_min, diag / off_sum);
    }
  }
  if (s.diag_dominance_min == 1e300) s.diag_dominance_min = 0.0;
  s.avg_row_nnz = a.num_rows() > 0
                      ? static_cast<double>(a.num_nonzeros()) /
                            static_cast<double>(a.num_rows())
                      : 0.0;
  s.positive_offdiag_fraction =
      offdiag > 0 ? static_cast<double>(positive_offdiag) /
                        static_cast<double>(offdiag)
                  : 0.0;
  // Structural symmetry: pattern of A equals pattern of A^T.
  s.structurally_symmetric = true;
  for (index_t i = 0; i < a.num_rows() && s.structurally_symmetric; ++i) {
    for (index_t j : a.row_cols(i)) {
      const auto cols_j = a.row_cols(j);
      if (!std::binary_search(cols_j.begin(), cols_j.end(), i)) {
        s.structurally_symmetric = false;
        break;
      }
    }
  }
  return s;
}

std::vector<index_t> row_degree_histogram(const CsrMatrix& a,
                                          index_t max_degree) {
  AJAC_CHECK(max_degree >= 0);
  std::vector<index_t> hist(static_cast<std::size_t>(max_degree) + 1, 0);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    ++hist[std::min<index_t>(a.row_nnz(i), max_degree)];
  }
  return hist;
}

}  // namespace ajac
