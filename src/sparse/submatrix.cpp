#include "ajac/sparse/submatrix.hpp"

#include <algorithm>
#include <queue>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

CsrMatrix principal_submatrix(const CsrMatrix& a,
                              const std::vector<index_t>& keep) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  const index_t m = static_cast<index_t>(keep.size());
  std::vector<index_t> old_to_new(static_cast<std::size_t>(n), index_t{-1});
  for (index_t k = 0; k < m; ++k) {
    AJAC_CHECK(keep[k] >= 0 && keep[k] < n);
    if (k > 0) AJAC_CHECK_MSG(keep[k - 1] < keep[k], "keep not increasing");
    old_to_new[keep[k]] = k;
  }
  std::vector<index_t> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<double> values;
  for (index_t k = 0; k < m; ++k) {
    const auto cols = a.row_cols(keep[k]);
    const auto vals = a.row_values(keep[k]);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const index_t nc = old_to_new[cols[p]];
      if (nc >= 0) {
        col_idx.push_back(nc);
        values.push_back(vals[p]);
      }
    }
    row_ptr[k + 1] = static_cast<index_t>(col_idx.size());
  }
  // Columns within a row stay sorted because keep is increasing and
  // old_to_new is monotone on kept indices.
  return CsrMatrix(m, m, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

std::vector<index_t> connected_components(const CsrMatrix& a,
                                          index_t* num_components) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  std::vector<index_t> comp(static_cast<std::size_t>(n), index_t{-1});
  index_t next = 0;
  std::queue<index_t> frontier;
  for (index_t s = 0; s < n; ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    frontier.push(s);
    while (!frontier.empty()) {
      const index_t u = frontier.front();
      frontier.pop();
      for (index_t v : a.row_cols(u)) {
        if (comp[v] == -1) {
          comp[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

std::vector<index_t> complement_rows(index_t n,
                                     const std::vector<index_t>& removed) {
  std::vector<char> is_removed(static_cast<std::size_t>(n), 0);
  for (index_t r : removed) {
    AJAC_CHECK(r >= 0 && r < n);
    is_removed[r] = 1;
  }
  std::vector<index_t> keep;
  keep.reserve(static_cast<std::size_t>(n) - removed.size());
  for (index_t i = 0; i < n; ++i) {
    if (!is_removed[i]) keep.push_back(i);
  }
  return keep;
}

}  // namespace ajac
