#include "ajac/sparse/scaling.hpp"

#include <cmath>
#include <vector>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

CsrMatrix scale_to_unit_diagonal(const CsrMatrix& a, Vector* b) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  Vector d = a.diagonal();
  std::vector<double> inv_sqrt(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(d[i] > 0.0, "diagonal entry " << i << " = " << d[i]
                                                 << " is not positive");
    inv_sqrt[i] = 1.0 / std::sqrt(d[i]);
  }
  std::vector<index_t> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<index_t> col_idx(a.col_idx().begin(), a.col_idx().end());
  std::vector<double> values(a.values().begin(), a.values().end());
  for (index_t i = 0; i < n; ++i) {
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      values[p] *= inv_sqrt[i] * inv_sqrt[col_idx[p]];
    }
  }
  if (b != nullptr) {
    AJAC_CHECK(b->size() == static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) (*b)[i] *= inv_sqrt[i];
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix scale_rows_by_diagonal(const CsrMatrix& a, Vector* b) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  Vector d = a.diagonal();
  std::vector<index_t> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<index_t> col_idx(a.col_idx().begin(), a.col_idx().end());
  std::vector<double> values(a.values().begin(), a.values().end());
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(d[i] != 0.0, "zero diagonal entry at row " << i);
    const double inv = 1.0 / d[i];
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) values[p] *= inv;
  }
  if (b != nullptr) {
    AJAC_CHECK(b->size() == static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) (*b)[i] /= d[i];
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix jacobi_iteration_matrix(const CsrMatrix& a) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  Vector d = a.diagonal();
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<std::size_t>(a.num_nonzeros()));
  values.reserve(static_cast<std::size_t>(a.num_nonzeros()));
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(d[i] != 0.0, "zero diagonal entry at row " << i);
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) continue;  // G_ii = 0, drop it
      col_idx.push_back(cols[k]);
      values.push_back(-vals[k] / d[i]);
    }
    row_ptr[i + 1] = static_cast<index_t>(col_idx.size());
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix entrywise_abs(const CsrMatrix& a) {
  std::vector<index_t> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<index_t> col_idx(a.col_idx().begin(), a.col_idx().end());
  std::vector<double> values(a.values().begin(), a.values().end());
  for (double& v : values) v = std::abs(v);
  return CsrMatrix(a.num_rows(), a.num_cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

}  // namespace ajac
