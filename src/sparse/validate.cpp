#include "ajac/sparse/validate.hpp"

#include <cmath>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac::validate {

void csr_structure(const CsrMatrix& a, const CsrRequirements& req) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  const index_t n = a.num_rows();

  AJAC_CHECK_MSG(row_ptr.size() == static_cast<std::size_t>(n) + 1,
                 "row_ptr size " << row_ptr.size() << " != num_rows + 1");
  AJAC_CHECK_MSG(row_ptr.front() == 0, "row_ptr must start at 0");
  AJAC_CHECK_MSG(row_ptr.back() == static_cast<index_t>(col_idx.size()),
                 "row_ptr end " << row_ptr.back() << " != nnz "
                                << col_idx.size());
  AJAC_CHECK(col_idx.size() == values.size());
  if (req.require_square) {
    AJAC_CHECK_MSG(a.num_rows() == a.num_cols(),
                   "matrix is " << a.num_rows() << "x" << a.num_cols()
                                << ", expected square");
  }

  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(row_ptr[i] <= row_ptr[i + 1],
                   "row_ptr not monotone at row " << i);
    bool has_diag = false;
    index_t prev_col = -1;
    for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const index_t j = col_idx[p];
      AJAC_CHECK_MSG(j >= 0 && j < a.num_cols(),
                     "row " << i << ": column index " << j
                            << " out of range [0," << a.num_cols() << ")");
      if (req.require_sorted_rows) {
        AJAC_CHECK_MSG(j > prev_col, "row " << i
                                            << ": columns not strictly "
                                               "increasing at entry "
                                            << p << " (col " << j << ")");
      }
      prev_col = j;
      if (j == i) has_diag = true;
      if (req.require_finite) {
        AJAC_CHECK_MSG(std::isfinite(values[p]),
                       "row " << i << ", col " << j << ": non-finite value "
                              << values[p]);
      }
    }
    if (req.require_diagonal && i < a.num_cols()) {
      AJAC_CHECK_MSG(has_diag, "row " << i << ": diagonal entry missing");
    }
  }
}

void finite(std::span<const double> v, const char* what) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    AJAC_CHECK_MSG(std::isfinite(v[i]), what << "[" << i
                                             << "] is non-finite (" << v[i]
                                             << ")");
  }
}

}  // namespace ajac::validate
