#include "ajac/sparse/permute.hpp"

#include <algorithm>
#include <numeric>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac {

Permutation::Permutation(std::vector<index_t> new_to_old)
    : new_to_old_(std::move(new_to_old)),
      old_to_new_(new_to_old_.size(), index_t{-1}) {
  const index_t n = static_cast<index_t>(new_to_old_.size());
  for (index_t i = 0; i < n; ++i) {
    const index_t o = new_to_old_[i];
    AJAC_CHECK_MSG(o >= 0 && o < n, "permutation value out of range");
    AJAC_CHECK_MSG(old_to_new_[o] == -1, "permutation is not a bijection");
    old_to_new_[o] = i;
  }
}

Permutation Permutation::identity(index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  return Permutation(std::move(p));
}

Permutation Permutation::inverse() const {
  return Permutation(old_to_new_);
}

CsrMatrix Permutation::apply_symmetric(const CsrMatrix& a) const {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  AJAC_CHECK(a.num_rows() == size());
  const index_t n = size();
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    row_ptr[i + 1] = row_ptr[i] + a.row_nnz(new_to_old_[i]);
  }
  std::vector<index_t> col_idx(static_cast<std::size_t>(a.num_nonzeros()));
  std::vector<double> values(static_cast<std::size_t>(a.num_nonzeros()));
  for (index_t i = 0; i < n; ++i) {
    const index_t old_row = new_to_old_[i];
    const auto cols = a.row_cols(old_row);
    const auto vals = a.row_values(old_row);
    const index_t base = row_ptr[i];
    // Map columns through the permutation, then sort the row.
    std::vector<std::pair<index_t, double>> entries(cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      entries[k] = {old_to_new_[cols[k]], vals[k]};
    }
    std::sort(entries.begin(), entries.end());
    for (std::size_t k = 0; k < entries.size(); ++k) {
      col_idx[base + static_cast<index_t>(k)] = entries[k].first;
      values[base + static_cast<index_t>(k)] = entries[k].second;
    }
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

Vector Permutation::apply(const Vector& x) const {
  AJAC_CHECK(x.size() == new_to_old_.size());
  Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[new_to_old_[i]];
  return y;
}

Vector Permutation::apply_inverse(const Vector& y) const {
  AJAC_CHECK(y.size() == new_to_old_.size());
  Vector x(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) x[new_to_old_[i]] = y[i];
  return x;
}

}  // namespace ajac
