#include "ajac/sparse/multi_vector.hpp"

#include <algorithm>
#include <cmath>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac::mv {

void axpy(double alpha, const MultiVector& x, MultiVector& y) {
  AJAC_DCHECK(x.num_rows() == y.num_rows() && x.num_cols() == y.num_cols());
  const index_t n = x.num_rows();
  const index_t k = x.num_cols();
  for (index_t i = 0; i < n; ++i) {
    const double* xr = x.row(i);
    double* yr = y.row(i);
#pragma omp simd
    for (index_t c = 0; c < k; ++c) yr[c] += alpha * xr[c];
  }
}

void colwise_norm1(const MultiVector& x, std::span<double> out) {
  AJAC_DCHECK(out.size() == static_cast<std::size_t>(x.num_cols()));
  const index_t n = x.num_rows();
  const index_t k = x.num_cols();
  std::fill(out.begin(), out.end(), 0.0);
  for (index_t i = 0; i < n; ++i) {
    const double* xr = x.row(i);
#pragma omp simd
    for (index_t c = 0; c < k; ++c) {
      out[static_cast<std::size_t>(c)] += std::abs(xr[c]);
    }
  }
}

void colwise_norm2(const MultiVector& x, std::span<double> out) {
  AJAC_DCHECK(out.size() == static_cast<std::size_t>(x.num_cols()));
  const index_t n = x.num_rows();
  const index_t k = x.num_cols();
  std::fill(out.begin(), out.end(), 0.0);
  for (index_t i = 0; i < n; ++i) {
    const double* xr = x.row(i);
#pragma omp simd
    for (index_t c = 0; c < k; ++c) {
      out[static_cast<std::size_t>(c)] += xr[c] * xr[c];
    }
  }
  for (double& v : out) v = std::sqrt(v);
}

void colwise_norm_inf(const MultiVector& x, std::span<double> out) {
  AJAC_DCHECK(out.size() == static_cast<std::size_t>(x.num_cols()));
  const index_t n = x.num_rows();
  const index_t k = x.num_cols();
  std::fill(out.begin(), out.end(), 0.0);
  for (index_t i = 0; i < n; ++i) {
    const double* xr = x.row(i);
    for (index_t c = 0; c < k; ++c) {
      out[static_cast<std::size_t>(c)] =
          std::max(out[static_cast<std::size_t>(c)], std::abs(xr[c]));
    }
  }
}

void colwise_max_abs_diff(const MultiVector& x, const MultiVector& y,
                          std::span<double> out) {
  AJAC_DCHECK(x.num_rows() == y.num_rows() && x.num_cols() == y.num_cols());
  AJAC_DCHECK(out.size() == static_cast<std::size_t>(x.num_cols()));
  const index_t n = x.num_rows();
  const index_t k = x.num_cols();
  std::fill(out.begin(), out.end(), 0.0);
  for (index_t i = 0; i < n; ++i) {
    const double* xr = x.row(i);
    const double* yr = y.row(i);
    for (index_t c = 0; c < k; ++c) {
      out[static_cast<std::size_t>(c)] =
          std::max(out[static_cast<std::size_t>(c)], std::abs(xr[c] - yr[c]));
    }
  }
}

void residual(const CsrMatrix& a, const MultiVector& x, const MultiVector& b,
              MultiVector& r) {
  AJAC_DCHECK(x.num_rows() == a.num_cols());
  AJAC_DCHECK(b.num_rows() == a.num_rows() && r.num_rows() == a.num_rows());
  AJAC_DCHECK(x.num_cols() == b.num_cols() && x.num_cols() == r.num_cols());
  const index_t n = a.num_rows();
  const index_t k = x.num_cols();
  // Per column this is ((b - a_1 x_1) - a_2 x_2) - ... in CSR entry order —
  // the same association as the scalar CsrMatrix::residual, so each column
  // of r is bitwise the single-RHS residual of that column.
  for (index_t i = 0; i < n; ++i) {
    const auto rv = a.row(i);
    double* rr = r.row(i);
    const double* br = b.row(i);
#pragma omp simd
    for (index_t c = 0; c < k; ++c) rr[c] = br[c];
    for (std::size_t p = 0; p < rv.size(); ++p) {
      const double aij = rv.vals[p];
      const double* xr = x.row(rv.cols[p]);
#pragma omp simd
      for (index_t c = 0; c < k; ++c) rr[c] -= aij * xr[c];
    }
  }
}

}  // namespace ajac::mv
