#include "ajac/sparse/vector_ops.hpp"

#include <cmath>

#include "ajac/util/check.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::vec {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  AJAC_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  AJAC_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + beta * y[i];
}

void sub(std::span<const double> x, std::span<const double> y,
         std::span<double> z) {
  AJAC_DCHECK(x.size() == y.size() && y.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
  AJAC_DCHECK(x.size() == y.size());
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm_inf(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc = std::max(acc, std::abs(v));
  return acc;
}

void fill_uniform(std::span<double> x, Rng& rng, double lo, double hi) {
  for (double& v : x) v = rng.uniform(lo, hi);
}

void fill(std::span<double> x, double value) {
  for (double& v : x) v = value;
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  AJAC_DCHECK(x.size() == y.size());
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc = std::max(acc, std::abs(x[i] - y[i]));
  return acc;
}

}  // namespace ajac::vec
