#include "ajac/mesh/mesh_jacobi.hpp"

#include <sched.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <deque>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "ajac/mesh/processor.hpp"
#include "ajac/mesh/spsc_queue.hpp"
#include "ajac/mesh/topology.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/runtime/shared_vector.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/validate.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"
#include "ajac/util/timer.hpp"

namespace ajac::mesh {

namespace {

/// Per-agent queue traffic tallies, folded into MeshResult (and the
/// metrics slot) after the join.
struct AgentTotals {
  index_t sent = 0;
  index_t received = 0;
  index_t dropped = 0;
  index_t duplicated = 0;
  index_t queue_full = 0;
};

/// Fault context for the default (no plan) path: `enabled` is false and
/// every hook site below is `if constexpr`-guarded, so this instantiation
/// compiles to the plain mesh driver (same Null/Active pattern as
/// src/runtime/solve_hooks.hpp).
struct NullMeshFaults {
  static constexpr bool enabled = false;

  NullMeshFaults(const fault::FaultPlan* /*plan*/, index_t /*agent*/) {}

  void begin_iteration(index_t /*iter*/) {}
  [[nodiscard]] bool stale_window_active() const { return false; }
  [[nodiscard]] bool consume_state_reset() { return false; }
  [[nodiscard]] bool drop_message(std::uint64_t /*edge*/, index_t /*recv*/,
                                  index_t /*k*/) {
    return false;
  }
  [[nodiscard]] bool duplicate_message(std::uint64_t /*edge*/,
                                       index_t /*recv*/, index_t /*k*/) {
    return false;
  }
  [[nodiscard]] fault::FaultLog take_log() { return {}; }
};

/// Per-agent fault injector. Straggler / crash / stale-window decisions
/// are keyed on the local iteration exactly like the shared runtime's
/// ActiveFaults; message drop / duplicate decisions are keyed on
/// (directed edge, sender's per-edge packet counter) exactly like
/// distsim, so the injected sequence is a pure function of the plan —
/// independent of scheduling — and one plan means the same thing on the
/// simulator and the real mesh.
class ActiveMeshFaults {
 public:
  static constexpr bool enabled = true;

  ActiveMeshFaults(const fault::FaultPlan* plan, index_t agent)
      : clock_(plan->seed), agent_(agent) {
    for (const auto& s : plan->stragglers) {
      if (s.actor == agent) straggler_ = &s;
    }
    for (const auto& s : plan->stale_reads) {
      if (s.actor == agent || s.actor == -1) stale_ = &s;
    }
    for (const auto& s : plan->crashes) {
      if (s.actor == agent) crash_ = &s;
    }
    for (const auto& s : plan->message_faults) {
      if (s.sender == -1 || s.sender == agent) msg_specs_.push_back(&s);
    }
  }

  /// Straggler stall, crash-and-recover, and stale-window bookkeeping, in
  /// that order, at the top of local iteration `iter` (the shared
  /// runtime's sequencing, so one plan injects at the same logical
  /// instants in both runtimes).
  void begin_iteration(index_t iter) {
    if (straggler_ != nullptr) {
      const bool on =
          fault::duty_active(straggler_->period, straggler_->duty, iter);
      if (on && !straggler_on_) {
        log_.push_back({fault::FaultKind::kStragglerOn, agent_, iter, 0, 0});
      }
      straggler_on_ = on;
      if (on) spin_wait_us(straggler_->extra_delay_us);
    }
    if (crash_ != nullptr && !crashed_ && iter >= crash_->crash_iteration) {
      // A mesh crash is an agent that stops participating for
      // dead_seconds and resumes — optionally from the initial guess on
      // its rows (lost memory; the driver performs the reset). Packets
      // that arrive while it is down pile up in its bounded inbound rings
      // and the overflow is dropped: the mesh analogue of distsim's
      // "messages to a dead rank are lost".
      crashed_ = true;
      log_.push_back({fault::FaultKind::kCrash, agent_, iter, 0, 0});
      spin_wait_us(crash_->dead_seconds * 1e6);
      state_reset_ = crash_->reset_state_on_recovery;
      log_.push_back({fault::FaultKind::kRecover, agent_, iter, 0, 0});
    }
    if (stale_ != nullptr) {
      const bool on = fault::duty_active(stale_->period, stale_->duty, iter);
      if (on && !stale_on_) {
        log_.push_back({fault::FaultKind::kStaleWindowOn, agent_, iter, 0, 0});
      }
      stale_on_ = on;
    }
  }

  /// While active the driver skips its queue drains, freezing the ghost
  /// values in place — the message-passing realization of the shared
  /// runtime's frozen off-block snapshot.
  [[nodiscard]] bool stale_window_active() const { return stale_on_; }

  /// True exactly once after a crash recovery requested a state reset;
  /// consuming clears it.
  [[nodiscard]] bool consume_state_reset() {
    return std::exchange(state_reset_, false);
  }

  [[nodiscard]] bool drop_message(std::uint64_t edge, index_t receiver,
                                  index_t k) {
    for (const fault::MessageFaultSpec* s : msg_specs_) {
      if (s->receiver >= 0 && s->receiver != receiver) continue;
      if (clock_.bernoulli(s->drop_probability,
                           fault::FaultClock::kMessageDrop, edge,
                           static_cast<std::uint64_t>(k))) {
        log_.push_back(
            {fault::FaultKind::kMessageDrop, agent_, k, receiver, 0});
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool duplicate_message(std::uint64_t edge, index_t receiver,
                                       index_t k) {
    for (const fault::MessageFaultSpec* s : msg_specs_) {
      if (s->receiver >= 0 && s->receiver != receiver) continue;
      if (clock_.bernoulli(s->duplicate_probability,
                           fault::FaultClock::kMessageDuplicate, edge,
                           static_cast<std::uint64_t>(k))) {
        log_.push_back(
            {fault::FaultKind::kMessageDuplicate, agent_, k, receiver, 0});
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] fault::FaultLog take_log() { return std::move(log_); }

 private:
  fault::FaultClock clock_;
  index_t agent_;
  const fault::StragglerSpec* straggler_ = nullptr;
  const fault::StaleReadSpec* stale_ = nullptr;
  const fault::CrashSpec* crash_ = nullptr;
  std::vector<const fault::MessageFaultSpec*> msg_specs_;
  bool straggler_on_ = false;
  bool stale_on_ = false;
  bool crashed_ = false;
  bool state_reset_ = false;
  fault::FaultLog log_;
};

/// Metrics context for the uninstrumented path.
struct NullMeshMetrics {
  static constexpr bool enabled = false;

  NullMeshMetrics(obs::MetricsRegistry* /*reg*/, index_t /*agent*/,
                  const WallTimer& /*timer*/) {}

  void iteration_begin() {}
  void iteration_end(index_t /*iter*/, index_t /*own_rows*/) {}
  void flag_update(bool /*done*/) {}
  void stop_decided() {}
  void drain_summary(index_t /*popped*/) {}
  void ghost_age(index_t /*iter*/, index_t /*header*/) {}
  void fold_totals(const AgentTotals& /*totals*/,
                   const fault::FaultLog& /*log*/) {}
};

/// Per-agent metrics slot feeding obs::MetricsRegistry (EventRing-backed
/// timeline + counters/histograms), one "agent" lane per mesh agent.
class ActiveMeshMetrics {
 public:
  static constexpr bool enabled = true;

  ActiveMeshMetrics(obs::MetricsRegistry* reg, index_t agent,
                    const WallTimer& timer)
      : slot_(&reg->actor(agent)), timer_(&timer) {
    // One slot per agent by the registry's contract: this thread is the
    // slot's sole writer for the whole run.
    slot_->owner.assert_held();
  }

  void iteration_begin() { t0_us_ = timer_->microseconds(); }

  void iteration_end(index_t iter, index_t own_rows) {
    slot_->owner.assert_held();
    const double t1 = timer_->microseconds();
    slot_->add(obs::Counter::kIterations);
    slot_->add(obs::Counter::kRelaxations,
               static_cast<std::uint64_t>(own_rows));
    slot_->record(obs::Hist::kIterationUs,
                  static_cast<std::uint64_t>(t1 - t0_us_));
    slot_->span(obs::TraceKind::kIteration, t0_us_, t1, iter);
  }

  void flag_update(bool done) {
    slot_->owner.assert_held();
    if (done && !flag_up_) slot_->add(obs::Counter::kFlagRaises);
    flag_up_ = done;
  }

  void stop_decided() {
    slot_->owner.assert_held();
    slot_->instant(obs::TraceKind::kStop, timer_->microseconds());
  }

  /// Mailbox depth observed by one drain pass (popped packet count).
  void drain_summary(index_t popped) {
    slot_->owner.assert_held();
    slot_->record(obs::Hist::kQueueDepth, static_cast<std::uint64_t>(popped));
  }

  /// Sender-iteration lag of an applied ghost packet.
  void ghost_age(index_t iter, index_t header) {
    slot_->owner.assert_held();
    const index_t age = iter > header ? iter - header : 0;
    slot_->record(obs::Hist::kGhostReadAge, static_cast<std::uint64_t>(age));
  }

  void fold_totals(const AgentTotals& totals, const fault::FaultLog& log) {
    slot_->owner.assert_held();
    slot_->add(obs::Counter::kMessagesSent,
               static_cast<std::uint64_t>(totals.sent));
    slot_->add(obs::Counter::kMessagesReceived,
               static_cast<std::uint64_t>(totals.received));
    slot_->add(obs::Counter::kMessagesDropped,
               static_cast<std::uint64_t>(totals.dropped));
    slot_->add(obs::Counter::kMessagesDuplicated,
               static_cast<std::uint64_t>(totals.duplicated));
    slot_->add(obs::Counter::kQueueFullDrops,
               static_cast<std::uint64_t>(totals.queue_full));
    slot_->add(obs::Counter::kFaultEvents,
               static_cast<std::uint64_t>(log.size()));
  }

 private:
  obs::ActorSlot* slot_;
  const WallTimer* timer_;
  double t0_us_ = 0.0;
  bool flag_up_ = false;
};

template <bool Sync, class Faults, class Metrics>
MeshResult solve_mesh_impl(const CsrMatrix& a, const Vector& b,
                           const Vector& x0, const MeshOptions& opts,
                           const MeshTopology& topo, const Vector& inv_diag,
                           const fault::FaultPlan* plan) {
  const index_t n = a.num_rows();
  const index_t na = topo.num_agents();

  // Control-plane boards (see mesh_jacobi.hpp): untraced SharedVectors
  // holding every agent's committed x and staged residual, read only by
  // the termination protocol — never by a relaxation. Untraced writes are
  // single relaxed stores, so overlapping owners committing the same row
  // are a benign last-write-wins race (and write identical values in
  // synchronous mode).
  runtime::SharedVector x_board(n, /*traced=*/false);
  runtime::SharedVector r_board(n, /*traced=*/false);
  // Single-threaded setup: momentarily the sole writer of both boards.
  x_board.writer_role().assert_held();
  r_board.writer_role().assert_held();
  x_board.init(x0);
  {
    Vector r0(static_cast<std::size_t>(n));
    a.residual(x0, b, r0);
    r_board.init(r0);
  }
  const double r0_norm = [&] {
    Vector tmp(static_cast<std::size_t>(n));
    a.residual(x0, b, tmp);
    const double nrm = vec::norm1(tmp);
    return nrm > 0.0 ? nrm : 1.0;
  }();

  std::vector<std::atomic<int>> flags(static_cast<std::size_t>(na));
  // racy-ok(init): single-threaded setup; std::thread creation publishes.
  for (auto& f : flags) f.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<index_t>> iter_counts(static_cast<std::size_t>(na));
  // racy-ok(init): single-threaded setup; std::thread creation publishes.
  for (auto& c : iter_counts) c.store(0, std::memory_order_relaxed);
  std::atomic<int> stop{0};

  // One SPSC ring per directed edge, sized to the edge's boundary width.
  // deque, not vector: the ring is immovable (index atomics), and deque
  // emplaces in place without relocation.
  std::deque<SpscQueue> queues;
  for (const MeshEdge& e : topo.edges) {
    queues.emplace_back(e.rows.size(),
                        static_cast<std::size_t>(opts.queue_capacity));
  }

  MeshResult result;
  result.iterations_per_agent.assign(static_cast<std::size_t>(na), 0);
  std::vector<std::vector<MeshHistoryPoint>> histories(
      static_cast<std::size_t>(na));
  std::vector<std::vector<model::RelaxationEvent>> agent_events(
      static_cast<std::size_t>(na));
  std::vector<fault::FaultLog> fault_logs(static_cast<std::size_t>(na));
  std::vector<AgentTotals> agent_totals(static_cast<std::size_t>(na));

  // Lockstep gate for the synchronous schedule (solve_shared's three
  // barriers per iteration). std::barrier is TSan-native, unlike the
  // OpenMP barriers the shared runtime has to annotate around.
  std::optional<std::barrier<>> gate;
  if constexpr (Sync) gate.emplace(static_cast<std::ptrdiff_t>(na));

  WallTimer timer;

  auto agent_main = [&](index_t t) {
    const AgentBlock& blk = topo.agents[static_cast<std::size_t>(t)];
    const auto own_rows = static_cast<index_t>(blk.rows.size());

    // The agent's full-length local view: own rows hold its committed
    // iterates, ghost columns hold the last applied packet values, and
    // every other entry stays at x0 (never read — the stencil of the own
    // rows touches only own + ghost columns). Full length buys free
    // support for arbitrary non-contiguous and overlapping row sets: no
    // index translation anywhere in the hot loop.
    Vector x_local = x0;
    std::vector<double> staged(static_cast<std::size_t>(own_rows));
    // Per-column versions for trace mode: commit count of own rows,
    // packet-header-derived count of ghosts (disjoint sets only, so both
    // are well-defined). Sized only when tracing.
    std::vector<index_t> versions;
    if (opts.record_trace) {
      versions.assign(static_cast<std::size_t>(n), 0);
    }
    std::size_t max_width = 1;
    for (const index_t e : blk.in_edges) {
      max_width = std::max(max_width, queues[static_cast<std::size_t>(e)].width());
    }
    for (const index_t e : blk.out_edges) {
      max_width = std::max(max_width, queues[static_cast<std::size_t>(e)].width());
    }
    std::vector<double> packet_buf(max_width);

    // Claim the single-writer roles this agent's topology position grants
    // it: its rows of both boards, the producer end of its outbound
    // queues, the consumer end of its inbound queues. Claims, not locks —
    // ownership is established by the topology (see SoleWriterRole).
    x_board.writer_role().assert_held();
    r_board.writer_role().assert_held();
    for (const index_t e : blk.out_edges) {
      queues[static_cast<std::size_t>(e)].producer.assert_held();
    }
    for (const index_t e : blk.in_edges) {
      queues[static_cast<std::size_t>(e)].consumer.assert_held();
    }

    Faults faults(plan, t);
    Metrics metrics(opts.metrics, t, timer);
    AgentTotals totals;
    auto& my_history = histories[static_cast<std::size_t>(t)];
    auto& my_events = agent_events[static_cast<std::size_t>(t)];
    if (opts.record_history) {
      // Reserve outside the timed loop (reallocation mid-run would
      // perturb the asynchronous interleaving); parked agents never pass
      // max_iterations, so this bound is exact.
      my_history.reserve(static_cast<std::size_t>(opts.max_iterations));
    }
    std::vector<index_t> sent_on_edge(blk.out_edges.size(), 0);

    const JacobiProcessor proc(a, b, inv_diag);
    static_assert(
        IterativeProcessorFor<JacobiProcessor,
                              decltype([](index_t) { return 0.0; })>);

    index_t iter = 0;

    // Apply every packet currently queued on the inbound edges to the
    // local ghost entries (arrival order; with overlapping owners the
    // last applied packet wins).
    auto drain = [&](bool traced) {
      index_t popped = 0;
      for (const index_t e : blk.in_edges) {
        SpscQueue& q = queues[static_cast<std::size_t>(e)];
        const MeshEdge& edge = topo.edges[static_cast<std::size_t>(e)];
        index_t header = 0;
        std::span<double> buf(packet_buf.data(), q.width());
        while (q.try_pop(header, buf)) {
          ++popped;
          for (std::size_t k = 0; k < edge.rows.size(); ++k) {
            x_local[edge.rows[k]] = buf[k];
          }
          if (traced) {
            // A packet carries the sender's commits of iteration
            // `header`, i.e. its (header + 1)-th committed values.
            for (const index_t row : edge.rows) {
              versions[static_cast<std::size_t>(row)] = header + 1;
            }
          }
          if constexpr (Metrics::enabled) metrics.ghost_age(iter, header);
        }
      }
      totals.received += popped;
      if constexpr (Metrics::enabled) metrics.drain_summary(popped);
    };

    // Ship the committed boundary values to every subscriber, applying
    // the per-edge drop / duplicate decisions. A refused push (full
    // ring) counts as queue_full backpressure, not as a fault: it
    // consumes no FaultClock decision, so the fault log stays a pure
    // function of the plan.
    auto publish = [&] {
      for (std::size_t ei = 0; ei < blk.out_edges.size(); ++ei) {
        const index_t e = blk.out_edges[ei];
        SpscQueue& q = queues[static_cast<std::size_t>(e)];
        const MeshEdge& edge = topo.edges[static_cast<std::size_t>(e)];
        const index_t k = sent_on_edge[ei]++;
        [[maybe_unused]] const std::uint64_t key =
            directed_edge_key(edge.sender, edge.receiver);
        if constexpr (Faults::enabled) {
          if (faults.drop_message(key, edge.receiver, k)) {
            ++totals.dropped;
            continue;
          }
        }
        for (std::size_t p = 0; p < edge.rows.size(); ++p) {
          packet_buf[p] = x_local[edge.rows[p]];
        }
        const std::span<const double> payload(packet_buf.data(),
                                              edge.rows.size());
        ++totals.sent;
        if (!q.try_push(iter, payload)) ++totals.queue_full;
        if constexpr (Faults::enabled) {
          if (faults.duplicate_message(key, edge.receiver, k)) {
            ++totals.duplicated;
            ++totals.sent;
            if (!q.try_push(iter, payload)) ++totals.queue_full;
          }
        }
      }
    };

    // Verified stop, verbatim the shared runtime's: the flags rest on
    // racy residual reads, so before latching `stop` either prove every
    // agent hit the cap or recompute a fresh residual from the x board.
    auto verify_and_maybe_stop = [&] {
      bool all_at_max = true;
      for (auto& c : iter_counts) {
        // racy-ok(monotonic): counters only grow; a stale read can only
        // delay the stop decision, never produce a premature one.
        if (c.load(std::memory_order_relaxed) < opts.max_iterations) {
          all_at_max = false;
          break;
        }
      }
      bool tol_met = false;
      if (!all_at_max && opts.tolerance > 0.0) {
        double fresh = 0.0;
        for (index_t i = 0; i < n; ++i) {
          double acc = b[i];
          const auto [cols, vals] = a.row(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            acc -= vals[p] * x_board.read(cols[p]);
          }
          fresh += std::abs(acc);
        }
        tol_met = fresh / r0_norm <= opts.tolerance;
      }
      if (all_at_max || tol_met) {
        // racy-ok(stop): 0 -> 1 broadcast; readers poll it and the
        // results are read after the join.
        stop.store(1, std::memory_order_relaxed);
        if constexpr (Metrics::enabled) metrics.stop_decided();
      }
    };

    // racy-ok(stop): stop only transitions 0 -> 1; a stale read costs one
    // extra polling pass, nothing more.
    while (stop.load(std::memory_order_relaxed) == 0) {
      if (iter >= opts.max_iterations) {
        // Park-at-cap, identical policy to solve_shared: relaxing past
        // the cap would make the executed (agent, iteration) set — and
        // with it the fault log and relaxation totals — scheduler-
        // dependent. Poll the flags and re-verify until stop is decided.
        // (Unreachable in synchronous mode: lockstep flags all rise at
        // the cap iteration and verify latches stop before re-entry.)
        int parked_done = 0;
        // racy-ok(flag): flags are hints; verify_and_maybe_stop re-checks.
        for (auto& f : flags) parked_done += f.load(std::memory_order_relaxed);
        if (parked_done == static_cast<int>(na)) verify_and_maybe_stop();
        sched_yield();
        continue;
      }
      if constexpr (Metrics::enabled) metrics.iteration_begin();
      if constexpr (Faults::enabled) {
        faults.begin_iteration(iter);
        if (faults.consume_state_reset()) {
          // Crash recovery with lost memory: restart the own rows from
          // the initial guess, locally and on the board (so the verified
          // stop sees the reset state). Neighbors keep their last
          // received values until the next publish.
          for (const index_t i : blk.rows) {
            x_local[i] = x0[i];
            x_board.write(i, x0[i]);
          }
        }
      }
      if constexpr (!Sync) {
        // Asynchronous ghost refresh. Inside a stale window the drains
        // are skipped: the ghosts freeze at their last applied values
        // while packets queue up behind the window.
        bool frozen = false;
        if constexpr (Faults::enabled) frozen = faults.stale_window_active();
        if (!frozen) drain(opts.record_trace);
      }

      // Step 1: stage every owned row from the local view (Jacobi
      // discipline: all stages read the pre-commit state) and publish
      // the staged residuals to the r board for the termination norm.
      if (opts.record_trace) {
        for (index_t k = 0; k < own_rows; ++k) {
          const index_t i = blk.rows[static_cast<std::size_t>(k)];
          model::RelaxationEvent event;
          event.row = i;
          event.reads.reserve(a.row_cols(i).size());
          staged[static_cast<std::size_t>(k)] =
              proc.stage(i, [&](index_t j) {
                if (j != i) {
                  event.reads.push_back(
                      {j, versions[static_cast<std::size_t>(j)]});
                }
                return x_local[j];
              });
          r_board.write(i, staged[static_cast<std::size_t>(k)]);
          my_events.push_back(std::move(event));
        }
      } else {
        for (index_t k = 0; k < own_rows; ++k) {
          const index_t i = blk.rows[static_cast<std::size_t>(k)];
          staged[static_cast<std::size_t>(k)] =
              proc.stage(i, [&](index_t j) { return x_local[j]; });
          r_board.write(i, staged[static_cast<std::size_t>(k)]);
        }
      }

      // Step 2: commit the staged updates, mirror them to the x board,
      // and ship the new boundary values.
      for (index_t k = 0; k < own_rows; ++k) {
        const index_t i = blk.rows[static_cast<std::size_t>(k)];
        x_local[i] =
            proc.apply(i, x_local[i], staged[static_cast<std::size_t>(k)]);
        x_board.write(i, x_local[i]);
      }
      if (opts.record_trace) {
        for (const index_t i : blk.rows) {
          versions[static_cast<std::size_t>(i)] = iter + 1;
        }
      }
      publish();

      if constexpr (Sync) {
        // Lockstep point 1 (solve_shared's stage/commit barrier): every
        // agent's iteration-k values are committed and queued; drain so
        // the next stage reads a complete synchronous state.
        gate->arrive_and_wait();
        drain(opts.record_trace);
      }

      ++iter;
      // racy-ok(monotonic): published for the verification gate; it only
      // needs an eventually-fresh lower bound.
      iter_counts[static_cast<std::size_t>(t)].store(
          iter, std::memory_order_relaxed);

      // Step 3: convergence check — racy 1-norm of the whole residual
      // board in natural row order (bitwise solve_shared's scan).
      double norm = 0.0;
      for (index_t i = 0; i < n; ++i) norm += std::abs(r_board.read(i));
      const double rel = norm / r0_norm;
      if (opts.record_history) {
        my_history.push_back({timer.seconds(), t, iter, rel});
      }
      const bool my_done =
          (opts.tolerance > 0.0 && rel <= opts.tolerance) ||
          iter >= opts.max_iterations;
      // racy-ok(flag): the paper's termination flags rest on racy
      // residual reads by design; the verification gate re-checks.
      flags[static_cast<std::size_t>(t)].store(my_done ? 1 : 0,
                                               std::memory_order_relaxed);
      if constexpr (Metrics::enabled) metrics.flag_update(my_done);

      if constexpr (Sync) gate->arrive_and_wait();
      int done_count = 0;
      // racy-ok(flag): hint scan; a stale flag only defers verification.
      for (auto& f : flags) done_count += f.load(std::memory_order_relaxed);
      if (done_count == static_cast<int>(na)) verify_and_maybe_stop();
      if constexpr (Sync) {
        // Keep lockstep: every agent passes the same number of barriers
        // and sees the verified stop decision together.
        gate->arrive_and_wait();
      }
      if constexpr (Metrics::enabled) metrics.iteration_end(iter - 1, own_rows);
      if constexpr (!Sync) {
        // racy-ok(stop): monotonic 0 -> 1, polled.
        if (opts.yield && stop.load(std::memory_order_relaxed) == 0) {
          sched_yield();
        }
      }
    }

    result.iterations_per_agent[static_cast<std::size_t>(t)] = iter;
    agent_totals[static_cast<std::size_t>(t)] = totals;
    if constexpr (Faults::enabled) {
      fault_logs[static_cast<std::size_t>(t)] = faults.take_log();
    }
    if constexpr (Metrics::enabled) {
      metrics.fold_totals(totals, fault_logs[static_cast<std::size_t>(t)]);
    }
  };

  // std::thread creation/join are TSan-native happens-before edges, so
  // unlike the OpenMP runtime no manual annotations are needed around the
  // parallel region.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(na));
  for (index_t t = 0; t < na; ++t) workers.emplace_back(agent_main, t);
  for (auto& w : workers) w.join();

  result.seconds = timer.seconds();
  result.x.resize(static_cast<std::size_t>(n));
  x_board.snapshot(result.x);

  // Independent serial verification of the final residual.
  Vector final_r(static_cast<std::size_t>(n));
  a.residual(result.x, b, final_r);
  result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;

  // An agent descheduled mid-iteration may have committed a stale update
  // after the verified stop; polish sequentially until the tolerance
  // verifiably holds (bounded — the state is near the fixed point). Same
  // cap formula as solve_shared so the two backends stay comparable.
  if (opts.final_polish && opts.tolerance > 0.0 &&
      result.final_rel_residual_1 > opts.tolerance) {
    const index_t polish_cap = 20 * na + 200;
    while (result.polish_sweeps < polish_cap &&
           result.final_rel_residual_1 > opts.tolerance) {
      for (index_t i = 0; i < n; ++i) {
        result.x[i] += inv_diag[i] * final_r[i];
      }
      a.residual(result.x, b, final_r);
      result.final_rel_residual_1 = vec::norm1(final_r) / r0_norm;
      ++result.polish_sweeps;
    }
  }
  result.converged =
      opts.tolerance > 0.0 && result.final_rel_residual_1 <= opts.tolerance;

  for (index_t t = 0; t < na; ++t) {
    result.total_relaxations +=
        result.iterations_per_agent[static_cast<std::size_t>(t)] *
        static_cast<index_t>(topo.agents[static_cast<std::size_t>(t)].rows.size());
    const AgentTotals& totals = agent_totals[static_cast<std::size_t>(t)];
    result.messages_sent += totals.sent;
    result.messages_received += totals.received;
    result.messages_dropped += totals.dropped;
    result.messages_duplicated += totals.duplicated;
    result.queue_full_drops += totals.queue_full;
  }

  for (auto& h : histories) {
    result.history.insert(result.history.end(), h.begin(), h.end());
  }
  std::sort(result.history.begin(), result.history.end(),
            [](const MeshHistoryPoint& p1, const MeshHistoryPoint& p2) {
              return p1.seconds < p2.seconds;
            });

  if (opts.record_trace) {
    model::RelaxationTrace trace(n);
    // Per-row order is preserved: disjoint row sets give every row a
    // unique owner, and each agent appends its events in execution order.
    for (const auto& events : agent_events) {
      for (const auto& e : events) trace.add_event(e);
    }
    result.trace = std::move(trace);
  }
  if constexpr (Faults::enabled) {
    for (auto& log : fault_logs) {
      result.fault_events.insert(result.fault_events.end(), log.begin(),
                                 log.end());
    }
    fault::canonicalize(result.fault_events);
  }
  return result;
}

template <bool Sync>
MeshResult dispatch_hooks(const CsrMatrix& a, const Vector& b,
                          const Vector& x0, const MeshOptions& opts,
                          const MeshTopology& topo, const Vector& inv_diag,
                          const fault::FaultPlan* plan) {
  if (plan != nullptr && opts.metrics != nullptr) {
    return solve_mesh_impl<Sync, ActiveMeshFaults, ActiveMeshMetrics>(
        a, b, x0, opts, topo, inv_diag, plan);
  }
  if (plan != nullptr) {
    return solve_mesh_impl<Sync, ActiveMeshFaults, NullMeshMetrics>(
        a, b, x0, opts, topo, inv_diag, plan);
  }
  if (opts.metrics != nullptr) {
    return solve_mesh_impl<Sync, NullMeshFaults, ActiveMeshMetrics>(
        a, b, x0, opts, topo, inv_diag, nullptr);
  }
  return solve_mesh_impl<Sync, NullMeshFaults, NullMeshMetrics>(
      a, b, x0, opts, topo, inv_diag, nullptr);
}

}  // namespace

MeshResult solve_mesh(const CsrMatrix& a, const Vector& b, const Vector& x0,
                      const MeshOptions& opts) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  AJAC_CHECK(b.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(x0.size() == static_cast<std::size_t>(n));
  AJAC_CHECK(opts.num_agents >= 1);
  AJAC_CHECK(opts.max_iterations >= 1);
  AJAC_CHECK(opts.queue_capacity >= 1);

  const RowSets sets = opts.row_sets.has_value()
                           ? *opts.row_sets
                           : contiguous_row_sets(n, opts.num_agents);
  AJAC_CHECK_MSG(sets.num_agents() == opts.num_agents,
                 "row_sets must define exactly num_agents sets");
  const MeshTopology topo = build_topology(a, sets);
  AJAC_CHECK_MSG(!opts.record_trace || topo.disjoint,
                 "trace recording needs disjoint row sets (per-row commit "
                 "versions require a unique writer)");

  AJAC_DBG_VALIDATE(validate::csr_structure(
      a, {.require_sorted_rows = true, .require_diagonal = true,
          .require_finite = true, .require_square = true}));
  AJAC_DBG_VALIDATE(validate::finite(b, "b"));
  AJAC_DBG_VALIDATE(validate::finite(x0, "x0"));

  Vector inv_diag = a.diagonal();
  for (index_t i = 0; i < n; ++i) {
    AJAC_CHECK_MSG(inv_diag[i] != 0.0, "zero diagonal at row " << i);
    inv_diag[i] = 1.0 / inv_diag[i];
  }

  const fault::FaultPlan* plan =
      opts.fault_plan && !opts.fault_plan->empty() ? opts.fault_plan.get()
                                                   : nullptr;
  if (plan != nullptr) {
    AJAC_CHECK_MSG(!opts.synchronous,
                   "fault injection targets the asynchronous mesh (the "
                   "synchronous barriers serialize every fault away)");
    plan->validate(opts.num_agents);
    AJAC_CHECK_MSG(plan->bit_flips.empty(),
                   "bit-flip injection instruments the shared-memory "
                   "kernels, not the mesh");
    for (const auto& s : plan->message_faults) {
      AJAC_CHECK_MSG(s.reorder_probability == 0.0,
                     "message reordering is meaningless on the mesh's FIFO "
                     "SPSC queues (use distsim for reorder scenarios)");
    }
  }

  obs::MetricsRegistry* metrics = opts.metrics;
  if (metrics != nullptr) {
    metrics->set_actor_kind("agent");
    metrics->reset(opts.num_agents,
                   static_cast<std::size_t>(opts.max_iterations) + 64);
  }

  if (opts.synchronous) {
    return dispatch_hooks<true>(a, b, x0, opts, topo, inv_diag, plan);
  }
  return dispatch_hooks<false>(a, b, x0, opts, topo, inv_diag, plan);
}

}  // namespace ajac::mesh
