#include "ajac/mesh/topology.hpp"

#include <algorithm>

#include "ajac/sparse/csr.hpp"
#include "ajac/util/check.hpp"

namespace ajac::mesh {

MeshTopology build_topology(const CsrMatrix& a, const RowSets& sets) {
  AJAC_CHECK(a.num_rows() == a.num_cols());
  const index_t n = a.num_rows();
  validate(sets, n);

  MeshTopology topo;
  topo.num_rows = n;
  topo.disjoint = disjoint(sets, n);
  topo.agents.resize(sets.owned.size());

  for (std::size_t t = 0; t < sets.owned.size(); ++t) {
    AgentBlock& blk = topo.agents[t];
    blk.rows = sets.owned[t];
    // Ghosts: every column the agent's stencil reads minus what it owns.
    std::vector<index_t> cols;
    for (const index_t i : blk.rows) {
      for (const index_t j : a.row_cols(i)) cols.push_back(j);
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    blk.ghost_cols.reserve(cols.size());
    std::set_difference(cols.begin(), cols.end(), blk.rows.begin(),
                        blk.rows.end(), std::back_inserter(blk.ghost_cols));
  }

  // One directed edge per (owner, reader) pair with a nonempty boundary.
  // Quadratic in the agent count, which is single digits to low tens here;
  // the per-pair intersection is linear in the sorted sets.
  const auto na = static_cast<index_t>(sets.owned.size());
  for (index_t p = 0; p < na; ++p) {
    for (index_t q = 0; q < na; ++q) {
      if (p == q) continue;
      const AgentBlock& sender = topo.agents[static_cast<std::size_t>(p)];
      const AgentBlock& receiver = topo.agents[static_cast<std::size_t>(q)];
      std::vector<index_t> boundary;
      std::set_intersection(sender.rows.begin(), sender.rows.end(),
                            receiver.ghost_cols.begin(),
                            receiver.ghost_cols.end(),
                            std::back_inserter(boundary));
      if (boundary.empty()) continue;
      const auto e = static_cast<index_t>(topo.edges.size());
      topo.edges.push_back({p, q, std::move(boundary)});
      topo.agents[static_cast<std::size_t>(p)].out_edges.push_back(e);
      topo.agents[static_cast<std::size_t>(q)].in_edges.push_back(e);
    }
  }
  return topo;
}

}  // namespace ajac::mesh
