#include "ajac/mesh/row_sets.hpp"

#include <sstream>
#include <stdexcept>

#include "ajac/partition/partition.hpp"

namespace ajac::mesh {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::logic_error("mesh::RowSets: " + what);
}

}  // namespace

RowSets contiguous_row_sets(index_t num_rows, index_t num_agents) {
  return row_sets_from_partition(
      partition::contiguous_partition(num_rows, num_agents));
}

RowSets row_sets_from_partition(const partition::Partition& part) {
  RowSets sets;
  sets.owned.resize(static_cast<std::size_t>(part.num_parts()));
  for (index_t p = 0; p < part.num_parts(); ++p) {
    auto& rows = sets.owned[static_cast<std::size_t>(p)];
    rows.reserve(static_cast<std::size_t>(part.part_size(p)));
    for (index_t i = part.part_begin(p); i < part.part_end(p); ++i) {
      rows.push_back(i);
    }
  }
  return sets;
}

void validate(const RowSets& sets, index_t num_rows) {
  if (sets.owned.empty()) fail("no agents");
  if (num_rows <= 0) fail("num_rows must be positive");
  std::vector<char> covered(static_cast<std::size_t>(num_rows), 0);
  for (std::size_t t = 0; t < sets.owned.size(); ++t) {
    const auto& rows = sets.owned[t];
    if (rows.empty()) {
      std::ostringstream os;
      os << "agent " << t << " owns no rows";
      fail(os.str());
    }
    index_t prev = -1;
    for (const index_t i : rows) {
      if (i < 0 || i >= num_rows) {
        std::ostringstream os;
        os << "agent " << t << " owns out-of-range row " << i;
        fail(os.str());
      }
      if (i <= prev) {
        std::ostringstream os;
        os << "agent " << t << " rows not sorted/unique at row " << i;
        fail(os.str());
      }
      prev = i;
      covered[static_cast<std::size_t>(i)] = 1;
    }
  }
  for (index_t i = 0; i < num_rows; ++i) {
    if (covered[static_cast<std::size_t>(i)] == 0) {
      std::ostringstream os;
      os << "row " << i << " has no owner";
      fail(os.str());
    }
  }
}

bool disjoint(const RowSets& sets, index_t num_rows) {
  std::vector<char> seen(static_cast<std::size_t>(num_rows), 0);
  for (const auto& rows : sets.owned) {
    for (const index_t i : rows) {
      if (i < 0 || i >= num_rows) return false;
      if (seen[static_cast<std::size_t>(i)] != 0) return false;
      seen[static_cast<std::size_t>(i)] = 1;
    }
  }
  return true;
}

}  // namespace ajac::mesh
