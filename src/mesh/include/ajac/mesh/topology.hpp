#pragma once
// Static communication topology of a mesh run, derived once from the
// matrix sparsity pattern and the row-ownership sets before any thread is
// spawned.
//
// An agent's GHOST columns are exactly the off-owned columns of its rows:
// every column its stencil reads that it does not own itself. A directed
// edge p -> q exists iff p owns at least one of q's ghost columns; the
// edge's row list is that intersection, and one SPSC queue per edge
// carries (header = sender iteration, values) packets for those rows.
// With overlapping ownership a ghost can have several owners — the
// receiver then has one inbound edge per owner and applies packets in
// arrival order (last write wins), which the property suite pins down.

#include <cstdint>
#include <vector>

#include "ajac/mesh/row_sets.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}

namespace ajac::mesh {

/// One directed communication edge: `rows` (sorted) are the sender-owned
/// rows the receiver reads as ghosts; a packet carries one value per row.
struct MeshEdge {
  index_t sender = 0;
  index_t receiver = 0;
  std::vector<index_t> rows;
};

/// Per-agent view of the topology. `in_edges` / `out_edges` index into
/// MeshTopology::edges.
struct AgentBlock {
  std::vector<index_t> rows;        ///< owned rows, sorted, unique
  std::vector<index_t> ghost_cols;  ///< off-owned columns read by own rows
  std::vector<index_t> in_edges;
  std::vector<index_t> out_edges;
};

struct MeshTopology {
  index_t num_rows = 0;
  bool disjoint = true;  ///< no row has two owners (trace mode needs this)
  std::vector<AgentBlock> agents;
  std::vector<MeshEdge> edges;

  [[nodiscard]] index_t num_agents() const noexcept {
    return static_cast<index_t>(agents.size());
  }
};

/// Stable identifier for the directed edge sender -> receiver; keys the
/// deterministic per-edge fault decisions with the same convention as
/// distsim::directed_edge_key, so a plan means the same thing against the
/// simulator and the real mesh.
[[nodiscard]] constexpr std::uint64_t directed_edge_key(
    index_t sender, index_t receiver) noexcept {
  return (static_cast<std::uint64_t>(sender) << 32) ^
         static_cast<std::uint64_t>(receiver);
}

/// Build the topology. Validates `sets` against the matrix first (throws
/// std::logic_error on malformed shapes, see row_sets.hpp).
[[nodiscard]] MeshTopology build_topology(const CsrMatrix& a,
                                          const RowSets& sets);

}  // namespace ajac::mesh
