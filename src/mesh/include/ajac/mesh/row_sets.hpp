#pragma once
// Row-ownership sets for the concurrent mesh runtime (src/mesh).
//
// Unlike the shared-memory runtime's contiguous Partition, a mesh agent
// owns an arbitrary *set* of rows: non-contiguous assignments model
// scattered subdomains, and sets may overlap (two agents both relaxing a
// boundary row, Skywing-style redundant ownership). The only global
// requirement is coverage — every row must have at least one owner —
// because an orphaned row would never be relaxed and the iteration could
// not converge.
//
// Per-agent invariants (checked by validate, which throws std::logic_error
// on violation so malformed shapes are rejected up front, before any
// thread is spawned):
//   - at least one agent, and every agent owns at least one row (an empty
//     agent would publish nothing, park immediately, and deadlock the
//     synchronous barrier schedule — rejected, not silently tolerated);
//   - each agent's rows are sorted, unique, and in [0, num_rows);
//   - the union of all sets covers [0, num_rows).

#include <vector>

#include "ajac/sparse/types.hpp"

namespace ajac::partition {
struct Partition;
}

namespace ajac::mesh {

/// One sorted, duplicate-free row set per agent. Sets may overlap and need
/// not be contiguous; together they must cover every row.
struct RowSets {
  std::vector<std::vector<index_t>> owned;

  [[nodiscard]] index_t num_agents() const noexcept {
    return static_cast<index_t>(owned.size());
  }
};

/// Disjoint contiguous sets matching partition::contiguous_partition — the
/// default mesh layout and the one the sync-mode bitwise-equivalence
/// contract against solve_shared is stated for.
[[nodiscard]] RowSets contiguous_row_sets(index_t num_rows,
                                          index_t num_agents);

/// Row sets mirroring an existing contiguous Partition (e.g. the output of
/// graph_growing_partition after permutation), for distsim cross-runs.
[[nodiscard]] RowSets row_sets_from_partition(const partition::Partition& part);

/// Enforce the structural invariants listed in the header comment; throws
/// std::logic_error naming the first violation.
void validate(const RowSets& sets, index_t num_rows);

/// True when no row has more than one owner. Trace recording requires it:
/// per-row commit versions are only well-defined with a unique writer.
[[nodiscard]] bool disjoint(const RowSets& sets, index_t num_rows);

}  // namespace ajac::mesh
