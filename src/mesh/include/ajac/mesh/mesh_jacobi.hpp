#pragma once
// Concurrent message-passing mesh runtime: one std::thread per agent, each
// owning an arbitrary (possibly overlapping, non-contiguous) row set, with
// boundary values exchanged through real per-edge SPSC queues — the
// repo's closest analogue of the paper's distributed experiments and of
// LLNL Skywing's pub/sub mesh, next to which src/distsim is a
// discrete-event *model* of the same protocol.
//
// Correctness contracts (enforced by tests/mesh/):
//   - synchronous mode (3-barrier lockstep mirroring solve_shared's
//     schedule) is BITWISE identical to solve_shared on disjoint
//     contiguous row sets;
//   - a 1-agent asynchronous mesh is bitwise sequential Jacobi;
//   - recorded traces (disjoint sets only) replay through the Phi(l)
//     propagation model (model::replay_trace);
//   - FaultPlan decisions are interleaving-independent (FaultClock keyed
//     on logical coordinates, park-at-cap identical to solve_shared).
//
// Termination reuses the paper's shared-memory protocol verbatim: agents
// publish their committed values and staged residuals to two untraced
// SharedVector "boards" (control plane only — relaxations never read
// them), take the racy 1-norm over the residual board in natural row
// order, raise per-agent flags, and a verified stop recomputes a fresh
// residual from the x board before latching. Solution data still flows
// agent-to-agent exclusively through the queues; the boards exist so the
// mesh stops exactly when solve_shared would, which is what makes the
// cross-validation contracts above exact. (A fully distributed
// termination protocol is out of the paper's scope; see DESIGN.md §5g.)

#include <memory>
#include <optional>
#include <vector>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/mesh/row_sets.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac {
class CsrMatrix;
}
namespace ajac::obs {
class MetricsRegistry;
}

namespace ajac::mesh {

/// One racy residual-norm observation, as one agent saw it (same caveats
/// as the shared runtime's history: the serial final_rel_residual_1 is
/// the trustworthy number).
struct MeshHistoryPoint {
  double seconds = 0.0;
  index_t agent = 0;
  index_t iteration = 0;
  double rel_residual_1 = 0.0;
};

struct MeshOptions {
  index_t num_agents = 4;
  /// Lockstep 3-barrier schedule (bitwise solve_shared) instead of the
  /// free-running asynchronous mesh.
  bool synchronous = false;
  double tolerance = 1e-3;  ///< on the relative 1-norm; <= 0 runs to the cap
  index_t max_iterations = 10000;
  /// Row ownership; defaults to contiguous_row_sets(n, num_agents).
  std::optional<RowSets> row_sets;
  /// Packets in flight per directed edge before drop-newest backpressure.
  index_t queue_capacity = 256;
  bool record_history = true;
  /// Record a model::RelaxationTrace (disjoint row sets only: per-row
  /// commit versions need a unique writer).
  bool record_trace = false;
  /// sched_yield after each asynchronous iteration (oversubscribed runs).
  bool yield = false;
  /// Serial cleanup sweeps when the verified stop still left the residual
  /// above tolerance (same bounded polish as solve_shared).
  bool final_polish = true;
  /// Deterministic fault injection (asynchronous mode only): stragglers,
  /// stale windows, crash-and-recover, and per-edge message drop /
  /// duplicate applied to the real queues. Reordering and bit flips are
  /// rejected — the former is meaningless on FIFO SPSC rings, the latter
  /// is a shared-runtime instrument.
  std::shared_ptr<const fault::FaultPlan> fault_plan;
  /// Observability sink; one actor slot per agent ("agent" actor kind).
  obs::MetricsRegistry* metrics = nullptr;
};

struct MeshResult {
  Vector x;
  double seconds = 0.0;
  bool converged = false;
  double final_rel_residual_1 = 0.0;
  index_t total_relaxations = 0;
  index_t polish_sweeps = 0;
  std::vector<index_t> iterations_per_agent;
  std::vector<MeshHistoryPoint> history;
  /// Queue traffic totals, summed over agents. `messages_dropped` counts
  /// fault-injected drops; `queue_full_drops` counts drop-newest
  /// backpressure (full ring), which is NOT a fault event and consumes no
  /// FaultClock decision, so fault logs stay interleaving-independent.
  index_t messages_sent = 0;
  index_t messages_received = 0;
  index_t messages_dropped = 0;
  index_t messages_duplicated = 0;
  index_t queue_full_drops = 0;
  std::optional<model::RelaxationTrace> trace;
  fault::FaultLog fault_events;  ///< canonicalized (fault::canonicalize)
};

/// Solve A x = b from x0 on the concurrent mesh. Throws std::logic_error
/// on malformed row sets and AJAC_CHECK-fails on option misuse.
[[nodiscard]] MeshResult solve_mesh(const CsrMatrix& a, const Vector& b,
                                    const Vector& x0,
                                    const MeshOptions& opts = {});

}  // namespace ajac::mesh
