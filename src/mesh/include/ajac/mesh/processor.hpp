#pragma once
// The generic iterative-processor seam of the mesh runtime.
//
// The mesh driver owns everything concurrent — row ownership, ghost
// exchange through the SPSC queues, termination, fault injection — and
// delegates the per-row numerics to a processor with two pure methods:
//
//   stage(i, read) -> staged   compute row i's update quantity from the
//                              current local view (read(j) returns the
//                              agent's value of column j);
//   apply(i, x_i, staged)      fold the staged quantity into x_i.
//
// The driver stages ALL owned rows before applying any of them (Jacobi
// discipline), publishes `staged` to the shared residual board (for
// Jacobi and Richardson the staged quantity IS the row residual, which is
// what the paper's racy termination norm sums), and ships the applied
// values to the subscribers. The split is exactly what asynchronous
// Richardson (arXiv:2009.02015) and the power method need:
//
//   Richardson:    stage = r_i = b_i - (A x)_i,  apply = x_i + omega * r_i
//   power method:  stage = (A x)_i,              apply = staged / shift
//
// so those processors slot into the same driver with no mesh changes.

#include <concepts>
#include <cstddef>
#include <span>

#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac::mesh {

/// What the mesh driver requires of a processor, given the reader functor
/// type it will pass to stage(). Reads must go exclusively through
/// `read` — that is how the driver virtualizes locality (local vs ghost
/// values) and trace recording underneath the numerics.
template <class P, class Reader>
concept IterativeProcessorFor =
    std::invocable<const Reader&, index_t> &&
    requires(const P& p, index_t i, double xi, double staged,
             const Reader& read) {
      { p.stage(i, read) } -> std::same_as<double>;
      { p.apply(i, xi, staged) } -> std::same_as<double>;
    };

/// Jacobi in residual-correction form, bitwise the reference kernel of
/// solve_shared: stage accumulates b_i minus the full stencil product in
/// CSR order (diagonal handled inside the loop, no special casing), and
/// apply adds D^{-1} r. Keeping the floating-point operation order
/// identical to shared_jacobi.cpp is what makes the sync-mode mesh
/// bitwise-equal to solve_shared.
class JacobiProcessor {
 public:
  JacobiProcessor(const CsrMatrix& a, const Vector& b, const Vector& inv_diag)
      : a_(&a), b_(&b), inv_diag_(&inv_diag) {}

  template <class Reader>
  [[nodiscard]] double stage(index_t i, const Reader& read) const {
    double acc = (*b_)[i];
    const auto [cols, vals] = a_->row(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      acc -= vals[p] * read(cols[p]);
    }
    return acc;
  }

  [[nodiscard]] double apply(index_t i, double xi, double staged) const {
    return xi + (*inv_diag_)[i] * staged;
  }

 private:
  const CsrMatrix* a_;
  const Vector* b_;
  const Vector* inv_diag_;
};

}  // namespace ajac::mesh
