#pragma once
// Bounded single-producer / single-consumer ring for one directed mesh
// edge: fixed-width packets of boundary values, one slot per packet.
//
// Memory model (simpler than the SharedVector seqlock, and verified by the
// TSan stress suite in tests/mesh/stress_mesh_test.cpp):
//
//   - The payload slots are PLAIN doubles, not atomics. Publication rides
//     entirely on the two index atomics: the producer's release store of
//     tail_ publishes the slot it just filled, and the consumer's acquire
//     load of tail_ makes those plain writes visible before it reads them.
//     Symmetrically, the consumer's release store of head_ retires a slot,
//     and the producer's acquire load of head_ orders slot reuse after the
//     consumer's last plain read. No fences (tools/lint.sh bans them), no
//     per-element versioning: with exactly one writer and one reader per
//     index, acquire/release on the indices alone is a complete protocol,
//     and TSan models it precisely.
//
//   - Each index has a single writer (tail_: the producer; head_: the
//     consumer), so a thread's read of its OWN index is always fresh and
//     can be relaxed (racy-ok tag `own-index`, see tools/analyze/
//     racy_ok.toml). The Clang thread-safety roles below make the
//     single-writer contract machine-checked: try_push requires the
//     producer role, try_pop the consumer role.
//
//   - Backpressure is drop-newest: try_push on a full ring refuses the
//     packet and returns false (the caller counts it as a queue_full
//     drop). Asynchronous Jacobi tolerates lost boundary updates — a
//     fresher packet is always coming — so blocking the producer would
//     only import the synchronous schedule through the back door.
//
// Identifier hygiene: the head_/tail_ names (rather than anything
// "sequence"-flavored) keep the concurrency auditor's seqlock-protocol
// rule scoped to the real seqlocks in src/runtime.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "ajac/sparse/types.hpp"
#include "ajac/util/annotate.hpp"
#include "ajac/util/check.hpp"

namespace ajac::mesh {

class SpscQueue {
 public:
  /// `width` values per packet (one per boundary row of the edge),
  /// `capacity` packets in flight before drop-newest kicks in.
  SpscQueue(std::size_t width, std::size_t capacity)
      : width_(width),
        capacity_(capacity),
        headers_(capacity),
        values_(width * capacity) {
    AJAC_CHECK(width >= 1);
    AJAC_CHECK(capacity >= 1);
  }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Producer side: enqueue one packet (header = sender's local iteration
  /// at commit time). Returns false — packet dropped — when the ring is
  /// full. Requires the producer role: exactly one thread per queue may
  /// ever call this.
  [[nodiscard]] bool try_push(index_t header, std::span<const double> values)
      AJAC_REQUIRES(producer) {
    AJAC_DBG_CHECK(values.size() == width_);
    // racy-ok(own-index): tail_ has a single writer — this producer — so
    // its own relaxed read is always the freshest value.
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    // Acquire pairs with the consumer's release store in try_pop: slot
    // reuse below happens-after the consumer's last plain read of it.
    if (t - head_.load(std::memory_order_acquire) == capacity_) {
      return false;
    }
    const std::size_t slot = static_cast<std::size_t>(t % capacity_);
    headers_[slot] = header;
    double* dst = values_.data() + slot * width_;
    for (std::size_t k = 0; k < width_; ++k) dst[k] = values[k];
    // Release publishes the plain payload writes above; pairs with the
    // consumer's acquire load of tail_.
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: dequeue the oldest packet into `values` (sized to
  /// width()). Returns false when the ring is empty. Requires the consumer
  /// role: exactly one thread per queue may ever call this.
  [[nodiscard]] bool try_pop(index_t& header, std::span<double> values)
      AJAC_REQUIRES(consumer) {
    AJAC_DBG_CHECK(values.size() == width_);
    // racy-ok(own-index): head_ has a single writer — this consumer.
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    // Acquire pairs with the producer's release store of tail_: the plain
    // payload reads below happen-after the producer filled the slot.
    if (h == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    const std::size_t slot = static_cast<std::size_t>(h % capacity_);
    header = headers_[slot];
    const double* src = values_.data() + slot * width_;
    for (std::size_t k = 0; k < width_; ++k) values[k] = src[k];
    // Release retires the slot; pairs with the producer's acquire load of
    // head_ before it reuses the storage.
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Single-writer roles (claims, not locks — see SoleWriterRole). The
  /// mesh driver wires one agent to each end at spawn time and claims the
  /// role once per thread.
  SoleWriterRole producer;
  SoleWriterRole consumer;

 private:
  std::size_t width_;
  std::size_t capacity_;
  // The index atomics live on separate cache lines so the producer's
  // tail_ stores never false-share with the consumer's head_ stores.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next slot to pop
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next slot to fill
  std::vector<index_t> headers_;  ///< plain; published via the indices
  std::vector<double> values_;    ///< plain; slot-strided packet payloads
};

}  // namespace ajac::mesh
