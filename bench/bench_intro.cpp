// The paper's INTRODUCTION claim, made quantitative: synchronization is
// the looming exascale bottleneck, and asynchronous methods remove it.
//
// We compare, on one heterogeneous-diffusion problem across rank counts:
//   * conjugate gradients — far fewer iterations, but two global
//     reductions per iteration, each costing an alpha * log2(P) tree;
//     modeled analytically from the measured CG iteration count;
//   * synchronous Jacobi (distsim) — barrier per sweep;
//   * asynchronous Jacobi (distsim) — no synchronization at all.
//
// As P grows, CG's reductions and Jacobi's barrier grow like log2(P)
// while asynchronous Jacobi's cost per relaxation stays flat: the
// crossover against CG moves toward modest tolerances at scale.

#include <cmath>
#include <cstdio>

#include "ajac/gen/analogues.hpp"
#include "ajac/solvers/krylov.hpp"
#include "bench_common.hpp"

using namespace ajac;

namespace {

/// Analytic distributed-time model for CG: per iteration, one SpMV
/// (local flops + one ghost exchange) and two allreduces.
double cg_sim_seconds(index_t iterations, index_t synchronizations,
                      index_t nnz, index_t boundary_doubles, index_t ranks,
                      const distsim::CostModel& cost) {
  const double spmv =
      cost.flop_time * static_cast<double>(nnz) / static_cast<double>(ranks) +
      cost.message_time(8 * boundary_doubles /
                        std::max<index_t>(ranks, 1));
  const double allreduce =
      cost.alpha * std::max(1.0, std::log2(static_cast<double>(ranks)));
  // Vector updates are absorbed into iteration_overhead.
  const double per_iter = spmv + cost.iteration_overhead;
  return static_cast<double>(iterations) * per_iter +
         static_cast<double>(synchronizations) * allreduce;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_intro",
                "async Jacobi vs CG under synchronization costs");
  bench::add_common_options(cli);
  cli.add_option("scale", "0.1", "ecology2 analogue size multiplier");
  cli.add_option("ranks", "32,128,512,2048", "rank counts");
  cli.add_option("tolerance", "1e-2",
                 "relative residual target (modest: Jacobi-feasible)");
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");
  const auto ranks_list = cli.get_int_list("ranks");
  const double tol = cli.get_double("tolerance");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto p = gen::make_problem(
      "ecology2", gen::make_analogue("ecology2", scale, seed), seed);
  std::printf("== Intro claim: synchronization cost at scale (n=%lld) ==\n",
              static_cast<long long>(p.a.num_rows()));

  // CG iteration count to the same L2-equivalent tolerance (measured once;
  // it does not depend on the rank count).
  solvers::CgOptions co;
  co.tolerance = tol;
  co.max_iterations = 100000;
  const auto cg = solvers::conjugate_gradient(p.a, p.b, p.x0, co);
  std::printf("CG needs %lld iterations (%lld global reductions)\n",
              static_cast<long long>(cg.iterations),
              static_cast<long long>(cg.synchronizations));

  Table table({"ranks", "CG model (s)", "sync Jacobi (s)", "async Jacobi (s)",
               "async/CG"});
  table.set_double_format("%.4g");
  for (index_t ranks : ranks_list) {
    if (ranks > p.a.num_rows()) continue;
    const auto pp = bench::partition_problem(p, ranks, seed);
    const auto stats = partition::compute_stats(pp.a, pp.part);

    distsim::DistOptions o;
    o.num_processes = ranks;
    o.max_iterations = 1000000;
    o.tolerance = tol;
    o.seed = seed;
    o.synchronous = true;
    const auto rs = distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
    o.synchronous = false;
    const auto ra = distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);

    const double t_cg =
        cg_sim_seconds(cg.iterations, cg.synchronizations, p.a.num_nonzeros(),
                       stats.edge_cut, ranks, o.cost);
    const double t_sync = bench::time_to_threshold(rs.history, tol);
    const double t_async = bench::time_to_threshold(ra.history, tol);
    table.add_row({ranks, t_cg, t_sync, t_async, t_async / t_cg});
  }
  bench::emit(table, cli, "intro");
  std::printf(
      "\nReading: CG wins on iteration count, but each iteration carries two\n"
      "log2(P) reductions. Asynchronous Jacobi's time keeps FALLING with P\n"
      "while CG's reduction term grows — the async/CG ratio shrinks with\n"
      "scale, the paper's exascale motivation in one table. (For tight\n"
      "tolerances CG still wins outright; stationary methods shine as\n"
      "smoothers/preconditioner components and at modest accuracy.)\n");
  return 0;
}
