// Figure 6 reproduction: asynchronous Jacobi converging where synchronous
// Jacobi does not, FE matrix with 3081 rows (rho(G) > 1).
//
//  (a) relative residual 1-norm vs iterations for 68/136/272 workers,
//      synchronous and asynchronous;
//  (b) long asynchronous run at 272 workers confirming true convergence.
//
// Paper setup: KNL (68 physical cores, up to 272 hyperthreads). Expected
// shape: every synchronous run diverges; asynchronous runs diverge at 68,
// diverge more slowly at 136, and converge at 272 workers — added
// concurrency turns the iteration multiplicative (Sec. IV-D).

#include <cstdio>

#include "ajac/gen/fe.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_fig6", "Fig. 6: async rescues the divergent FE matrix");
  bench::add_common_options(cli);
  cli.add_option("workers", "68,136,272", "worker counts");
  cli.add_option("cores", "68", "physical cores in the machine model");
  cli.add_option("iterations", "600", "panel (a) local iterations");
  cli.add_option("long-iterations", "3000", "panel (b) local iterations");
  cli.add_option("print-points", "12", "history samples printed per curve");
  if (!cli.parse(argc, argv)) return 0;
  const auto workers = cli.get_int_list("workers");
  const auto cores = cli.get_int("cores");
  const auto iterations = cli.get_int("iterations");
  const auto long_iterations = cli.get_int("long-iterations");
  const auto points = std::max<index_t>(2, cli.get_int("print-points"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto p = gen::make_problem("fe3081", gen::paper_fe_3081(), seed);

  std::printf("== Fig. 6(a): FE 3081, sync vs async across worker counts ==\n");
  Table table({"variant", "workers", "iterations", "rel residual 1-norm"});
  table.set_double_format("%.4e");

  auto run = [&](bool synchronous, index_t w, index_t iters) {
    const auto pp = bench::partition_problem(p, w, seed);
    distsim::DistOptions o;
    o.num_processes = w;
    o.synchronous = synchronous;
    o.max_iterations = iters;
    o.cost = distsim::CostModel::shared_memory_like(p.a.num_rows());
    o.cost.cores = cores;
    o.seed = seed;
    return distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
  };

  auto emit_curve = [&](const char* variant, index_t w,
                        const distsim::DistResult& r, Table& t) {
    const std::size_t stride =
        std::max<std::size_t>(1, r.history.size() / points);
    for (std::size_t k = 0; k < r.history.size(); k += stride) {
      t.add_row({std::string(variant), w,
                 static_cast<double>(r.history[k].relaxations) /
                     static_cast<double>(p.a.num_rows()),
                 r.history[k].rel_residual_1});
    }
  };

  for (index_t w : workers) {
    const auto rs = run(true, w, iterations);
    const auto ra = run(false, w, iterations);
    emit_curve("sync", w, rs, table);
    emit_curve("async", w, ra, table);
    std::printf("workers=%3lld: sync final=%.3e  async final=%.3e\n",
                static_cast<long long>(w), rs.final_rel_residual_1,
                ra.final_rel_residual_1);
  }
  bench::emit(table, cli, "fig6a");

  std::printf("\n== Fig. 6(b): long async run at %lld workers ==\n",
              static_cast<long long>(workers.back()));
  Table table_b({"iterations", "rel residual 1-norm"});
  table_b.set_double_format("%.4e");
  const auto rb = run(false, workers.back(), long_iterations);
  const std::size_t stride =
      std::max<std::size_t>(1, rb.history.size() / points);
  for (std::size_t k = 0; k < rb.history.size(); k += stride) {
    table_b.add_row({static_cast<double>(rb.history[k].relaxations) /
                         static_cast<double>(p.a.num_rows()),
                     rb.history[k].rel_residual_1});
  }
  table_b.add_row({static_cast<double>(rb.history.back().relaxations) /
                       static_cast<double>(p.a.num_rows()),
                   rb.history.back().rel_residual_1});
  bench::emit(table_b, cli, "fig6b");
  std::printf(
      "\nPaper shape: all sync runs diverge (rho(G) > 1); async starts to\n"
      "converge once the worker count reaches 272, and panel (b) shows the\n"
      "272-worker run truly converging rather than diverging later.\n");
  return 0;
}
