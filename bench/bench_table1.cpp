// Table I reproduction: the test-problem inventory.
//
// Paper columns: Matrix | Non-zeros | Equations. We print the paper's
// numbers next to the generated analogue's actual size plus the properties
// that drive the experiments (W.D.D. fraction, rho(G), Chazan–Miranker
// rho(|G|)), so every claim about the test set is checkable.

#include <cstdio>

#include "ajac/eig/lanczos.hpp"
#include "ajac/eig/power.hpp"
#include "ajac/gen/analogues.hpp"
#include "ajac/sparse/properties.hpp"
#include "ajac/sparse/scaling.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_table1", "Table I: test problems and their properties");
  bench::add_common_options(cli);
  cli.add_option("scale", "0.15",
                 "analogue size multiplier (1.0 = reduced defaults, larger "
                 "approaches the SuiteSparse originals)");
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== Table I: SuiteSparse test set and generated analogues ==\n");
  Table table({"matrix", "paper nnz", "paper eq", "analogue nnz",
               "analogue eq", "wdd frac", "rho(G)", "rho(|G|)",
               "jacobi converges"});
  table.set_double_format("%.4g");
  for (const auto& info : gen::table1_catalogue()) {
    const CsrMatrix a = gen::make_analogue(info.name, scale, seed);
    const CsrMatrix s = scale_to_unit_diagonal(a);
    const double rho = eig::jacobi_spectral_radius_spd(a);
    eig::PowerOptions popts;
    popts.max_iterations = 2000;
    popts.tolerance = 1e-7;
    const double rho_abs = eig::spectral_radius_abs_jacobi(s, popts);
    table.add_row({info.name, info.paper_nonzeros, info.paper_equations,
                   a.num_nonzeros(), a.num_rows(), wdd_fraction(s), rho,
                   rho_abs,
                   std::string(rho < 1.0 ? "yes" : "no")});
  }
  bench::emit(table, cli, "table1");
  std::printf(
      "\nPaper behaviour to reproduce: all matrices SPD; Jacobi converges on\n"
      "every problem except Dubcova2 (rho(G) > 1).\n");
  return 0;
}
