// Figure 7 reproduction: relative residual norm vs relaxations/n for the
// six Jacobi-convergent Table-I problems, synchronous vs asynchronous,
// with the asynchronous runs swept over increasing rank counts.
//
// Paper setup: Cori Haswell, 1..128 nodes = 32..4096 MPI ranks,
// point-to-point for sync and MPI_Put RMA for async; matrices partitioned
// with METIS. Expected shape: async converges in fewer (or similar)
// relaxations than sync, and *more ranks improve the async convergence
// rate* — most visibly on the smaller problems (thermomech_dm), whose
// subdomains shrink fastest.
//
// Substitution: the distsim runtime with the network (alpha-beta) cost
// model stands in for Cori; the Table-I matrices are generated analogues
// at --scale of their reduced default sizes.

#include <cstdio>

#include "ajac/gen/analogues.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_fig7",
                "Fig. 7: residual vs relaxations/n, Table-I problems");
  bench::add_common_options(cli);
  cli.add_option("scale", "0.2", "analogue size multiplier");
  cli.add_option("ranks", "32,128,512,2048", "async rank counts (green->blue)");
  cli.add_option("sync-ranks", "32", "rank count for the sync curve");
  cli.add_option("iterations", "300", "local iterations per rank");
  cli.add_option("print-points", "10", "history samples printed per curve");
  cli.add_option("matrix", "",
                 "run a single matrix by name (default: all six)");
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");
  const auto ranks = cli.get_int_list("ranks");
  const auto sync_ranks = cli.get_int("sync-ranks");
  const auto iterations = cli.get_int("iterations");
  const auto points = std::max<index_t>(2, cli.get_int("print-points"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string only = cli.get_string("matrix");

  std::printf("== Fig. 7: Table-I problems, residual vs relaxations/n ==\n");
  Table table({"matrix", "variant", "ranks", "relaxations/n",
               "rel residual 1-norm"});
  table.set_double_format("%.4e");

  for (const auto& info : gen::table1_catalogue()) {
    if (!info.jacobi_converges) continue;  // Dubcova2 is Fig. 9
    if (!only.empty() && info.name != only) continue;
    const auto p =
        gen::make_problem(info.name, gen::make_analogue(info.name, scale, seed),
                          seed);
    std::printf("-- %s: n=%lld nnz=%lld --\n", info.name.c_str(),
                static_cast<long long>(p.a.num_rows()),
                static_cast<long long>(p.a.num_nonzeros()));

    auto run = [&](bool synchronous, index_t r_count) {
      const auto pp = bench::partition_problem(p, r_count, seed);
      distsim::DistOptions o;
      o.num_processes = r_count;
      o.synchronous = synchronous;
      o.max_iterations = iterations;
      o.seed = seed;
      o.snapshot_dt = 0.0;
      return distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
    };
    auto emit_curve = [&](const char* variant, index_t r_count,
                          const distsim::DistResult& r) {
      const std::size_t stride =
          std::max<std::size_t>(1, r.history.size() / points);
      for (std::size_t k = 0; k < r.history.size(); k += stride) {
        table.add_row({info.name, std::string(variant), r_count,
                       static_cast<double>(r.history[k].relaxations) /
                           static_cast<double>(p.a.num_rows()),
                       r.history[k].rel_residual_1});
      }
    };

    const auto rs = run(true, sync_ranks);
    emit_curve("sync", sync_ranks, rs);
    double prev_final = 1e300;
    for (index_t r_count : ranks) {
      if (r_count > p.a.num_rows()) continue;
      const auto ra = run(false, r_count);
      emit_curve("async", r_count, ra);
      std::printf("   async %4lld ranks: final rel res %.3e%s\n",
                  static_cast<long long>(r_count), ra.final_rel_residual_1,
                  ra.final_rel_residual_1 <= prev_final * 1.05
                      ? ""
                      : "  (slower than previous)");
      prev_final = ra.final_rel_residual_1;
    }
    std::printf("   sync %5lld ranks: final rel res %.3e\n",
                static_cast<long long>(sync_ranks), rs.final_rel_residual_1);
  }
  bench::emit(table, cli, "fig7");
  std::printf(
      "\nPaper shape: async needs fewer relaxations than sync for the same\n"
      "residual, and increasing the rank count improves async convergence,\n"
      "most prominently on the smaller problems.\n");
  return 0;
}
