// Convergence under injected faults (Fig. 2/3-style residual histories).
//
// The paper's "surprising results" hinge on asynchronous Jacobi tolerating
// heterogeneous progress: a slowed worker changes *when* information
// propagates but not *whether* the method contracts. This harness pushes
// that claim past what the paper measured by injecting declarative fault
// plans (ajac/fault/fault_plan.hpp) into both async runtimes:
//
//  * shared memory — stragglers, stale-read windows, transient bit flips
//    in off-diagonal entries, crash-and-recover threads;
//  * distributed simulator — per-edge message drop/duplicate/reorder,
//    stragglers, delivery freezes, crash-and-recover ranks.
//
// Part C replays a recorded faulty trace through the propagation-matrix
// model: for fully propagated traces the model reproduces the execution
// bitwise (Sec. IV-A applies unchanged); stale or bit-flipped executions
// leave the model's reach, and the replay quantifies the divergence
// instead (DESIGN.md, "Fault model").

#include <cstdio>
#include <map>
#include <memory>

#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/obs/trace_sink.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "bench_common.hpp"

using namespace ajac;

namespace {

using PlanPtr = std::shared_ptr<const fault::FaultPlan>;

// ---- Part A: shared-memory runtime --------------------------------------

struct SharedCase {
  const char* name;
  PlanPtr plan;
};

std::vector<SharedCase> shared_cases(std::uint64_t seed) {
  std::vector<SharedCase> cases;
  cases.push_back({"none", nullptr});

  auto straggler = std::make_shared<fault::FaultPlan>();
  straggler->seed = seed;
  straggler->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 50.0, .period = 32, .duty = 0.5});
  cases.push_back({"straggler", straggler});

  auto stale = std::make_shared<fault::FaultPlan>();
  stale->seed = seed;
  stale->stale_reads.push_back({.actor = -1, .period = 16, .duty = 0.5});
  cases.push_back({"stale-reads", stale});

  auto bitflip = std::make_shared<fault::FaultPlan>();
  bitflip->seed = seed;
  // Low mantissa bits only: a transient fault that perturbs without
  // catastrophically inflating an entry, so convergence is delayed, not
  // destroyed. (--bitflip-bit -1 picks bits at random, exponent excluded.)
  bitflip->bit_flips.push_back({.actor = -1, .probability = 1e-3, .bit = 20});
  cases.push_back({"bit-flips", bitflip});

  auto crash = std::make_shared<fault::FaultPlan>();
  crash->seed = seed;
  crash->crashes.push_back(
      {.actor = 0, .crash_iteration = 8, .dead_seconds = 2e-4});
  cases.push_back({"crash", crash});

  auto crash_reset = std::make_shared<fault::FaultPlan>();
  crash_reset->seed = seed;
  crash_reset->crashes.push_back({.actor = 0,
                                  .crash_iteration = 8,
                                  .dead_seconds = 2e-4,
                                  .reset_state_on_recovery = true});
  cases.push_back({"crash+reset", crash_reset});
  return cases;
}

void run_shared(const gen::LinearProblem& p, index_t threads,
                std::uint64_t seed, const CliParser& cli) {
  std::printf("== shared-memory async Jacobi under faults (%s, %lld rows) ==\n",
              p.name.c_str(), static_cast<long long>(p.a.num_rows()));
  Table table({"fault", "converged", "rel residual", "relaxations",
               "polish", "events"});
  table.set_double_format("%.2e");
  for (const SharedCase& c : shared_cases(seed)) {
    runtime::SharedOptions o;
    o.num_threads = threads;
    o.tolerance = 1e-6;
    o.max_iterations = 4000;
    o.record_history = false;
    o.yield = true;
    o.fault_plan = c.plan;
    const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
    table.add_row({std::string(c.name),
                   std::string(r.converged ? "yes" : "no"),
                   r.final_rel_residual_1, r.total_relaxations,
                   r.polish_sweeps,
                   static_cast<index_t>(r.fault_events.size())});
  }
  bench::emit(table, cli, "faults_shared");
  std::printf(
      "\nEvery fault class converges: stragglers and crashes only delay\n"
      "propagation, stale windows act like larger message latencies, and\n"
      "low-bit flips perturb within the contraction's slack. 'polish' > 0\n"
      "means the serial cleanup had to finish what the faulty parallel\n"
      "phase left above tolerance.\n\n");
}

// ---- Part B: distributed simulator ---------------------------------------

struct DistCase {
  const char* name;
  PlanPtr plan;
};

std::vector<DistCase> dist_cases(std::uint64_t seed) {
  std::vector<DistCase> cases;
  cases.push_back({"none", nullptr});

  auto drop = std::make_shared<fault::FaultPlan>();
  drop->seed = seed;
  drop->message_faults.push_back({.drop_probability = 0.2});
  cases.push_back({"drop 20%", drop});

  auto dup = std::make_shared<fault::FaultPlan>();
  dup->seed = seed;
  dup->message_faults.push_back({.duplicate_probability = 0.2});
  cases.push_back({"duplicate 20%", dup});

  auto reorder = std::make_shared<fault::FaultPlan>();
  reorder->seed = seed;
  reorder->message_faults.push_back(
      {.reorder_probability = 0.2, .reorder_latency_factor = 8.0});
  cases.push_back({"reorder 20%", reorder});

  auto straggler = std::make_shared<fault::FaultPlan>();
  straggler->seed = seed;
  straggler->stragglers.push_back(
      {.actor = 0, .delay_factor = 8.0, .period = 64, .duty = 0.5});
  cases.push_back({"straggler x8", straggler});

  auto stale = std::make_shared<fault::FaultPlan>();
  stale->seed = seed;
  stale->stale_reads.push_back({.actor = 1, .period = 32, .duty = 0.5});
  cases.push_back({"frozen mailbox", stale});

  auto crash = std::make_shared<fault::FaultPlan>();
  crash->seed = seed;
  crash->crashes.push_back(
      {.actor = 0, .crash_iteration = 20, .dead_seconds = 5e-4});
  cases.push_back({"crash", crash});
  return cases;
}

void run_dist(const gen::LinearProblem& p, index_t procs, std::uint64_t seed,
              const CliParser& cli) {
  std::printf("== distributed async Jacobi under faults (%s, %lld ranks) ==\n",
              p.name.c_str(), static_cast<long long>(procs));
  const auto pp = bench::partition_problem(p, procs, seed);
  Table table({"fault", "reached tol", "rel residual", "sim ms",
               "relaxations", "dropped", "dup'd", "events"});
  table.set_double_format("%.2e");
  for (const DistCase& c : dist_cases(seed)) {
    distsim::DistOptions o;
    o.num_processes = procs;
    o.max_iterations = 2000;
    o.tolerance = 1e-6;
    o.seed = seed;
    o.fault_plan = c.plan;
    const auto r = distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
    table.add_row({std::string(c.name),
                   std::string(r.reached_tolerance ? "yes" : "no"),
                   r.final_rel_residual_1, r.sim_seconds * 1e3,
                   r.total_relaxations, r.dropped_messages,
                   r.duplicated_messages,
                   static_cast<index_t>(r.fault_events.size())});
  }
  bench::emit(table, cli, "faults_dist");
  std::printf(
      "\nDropped puts are pure staleness (the next put carries the newest\n"
      "value anyway), duplicates are absorbed by idempotent ghost slots,\n"
      "and reordering only matters without ordered_delivery. The racy\n"
      "update rule keeps crashed ranks' neighbors relaxing throughout.\n\n");
}

// ---- Part C: model replay of a recorded faulty trace ---------------------

void run_replay(const gen::LinearProblem& p, index_t threads,
                std::uint64_t seed, const CliParser& cli) {
  std::printf("== propagation-model replay of a straggler-plan trace ==\n");
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = seed;
  plan->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 50.0, .period = 16, .duty = 0.5});

  runtime::SharedOptions o;
  o.num_threads = threads;
  o.tolerance = 0.0;  // fixed-length run: the trace determines everything
  o.max_iterations = 50;
  o.record_history = false;
  o.record_trace = true;
  o.yield = true;
  o.final_polish = false;
  o.fault_plan = plan;
  const auto run = runtime::solve_shared(p.a, p.b, p.x0, o);

  model::ExecutorOptions mo;
  mo.tolerance = 0.0;
  const auto replay = model::replay_trace(p.a, p.b, p.x0, *run.trace, mo);
  const double max_diff = vec::max_abs_diff(run.x, replay.result.x);

  Table table({"metric", "value"});
  table.set_double_format("%.3e");
  table.add_row({std::string("relaxations (runtime)"), run.total_relaxations});
  table.add_row({std::string("parallel steps (model)"),
                 replay.analysis.parallel_steps});
  table.add_row({std::string("propagated fraction"),
                 replay.analysis.fraction});
  table.add_row({std::string("orphaned events"), replay.analysis.orphaned});
  table.add_row({std::string("max |x_run - x_replay|"), max_diff});
  table.add_row({std::string("runtime rel residual"),
                 run.final_rel_residual_1});
  table.add_row({std::string("replay rel residual"),
                 replay.result.final_rel_residual_1});
  bench::emit(table, cli, "faults_replay");
  std::printf(
      "\nA fully propagated trace (fraction 1, orphaned 0) replays bitwise:\n"
      "max |x_run - x_replay| is exactly 0. Stale relaxations (fraction < 1)\n"
      "are beyond any propagation matrix (Fig. 1(b)) and surface here as a\n"
      "nonzero difference — the model documents, not bounds, them.\n");
}

// ---- Part D: observability artifacts (--metrics-json / --trace-out) ------

/// One obs-instrumented faulty run (straggler plan, traced reads so the
/// staleness histogram fills): writes the metrics snapshot and/or a
/// Perfetto-loadable timeline. This is the run CI archives as an artifact.
void run_observed(const gen::LinearProblem& p, index_t threads,
                  std::uint64_t seed, const CliParser& cli) {
  const std::string metrics_path = cli.get_string("metrics-json");
  const std::string trace_path = cli.get_string("trace-out");
  if (metrics_path.empty() && trace_path.empty()) return;

  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = seed;
  plan->stragglers.push_back(
      {.actor = 0, .extra_delay_us = 50.0, .period = 16, .duty = 0.5});

  obs::MetricsRegistry reg;
  runtime::SharedOptions o;
  o.num_threads = threads;
  o.tolerance = 1e-6;
  o.max_iterations = 4000;
  o.record_history = false;
  o.record_trace = true;  // seqlock versions feed the staleness histogram
  o.yield = true;
  o.fault_plan = plan;
  o.metrics = &reg;
  const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);

  if (!metrics_path.empty()) {
    std::map<std::string, std::string> md;
    md["bench"] = "bench_faults";
    md["case"] = "straggler+trace";
    md["matrix"] = p.name;
    md["threads"] = std::to_string(threads);
    md["converged"] = r.converged ? "true" : "false";
    md["git_sha"] = AJAC_GIT_SHA;
    md["compiler"] = __VERSION__;
    obs::write_file(metrics_path, obs::to_json(reg.snapshot(), md));
    std::printf("(metrics snapshot written to %s)\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    obs::TraceEventSink sink;
    sink.add_registry(reg, "solve_shared straggler run");
    sink.write(trace_path);
    std::printf(
        "(timeline with %zu events written to %s — load it in Perfetto or "
        "chrome://tracing)\n",
        sink.num_events(), trace_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_faults",
                "Convergence of the async runtimes under injected faults");
  bench::add_common_options(cli);
  cli.add_option("threads", "4", "shared-memory worker threads");
  cli.add_option("procs", "8", "simulated distributed ranks");
  cli.add_option("grid", "16", "FD grid side (n = grid^2 rows)");
  cli.add_option("metrics-json", "",
                 "write an obs metrics snapshot of an instrumented "
                 "straggler run to this path");
  cli.add_option("trace-out", "",
                 "write a Chrome trace-event timeline of the same run to "
                 "this path");
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = cli.get_int("threads");
  const auto procs = cli.get_int("procs");
  const auto grid = cli.get_int("grid");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto problem = gen::make_problem(
      "fd" + std::to_string(grid * grid), gen::fd_laplacian_2d(grid, grid),
      seed);

  run_shared(problem, threads, seed, cli);
  run_dist(problem, procs, seed, cli);
  run_replay(problem, threads, seed, cli);
  run_observed(problem, threads, seed, cli);
  return 0;
}
