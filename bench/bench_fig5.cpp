// Figure 5 reproduction: scaling with the number of workers, FD matrix
// with 4624 rows / 22848 nonzeros (68x68 grid).
//
//  (a) time until the relative residual 1-norm drops below 1e-3;
//  (b) time to carry out 100 iterations regardless of residual.
//
// Paper setup: KNL, 1..272 threads (68 physical cores, 4 hyperthreads).
// Expected shape: async is faster than sync everywhere (the barrier and
// the slowest-thread wait dominate sync); sync is fastest below the full
// hyperthread count while async keeps improving up to 272 workers because
// added concurrency also *accelerates convergence* (fewer rows per worker
// => more multiplicative behaviour).
//
// Substitution: wall-clock comes from the distsim shared-memory cost model
// with 68 cores (the paper's machine shape); real OpenMP timing on this
// one-core host would only measure the OS scheduler.

#include <cstdio>

#include "ajac/gen/fd.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_fig5", "Fig. 5: time vs worker count, FD 4624");
  bench::add_common_options(cli);
  cli.add_option("workers", "1,2,4,8,17,34,68,136,272", "worker counts");
  cli.add_option("cores", "68", "physical cores in the machine model");
  cli.add_option("tolerance", "1e-3", "panel (a) residual target");
  cli.add_option("iterations", "100", "panel (b) iteration count");
  cli.add_option("samples", "3", "runs averaged per point");
  if (!cli.parse(argc, argv)) return 0;
  const auto workers = cli.get_int_list("workers");
  const auto cores = cli.get_int("cores");
  const double tol = cli.get_double("tolerance");
  const auto iters_b = cli.get_int("iterations");
  const auto samples = cli.get_int("samples");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== Fig. 5: scaling on FD 4624 (68x68 grid) ==\n");
  Table table({"workers", "sync time->tol", "async time->tol",
               "sync time 100 it", "async time 100 it"});
  table.set_double_format("%.4g");

  for (index_t w : workers) {
    double t_sync_tol = 0.0, t_async_tol = 0.0;
    double t_sync_100 = 0.0, t_async_100 = 0.0;
    for (index_t s = 0; s < samples; ++s) {
      const auto p = gen::make_problem(
          "fd4624", gen::paper_fd_4624(), seed + static_cast<std::uint64_t>(s));
      const auto pp = bench::partition_problem(p, w, seed);
      distsim::DistOptions base;
      base.num_processes = w;
      base.cost = distsim::CostModel::shared_memory_like(p.a.num_rows());
      base.cost.cores = cores;
      base.seed = seed + static_cast<std::uint64_t>(s);

      // Panel (a): run until the tolerance.
      for (bool synchronous : {true, false}) {
        distsim::DistOptions o = base;
        o.synchronous = synchronous;
        o.tolerance = tol;
        o.max_iterations = 1000000;
        const auto r =
            distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
        const double t = bench::time_to_threshold(r.history, tol);
        (synchronous ? t_sync_tol : t_async_tol) += t > 0 ? t : r.sim_seconds;
      }
      // Panel (b): exactly `iters_b` local iterations.
      for (bool synchronous : {true, false}) {
        distsim::DistOptions o = base;
        o.synchronous = synchronous;
        o.tolerance = 0.0;
        o.max_iterations = iters_b;
        const auto r =
            distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
        (synchronous ? t_sync_100 : t_async_100) += r.sim_seconds;
      }
    }
    const auto avg = [&](double x) { return x / static_cast<double>(samples); };
    table.add_row({w, avg(t_sync_tol), avg(t_async_tol), avg(t_sync_100),
                   avg(t_async_100)});
  }
  bench::emit(table, cli, "fig5");
  std::printf(
      "\nPaper shape: (a) async reaches the tolerance faster at every worker\n"
      "count and is fastest at 272 workers, while sync bottoms out below the\n"
      "maximum; (b) async also wins on fixed-iteration time because it skips\n"
      "the barrier and slowest-worker wait.\n");
  return 0;
}
