// Extension bench (the paper's stated future work, Sec. VI): distributed
// termination detection for asynchronous Jacobi.
//
// Compares three ways an asynchronous distributed run can stop:
//   oracle       — an omniscient observer stops the run the moment the
//                  true residual crosses the tolerance (lower bound);
//   norm-reduce  — the realistic protocol: periodic local-norm reports to
//                  rank 0 through the same network, stop broadcast back;
//   iterations   — the paper's fixed iteration count (needs a-priori
//                  knowledge; reported as the count the oracle needed).
//
// Columns report the detection overhead over the oracle and how honest
// the claimed residual was at the moment of detection.

#include <cstdio>

#include "ajac/gen/fd.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_termination",
                "async termination detection vs the oracle");
  bench::add_common_options(cli);
  cli.add_option("n", "64", "grid edge (n x n FD Laplacian)");
  cli.add_option("ranks", "16,64,256,1024", "rank counts");
  cli.add_option("tolerance", "1e-5", "residual target");
  cli.add_option("interval", "4", "iterations between norm reports");
  if (!cli.parse(argc, argv)) return 0;
  const auto n = cli.get_int("n");
  const auto ranks_list = cli.get_int_list("ranks");
  const double tol = cli.get_double("tolerance");
  const auto interval = cli.get_int("interval");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(n, n), seed);
  std::printf("== Termination detection (FD %lldx%lld, tol %.0e) ==\n",
              static_cast<long long>(n), static_cast<long long>(n), tol);
  Table table({"ranks", "oracle stop (s)", "detected stop (s)",
               "overhead", "claimed rel res", "true rel res",
               "oracle iterations"});
  table.set_double_format("%.4g");

  for (index_t ranks : ranks_list) {
    if (ranks > p.a.num_rows()) continue;
    const auto pp = bench::partition_problem(p, ranks, seed);
    distsim::DistOptions o;
    o.num_processes = ranks;
    o.max_iterations = 1000000;
    o.tolerance = tol;
    o.seed = seed;
    o.detection_interval = interval;

    o.termination = distsim::Termination::kIterationCountOrOracle;
    const auto oracle = distsim::solve_distributed(pp.a, pp.b, pp.x0,
                                                   pp.part, o);
    o.termination = distsim::Termination::kNormReduction;
    const auto detected = distsim::solve_distributed(pp.a, pp.b, pp.x0,
                                                     pp.part, o);
    const double t_oracle = bench::time_to_threshold(oracle.history, tol);
    index_t max_iter = 0;
    for (index_t it : oracle.iterations_per_process) {
      max_iter = std::max(max_iter, it);
    }
    table.add_row({ranks, t_oracle,
                   detected.detection_sim_seconds,
                   detected.detection_sim_seconds / t_oracle - 1.0,
                   detected.detection_claimed_residual,
                   detected.detection_true_residual, max_iter});
  }
  bench::emit(table, cli, "termination");
  std::printf(
      "\nTakeaway: the staleness-tolerant norm reduction stops within a few\n"
      "percent of the omniscient oracle, with the claimed residual an\n"
      "honest estimate — replacing the paper's fixed iteration counts\n"
      "(which must be guessed a priori).\n");
  return 0;
}
