// Kernel microbenchmarks (google-benchmark): the primitives underneath
// every experiment — SpMV, residual, masked propagation step, norms,
// coloring, partitioning, the trace analysis, and the shared-memory solve
// with metrics off vs. on (the observability overhead gate in CI compares
// the last two).
//
// Custom main: `--json <path>` is translated to google-benchmark's
// --benchmark_out/--benchmark_out_format=json pair, and run metadata (git
// sha, compiler, OpenMP width) is stamped into the report context.

#include <benchmark/benchmark.h>
#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/propagation.hpp"
#include "ajac/model/schedule.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/obs/monitor.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/mm_io.hpp"
#include "ajac/sparse/multi_vector.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

#ifndef AJAC_GIT_SHA
#define AJAC_GIT_SHA "unknown"
#endif

namespace {

using namespace ajac;

CsrMatrix grid(index_t edge) { return gen::fd_laplacian_2d(edge, edge); }

void BM_SpmvSerial(benchmark::State& state) {
  const CsrMatrix a = grid(state.range(0));
  Rng rng(1);
  Vector x(static_cast<std::size_t>(a.num_rows()));
  Vector y(x.size());
  vec::fill_uniform(x, rng);
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.num_nonzeros());
}
BENCHMARK(BM_SpmvSerial)->Arg(64)->Arg(256);

void BM_SpmvOpenMP(benchmark::State& state) {
  const CsrMatrix a = grid(state.range(0));
  Rng rng(1);
  Vector x(static_cast<std::size_t>(a.num_rows()));
  Vector y(x.size());
  vec::fill_uniform(x, rng);
  for (auto _ : state) {
    a.spmv_omp(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.num_nonzeros());
}
BENCHMARK(BM_SpmvOpenMP)->Arg(64)->Arg(256);

void BM_Residual(benchmark::State& state) {
  const auto p = gen::make_problem("fd", grid(state.range(0)), 1);
  Vector r(p.b.size());
  for (auto _ : state) {
    p.a.residual(p.x0, p.b, r);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * p.a.num_nonzeros());
}
BENCHMARK(BM_Residual)->Arg(64)->Arg(256);

void BM_MaskedStep(benchmark::State& state) {
  const auto p = gen::make_problem("fd", grid(128), 1);
  const index_t n = p.a.num_rows();
  // Activate the requested percentage of rows.
  std::vector<index_t> rows;
  for (index_t i = 0; i < n; ++i) {
    if (i % 100 < state.range(0)) rows.push_back(i);
  }
  const auto active = model::ActiveSet::from_indices(n, rows);
  Vector inv_diag(static_cast<std::size_t>(n), 1.0);
  Vector x = p.x0;
  Vector scratch(static_cast<std::size_t>(n));
  for (auto _ : state) {
    model::apply_step_inplace(p.a, inv_diag, p.b, active, x, scratch);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * active.count());
}
BENCHMARK(BM_MaskedStep)->Arg(10)->Arg(50)->Arg(100);

void BM_Norm1(benchmark::State& state) {
  Rng rng(1);
  Vector x(static_cast<std::size_t>(state.range(0)));
  vec::fill_uniform(x, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::norm1(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Norm1)->Arg(4624)->Arg(100000);

void BM_GreedyColoring(benchmark::State& state) {
  const CsrMatrix a = grid(state.range(0));
  for (auto _ : state) {
    index_t num = 0;
    benchmark::DoNotOptimize(model::greedy_coloring(a, &num));
  }
}
BENCHMARK(BM_GreedyColoring)->Arg(64)->Arg(128);

void BM_GraphGrowingPartition(benchmark::State& state) {
  const CsrMatrix a = grid(96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition::graph_growing_partition(a, state.range(0), 1));
  }
}
BENCHMARK(BM_GraphGrowingPartition)->Arg(16)->Arg(64);

void BM_TraceAnalysis(benchmark::State& state) {
  // Synthetic synchronous trace: n rows, `sweeps` sweeps.
  const index_t n = state.range(0);
  model::RelaxationTrace trace(n);
  for (index_t sweep = 0; sweep < 50; ++sweep) {
    for (index_t i = 0; i < n; ++i) {
      model::RelaxationEvent e;
      e.row = i;
      if (i > 0) e.reads.push_back({i - 1, sweep});
      if (i + 1 < n) e.reads.push_back({i + 1, sweep});
      trace.add_event(e);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::analyze_trace(trace));
  }
  state.SetItemsProcessed(state.iterations() * 50 * n);
}
BENCHMARK(BM_TraceAnalysis)->Arg(68)->Arg(272);

// Fixed-length asynchronous solves on a grid(edge) FD Laplacian at the
// machine's full OpenMP width (minimum 2, so the async interleaving is
// real even on single-core hosts). Three variants:
//   BM_SolveSharedAsync         reference kernels, no registry
//   BM_SolveSharedAsyncMetrics  reference kernels, live MetricsRegistry
//     (the pair is CI's observability overhead gate, <= 5%)
//   BM_SolveSharedBlocked       partition-aware blocked kernels
//     (vs BM_SolveSharedAsync at 256: CI's kernel speedup gate,
//      tools/check_kernel_speedup.py asserts Blocked >= Reference)
runtime::SharedOptions solve_opts(runtime::KernelKind kernel) {
  runtime::SharedOptions o;
  o.num_threads =
      std::max<index_t>(2, static_cast<index_t>(omp_get_max_threads()));
  o.kernel = kernel;
  o.tolerance = 0.0;  // fixed iteration count: all variants do equal work
  o.max_iterations = 50;
  o.record_history = false;
  o.final_polish = false;
  o.yield = true;
  return o;
}

void BM_SolveSharedAsync(benchmark::State& state) {
  const auto p = gen::make_problem("fd", grid(state.range(0)), 1);
  const runtime::SharedOptions o =
      solve_opts(runtime::KernelKind::kReference);
  for (auto _ : state) {
    const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  state.SetItemsProcessed(state.iterations() * 50 * p.a.num_rows());
}
BENCHMARK(BM_SolveSharedAsync)->Arg(32)->Arg(256)->UseRealTime();

void BM_SolveSharedAsyncMetrics(benchmark::State& state) {
  const auto p = gen::make_problem("fd", grid(state.range(0)), 1);
  runtime::SharedOptions o = solve_opts(runtime::KernelKind::kReference);
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  for (auto _ : state) {
    const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  state.SetItemsProcessed(state.iterations() * 50 * p.a.num_rows());
}
BENCHMARK(BM_SolveSharedAsyncMetrics)->Arg(32)->UseRealTime();

// Live-telemetry twin of BM_SolveSharedAsync: hub attached, monitor
// draining on its background thread while the solve runs — the worst
// realistic streaming configuration. The pair is CI's streaming overhead
// gate (tools/check_metrics_overhead.py, <= 5%).
void BM_SolveSharedAsyncStreaming(benchmark::State& state) {
  const auto p = gen::make_problem("fd", grid(state.range(0)), 1);
  runtime::SharedOptions o = solve_opts(runtime::KernelKind::kReference);
  obs::TelemetryOptions topts;
  topts.max_actors = o.num_threads;
  obs::TelemetryHub hub(topts);
  obs::ConvergenceMonitor monitor(hub);
  o.stream = &hub;
  monitor.start();
  for (auto _ : state) {
    const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  monitor.stop();
  benchmark::DoNotOptimize(monitor.estimates().beacons);
  state.SetItemsProcessed(state.iterations() * 50 * p.a.num_rows());
}
BENCHMARK(BM_SolveSharedAsyncStreaming)->Arg(32)->UseRealTime();

void BM_SolveSharedBlocked(benchmark::State& state) {
  const auto p = gen::make_problem("fd", grid(state.range(0)), 1);
  const runtime::SharedOptions o = solve_opts(runtime::KernelKind::kBlocked);
  for (auto _ : state) {
    const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  state.SetItemsProcessed(state.iterations() * 50 * p.a.num_rows());
}
BENCHMARK(BM_SolveSharedBlocked)->Arg(32)->Arg(256)->UseRealTime();

// Bandwidth-engineered kernels (SELL-C-sigma interior + dense ghost
// buffers). The micro sizes here are a smoke-level comparison point; the
// large-n story this path exists for is measured by bench_scale, whose
// report CI gates with tools/check_kernel_speedup.py --scale.
void BM_SolveSharedSellCS(benchmark::State& state) {
  const auto p = gen::make_problem("fd", grid(state.range(0)), 1);
  const runtime::SharedOptions o = solve_opts(runtime::KernelKind::kSellCS);
  for (auto _ : state) {
    const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  state.SetItemsProcessed(state.iterations() * 50 * p.a.num_rows());
}
BENCHMARK(BM_SolveSharedSellCS)->Arg(32)->Arg(256)->UseRealTime();

// Batched multi-RHS solves, blocked kernels, fixed 50 iterations, k random
// right-hand sides. Items = row *updates* (rows x k per iteration), so
// items_per_second measures aggregate throughput: the k=8 / k=1 ratio is
// CI's batch amortization gate (tools/check_batch_throughput.py, >= 2x).
// The k=1 run uses the same batch code path (MultiVector with lead 1), so
// the ratio isolates CSR-gather amortization + SIMD lane fill from any
// fixed per-solve overhead. Note on thread counts: the SharedMultiVector
// rows behind this bench are padded so equal row blocks never share a
// cache line; at 8 threads on a multi-core host the k=1 column would
// otherwise false-share boundary lines (see shared_vector.hpp). On the
// single-core CI host the threads time-slice, so the gate measures
// amortization, not cache traffic.
MultiVector batch_rhs(index_t n, index_t k) {
  MultiVector b(n, k);
  Rng rng(7);
  for (index_t i = 0; i < n; ++i) {
    double* row = b.row(i);
    for (index_t c = 0; c < k; ++c) row[c] = rng.uniform(-1.0, 1.0);
  }
  return b;
}

void BM_SolveSharedBatch(benchmark::State& state) {
  const CsrMatrix a = grid(state.range(0));
  const index_t n = a.num_rows();
  const index_t k = state.range(1);
  const MultiVector b = batch_rhs(n, k);
  const MultiVector x0(n, k);
  const runtime::SharedOptions o = solve_opts(runtime::KernelKind::kBlocked);
  for (auto _ : state) {
    const auto r = runtime::solve_shared_batch(a, b, x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  state.SetItemsProcessed(state.iterations() * 50 * n * k);
}
BENCHMARK(BM_SolveSharedBatch)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({256, 16})
    ->UseRealTime();

// Metrics-on batch run (paired with BM_SolveSharedBatchMetricsOff below):
// CI's batch observability overhead gate, <= 5%
// (tools/check_metrics_overhead.py).
void BM_SolveSharedBatchMetricsOff(benchmark::State& state) {
  const CsrMatrix a = grid(32);
  const index_t n = a.num_rows();
  const index_t k = 8;
  const MultiVector b = batch_rhs(n, k);
  const MultiVector x0(n, k);
  const runtime::SharedOptions o = solve_opts(runtime::KernelKind::kBlocked);
  for (auto _ : state) {
    const auto r = runtime::solve_shared_batch(a, b, x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  state.SetItemsProcessed(state.iterations() * 50 * n * k);
}
BENCHMARK(BM_SolveSharedBatchMetricsOff)->UseRealTime();

void BM_SolveSharedBatchMetrics(benchmark::State& state) {
  const CsrMatrix a = grid(32);
  const index_t n = a.num_rows();
  const index_t k = 8;
  const MultiVector b = batch_rhs(n, k);
  const MultiVector x0(n, k);
  runtime::SharedOptions o = solve_opts(runtime::KernelKind::kBlocked);
  obs::MetricsRegistry reg;
  o.metrics = &reg;
  for (auto _ : state) {
    const auto r = runtime::solve_shared_batch(a, b, x0, o);
    benchmark::DoNotOptimize(r.total_relaxations);
  }
  state.SetItemsProcessed(state.iterations() * 50 * n * k);
}
BENCHMARK(BM_SolveSharedBatchMetrics)->UseRealTime();

// Problem behind the --n / --matrix dynamic registrations; owned here so
// the registered lambdas (which may run long after main's locals would
// have died in a refactor) capture a stable pointer.
std::shared_ptr<const gen::LinearProblem> custom_problem;

void register_custom_solves(const std::string& label) {
  struct NamedKernel {
    const char* name;
    runtime::KernelKind kind;
  };
  static constexpr NamedKernel kKernels[] = {
      {"BM_SolveSharedAsync", runtime::KernelKind::kReference},
      {"BM_SolveSharedBlocked", runtime::KernelKind::kBlocked},
      {"BM_SolveSharedSellCS", runtime::KernelKind::kSellCS},
  };
  for (const NamedKernel& k : kKernels) {
    benchmark::RegisterBenchmark(
        (std::string(k.name) + "/" + label).c_str(),
        [kind = k.kind](benchmark::State& state) {
          const gen::LinearProblem& p = *custom_problem;
          const runtime::SharedOptions o = solve_opts(kind);
          for (auto _ : state) {
            const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
            benchmark::DoNotOptimize(r.total_relaxations);
          }
          state.SetItemsProcessed(state.iterations() * 50 * p.a.num_rows());
        })
        ->UseRealTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string custom_edge;
  std::string custom_mtx;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      continue;
    }
    // --n EDGE: additionally run the three shared-solve kernels on an
    // fd:EDGExEDGE Laplacian (sizes beyond the wired-in Arg list).
    if (arg == "--n" && i + 1 < argc) {
      custom_edge = argv[++i];
      continue;
    }
    if (arg.rfind("--n=", 0) == 0) {
      custom_edge = arg.substr(4);
      continue;
    }
    // --matrix FILE.mtx: same three kernels on an imported Matrix Market
    // matrix (scaled to unit diagonal like every other problem here).
    if (arg == "--matrix" && i + 1 < argc) {
      custom_mtx = argv[++i];
      continue;
    }
    if (arg.rfind("--matrix=", 0) == 0) {
      custom_mtx = arg.substr(9);
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!custom_edge.empty() && !custom_mtx.empty()) {
    std::fprintf(stderr, "bench_kernels: pass --n or --matrix, not both\n");
    return 1;
  }
  try {
    if (!custom_edge.empty()) {
      const auto edge = static_cast<ajac::index_t>(std::stoll(custom_edge));
      custom_problem = std::make_shared<gen::LinearProblem>(
          gen::make_problem("fd", grid(edge), 1));
      register_custom_solves("n=" + custom_edge);
    } else if (!custom_mtx.empty()) {
      custom_problem = std::make_shared<gen::LinearProblem>(gen::make_problem(
          custom_mtx, ajac::read_matrix_market(custom_mtx), 1));
      register_custom_solves("mtx");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_kernels: cannot set up custom problem: %s\n",
                 e.what());
    return 1;
  }
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  benchmark::AddCustomContext("git_sha", AJAC_GIT_SHA);
  benchmark::AddCustomContext("compiler", __VERSION__);
  // The stock "library_build_type" field describes how the *benchmark
  // library* was compiled (often debug for distro packages); this one
  // describes the code actually under test.
  benchmark::AddCustomContext("ajac_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::AddCustomContext("omp_max_threads",
                              std::to_string(omp_get_max_threads()));
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
