// Figure 3 reproduction: speedup of asynchronous over synchronous Jacobi
// as a function of the delay experienced by one worker.
//
// Paper setup: FD matrix with 68 rows / 298 nonzeros, 68 workers (one row
// each), relative residual 1-norm tolerance 1e-3; a single worker (a row
// near the middle) is delayed by delta. Synchronous Jacobi waits at the
// barrier for the slow worker, so its time is (iterations x delta);
// asynchronous Jacobi keeps relaxing the other rows. Both the model-time
// speedup and a wall-clock-style speedup (distsim with a delayed process)
// are reported. Expected shape: speedup ~1 at delta=0, rising steeply and
// plateauing once the delayed row's information no longer limits progress.

#include <cstdio>

#include "ajac/gen/fd.hpp"
#include "ajac/model/executor.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_fig3", "Fig. 3: async/sync speedup vs delay");
  bench::add_common_options(cli);
  cli.add_option("tolerance", "1e-3", "relative residual 1-norm target");
  cli.add_option("deltas", "1,2,5,10,20,50,100", "model delays to sweep");
  cli.add_option("samples", "5", "random right-hand sides per point");
  if (!cli.parse(argc, argv)) return 0;
  const double tol = cli.get_double("tolerance");
  const auto deltas = cli.get_int_list("deltas");
  const auto samples = cli.get_int("samples");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== Fig. 3: speedup of asynchronous over synchronous Jacobi ==\n");
  Table table({"delta", "sync model time", "async model time",
               "model speedup", "sim-time speedup (distsim)"});
  table.set_double_format("%.3g");

  for (index_t delta : deltas) {
    double sync_steps = 0.0;
    double async_steps = 0.0;
    double sim_speedup = 0.0;
    for (index_t s = 0; s < samples; ++s) {
      const auto p = gen::make_problem(
          "fd68", gen::paper_fd_68(), seed + static_cast<std::uint64_t>(s));
      const index_t n = p.a.num_rows();
      model::ExecutorOptions eo;
      eo.tolerance = tol;
      eo.max_steps = 1000000;
      eo.record_every = 64;

      model::SynchronousSchedule sync(n, delta);
      const auto rs = model::run_model(p.a, p.b, p.x0, sync, eo);
      model::DelayedRowsSchedule async(n, {{n / 2, delta}});
      const auto ra = model::run_model(p.a, p.b, p.x0, async, eo);
      sync_steps += static_cast<double>(rs.steps);
      async_steps += static_cast<double>(ra.steps);

      // Distributed-simulation counterpart: one process per row, the
      // middle one `delta` times slower.
      const auto pp = bench::partition_problem(p, n, seed);
      distsim::DistOptions base;
      base.num_processes = n;
      base.max_iterations = 1000000;
      base.tolerance = tol;
      base.cost = distsim::CostModel::shared_memory_like(n);
      base.seed = seed + static_cast<std::uint64_t>(s);
      distsim::DistOptions sync_o = base;
      sync_o.synchronous = true;
      sync_o.delayed_process = pp.part.owner(n / 2);
      sync_o.delay_factor = static_cast<double>(delta);
      distsim::DistOptions async_o = sync_o;
      async_o.synchronous = false;
      const auto ds =
          distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, sync_o);
      const auto da =
          distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, async_o);
      const double ts = bench::time_to_threshold(ds.history, tol);
      const double ta = bench::time_to_threshold(da.history, tol);
      if (ts > 0.0 && ta > 0.0) sim_speedup += ts / ta;
    }
    sync_steps /= static_cast<double>(samples);
    async_steps /= static_cast<double>(samples);
    sim_speedup /= static_cast<double>(samples);
    table.add_row({delta, sync_steps, async_steps, sync_steps / async_steps,
                   sim_speedup});
  }
  bench::emit(table, cli, "fig3");
  std::printf(
      "\nPaper shape: speedup ~1 with no delay, increasing with delta and\n"
      "plateauing (the paper reports >40x on its 68-thread KNL runs; the\n"
      "plateau level depends on the spectrum of the deflated submatrix).\n");
  return 0;
}
