#pragma once
// Shared helpers for the figure/table reproduction harness.

#include <cmath>
#include <string>
#include <vector>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/cli.hpp"
#include "ajac/util/table.hpp"

namespace ajac::bench {

/// Simulated seconds at which the relative residual first reaches
/// `threshold`, interpolating linearly on log10 of the residual between
/// snapshots — the paper's measurement method ("linear interpolation on
/// the log10 of the relative residual norm was used", Sec. VII-C).
/// Returns a negative value if the threshold is never reached.
inline double time_to_threshold(
    const std::vector<distsim::DistHistoryPoint>& history, double threshold) {
  for (std::size_t k = 1; k < history.size(); ++k) {
    const double r_prev = history[k - 1].rel_residual_1;
    const double r_cur = history[k].rel_residual_1;
    if (r_cur <= threshold && r_prev > threshold) {
      const double l_prev = std::log10(r_prev);
      const double l_cur = std::log10(r_cur);
      const double w = (l_prev - std::log10(threshold)) / (l_prev - l_cur);
      return history[k - 1].sim_seconds +
             w * (history[k].sim_seconds - history[k - 1].sim_seconds);
    }
  }
  return -1.0;
}

/// Same interpolation, but returning cumulative relaxations.
inline double relaxations_to_threshold(
    const std::vector<distsim::DistHistoryPoint>& history, double threshold) {
  for (std::size_t k = 1; k < history.size(); ++k) {
    const double r_prev = history[k - 1].rel_residual_1;
    const double r_cur = history[k].rel_residual_1;
    if (r_cur <= threshold && r_prev > threshold) {
      const double l_prev = std::log10(r_prev);
      const double l_cur = std::log10(r_cur);
      const double w = (l_prev - std::log10(threshold)) / (l_prev - l_cur);
      return static_cast<double>(history[k - 1].relaxations) +
             w * static_cast<double>(history[k].relaxations -
                                     history[k - 1].relaxations);
    }
  }
  return -1.0;
}

/// Partition + permute a problem for `procs` ranks; returns the permuted
/// system ready for solve_distributed.
struct PartitionedProblem {
  CsrMatrix a;
  Vector b;
  Vector x0;
  partition::Partition part;
};

inline PartitionedProblem partition_problem(const gen::LinearProblem& p,
                                            index_t procs,
                                            std::uint64_t seed = 1) {
  PartitionedProblem out;
  if (procs <= 1) {
    out.a = p.a;
    out.b = p.b;
    out.x0 = p.x0;
    out.part = partition::contiguous_partition(p.a.num_rows(), 1);
    return out;
  }
  const auto sys = partition::graph_growing_partition(p.a, procs, seed);
  out.a = sys.perm.apply_symmetric(p.a);
  out.b = sys.perm.apply(p.b);
  out.x0 = sys.perm.apply(p.x0);
  out.part = sys.partition;
  return out;
}

/// Emit a table to stdout and optionally to CSV (--csv-dir).
inline void emit(const Table& table, const CliParser& cli,
                 const std::string& name) {
  std::fputs(table.to_string().c_str(), stdout);
  const std::string dir = cli.get_string("csv-dir");
  if (!dir.empty()) {
    table.write_csv(dir + "/" + name + ".csv");
    std::printf("(csv written to %s/%s.csv)\n", dir.c_str(), name.c_str());
  }
  std::fflush(stdout);
}

inline void add_common_options(CliParser& cli) {
  cli.add_option("csv-dir", "", "directory to write CSV outputs into");
  cli.add_option("seed", "7", "base random seed");
}

}  // namespace ajac::bench
