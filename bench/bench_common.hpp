#pragma once
// Shared helpers for the figure/table reproduction harness.

#include <omp.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/obs/json.hpp"
#include "ajac/obs/metrics.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/util/cli.hpp"
#include "ajac/util/table.hpp"

// Injected by bench/CMakeLists.txt from `git rev-parse`; "unknown" when the
// source tree is not a git checkout (e.g. a release tarball).
#ifndef AJAC_GIT_SHA
#define AJAC_GIT_SHA "unknown"
#endif

namespace ajac::bench {

/// Schema version of the --json bench report ("ajac-bench-report").
inline constexpr int kBenchReportSchemaVersion = 1;

/// Simulated seconds at which the relative residual first reaches
/// `threshold`, interpolating linearly on log10 of the residual between
/// snapshots — the paper's measurement method ("linear interpolation on
/// the log10 of the relative residual norm was used", Sec. VII-C).
/// Returns a negative value if the threshold is never reached.
inline double time_to_threshold(
    const std::vector<distsim::DistHistoryPoint>& history, double threshold) {
  for (std::size_t k = 1; k < history.size(); ++k) {
    const double r_prev = history[k - 1].rel_residual_1;
    const double r_cur = history[k].rel_residual_1;
    if (r_cur <= threshold && r_prev > threshold) {
      const double l_prev = std::log10(r_prev);
      const double l_cur = std::log10(r_cur);
      const double w = (l_prev - std::log10(threshold)) / (l_prev - l_cur);
      return history[k - 1].sim_seconds +
             w * (history[k].sim_seconds - history[k - 1].sim_seconds);
    }
  }
  return -1.0;
}

/// Same interpolation, but returning cumulative relaxations.
inline double relaxations_to_threshold(
    const std::vector<distsim::DistHistoryPoint>& history, double threshold) {
  for (std::size_t k = 1; k < history.size(); ++k) {
    const double r_prev = history[k - 1].rel_residual_1;
    const double r_cur = history[k].rel_residual_1;
    if (r_cur <= threshold && r_prev > threshold) {
      const double l_prev = std::log10(r_prev);
      const double l_cur = std::log10(r_cur);
      const double w = (l_prev - std::log10(threshold)) / (l_prev - l_cur);
      return static_cast<double>(history[k - 1].relaxations) +
             w * static_cast<double>(history[k].relaxations -
                                     history[k - 1].relaxations);
    }
  }
  return -1.0;
}

/// Partition + permute a problem for `procs` ranks; returns the permuted
/// system ready for solve_distributed.
struct PartitionedProblem {
  CsrMatrix a;
  Vector b;
  Vector x0;
  partition::Partition part;
};

inline PartitionedProblem partition_problem(const gen::LinearProblem& p,
                                            index_t procs,
                                            std::uint64_t seed = 1) {
  PartitionedProblem out;
  if (procs <= 1) {
    out.a = p.a;
    out.b = p.b;
    out.x0 = p.x0;
    out.part = partition::contiguous_partition(p.a.num_rows(), 1);
    return out;
  }
  const auto sys = partition::graph_growing_partition(p.a, procs, seed);
  out.a = sys.perm.apply_symmetric(p.a);
  out.b = sys.perm.apply(p.b);
  out.x0 = sys.perm.apply(p.x0);
  out.part = sys.partition;
  return out;
}

namespace detail {

/// Tables accumulated for the --json report, in emission order. Function-
/// local static so the header stays include-anywhere.
inline std::vector<std::pair<std::string, Table>>& report_tables() {
  static std::vector<std::pair<std::string, Table>> tables;
  return tables;
}

/// Row-selection policy counters accumulated across every instrumented
/// solve of the bench run, exported in the --json report's "policy"
/// object. Function-local static for the same reason as report_tables().
struct PolicyCounters {
  std::uint64_t policy_draws = 0;
  std::uint64_t weight_refreshes = 0;
  std::uint64_t instrumented_solves = 0;
};

inline PolicyCounters& policy_counters() {
  static PolicyCounters counters;
  return counters;
}

}  // namespace detail

/// Fold one solve's policy counters (row-selection observability) into
/// the report accumulator. Call after the solve returns, with the
/// registry that was attached to it.
inline void record_policy_counters(const obs::MetricsRegistry& reg) {
  const obs::MetricsSnapshot snap = reg.snapshot();
  detail::PolicyCounters& acc = detail::policy_counters();
  acc.policy_draws +=
      snap.totals[static_cast<std::size_t>(obs::Counter::kPolicyDraws)];
  acc.weight_refreshes +=
      snap.totals[static_cast<std::size_t>(obs::Counter::kWeightRefreshes)];
  ++acc.instrumented_solves;
}

/// Write the full JSON report (run metadata + every table emitted so far)
/// to `path`. emit() calls this after each table, so the file on disk is
/// always complete — a bench killed halfway still leaves a valid report.
inline void write_json_report(const std::string& path, const CliParser& cli) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kBenchReportSchemaVersion);
  w.key("kind").value("ajac-bench-report");
  w.key("metadata").begin_object();
  w.key("git_sha").value(AJAC_GIT_SHA);
  w.key("compiler").value(__VERSION__);
  w.key("omp_max_threads").value(omp_get_max_threads());
  w.key("options").begin_object();
  for (const auto& [key, value] : cli.dump()) {
    w.key(key).value(value);
  }
  w.end_object();
  w.end_object();
  // Policy counters ride along in every report (zeros when no solve was
  // instrumented) so trend tooling sees a stable schema; the metrics
  // schema version says which counter vocabulary produced them.
  const detail::PolicyCounters& pc = detail::policy_counters();
  w.key("policy").begin_object();
  w.key("metrics_schema_version").value(obs::kMetricsSchemaVersion);
  w.key("instrumented_solves")
      .value(static_cast<std::int64_t>(pc.instrumented_solves));
  w.key("policy_draws").value(static_cast<std::int64_t>(pc.policy_draws));
  w.key("weight_refreshes")
      .value(static_cast<std::int64_t>(pc.weight_refreshes));
  w.end_object();
  w.key("tables").begin_object();
  for (const auto& [name, table] : detail::report_tables()) {
    w.key(name).begin_object();
    w.key("columns").begin_array();
    for (const std::string& c : table.column_names()) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : table.rows()) {
      w.begin_array();
      for (const TableCell& cell : row) {
        if (const auto* s = std::get_if<std::string>(&cell)) {
          w.value(*s);
        } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
          w.value(*i);
        } else {
          w.value(std::get<double>(cell));
        }
      }
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  obs::write_file(path, w.str());
}

/// Emit a table to stdout and optionally to CSV (--csv-dir) and the
/// accumulating JSON report (--json).
inline void emit(const Table& table, const CliParser& cli,
                 const std::string& name) {
  std::fputs(table.to_string().c_str(), stdout);
  const std::string dir = cli.get_string("csv-dir");
  if (!dir.empty()) {
    table.write_csv(dir + "/" + name + ".csv");
    std::printf("(csv written to %s/%s.csv)\n", dir.c_str(), name.c_str());
  }
  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    detail::report_tables().emplace_back(name, table);
    write_json_report(json_path, cli);
    std::printf("(json report updated at %s)\n", json_path.c_str());
  }
  std::fflush(stdout);
}

inline void add_common_options(CliParser& cli) {
  cli.add_option("csv-dir", "", "directory to write CSV outputs into");
  cli.add_option("seed", "7", "base random seed");
  cli.add_option("json", "",
                 "path to write a JSON report (tables + run metadata: git "
                 "sha, compiler, thread count, options)");
}

}  // namespace ajac::bench
