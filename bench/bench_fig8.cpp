// Figure 8 reproduction: wall-clock time to reduce the residual norm by a
// factor of 10 as a function of the number of MPI ranks, synchronous vs
// asynchronous, for the six Jacobi-convergent Table-I problems.
//
// Paper setup: Cori, 32..4096 ranks, 200 runs per point, time measured by
// linear interpolation on log10 of the relative residual. Expected shape:
// async is faster than sync nearly everywhere; sync times flatten or rise
// with rank count as the barrier and slowest-rank wait dominate, async
// keeps scaling (and on the smallest problem the time can rise at mid
// rank counts before improved convergence wins again at the largest).

#include <cstdio>

#include "ajac/gen/analogues.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_fig8", "Fig. 8: sim time to 10x reduction vs ranks");
  bench::add_common_options(cli);
  cli.add_option("scale", "0.2", "analogue size multiplier");
  cli.add_option("ranks", "32,64,128,256,512,1024,2048", "rank counts");
  cli.add_option("samples", "2", "runs averaged per point (paper: 200)");
  cli.add_option("reduction", "10", "residual reduction factor to time");
  cli.add_option("matrix", "", "single matrix by name (default: all six)");
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");
  const auto ranks = cli.get_int_list("ranks");
  const auto samples = cli.get_int("samples");
  const double threshold = 1.0 / cli.get_double("reduction");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string only = cli.get_string("matrix");

  std::printf("== Fig. 8: simulated seconds to a 10x residual reduction ==\n");
  Table table({"matrix", "ranks", "sync seconds", "async seconds",
               "async speedup"});
  table.set_double_format("%.4g");

  for (const auto& info : gen::table1_catalogue()) {
    if (!info.jacobi_converges) continue;
    if (!only.empty() && info.name != only) continue;
    const auto p =
        gen::make_problem(info.name, gen::make_analogue(info.name, scale, seed),
                          seed);
    for (index_t r_count : ranks) {
      if (r_count > p.a.num_rows()) continue;
      double t_sync = 0.0;
      double t_async = 0.0;
      index_t ok = 0;
      for (index_t s = 0; s < samples; ++s) {
        const auto pp = bench::partition_problem(p, r_count, seed);
        distsim::DistOptions o;
        o.num_processes = r_count;
        o.max_iterations = 100000;
        o.tolerance = threshold;
        o.seed = seed + static_cast<std::uint64_t>(s);
        o.synchronous = true;
        const auto rs =
            distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
        o.synchronous = false;
        const auto ra =
            distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
        const double ts = bench::time_to_threshold(rs.history, threshold);
        const double ta = bench::time_to_threshold(ra.history, threshold);
        if (ts > 0 && ta > 0) {
          t_sync += ts;
          t_async += ta;
          ++ok;
        }
      }
      if (ok == 0) continue;
      t_sync /= static_cast<double>(ok);
      t_async /= static_cast<double>(ok);
      table.add_row({info.name, r_count, t_sync, t_async, t_sync / t_async});
    }
  }
  bench::emit(table, cli, "fig8");
  std::printf(
      "\nPaper shape: asynchronous Jacobi reaches the 10x reduction faster\n"
      "than synchronous at essentially every rank count, with the gap\n"
      "widening as ranks increase (barrier and straggler costs grow with\n"
      "log P while async pays neither).\n");
  return 0;
}
