// Real concurrent mesh vs. the discrete-event simulator's prediction.
//
// src/distsim models asynchronous Jacobi's message-passing protocol as a
// discrete-event simulation; src/mesh runs the same protocol on real
// std::threads and real SPSC queues. The simulator predicts how many
// local iterations the method needs on a given partition; the mesh
// measures what actual concurrency delivers. The headline claim — the
// one tools/check_mesh_convergence.py gates in CI — is that the real
// runtime's iteration counts stay within a small documented factor of
// the simulated prediction: the simulator is a *model* of the mesh, not
// a separate method.
//
// Iteration counts, not wall-clock, are the comparison axis: simulated
// seconds and wall seconds are incommensurable, but a local iteration is
// the same unit of work in both.
//
// The mesh runs with yield enabled so oversubscribed CI hosts interleave
// agents at iteration granularity (the same knob every async experiment
// in this repo uses); without it, iteration counts on a 1-core runner
// measure the OS scheduler's time slices instead of asynchronous Jacobi.

#include <algorithm>
#include <cstdio>
#include <string>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/mesh/mesh_jacobi.hpp"
#include "ajac/mesh/row_sets.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/util/table.hpp"
#include "bench_common.hpp"

using namespace ajac;

namespace {

index_t max_of(const std::vector<index_t>& v) {
  index_t out = 0;
  for (index_t x : v) out = std::max(out, x);
  return out;
}

void run_sweep(const gen::LinearProblem& p, double tol,
               const CliParser& cli) {
  std::printf(
      "== mesh (real threads) vs distsim (simulated) iteration counts "
      "(%s, %lld rows, tol %.1e) ==\n",
      p.name.c_str(), static_cast<long long>(p.a.num_rows()), tol);

  // Same contiguous partition on both sides: the comparison is between
  // runtimes, not between partitioners.
  Table table({"agents", "distsim iters", "mesh iters", "mesh sync iters",
               "mesh/distsim", "mesh converged", "mesh ms"});
  table.set_double_format("%.3g");
  Table traffic({"agents", "sent", "received", "fault dropped",
                 "queue full", "edges ms"});
  for (const index_t agents : {1, 2, 4, 8}) {
    const auto part = partition::contiguous_partition(p.a.num_rows(), agents);

    distsim::DistOptions dopts;
    dopts.num_processes = agents;
    dopts.synchronous = false;
    dopts.tolerance = tol;
    dopts.max_iterations = 1000000;
    const auto dist =
        distsim::solve_distributed(p.a, p.b, p.x0, part, dopts);
    const index_t dist_iters = max_of(dist.iterations_per_process);

    mesh::MeshOptions mo;
    mo.num_agents = agents;
    mo.synchronous = false;
    mo.tolerance = tol;
    // Generous cap: a non-converged row would make the gate meaningless,
    // so give the mesh room and let the ratio column tell the story.
    mo.max_iterations = std::max<index_t>(20 * dist_iters, 20000);
    mo.record_history = false;
    mo.yield = true;
    mo.row_sets = mesh::row_sets_from_partition(part);
    const auto run = mesh::solve_mesh(p.a, p.b, p.x0, mo);
    const index_t mesh_iters = max_of(run.iterations_per_agent);

    mesh::MeshOptions so = mo;
    so.synchronous = true;
    so.yield = false;
    const auto sync_run = mesh::solve_mesh(p.a, p.b, p.x0, so);
    const index_t sync_iters = max_of(sync_run.iterations_per_agent);

    table.add_row({agents, dist_iters, mesh_iters, sync_iters,
                   static_cast<double>(mesh_iters) /
                       static_cast<double>(std::max<index_t>(dist_iters, 1)),
                   std::string(run.converged ? "yes" : "no"),
                   run.seconds * 1e3});
    traffic.add_row({agents, run.messages_sent, run.messages_received,
                     run.messages_dropped, run.queue_full_drops,
                     run.seconds * 1e3});
  }
  bench::emit(table, cli, "mesh_vs_distsim");
  std::printf(
      "\nThe async mesh lands near the simulator's prediction — often\n"
      "slightly below it: fine-grained interleaving lets later agents\n"
      "read earlier agents' same-sweep commits (a Gauss-Seidel flavor the\n"
      "paper calls out as async Jacobi's upside), while heavy staleness\n"
      "pushes counts the other way. The documented CI bound on the\n"
      "mesh/distsim ratio at 4+ agents lives in\n"
      "tools/check_mesh_convergence.py (--max-iteration-factor).\n\n");
  bench::emit(traffic, cli, "mesh_traffic");
  std::printf(
      "\n'fault dropped' is zero without a plan; 'queue full' counts\n"
      "drop-newest backpressure, which rises with oversubscription (a\n"
      "parked or preempted consumer stops draining its rings).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_mesh",
                "Concurrent mesh runtime vs distsim-predicted convergence");
  bench::add_common_options(cli);
  cli.add_option("grid", "24", "FD grid side (n = grid^2 rows)");
  cli.add_option("tolerance", "1e-6", "relative residual target");
  if (!cli.parse(argc, argv)) return 0;
  const auto grid = cli.get_int("grid");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto problem = gen::make_problem(
      "fd" + std::to_string(grid * grid), gen::fd_laplacian_2d(grid, grid),
      seed);
  run_sweep(problem, cli.get_double("tolerance"), cli);
  return 0;
}
