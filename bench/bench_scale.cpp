// bench_scale: memory-bandwidth study of the shared-memory kernels at
// large n — the regime the kSellCS data plane was built for (>= 4096^2
// unknowns by default; CI runs --edge 2048 to fit its runner).
//
// For each problem (large 2D FD Laplacian, optionally 3D FD, a Matrix
// Market import via --matrix, and a self-contained Matrix Market
// round-trip that writes a generated grid with write_matrix_market and
// benches the re-read copy) and each kernel configuration (reference,
// blocked, sellcs, sellcs + fp32 ghosts), this runs fixed-sweep solves
// (tolerance 0, no polish — every variant does identical work) and
// reports the median wall time, relaxation throughput, and effective
// bandwidth from an explicit traffic model.
//
// The traffic model counts the streams a sweep must move at minimum:
//   matrix stream   nnz x (8B value + idx-bytes index), idx = 8 for the
//                   CSR kernels, 4 for the SELL interior (the int32 local
//                   offsets are the point of the layout), plus the per-row
//                   stream (8B row_ptr for CSR, 4B row_len for SELL);
//   vector streams  32B x n per sweep (b read, r publish, x read+commit);
//   residual scan   8B x n x threads per sweep (step 3 reads the whole
//                   shared r on every thread — the paper's scheme).
// x gathers and ghost traffic are deliberately excluded: gathers mostly
// hit cache on banded problems and ghost volume is O(edge), noise at
// these sizes. The model is for comparing kernels on one host, not for
// quoting absolute DRAM rates.
//
// CI gates the resulting table with tools/check_kernel_speedup.py --scale
// (blocked >= reference and best-of-sellcs >= blocked at the largest FD
// problem) and diffs it against BENCH_scale_baseline.json with
// tools/compare_bench.py.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "ajac/gen/fd.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/mm_io.hpp"

namespace {

using namespace ajac;

struct KernelConfig {
  const char* label;
  runtime::KernelKind kind;
  runtime::GhostPrecision ghosts;
};

constexpr KernelConfig kKernels[] = {
    {"reference", runtime::KernelKind::kReference,
     runtime::GhostPrecision::kFp64},
    {"blocked", runtime::KernelKind::kBlocked,
     runtime::GhostPrecision::kFp64},
    {"sellcs", runtime::KernelKind::kSellCS, runtime::GhostPrecision::kFp64},
    {"sellcs-fp32", runtime::KernelKind::kSellCS,
     runtime::GhostPrecision::kFp32},
};

struct NamedProblem {
  std::string label;
  gen::LinearProblem problem;
};

double model_bytes_per_sweep(const KernelConfig& k, double n, double nnz,
                             double threads) {
  const bool sell = k.kind == runtime::KernelKind::kSellCS;
  const double idx_bytes = sell ? 4.0 : 8.0;
  const double row_bytes = sell ? 4.0 : 8.0;
  return nnz * (8.0 + idx_bytes) + n * row_bytes + 32.0 * n +
         8.0 * n * threads;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_scale",
                "large-n bandwidth comparison of the shared-memory kernels");
  bench::add_common_options(cli);
  cli.add_option("edge", "4096",
                 "2D FD grid edge (edge^2 unknowns; 4096 -> 16.8M)");
  cli.add_option("fd3-edge", "0",
                 "additionally bench a 3D FD grid of this edge (0 = off)");
  cli.add_option("matrix", "",
                 "additionally bench this Matrix Market file (scaled to "
                 "unit diagonal; empty = off)");
  cli.add_option("mtx-edge", "512",
                 "grid edge for the --mtx-roundtrip problem");
  cli.add_option("sweeps", "20", "local iterations per thread per solve");
  cli.add_option("reps", "3", "repetitions per configuration (median wins)");
  cli.add_option("threads", "0", "solver threads (0 = max(2, OpenMP width))");
  cli.add_option("balance", "nnz",
                 "partition balance for the blocked/sellcs kernels: "
                 "nnz | rows");
  cli.add_flag("mtx-roundtrip",
               "write an fd:mtx-edge grid with write_matrix_market, read it "
               "back, and bench the re-read copy (exercises the Matrix "
               "Market ingest path end to end)");
  if (!cli.parse(argc, argv)) return 0;

  const auto edge = static_cast<index_t>(cli.get_int("edge"));
  const auto fd3_edge = static_cast<index_t>(cli.get_int("fd3-edge"));
  const auto sweeps = static_cast<index_t>(cli.get_int("sweeps"));
  const auto reps = std::max<std::int64_t>(1, cli.get_int("reps"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string balance = cli.get_string("balance");
  if (balance != "nnz" && balance != "rows") {
    std::fprintf(stderr, "error: --balance must be nnz or rows\n");
    return 1;
  }
  index_t threads = static_cast<index_t>(cli.get_int("threads"));
  if (threads <= 0) {
    threads = std::max<index_t>(
        2, static_cast<index_t>(omp_get_max_threads()));
  }

  std::vector<NamedProblem> problems;
  problems.push_back({"fd2-" + std::to_string(edge),
                      gen::make_problem("fd2", gen::fd_laplacian_2d(edge, edge),
                                        seed)});
  if (fd3_edge > 0) {
    problems.push_back(
        {"fd3-" + std::to_string(fd3_edge),
         gen::make_problem(
             "fd3", gen::fd_laplacian_3d(fd3_edge, fd3_edge, fd3_edge),
             seed)});
  }
  const std::string mtx_path = cli.get_string("matrix");
  if (!mtx_path.empty()) {
    try {
      problems.push_back(
          {"mtx",
           gen::make_problem("mtx", read_matrix_market(mtx_path), seed)});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot load %s: %s\n", mtx_path.c_str(),
                   e.what());
      return 1;
    }
  }
  if (cli.get_bool("mtx-roundtrip")) {
    const auto mtx_edge = static_cast<index_t>(cli.get_int("mtx-edge"));
    const std::string dir = cli.get_string("csv-dir");
    const std::string path =
        (dir.empty() ? std::string(".") : dir) + "/scale_roundtrip.mtx";
    const CsrMatrix generated = gen::fd_laplacian_2d(mtx_edge, mtx_edge);
    write_matrix_market(generated, path);
    const CsrMatrix reread = read_matrix_market(path);
    std::remove(path.c_str());
    if (reread.num_rows() != generated.num_rows() ||
        reread.num_nonzeros() != generated.num_nonzeros()) {
      std::fprintf(stderr,
                   "error: Matrix Market round-trip mismatch "
                   "(%lld/%lld rows, %lld/%lld nnz)\n",
                   static_cast<long long>(reread.num_rows()),
                   static_cast<long long>(generated.num_rows()),
                   static_cast<long long>(reread.num_nonzeros()),
                   static_cast<long long>(generated.num_nonzeros()));
      return 1;
    }
    problems.push_back({"mtxrt-" + std::to_string(mtx_edge),
                        gen::make_problem("mtxrt", reread, seed)});
  }

  Table table({"problem/kernel", "n", "nnz", "threads", "sweeps", "seconds",
               "mrows_per_s", "gb_per_s"});
  table.set_double_format("%.4g");

  for (const NamedProblem& np : problems) {
    const gen::LinearProblem& p = np.problem;
    const auto n = static_cast<double>(p.a.num_rows());
    const auto nnz = static_cast<double>(p.a.num_nonzeros());
    for (const KernelConfig& k : kKernels) {
      runtime::SharedOptions opts;
      opts.num_threads = threads;
      opts.kernel = k.kind;
      opts.ghost_precision = k.ghosts;
      opts.tolerance = 0.0;  // fixed sweep count: equal work per variant
      opts.max_iterations = sweeps;
      opts.record_history = false;
      opts.final_polish = false;
      opts.yield = true;  // fair interleaving on oversubscribed hosts
      if (balance == "nnz" && k.kind != runtime::KernelKind::kReference &&
          threads > 1) {
        opts.partition = partition::nnz_balanced_partition(p.a, threads);
      }

      std::vector<double> seconds;
      index_t relaxations = 0;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        const runtime::SharedResult r =
            runtime::solve_shared(p.a, p.b, p.x0, opts);
        seconds.push_back(r.seconds);
        relaxations = r.total_relaxations;
      }
      std::sort(seconds.begin(), seconds.end());
      const double med = seconds[seconds.size() / 2];
      const double mrows = static_cast<double>(relaxations) / med / 1e6;
      const double bytes = static_cast<double>(sweeps) *
                           model_bytes_per_sweep(k, n, nnz,
                                                 static_cast<double>(threads));
      table.add_row({np.label + "/" + k.label,
                     static_cast<std::int64_t>(p.a.num_rows()),
                     static_cast<std::int64_t>(p.a.num_nonzeros()),
                     static_cast<std::int64_t>(threads),
                     static_cast<std::int64_t>(sweeps), med, mrows,
                     bytes / med / 1e9});
      std::printf("done %s/%s: %.3fs median of %lld\n", np.label.c_str(),
                  k.label, med, static_cast<long long>(reps));
      std::fflush(stdout);
    }
  }

  bench::emit(table, cli, "scale");
  return 0;
}
