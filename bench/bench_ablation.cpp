// Ablations of the design choices DESIGN.md calls out:
//
//  A. Update rule: racy (Baudet / the paper) vs eager (Jager & Bradley).
//  B. Message delivery: raw RMA (stale puts may overwrite newer values)
//     vs ordered (stale puts dropped).
//  C. Communication cost: latency sweep — where does async's advantage
//     over sync move as alpha grows?
//  D. Partition quality: naive contiguous slabs vs the graph-growing
//     partitioner.
//  E. Put granularity: per-neighbor puts vs row-level puts.

#include <cstdio>

#include "ajac/gen/fd.hpp"
#include "bench_common.hpp"

using namespace ajac;

namespace {

struct RunConfig {
  bool synchronous = false;
  distsim::UpdateRule rule = distsim::UpdateRule::kRacy;
  bool ordered = false;
  bool row_puts = false;
  double alpha = -1.0;       // <0: default
  double beta = -1.0;        // <0: default
  double msg_jitter = -1.0;  // <0: default
  double speed_sigma = -1.0; // <0: default
  index_t delayed = -1;      // >=0: rank to slow down 20x
  bool naive_partition = false;
};

double time_to_tol(const gen::LinearProblem& p, index_t ranks,
                   const RunConfig& cfg, double tol, std::uint64_t seed) {
  bench::PartitionedProblem pp;
  if (cfg.naive_partition) {
    pp.a = p.a;
    pp.b = p.b;
    pp.x0 = p.x0;
    pp.part = partition::contiguous_partition(p.a.num_rows(), ranks);
  } else {
    pp = bench::partition_problem(p, ranks, seed);
  }
  distsim::DistOptions o;
  o.num_processes = ranks;
  o.synchronous = cfg.synchronous;
  o.update_rule = cfg.rule;
  o.ordered_delivery = cfg.ordered;
  o.row_level_puts = cfg.row_puts;
  o.max_iterations = 100000;
  o.tolerance = tol;
  o.seed = seed;
  if (cfg.alpha >= 0.0) o.cost.alpha = cfg.alpha;
  if (cfg.beta >= 0.0) o.cost.beta = cfg.beta;
  if (cfg.msg_jitter >= 0.0) o.cost.msg_jitter_sigma = cfg.msg_jitter;
  if (cfg.speed_sigma >= 0.0) o.cost.speed_sigma = cfg.speed_sigma;
  if (cfg.delayed >= 0) {
    o.delayed_process = cfg.delayed;
    o.delay_factor = 20.0;
  }
  const auto r = distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
  return bench::time_to_threshold(r.history, tol);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_ablation", "design-choice ablations on distsim");
  bench::add_common_options(cli);
  cli.add_option("n", "64", "grid edge (n x n FD Laplacian)");
  cli.add_option("ranks", "64", "rank count");
  cli.add_option("tolerance", "1e-2", "residual target");
  if (!cli.parse(argc, argv)) return 0;
  const auto n = cli.get_int("n");
  const auto ranks = cli.get_int("ranks");
  const double tol = cli.get_double("tolerance");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto p =
      gen::make_problem("fd", gen::fd_laplacian_2d(n, n), seed);
  std::printf("== Ablations (FD %lldx%lld, %lld ranks, tol %.0e) ==\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(ranks), tol);

  Table table({"ablation", "configuration", "sim seconds to tol"});
  table.set_double_format("%.4g");

  // A. Update rule — with a wide per-rank speed spread, racy lets fast
  // ranks spin on stale data while eager throttles them to fresh
  // messages.
  {
    RunConfig racy;
    racy.speed_sigma = 0.5;
    racy.delayed = ranks / 2;
    RunConfig eager = racy;
    eager.rule = distsim::UpdateRule::kEager;
    table.add_row({std::string("A update rule (speed spread)"),
                   std::string("racy (paper)"),
                   time_to_tol(p, ranks, racy, tol, seed)});
    table.add_row({std::string("A update rule (speed spread)"),
                   std::string("eager"),
                   time_to_tol(p, ranks, eager, tol, seed)});
  }
  // B. Delivery ordering under heavy latency jitter (reordered puts).
  {
    RunConfig raw;
    raw.msg_jitter = 1.5;
    RunConfig ordered = raw;
    ordered.ordered = true;
    table.add_row({std::string("B delivery"), std::string("raw RMA"),
                   time_to_tol(p, ranks, raw, tol, seed)});
    table.add_row({std::string("B delivery"), std::string("ordered"),
                   time_to_tol(p, ranks, ordered, tol, seed)});
  }
  // C. Latency sweep: async vs sync crossover.
  for (double alpha : {1.5e-7, 1.5e-6, 1.5e-5}) {
    RunConfig async_cfg;
    async_cfg.alpha = alpha;
    RunConfig sync_cfg = async_cfg;
    sync_cfg.synchronous = true;
    const double ta = time_to_tol(p, ranks, async_cfg, tol, seed);
    const double ts = time_to_tol(p, ranks, sync_cfg, tol, seed);
    char label[64];
    std::snprintf(label, sizeof(label), "alpha=%.1e async", alpha);
    table.add_row({std::string("C latency"), std::string(label), ta});
    std::snprintf(label, sizeof(label), "alpha=%.1e sync", alpha);
    table.add_row({std::string("C latency"), std::string(label), ts});
  }
  // D. Partition quality on a byte-cost-dominated network (large beta
  // makes boundary size matter).
  {
    RunConfig smart;
    smart.beta = 2e-8;
    RunConfig naive = smart;
    naive.naive_partition = true;
    table.add_row({std::string("D partition"), std::string("graph-growing"),
                   time_to_tol(p, ranks, smart, tol, seed)});
    table.add_row({std::string("D partition"), std::string("naive slabs"),
                   time_to_tol(p, ranks, naive, tol, seed)});
  }
  // E. Put granularity.
  {
    RunConfig coarse;
    RunConfig fine;
    fine.row_puts = true;
    table.add_row({std::string("E puts"), std::string("per-neighbor"),
                   time_to_tol(p, ranks, coarse, tol, seed)});
    table.add_row({std::string("E puts"), std::string("row-level"),
                   time_to_tol(p, ranks, fine, tol, seed)});
  }
  bench::emit(table, cli, "ablation");
  return 0;
}
