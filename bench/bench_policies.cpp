// Row-selection policy comparison (natural sweep vs uniform-random vs
// residual-weighted) plus an empirical check of the randomized rate bound.
//
// Part A measures the realized tail contraction of uniform single-row
// relaxation on unit-diagonal SPD matrices and compares the contraction
// *gap* (1 - rate) against the Avron/Druinsky/Gupta (arXiv:1304.6475)
// prediction lambda_min(A-hat)/n — the same measurement the tier-1 suite
// pins (tests/runtime/policy_rate_test.cpp), here over larger windows and
// emitted as a machine-checkable table (tools/check_policy_rates.py gates
// the ratio in CI).
//
// Part B races the three policies end to end through solve_shared on a
// well-conditioned FD Laplacian (where natural order is hard to beat — the
// sampled policies pay their variance for nothing) and on a skewed
// two-rate fixture (a slow near-indefinite block buried in a fast
// diagonally dominant one), where residual weighting concentrates its
// draws on the slow block and wins on relaxations-to-tolerance.

#include <omp.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ajac/eig/lanczos.hpp"
#include "ajac/eig/operators.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"
#include "bench_common.hpp"

using namespace ajac;

namespace {

// ---- Part A: uniform tail rate vs the randomized bound -------------------

double energy(const CsrMatrix& ahat, const Vector& x, const Vector& xstar) {
  const auto n = x.size();
  Vector e(n);
  Vector ae(n);
  for (std::size_t i = 0; i < n; ++i) e[i] = x[i] - xstar[i];
  ahat.spmv(e, ae);
  return vec::dot(e, ae);
}

/// Geometric per-relaxation contraction of the A-norm error energy over
/// the window after `burn_in` sweeps, driving sequential coordinate
/// descent with the RowSampler's own uniform stream.
double measured_tail_contraction(const CsrMatrix& ahat, std::uint64_t seed,
                                 index_t iters, index_t burn_in) {
  const index_t n = ahat.num_rows();
  const auto n_sz = static_cast<std::size_t>(n);
  Vector xstar(n_sz);
  Rng rng(seed);
  vec::fill_uniform(xstar, rng);
  Vector b(n_sz);
  ahat.spmv(xstar, b);
  Vector x(n_sz, 0.0);

  runtime::RowSampler sampler(runtime::RowPolicy::kUniformRandom, seed,
                              /*worker=*/0, 0, n, 1);
  double e_burn = 0.0;
  for (index_t iter = 0; iter < iters; ++iter) {
    if (iter == burn_in) e_burn = energy(ahat, x, xstar);
    for (index_t slot = 0; slot < n; ++slot) {
      const index_t i = sampler.next(iter, slot);
      const double r = b[static_cast<std::size_t>(i)] - ahat.row_dot(i, x);
      x[static_cast<std::size_t>(i)] += r;  // unit diagonal
    }
  }
  const double e_end = energy(ahat, x, xstar);
  const double relaxations =
      static_cast<double>(iters - burn_in) * static_cast<double>(n);
  return std::pow(e_end / e_burn, 1.0 / relaxations);
}

void run_rates(std::uint64_t seed, index_t grid, const CliParser& cli) {
  std::printf("== uniform-random tail rate vs the randomized bound ==\n");
  struct RateCase {
    std::string name;
    CsrMatrix ahat;
    index_t iters;
    index_t burn_in;
  };
  std::vector<RateCase> cases;
  cases.push_back({"fd" + std::to_string(grid * grid),
                   scale_to_unit_diagonal(gen::fd_laplacian_2d(grid, grid)),
                   400, 100});
  gen::FeMeshOptions mesh;
  mesh.nx = 12;
  mesh.ny = 12;
  mesh.seed = seed;
  cases.push_back({"fe144",
                   scale_to_unit_diagonal(gen::fe_laplacian_2d(mesh)), 500,
                   150});

  Table table({"matrix", "n", "lambda_min", "gap theory", "gap measured",
               "gap ratio"});
  table.set_double_format("%.4e");
  for (const RateCase& c : cases) {
    const auto eig_r = eig::lanczos_extreme(eig::make_operator(c.ahat));
    const double n = static_cast<double>(c.ahat.num_rows());
    const double gap_t = eig_r.lambda_min / n;
    const double rate =
        measured_tail_contraction(c.ahat, seed, c.iters, c.burn_in);
    const double gap_m = 1.0 - rate;
    table.add_row({c.name, c.ahat.num_rows(), eig_r.lambda_min, gap_t, gap_m,
                   gap_m / gap_t});
  }
  bench::emit(table, cli, "policy_rates");
  std::printf(
      "\nThe expectation bound guarantees gap >= lambda_min/n per uniform\n"
      "relaxation; concentration on the minimal eigenvector drives the tail\n"
      "gap down to it from above, so the ratio sits in a narrow band just\n"
      "above 1 (CI gates it via tools/check_policy_rates.py).\n\n");
}

// ---- Part B: end-to-end policy race ---------------------------------------

/// Two-rate block-diagonal fixture: rows [0, n_slow) form a slow, nearly
/// indefinite tridiagonal block (off-diagonal -0.499), the rest a strongly
/// diagonally dominant one (-0.2). The residual stays skewed onto the slow
/// block, which is exactly the regime residual weighting targets.
CsrMatrix make_skewed(index_t n, index_t n_slow) {
  std::vector<index_t> row_ptr{0};
  std::vector<index_t> col_idx;
  std::vector<double> values;
  for (index_t i = 0; i < n; ++i) {
    const index_t block_lo = i < n_slow ? 0 : n_slow;
    const index_t block_hi = i < n_slow ? n_slow : n;
    const double off = i < n_slow ? -0.499 : -0.2;
    if (i > block_lo) {
      col_idx.push_back(i - 1);
      values.push_back(off);
    }
    col_idx.push_back(i);
    values.push_back(1.0);
    if (i + 1 < block_hi) {
      col_idx.push_back(i + 1);
      values.push_back(off);
    }
    row_ptr.push_back(static_cast<index_t>(col_idx.size()));
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

void run_solve(std::uint64_t seed, index_t grid, index_t threads,
               const CliParser& cli) {
  std::printf("== relaxations-to-tolerance by policy (%lld threads) ==\n",
              static_cast<long long>(threads));
  struct Problem {
    std::string name;
    CsrMatrix a;
  };
  std::vector<Problem> problems;
  problems.push_back(
      {"fd" + std::to_string(grid * grid), gen::fd_laplacian_2d(grid, grid)});
  problems.push_back({"skewed", make_skewed(256, 16)});

  Table table({"problem", "policy", "converged", "relaxations", "wall ms"});
  table.set_double_format("%.3e");
  for (const Problem& p : problems) {
    Vector b(static_cast<std::size_t>(p.a.num_rows()));
    Rng rng(seed + 1);
    vec::fill_uniform(b, rng);
    const Vector x0(static_cast<std::size_t>(p.a.num_rows()), 0.0);
    for (const runtime::RowPolicy policy :
         {runtime::RowPolicy::kNaturalOrder,
          runtime::RowPolicy::kUniformRandom,
          runtime::RowPolicy::kResidualWeighted}) {
      runtime::SharedOptions o;
      o.num_threads = threads;
      o.tolerance = 1e-8;
      o.max_iterations = 200000;
      o.record_history = false;
      o.final_polish = false;
      o.yield = true;
      o.policy = policy;
      o.policy_seed = seed;
      o.weight_refresh = 2;
      obs::MetricsRegistry reg;
      o.metrics = &reg;
      const double t0 = omp_get_wtime();
      const auto r = runtime::solve_shared(p.a, b, x0, o);
      const double ms = (omp_get_wtime() - t0) * 1e3;
      bench::record_policy_counters(reg);
      table.add_row({p.name, std::string(runtime::policy_name(policy)),
                     std::string(r.converged ? "yes" : "no"),
                     r.total_relaxations, ms});
    }
  }
  bench::emit(table, cli, "policy_solve");
  std::printf(
      "\nOn the well-conditioned FD grid the policies are within ~25%% of\n"
      "each other in relaxations (every row needs work; natural wins on\n"
      "wall-clock because sweeping is cheaper than sampling). On the skewed\n"
      "fixture natural order wastes 15/16 of every sweep on the\n"
      "long-converged fast block while the weighted policy concentrates\n"
      "there and wins ~10x on relaxations-to-tolerance (the CI gate checks\n"
      "the margin via tools/check_policy_rates.py).\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_policies",
                "Row-selection policies: rate-bound check and policy race");
  bench::add_common_options(cli);
  cli.add_option("threads", "1",
                 "worker threads for the end-to-end race (1 = deterministic)");
  cli.add_option("grid", "16", "FD grid side (n = grid^2 rows)");
  if (!cli.parse(argc, argv)) return 0;
  const auto threads = cli.get_int("threads");
  const auto grid = cli.get_int("grid");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  run_rates(seed, grid, cli);
  run_solve(seed, grid, threads, cli);
  return 0;
}
