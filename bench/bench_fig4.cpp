// Figure 4 reproduction: relative residual 1-norm as a function of time,
// for several delays of one worker.
//
// Paper setup: FD matrix with 68 rows / 298 nonzeros, 68 workers. Left
// panel: the model, delays delta in {0,10,20,50,100} model steps. Right
// panel: OpenMP wall clock, delays {0,500,1000,5000,10000} microseconds.
// Expected shape: for each delay, synchronous Jacobi stretches the same
// convergence curve by the delay factor; asynchronous Jacobi keeps
// reducing the residual between the delayed row's relaxations, showing a
// saw-tooth at the second-largest delay and continued (slower) decrease
// even when one row is delayed until convergence.

#include <cstdio>

#include "ajac/gen/fd.hpp"
#include "ajac/model/executor.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_fig4",
                "Fig. 4: residual vs model time for several delays");
  bench::add_common_options(cli);
  cli.add_option("deltas", "0,10,20,50,100", "delays (model steps)");
  cli.add_option("tolerance", "1e-3", "stop tolerance");
  cli.add_option("max-steps", "6000", "model step cap");
  cli.add_option("print-every", "250", "history rows printed per curve");
  if (!cli.parse(argc, argv)) return 0;
  const auto deltas = cli.get_int_list("deltas");
  const double tol = cli.get_double("tolerance");
  const auto max_steps = cli.get_int("max-steps");
  const auto print_every = cli.get_int("print-every");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto p = gen::make_problem("fd68", gen::paper_fd_68(), seed);
  const index_t n = p.a.num_rows();

  std::printf("== Fig. 4: residual vs model time, one delayed row ==\n");
  Table table({"variant", "delta", "model time", "rel residual 1-norm"});
  table.set_double_format("%.4e");

  for (index_t delta : deltas) {
    const index_t d = std::max<index_t>(delta, 1);
    model::ExecutorOptions eo;
    eo.tolerance = tol;
    eo.max_steps = max_steps;
    eo.record_every = 1;

    model::SynchronousSchedule sync(n, d);
    const auto rs = model::run_model(p.a, p.b, p.x0, sync, eo);
    model::DelayedRowsSchedule async(n, {{n / 2, d}});
    const auto ra = model::run_model(p.a, p.b, p.x0, async, eo);

    auto emit_curve = [&](const char* variant, const model::ModelResult& r,
                          index_t delta_label) {
      for (std::size_t k = 0; k < r.history.size();
           k += static_cast<std::size_t>(print_every)) {
        table.add_row({std::string(variant), delta_label,
                       static_cast<double>(r.history[k].step),
                       r.history[k].rel_residual_1});
      }
      table.add_row({std::string(variant), delta_label,
                     static_cast<double>(r.history.back().step),
                     r.history.back().rel_residual_1});
    };
    emit_curve("sync", rs, delta);
    emit_curve("async", ra, delta);
  }
  bench::emit(table, cli, "fig4");
  std::printf(
      "\nPaper shape: async curves reach the tolerance in far fewer model\n"
      "steps than sync for every nonzero delay; at the largest delay the\n"
      "async residual still decreases (the delayed row relaxes only a few\n"
      "times), and at intermediate delays a saw-tooth appears each time the\n"
      "delayed row injects its correction.\n");
  return 0;
}
