// Figure 9 reproduction: Dubcova2 (Jacobi-divergent, rho(G) > 1) in
// distributed memory — synchronous Jacobi diverges, asynchronous Jacobi's
// convergence improves with the rank count, converging at high counts.
//
// Paper setup: Cori, async from 1 node (32 ranks) to 128 nodes (4096
// ranks). Like Fig. 6 this is the concurrency-rescues-divergence result,
// now over the network. The oversubscription knob (--cores) models ranks
// sharing cores/progress resources, which staggers their updates — the
// paper's nodes ran 32 ranks per 32-core node, plus OS/network noise.

#include <cstdio>

#include "ajac/gen/analogues.hpp"
#include "bench_common.hpp"

using namespace ajac;

int main(int argc, char** argv) {
  CliParser cli("bench_fig9", "Fig. 9: Dubcova2 — async vs divergent sync");
  bench::add_common_options(cli);
  cli.add_option("scale", "0.2", "Dubcova2 analogue size multiplier");
  cli.add_option("ranks", "32,256,1024", "async rank counts (1..128 nodes)");
  cli.add_option("sync-ranks", "32", "rank count for the sync curve");
  cli.add_option("iterations", "400", "local iterations per rank");
  cli.add_option("cores", "0",
                 "simulated cores shared by ranks (0 = dedicated cores)");
  cli.add_option("print-points", "10", "history samples per curve");
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");
  const auto ranks = cli.get_int_list("ranks");
  const auto sync_ranks = cli.get_int("sync-ranks");
  const auto iterations = cli.get_int("iterations");
  const auto cores = cli.get_int("cores");
  const auto points = std::max<index_t>(2, cli.get_int("print-points"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto p = gen::make_problem(
      "Dubcova2", gen::make_analogue("Dubcova2", scale, seed), seed);
  std::printf("== Fig. 9: Dubcova2 analogue, n=%lld nnz=%lld ==\n",
              static_cast<long long>(p.a.num_rows()),
              static_cast<long long>(p.a.num_nonzeros()));

  Table table({"variant", "ranks", "relaxations/n", "rel residual 1-norm"});
  table.set_double_format("%.4e");

  auto run = [&](bool synchronous, index_t r_count) {
    const auto pp = bench::partition_problem(p, r_count, seed);
    distsim::DistOptions o;
    o.num_processes = r_count;
    o.synchronous = synchronous;
    o.max_iterations = iterations;
    o.seed = seed;
    o.row_level_puts = !synchronous;
    if (cores > 0) o.cost.cores = cores;
    return distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
  };
  auto emit_curve = [&](const char* variant, index_t r_count,
                        const distsim::DistResult& r) {
    const std::size_t stride =
        std::max<std::size_t>(1, r.history.size() / points);
    for (std::size_t k = 0; k < r.history.size(); k += stride) {
      table.add_row({std::string(variant), r_count,
                     static_cast<double>(r.history[k].relaxations) /
                         static_cast<double>(p.a.num_rows()),
                     r.history[k].rel_residual_1});
    }
  };

  const auto rs = run(true, sync_ranks);
  emit_curve("sync", sync_ranks, rs);
  std::printf("sync  %5lld ranks: final rel res %.3e\n",
              static_cast<long long>(sync_ranks), rs.final_rel_residual_1);
  for (index_t r_count : ranks) {
    if (r_count > p.a.num_rows()) continue;
    const auto ra = run(false, r_count);
    emit_curve("async", r_count, ra);
    std::printf("async %5lld ranks: final rel res %.3e\n",
                static_cast<long long>(r_count), ra.final_rel_residual_1);
  }
  bench::emit(table, cli, "fig9");
  std::printf(
      "\nPaper shape: synchronous Jacobi diverges on Dubcova2; asynchronous\n"
      "convergence improves monotonically with the rank count and converges\n"
      "at the largest counts, as in Fig. 6.\n");
  return 0;
}
