// Figure 2 reproduction: fraction of propagated relaxations vs number of
// workers.
//
// Paper setup: asynchronous OpenMP runs on a 20-core Xeon ("CPU", FD
// matrix with 40 rows / 174 nonzeros, 5-40 threads) and a KNL ("Phi", FD
// matrix with 272 rows / 1294 nonzeros, 17-272 threads); for each run the
// read versions are recorded and the greedy Phi(l) reconstruction of
// Sec. IV-A counts how many relaxations are expressible as propagation
// matrices. Expected shape: the fraction is high (~0.8-0.99) and increases
// with the worker count (fewer rows per worker).
//
// Substitution: a single-core machine serializes OpenMP threads, which
// makes traces trivially 100% propagated. Genuinely overlapped traces come
// from the distsim runtime under the shared-memory cost model (visibility
// latency ~ cache coherency, per-iteration overhead ~ the O(n) norm scan).
// Pass --openmp to additionally record real OpenMP traces (meaningful on a
// multicore host).

#include <cstdio>

#include "ajac/gen/fd.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/runtime/shared_jacobi.hpp"
#include "bench_common.hpp"

using namespace ajac;

namespace {

double simulated_fraction(const gen::LinearProblem& p, index_t procs,
                          index_t iterations, std::uint64_t seed) {
  const auto pp = bench::partition_problem(p, procs, seed);
  distsim::DistOptions o;
  o.num_processes = procs;
  o.max_iterations = iterations;
  o.record_trace = true;
  o.seed = seed;
  o.cost = distsim::CostModel::shared_memory_like(p.a.num_rows());
  const auto r = distsim::solve_distributed(pp.a, pp.b, pp.x0, pp.part, o);
  return model::analyze_trace(*r.trace).fraction;
}

double openmp_fraction(const gen::LinearProblem& p, index_t threads,
                       index_t iterations) {
  runtime::SharedOptions o;
  o.num_threads = threads;
  o.tolerance = 0.0;
  o.max_iterations = iterations;
  o.record_trace = true;
  o.record_history = false;
  o.yield = true;
  const auto r = runtime::solve_shared(p.a, p.b, p.x0, o);
  return model::analyze_trace(*r.trace).fraction;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_fig2",
                "Fig. 2: fraction of propagated relaxations vs workers");
  bench::add_common_options(cli);
  cli.add_option("iterations", "100", "local iterations per worker");
  cli.add_option("samples", "3", "runs averaged per data point");
  cli.add_flag("openmp",
               "also record real OpenMP traces (only meaningful with more "
               "cores than threads)");
  if (!cli.parse(argc, argv)) return 0;
  const auto iterations = cli.get_int("iterations");
  const auto samples = cli.get_int("samples");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bool with_openmp = cli.get_bool("openmp");

  struct Platform {
    const char* name;
    gen::LinearProblem problem;
    std::vector<index_t> workers;
  };
  std::vector<Platform> platforms;
  platforms.push_back({"CPU (FD 40x174)",
                       gen::make_problem("fd40", gen::paper_fd_40(), seed),
                       {5, 10, 20, 40}});
  platforms.push_back({"Phi (FD 272x1294)",
                       gen::make_problem("fd272", gen::paper_fd_272(), seed),
                       {17, 34, 68, 136, 272}});

  std::printf("== Fig. 2: fraction of propagated relaxations ==\n");
  Table table({"platform", "workers", "rows/worker", "fraction (sim)",
               "fraction (openmp)"});
  table.set_double_format("%.3f");
  for (const auto& plat : platforms) {
    for (index_t workers : plat.workers) {
      double frac = 0.0;
      for (index_t s = 0; s < samples; ++s) {
        frac += simulated_fraction(plat.problem, workers, iterations,
                                   seed + static_cast<std::uint64_t>(s));
      }
      frac /= static_cast<double>(samples);
      double omp_frac = -1.0;
      if (with_openmp) {
        omp_frac = openmp_fraction(plat.problem, workers, iterations);
      }
      table.add_row({std::string(plat.name), workers,
                     plat.problem.a.num_rows() / workers, frac, omp_frac});
    }
  }
  bench::emit(table, cli, "fig2");
  std::printf(
      "\nPaper shape: fraction between ~0.8 (Phi, 34 threads) and ~0.99 (CPU,\n"
      "40 threads), increasing with the worker count. The simulated fractions\n"
      "reproduce the increasing trend; '-1' in the openmp column means the\n"
      "real-thread trace was not requested (--openmp).\n");
  return 0;
}
