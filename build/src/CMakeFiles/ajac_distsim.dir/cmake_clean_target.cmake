file(REMOVE_RECURSE
  "libajac_distsim.a"
)
