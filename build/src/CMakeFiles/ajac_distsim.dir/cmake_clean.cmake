file(REMOVE_RECURSE
  "CMakeFiles/ajac_distsim.dir/distsim/cost_model.cpp.o"
  "CMakeFiles/ajac_distsim.dir/distsim/cost_model.cpp.o.d"
  "CMakeFiles/ajac_distsim.dir/distsim/dist_jacobi.cpp.o"
  "CMakeFiles/ajac_distsim.dir/distsim/dist_jacobi.cpp.o.d"
  "CMakeFiles/ajac_distsim.dir/distsim/local_block.cpp.o"
  "CMakeFiles/ajac_distsim.dir/distsim/local_block.cpp.o.d"
  "libajac_distsim.a"
  "libajac_distsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_distsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
