# Empty dependencies file for ajac_distsim.
# This may be replaced when dependencies are built.
