file(REMOVE_RECURSE
  "libajac_core.a"
)
