# Empty compiler generated dependencies file for ajac_core.
# This may be replaced when dependencies are built.
