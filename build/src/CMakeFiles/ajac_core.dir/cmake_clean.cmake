file(REMOVE_RECURSE
  "CMakeFiles/ajac_core.dir/core/ajac.cpp.o"
  "CMakeFiles/ajac_core.dir/core/ajac.cpp.o.d"
  "libajac_core.a"
  "libajac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
