file(REMOVE_RECURSE
  "libajac_solvers.a"
)
