# Empty compiler generated dependencies file for ajac_solvers.
# This may be replaced when dependencies are built.
