file(REMOVE_RECURSE
  "CMakeFiles/ajac_solvers.dir/solvers/krylov.cpp.o"
  "CMakeFiles/ajac_solvers.dir/solvers/krylov.cpp.o.d"
  "CMakeFiles/ajac_solvers.dir/solvers/stationary.cpp.o"
  "CMakeFiles/ajac_solvers.dir/solvers/stationary.cpp.o.d"
  "libajac_solvers.a"
  "libajac_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
