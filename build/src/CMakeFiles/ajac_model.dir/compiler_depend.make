# Empty compiler generated dependencies file for ajac_model.
# This may be replaced when dependencies are built.
