file(REMOVE_RECURSE
  "libajac_model.a"
)
