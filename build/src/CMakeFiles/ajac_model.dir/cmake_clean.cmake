file(REMOVE_RECURSE
  "CMakeFiles/ajac_model.dir/model/bounds.cpp.o"
  "CMakeFiles/ajac_model.dir/model/bounds.cpp.o.d"
  "CMakeFiles/ajac_model.dir/model/executor.cpp.o"
  "CMakeFiles/ajac_model.dir/model/executor.cpp.o.d"
  "CMakeFiles/ajac_model.dir/model/mask.cpp.o"
  "CMakeFiles/ajac_model.dir/model/mask.cpp.o.d"
  "CMakeFiles/ajac_model.dir/model/propagation.cpp.o"
  "CMakeFiles/ajac_model.dir/model/propagation.cpp.o.d"
  "CMakeFiles/ajac_model.dir/model/schedule.cpp.o"
  "CMakeFiles/ajac_model.dir/model/schedule.cpp.o.d"
  "CMakeFiles/ajac_model.dir/model/theory.cpp.o"
  "CMakeFiles/ajac_model.dir/model/theory.cpp.o.d"
  "CMakeFiles/ajac_model.dir/model/trace.cpp.o"
  "CMakeFiles/ajac_model.dir/model/trace.cpp.o.d"
  "libajac_model.a"
  "libajac_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
