
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/bounds.cpp" "src/CMakeFiles/ajac_model.dir/model/bounds.cpp.o" "gcc" "src/CMakeFiles/ajac_model.dir/model/bounds.cpp.o.d"
  "/root/repo/src/model/executor.cpp" "src/CMakeFiles/ajac_model.dir/model/executor.cpp.o" "gcc" "src/CMakeFiles/ajac_model.dir/model/executor.cpp.o.d"
  "/root/repo/src/model/mask.cpp" "src/CMakeFiles/ajac_model.dir/model/mask.cpp.o" "gcc" "src/CMakeFiles/ajac_model.dir/model/mask.cpp.o.d"
  "/root/repo/src/model/propagation.cpp" "src/CMakeFiles/ajac_model.dir/model/propagation.cpp.o" "gcc" "src/CMakeFiles/ajac_model.dir/model/propagation.cpp.o.d"
  "/root/repo/src/model/schedule.cpp" "src/CMakeFiles/ajac_model.dir/model/schedule.cpp.o" "gcc" "src/CMakeFiles/ajac_model.dir/model/schedule.cpp.o.d"
  "/root/repo/src/model/theory.cpp" "src/CMakeFiles/ajac_model.dir/model/theory.cpp.o" "gcc" "src/CMakeFiles/ajac_model.dir/model/theory.cpp.o.d"
  "/root/repo/src/model/trace.cpp" "src/CMakeFiles/ajac_model.dir/model/trace.cpp.o" "gcc" "src/CMakeFiles/ajac_model.dir/model/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_eig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
