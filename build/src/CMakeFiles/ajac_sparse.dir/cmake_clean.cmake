file(REMOVE_RECURSE
  "CMakeFiles/ajac_sparse.dir/sparse/coo.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/coo.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/csr.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/csr.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/dense.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/dense.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/mm_io.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/mm_io.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/permute.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/permute.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/properties.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/properties.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/scaling.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/scaling.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/stats.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/stats.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/submatrix.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/submatrix.cpp.o.d"
  "CMakeFiles/ajac_sparse.dir/sparse/vector_ops.cpp.o"
  "CMakeFiles/ajac_sparse.dir/sparse/vector_ops.cpp.o.d"
  "libajac_sparse.a"
  "libajac_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
