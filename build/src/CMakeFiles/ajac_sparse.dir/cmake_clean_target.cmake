file(REMOVE_RECURSE
  "libajac_sparse.a"
)
