
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/dense.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/dense.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/mm_io.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/mm_io.cpp.o.d"
  "/root/repo/src/sparse/permute.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/permute.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/permute.cpp.o.d"
  "/root/repo/src/sparse/properties.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/properties.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/properties.cpp.o.d"
  "/root/repo/src/sparse/scaling.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/scaling.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/scaling.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/stats.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/stats.cpp.o.d"
  "/root/repo/src/sparse/submatrix.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/submatrix.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/submatrix.cpp.o.d"
  "/root/repo/src/sparse/vector_ops.cpp" "src/CMakeFiles/ajac_sparse.dir/sparse/vector_ops.cpp.o" "gcc" "src/CMakeFiles/ajac_sparse.dir/sparse/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
