# Empty dependencies file for ajac_sparse.
# This may be replaced when dependencies are built.
