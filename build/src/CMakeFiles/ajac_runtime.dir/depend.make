# Empty dependencies file for ajac_runtime.
# This may be replaced when dependencies are built.
