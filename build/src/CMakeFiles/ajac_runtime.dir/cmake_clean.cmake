file(REMOVE_RECURSE
  "CMakeFiles/ajac_runtime.dir/runtime/shared_jacobi.cpp.o"
  "CMakeFiles/ajac_runtime.dir/runtime/shared_jacobi.cpp.o.d"
  "libajac_runtime.a"
  "libajac_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
