
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/shared_jacobi.cpp" "src/CMakeFiles/ajac_runtime.dir/runtime/shared_jacobi.cpp.o" "gcc" "src/CMakeFiles/ajac_runtime.dir/runtime/shared_jacobi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_eig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
