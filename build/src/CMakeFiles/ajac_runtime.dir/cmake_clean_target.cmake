file(REMOVE_RECURSE
  "libajac_runtime.a"
)
