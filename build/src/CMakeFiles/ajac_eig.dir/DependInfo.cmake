
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eig/dense_eig.cpp" "src/CMakeFiles/ajac_eig.dir/eig/dense_eig.cpp.o" "gcc" "src/CMakeFiles/ajac_eig.dir/eig/dense_eig.cpp.o.d"
  "/root/repo/src/eig/lanczos.cpp" "src/CMakeFiles/ajac_eig.dir/eig/lanczos.cpp.o" "gcc" "src/CMakeFiles/ajac_eig.dir/eig/lanczos.cpp.o.d"
  "/root/repo/src/eig/operators.cpp" "src/CMakeFiles/ajac_eig.dir/eig/operators.cpp.o" "gcc" "src/CMakeFiles/ajac_eig.dir/eig/operators.cpp.o.d"
  "/root/repo/src/eig/power.cpp" "src/CMakeFiles/ajac_eig.dir/eig/power.cpp.o" "gcc" "src/CMakeFiles/ajac_eig.dir/eig/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
