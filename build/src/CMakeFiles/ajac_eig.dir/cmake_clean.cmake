file(REMOVE_RECURSE
  "CMakeFiles/ajac_eig.dir/eig/dense_eig.cpp.o"
  "CMakeFiles/ajac_eig.dir/eig/dense_eig.cpp.o.d"
  "CMakeFiles/ajac_eig.dir/eig/lanczos.cpp.o"
  "CMakeFiles/ajac_eig.dir/eig/lanczos.cpp.o.d"
  "CMakeFiles/ajac_eig.dir/eig/operators.cpp.o"
  "CMakeFiles/ajac_eig.dir/eig/operators.cpp.o.d"
  "CMakeFiles/ajac_eig.dir/eig/power.cpp.o"
  "CMakeFiles/ajac_eig.dir/eig/power.cpp.o.d"
  "libajac_eig.a"
  "libajac_eig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_eig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
