file(REMOVE_RECURSE
  "libajac_eig.a"
)
