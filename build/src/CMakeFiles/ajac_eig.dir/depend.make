# Empty dependencies file for ajac_eig.
# This may be replaced when dependencies are built.
