file(REMOVE_RECURSE
  "libajac_util.a"
)
