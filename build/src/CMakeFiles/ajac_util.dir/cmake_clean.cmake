file(REMOVE_RECURSE
  "CMakeFiles/ajac_util.dir/util/check.cpp.o"
  "CMakeFiles/ajac_util.dir/util/check.cpp.o.d"
  "CMakeFiles/ajac_util.dir/util/cli.cpp.o"
  "CMakeFiles/ajac_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/ajac_util.dir/util/rng.cpp.o"
  "CMakeFiles/ajac_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ajac_util.dir/util/table.cpp.o"
  "CMakeFiles/ajac_util.dir/util/table.cpp.o.d"
  "libajac_util.a"
  "libajac_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
