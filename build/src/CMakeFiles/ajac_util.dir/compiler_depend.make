# Empty compiler generated dependencies file for ajac_util.
# This may be replaced when dependencies are built.
