file(REMOVE_RECURSE
  "CMakeFiles/ajac_gen.dir/gen/analogues.cpp.o"
  "CMakeFiles/ajac_gen.dir/gen/analogues.cpp.o.d"
  "CMakeFiles/ajac_gen.dir/gen/fd.cpp.o"
  "CMakeFiles/ajac_gen.dir/gen/fd.cpp.o.d"
  "CMakeFiles/ajac_gen.dir/gen/fe.cpp.o"
  "CMakeFiles/ajac_gen.dir/gen/fe.cpp.o.d"
  "CMakeFiles/ajac_gen.dir/gen/problem.cpp.o"
  "CMakeFiles/ajac_gen.dir/gen/problem.cpp.o.d"
  "libajac_gen.a"
  "libajac_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
