# Empty compiler generated dependencies file for ajac_gen.
# This may be replaced when dependencies are built.
