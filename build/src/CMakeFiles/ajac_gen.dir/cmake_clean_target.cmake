file(REMOVE_RECURSE
  "libajac_gen.a"
)
