
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/analogues.cpp" "src/CMakeFiles/ajac_gen.dir/gen/analogues.cpp.o" "gcc" "src/CMakeFiles/ajac_gen.dir/gen/analogues.cpp.o.d"
  "/root/repo/src/gen/fd.cpp" "src/CMakeFiles/ajac_gen.dir/gen/fd.cpp.o" "gcc" "src/CMakeFiles/ajac_gen.dir/gen/fd.cpp.o.d"
  "/root/repo/src/gen/fe.cpp" "src/CMakeFiles/ajac_gen.dir/gen/fe.cpp.o" "gcc" "src/CMakeFiles/ajac_gen.dir/gen/fe.cpp.o.d"
  "/root/repo/src/gen/problem.cpp" "src/CMakeFiles/ajac_gen.dir/gen/problem.cpp.o" "gcc" "src/CMakeFiles/ajac_gen.dir/gen/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
