# Empty compiler generated dependencies file for ajac_partition.
# This may be replaced when dependencies are built.
