file(REMOVE_RECURSE
  "CMakeFiles/ajac_partition.dir/partition/partition.cpp.o"
  "CMakeFiles/ajac_partition.dir/partition/partition.cpp.o.d"
  "libajac_partition.a"
  "libajac_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
