file(REMOVE_RECURSE
  "libajac_partition.a"
)
