# Empty dependencies file for delayed_worker.
# This may be replaced when dependencies are built.
