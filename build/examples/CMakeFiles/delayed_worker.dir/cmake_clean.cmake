file(REMOVE_RECURSE
  "CMakeFiles/delayed_worker.dir/delayed_worker.cpp.o"
  "CMakeFiles/delayed_worker.dir/delayed_worker.cpp.o.d"
  "delayed_worker"
  "delayed_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delayed_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
