file(REMOVE_RECURSE
  "CMakeFiles/divergence_rescue.dir/divergence_rescue.cpp.o"
  "CMakeFiles/divergence_rescue.dir/divergence_rescue.cpp.o.d"
  "divergence_rescue"
  "divergence_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergence_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
