# Empty dependencies file for divergence_rescue.
# This may be replaced when dependencies are built.
