file(REMOVE_RECURSE
  "CMakeFiles/propagation_model.dir/propagation_model.cpp.o"
  "CMakeFiles/propagation_model.dir/propagation_model.cpp.o.d"
  "propagation_model"
  "propagation_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
