# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ajac_test_util[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_sparse[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_gen[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_eig[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_model[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_solvers[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_partition[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_runtime[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_distsim[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_core[1]_include.cmake")
include("/root/repo/build/tests/ajac_test_integration[1]_include.cmake")
