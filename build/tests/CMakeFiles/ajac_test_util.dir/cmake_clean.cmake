file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_util.dir/util/check_test.cpp.o"
  "CMakeFiles/ajac_test_util.dir/util/check_test.cpp.o.d"
  "CMakeFiles/ajac_test_util.dir/util/cli_test.cpp.o"
  "CMakeFiles/ajac_test_util.dir/util/cli_test.cpp.o.d"
  "CMakeFiles/ajac_test_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/ajac_test_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/ajac_test_util.dir/util/table_test.cpp.o"
  "CMakeFiles/ajac_test_util.dir/util/table_test.cpp.o.d"
  "CMakeFiles/ajac_test_util.dir/util/timer_test.cpp.o"
  "CMakeFiles/ajac_test_util.dir/util/timer_test.cpp.o.d"
  "ajac_test_util"
  "ajac_test_util.pdb"
  "ajac_test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
