# Empty dependencies file for ajac_test_util.
# This may be replaced when dependencies are built.
