file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_gen.dir/gen/analogues_test.cpp.o"
  "CMakeFiles/ajac_test_gen.dir/gen/analogues_test.cpp.o.d"
  "CMakeFiles/ajac_test_gen.dir/gen/fd_test.cpp.o"
  "CMakeFiles/ajac_test_gen.dir/gen/fd_test.cpp.o.d"
  "CMakeFiles/ajac_test_gen.dir/gen/fe_test.cpp.o"
  "CMakeFiles/ajac_test_gen.dir/gen/fe_test.cpp.o.d"
  "CMakeFiles/ajac_test_gen.dir/gen/problem_test.cpp.o"
  "CMakeFiles/ajac_test_gen.dir/gen/problem_test.cpp.o.d"
  "CMakeFiles/ajac_test_gen.dir/gen/stencils_test.cpp.o"
  "CMakeFiles/ajac_test_gen.dir/gen/stencils_test.cpp.o.d"
  "ajac_test_gen"
  "ajac_test_gen.pdb"
  "ajac_test_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
