# Empty dependencies file for ajac_test_gen.
# This may be replaced when dependencies are built.
