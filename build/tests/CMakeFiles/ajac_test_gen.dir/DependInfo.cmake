
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gen/analogues_test.cpp" "tests/CMakeFiles/ajac_test_gen.dir/gen/analogues_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_gen.dir/gen/analogues_test.cpp.o.d"
  "/root/repo/tests/gen/fd_test.cpp" "tests/CMakeFiles/ajac_test_gen.dir/gen/fd_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_gen.dir/gen/fd_test.cpp.o.d"
  "/root/repo/tests/gen/fe_test.cpp" "tests/CMakeFiles/ajac_test_gen.dir/gen/fe_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_gen.dir/gen/fe_test.cpp.o.d"
  "/root/repo/tests/gen/problem_test.cpp" "tests/CMakeFiles/ajac_test_gen.dir/gen/problem_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_gen.dir/gen/problem_test.cpp.o.d"
  "/root/repo/tests/gen/stencils_test.cpp" "tests/CMakeFiles/ajac_test_gen.dir/gen/stencils_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_gen.dir/gen/stencils_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_eig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
