# Empty compiler generated dependencies file for ajac_test_eig.
# This may be replaced when dependencies are built.
