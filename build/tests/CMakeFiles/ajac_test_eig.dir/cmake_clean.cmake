file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_eig.dir/eig/dense_eig_test.cpp.o"
  "CMakeFiles/ajac_test_eig.dir/eig/dense_eig_test.cpp.o.d"
  "CMakeFiles/ajac_test_eig.dir/eig/lanczos_test.cpp.o"
  "CMakeFiles/ajac_test_eig.dir/eig/lanczos_test.cpp.o.d"
  "CMakeFiles/ajac_test_eig.dir/eig/omega_test.cpp.o"
  "CMakeFiles/ajac_test_eig.dir/eig/omega_test.cpp.o.d"
  "CMakeFiles/ajac_test_eig.dir/eig/power_test.cpp.o"
  "CMakeFiles/ajac_test_eig.dir/eig/power_test.cpp.o.d"
  "ajac_test_eig"
  "ajac_test_eig.pdb"
  "ajac_test_eig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_eig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
