# Empty dependencies file for ajac_test_integration.
# This may be replaced when dependencies are built.
