file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_integration.dir/integration/equivalence_test.cpp.o"
  "CMakeFiles/ajac_test_integration.dir/integration/equivalence_test.cpp.o.d"
  "CMakeFiles/ajac_test_integration.dir/integration/paper_claims_test.cpp.o"
  "CMakeFiles/ajac_test_integration.dir/integration/paper_claims_test.cpp.o.d"
  "CMakeFiles/ajac_test_integration.dir/integration/property_sweep_test.cpp.o"
  "CMakeFiles/ajac_test_integration.dir/integration/property_sweep_test.cpp.o.d"
  "ajac_test_integration"
  "ajac_test_integration.pdb"
  "ajac_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
