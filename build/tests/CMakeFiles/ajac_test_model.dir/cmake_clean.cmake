file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_model.dir/model/block_schedule_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/block_schedule_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/bounds_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/bounds_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/executor_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/executor_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/mask_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/mask_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/propagation_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/propagation_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/reduction_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/reduction_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/schedule_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/schedule_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/theory_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/theory_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/trace_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/trace_test.cpp.o.d"
  "CMakeFiles/ajac_test_model.dir/model/two_by_two_test.cpp.o"
  "CMakeFiles/ajac_test_model.dir/model/two_by_two_test.cpp.o.d"
  "ajac_test_model"
  "ajac_test_model.pdb"
  "ajac_test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
