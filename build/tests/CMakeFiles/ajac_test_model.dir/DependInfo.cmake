
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/block_schedule_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/block_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/block_schedule_test.cpp.o.d"
  "/root/repo/tests/model/bounds_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/bounds_test.cpp.o.d"
  "/root/repo/tests/model/executor_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/executor_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/executor_test.cpp.o.d"
  "/root/repo/tests/model/mask_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/mask_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/mask_test.cpp.o.d"
  "/root/repo/tests/model/propagation_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/propagation_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/propagation_test.cpp.o.d"
  "/root/repo/tests/model/reduction_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/reduction_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/reduction_test.cpp.o.d"
  "/root/repo/tests/model/schedule_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/schedule_test.cpp.o.d"
  "/root/repo/tests/model/theory_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/theory_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/theory_test.cpp.o.d"
  "/root/repo/tests/model/trace_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/trace_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/trace_test.cpp.o.d"
  "/root/repo/tests/model/two_by_two_test.cpp" "tests/CMakeFiles/ajac_test_model.dir/model/two_by_two_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_model.dir/model/two_by_two_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_eig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
