# Empty compiler generated dependencies file for ajac_test_model.
# This may be replaced when dependencies are built.
