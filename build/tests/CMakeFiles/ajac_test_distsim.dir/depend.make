# Empty dependencies file for ajac_test_distsim.
# This may be replaced when dependencies are built.
