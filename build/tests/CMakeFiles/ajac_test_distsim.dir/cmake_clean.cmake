file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_distsim.dir/distsim/cost_model_test.cpp.o"
  "CMakeFiles/ajac_test_distsim.dir/distsim/cost_model_test.cpp.o.d"
  "CMakeFiles/ajac_test_distsim.dir/distsim/dist_jacobi_test.cpp.o"
  "CMakeFiles/ajac_test_distsim.dir/distsim/dist_jacobi_test.cpp.o.d"
  "CMakeFiles/ajac_test_distsim.dir/distsim/local_block_test.cpp.o"
  "CMakeFiles/ajac_test_distsim.dir/distsim/local_block_test.cpp.o.d"
  "CMakeFiles/ajac_test_distsim.dir/distsim/rank_stats_test.cpp.o"
  "CMakeFiles/ajac_test_distsim.dir/distsim/rank_stats_test.cpp.o.d"
  "CMakeFiles/ajac_test_distsim.dir/distsim/termination_test.cpp.o"
  "CMakeFiles/ajac_test_distsim.dir/distsim/termination_test.cpp.o.d"
  "ajac_test_distsim"
  "ajac_test_distsim.pdb"
  "ajac_test_distsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_distsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
