file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_runtime.dir/runtime/local_gs_test.cpp.o"
  "CMakeFiles/ajac_test_runtime.dir/runtime/local_gs_test.cpp.o.d"
  "CMakeFiles/ajac_test_runtime.dir/runtime/shared_jacobi_test.cpp.o"
  "CMakeFiles/ajac_test_runtime.dir/runtime/shared_jacobi_test.cpp.o.d"
  "ajac_test_runtime"
  "ajac_test_runtime.pdb"
  "ajac_test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
