# Empty compiler generated dependencies file for ajac_test_runtime.
# This may be replaced when dependencies are built.
