# Empty dependencies file for ajac_test_core.
# This may be replaced when dependencies are built.
