file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_core.dir/core/api_test.cpp.o"
  "CMakeFiles/ajac_test_core.dir/core/api_test.cpp.o.d"
  "ajac_test_core"
  "ajac_test_core.pdb"
  "ajac_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
