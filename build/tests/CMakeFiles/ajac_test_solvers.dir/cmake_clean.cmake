file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_solvers.dir/solvers/krylov_test.cpp.o"
  "CMakeFiles/ajac_test_solvers.dir/solvers/krylov_test.cpp.o.d"
  "CMakeFiles/ajac_test_solvers.dir/solvers/ssor_test.cpp.o"
  "CMakeFiles/ajac_test_solvers.dir/solvers/ssor_test.cpp.o.d"
  "CMakeFiles/ajac_test_solvers.dir/solvers/stationary_test.cpp.o"
  "CMakeFiles/ajac_test_solvers.dir/solvers/stationary_test.cpp.o.d"
  "ajac_test_solvers"
  "ajac_test_solvers.pdb"
  "ajac_test_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
