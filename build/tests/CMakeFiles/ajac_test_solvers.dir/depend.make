# Empty dependencies file for ajac_test_solvers.
# This may be replaced when dependencies are built.
