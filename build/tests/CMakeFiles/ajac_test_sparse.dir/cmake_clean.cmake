file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_sparse.dir/sparse/coo_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/coo_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/csr_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/csr_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/dense_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/dense_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/mm_io_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/mm_io_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/permute_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/permute_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/properties_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/properties_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/scaling_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/scaling_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/stats_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/stats_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/submatrix_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/submatrix_test.cpp.o.d"
  "CMakeFiles/ajac_test_sparse.dir/sparse/vector_ops_test.cpp.o"
  "CMakeFiles/ajac_test_sparse.dir/sparse/vector_ops_test.cpp.o.d"
  "ajac_test_sparse"
  "ajac_test_sparse.pdb"
  "ajac_test_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
