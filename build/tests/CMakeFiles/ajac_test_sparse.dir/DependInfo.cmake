
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sparse/coo_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/coo_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/coo_test.cpp.o.d"
  "/root/repo/tests/sparse/csr_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/csr_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/csr_test.cpp.o.d"
  "/root/repo/tests/sparse/dense_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/dense_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/dense_test.cpp.o.d"
  "/root/repo/tests/sparse/mm_io_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/mm_io_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/mm_io_test.cpp.o.d"
  "/root/repo/tests/sparse/permute_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/permute_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/permute_test.cpp.o.d"
  "/root/repo/tests/sparse/properties_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/properties_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/properties_test.cpp.o.d"
  "/root/repo/tests/sparse/scaling_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/scaling_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/scaling_test.cpp.o.d"
  "/root/repo/tests/sparse/stats_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/stats_test.cpp.o.d"
  "/root/repo/tests/sparse/submatrix_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/submatrix_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/submatrix_test.cpp.o.d"
  "/root/repo/tests/sparse/vector_ops_test.cpp" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/vector_ops_test.cpp.o" "gcc" "tests/CMakeFiles/ajac_test_sparse.dir/sparse/vector_ops_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ajac_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ajac_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
