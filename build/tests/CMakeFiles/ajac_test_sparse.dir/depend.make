# Empty dependencies file for ajac_test_sparse.
# This may be replaced when dependencies are built.
