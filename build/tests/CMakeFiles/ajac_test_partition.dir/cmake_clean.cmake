file(REMOVE_RECURSE
  "CMakeFiles/ajac_test_partition.dir/partition/partition_test.cpp.o"
  "CMakeFiles/ajac_test_partition.dir/partition/partition_test.cpp.o.d"
  "CMakeFiles/ajac_test_partition.dir/partition/weighted_partition_test.cpp.o"
  "CMakeFiles/ajac_test_partition.dir/partition/weighted_partition_test.cpp.o.d"
  "ajac_test_partition"
  "ajac_test_partition.pdb"
  "ajac_test_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ajac_test_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
