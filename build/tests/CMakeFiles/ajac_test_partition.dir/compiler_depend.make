# Empty compiler generated dependencies file for ajac_test_partition.
# This may be replaced when dependencies are built.
