# Empty dependencies file for bench_termination.
# This may be replaced when dependencies are built.
