// Scenario: the "surprising result" — asynchronous Jacobi converging on a
// matrix where synchronous Jacobi diverges (paper Sec. IV-D, Figs. 6/9).
//
// The matrix is a genuine P1 finite-element discretization of the Laplace
// equation on a distorted mesh: SPD, but rho(G) > 1, so classical Jacobi
// blows up. Running asynchronously with enough concurrency makes the
// iteration behave multiplicatively (different subdomains relax at
// different moments), which converges.

#include <cstdio>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/eig/lanczos.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/properties.hpp"

int main() {
  using namespace ajac;

  const auto p = gen::make_problem("fe", gen::paper_fe_3081(), 7);
  const double rho = eig::jacobi_spectral_radius_spd(p.a);
  std::printf(
      "FE stiffness matrix: %lld unknowns, %.0f%% of rows weakly diagonally\n"
      "dominant, rho(G) = %.3f  -> synchronous Jacobi must diverge.\n\n",
      static_cast<long long>(p.a.num_rows()), 100.0 * wdd_fraction(p.a), rho);

  auto run = [&](bool synchronous, index_t workers) {
    const auto sys = partition::graph_growing_partition(p.a, workers, 1);
    distsim::DistOptions o;
    o.num_processes = workers;
    o.synchronous = synchronous;
    o.max_iterations = 800;
    o.cost = distsim::CostModel::shared_memory_like(p.a.num_rows());
    o.cost.cores = 68;  // KNL-like: 272 hyperthreads share 68 cores
    return distsim::solve_distributed(
        sys.perm.apply_symmetric(p.a), sys.perm.apply(p.b),
        sys.perm.apply(p.x0), sys.partition, o);
  };

  std::printf("%-28s | final relative residual\n", "configuration");
  std::printf("-----------------------------+------------------------\n");
  const auto sync = run(true, 272);
  std::printf("%-28s | %.3e  (diverged)\n", "synchronous, 272 workers",
              sync.final_rel_residual_1);
  for (index_t workers : {68, 136, 272}) {
    const auto r = run(false, workers);
    std::printf("%-28s | %.3e%s\n",
                (std::string("asynchronous, ") + std::to_string(workers) +
                 " workers")
                    .c_str(),
                r.final_rel_residual_1,
                r.final_rel_residual_1 < 1.0 ? "  (converging!)" : "");
  }
  std::printf(
      "\nWhy: snapshots of an asynchronous run relax only a subset of rows\n"
      "at a time. The propagation matrices of such subsets are principal-\n"
      "submatrix updates whose spectra interlace below rho(G); with enough\n"
      "concurrency the active blocks decouple and the iteration contracts\n"
      "even though the full Jacobi sweep does not (paper Sec. IV-D).\n");
  return 0;
}
