// Scenario: a slow worker in a parallel solve (the paper's Sec. VII-B
// delay experiment, and the motivating exascale case — "hardware
// malfunctions or imbalance").
//
// A steady-state heat problem is solved by 68 workers, one of which runs
// up to 100x slower than the rest. Synchronous Jacobi waits for it at
// every barrier; asynchronous Jacobi keeps relaxing and folds the slow
// worker's corrections in whenever they arrive.

#include <cstdio>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"

int main() {
  using namespace ajac;

  const auto p = gen::make_problem("heat", gen::paper_fd_68(), 2026);
  const index_t n = p.a.num_rows();
  const double tol = 1e-3;

  std::printf("Steady-state heat problem, %lld unknowns, one worker per row.\n",
              static_cast<long long>(n));
  std::printf("Target: relative residual 1-norm below %.0e.\n\n", tol);
  std::printf("%8s | %16s | %17s | %s\n", "slowdown", "sync model time",
              "async model time", "async speedup");

  for (index_t delay : {1, 5, 10, 25, 50, 100}) {
    model::ExecutorOptions opts;
    opts.tolerance = tol;
    opts.max_steps = 1000000;
    opts.record_every = 50;

    // Synchronous: the barrier makes everyone run at the slow worker's
    // pace - all rows relax only every `delay` steps.
    model::SynchronousSchedule sync(n, delay);
    const auto rs = model::run_model(p.a, p.b, p.x0, sync, opts);

    // Asynchronous: only the slow row relaxes every `delay` steps; the
    // other 67 rows relax every step.
    model::DelayedRowsSchedule async(n, {{n / 2, delay}});
    const auto ra = model::run_model(p.a, p.b, p.x0, async, opts);

    std::printf("%7lldx | %16lld | %17lld | %.1fx\n",
                static_cast<long long>(delay),
                static_cast<long long>(rs.steps),
                static_cast<long long>(ra.steps),
                static_cast<double>(rs.steps) /
                    static_cast<double>(ra.steps));
  }

  std::printf(
      "\nEven with the middle worker delayed *until convergence* the\n"
      "asynchronous residual keeps falling (Theorem 1: under weak diagonal\n"
      "dominance no propagation matrix can increase it):\n");
  model::ExecutorOptions opts;
  opts.tolerance = 0.0;
  opts.max_steps = 600;
  opts.record_every = 100;
  model::DelayedRowsSchedule forever(n, {{n / 2, 0}});
  const auto r = model::run_model(p.a, p.b, p.x0, forever, opts);
  for (const auto& pt : r.history) {
    std::printf("  step %4lld: rel residual %.3e\n",
                static_cast<long long>(pt.step), pt.rel_residual_1);
  }
  return 0;
}
