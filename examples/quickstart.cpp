// Quickstart: solve a Poisson problem with asynchronous Jacobi.
//
//   $ ./examples/quickstart [path/to/matrix.mtx]
//
// Without an argument a 2D Laplacian is generated; with one, any
// symmetric positive definite Matrix Market file is loaded (e.g. the real
// SuiteSparse Table-I matrices, if you have them).

#include <cstdio>

#include "ajac/core/ajac.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/sparse/mm_io.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ajac;

  // 1. Get a symmetric positive definite matrix.
  CsrMatrix a = argc > 1 ? read_matrix_market(argv[1])
                         : gen::fd_laplacian_2d(64, 64);
  std::printf("matrix: %lld rows, %lld nonzeros\n",
              static_cast<long long>(a.num_rows()),
              static_cast<long long>(a.num_nonzeros()));

  // 2. Make a right-hand side (here: b = A * ones, so the solution is 1).
  Vector x_true(static_cast<std::size_t>(a.num_rows()), 1.0);
  Vector b(x_true.size());
  a.spmv(x_true, b);

  // 3. Solve with each backend through the facade.
  for (Backend backend : {Backend::kSequential, Backend::kSharedMemory,
                          Backend::kDistributedSim}) {
    SolveConfig cfg;
    cfg.backend = backend;
    cfg.parallelism = 8;
    cfg.tolerance = 1e-8;
    cfg.max_iterations = 1000000;
    const Solution sol = solve_spd(a, b, cfg);

    const char* name = backend == Backend::kSequential ? "sequential"
                       : backend == Backend::kSharedMemory
                           ? "shared-memory async"
                           : "distributed-sim async";
    std::printf(
        "%-22s converged=%s  rel.residual=%.2e  relaxations/n=%.0f  "
        "error=%.2e\n",
        name, sol.converged ? "yes" : "no", sol.rel_residual_1,
        static_cast<double>(sol.relaxations) /
            static_cast<double>(a.num_rows()),
        vec::max_abs_diff(sol.x, x_true));
  }
  return 0;
}
