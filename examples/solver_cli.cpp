// solver_cli: a command-line driver over the full public API.
//
//   ./examples/solver_cli --matrix fd:128x128 --backend distsim
//       --parallelism 64 --tolerance 1e-8 --history out.csv
//
// Matrices come from a Matrix Market file (`--matrix path.mtx`), the
// built-in generators (`fd:NXxNY`, `fd3:NXxNYxNZ`, `fe:NXxNY`), or a
// Table-I analogue by name (`analogue:thermal2`).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "ajac/core/ajac.hpp"
#include "ajac/gen/analogues.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/obs/monitor.hpp"
#include "ajac/obs/stream.hpp"
#include "ajac/obs/trace_sink.hpp"
#include "ajac/sparse/mm_io.hpp"
#include "ajac/sparse/stats.hpp"
#include "ajac/util/cli.hpp"
#include "ajac/util/rng.hpp"
#include "ajac/util/table.hpp"

using namespace ajac;

namespace {

CsrMatrix load_matrix(const std::string& spec) {
  auto parse_dims = [](const std::string& s) {
    std::vector<index_t> dims;
    std::size_t pos = 0;
    while (pos < s.size()) {
      std::size_t next = s.find('x', pos);
      if (next == std::string::npos) next = s.size();
      dims.push_back(std::stoll(s.substr(pos, next - pos)));
      pos = next + 1;
    }
    return dims;
  };
  if (spec.rfind("fd3:", 0) == 0) {
    const auto d = parse_dims(spec.substr(4));
    if (d.size() != 3) throw std::invalid_argument("fd3 needs NXxNYxNZ");
    return gen::fd_laplacian_3d(d[0], d[1], d[2]);
  }
  if (spec.rfind("fd:", 0) == 0) {
    const auto d = parse_dims(spec.substr(3));
    if (d.size() != 2) throw std::invalid_argument("fd needs NXxNY");
    return gen::fd_laplacian_2d(d[0], d[1]);
  }
  if (spec.rfind("fe:", 0) == 0) {
    const auto d = parse_dims(spec.substr(3));
    if (d.size() != 2) throw std::invalid_argument("fe needs NXxNY");
    gen::FeMeshOptions opts;
    opts.nx = d[0];
    opts.ny = d[1];
    return gen::fe_laplacian_2d(opts);
  }
  if (spec.rfind("analogue:", 0) == 0) {
    return gen::make_analogue(spec.substr(9));
  }
  return read_matrix_market(spec);
}

Backend parse_backend(const std::string& name) {
  if (name == "sequential") return Backend::kSequential;
  if (name == "model") return Backend::kModel;
  if (name == "shared") return Backend::kSharedMemory;
  if (name == "distsim") return Backend::kDistributedSim;
  if (name == "mesh") return Backend::kMesh;
  throw std::invalid_argument(
      "unknown backend '" + name +
      "' (sequential | model | shared | distsim | mesh)");
}

runtime::KernelKind parse_kernel(const std::string& name) {
  if (name == "blocked") return runtime::KernelKind::kBlocked;
  if (name == "reference") return runtime::KernelKind::kReference;
  if (name == "sellcs") return runtime::KernelKind::kSellCS;
  throw std::invalid_argument("unknown kernel '" + name +
                              "' (blocked | reference | sellcs)");
}

bool parse_balance(const std::string& name) {
  if (name == "nnz") return true;
  if (name == "rows") return false;
  throw std::invalid_argument("unknown balance '" + name + "' (rows | nnz)");
}

runtime::GhostPrecision parse_ghost_precision(const std::string& name) {
  if (name == "fp64") return runtime::GhostPrecision::kFp64;
  if (name == "fp32") return runtime::GhostPrecision::kFp32;
  throw std::invalid_argument("unknown ghost precision '" + name +
                              "' (fp64 | fp32)");
}

runtime::RowPolicy parse_policy(const std::string& name) {
  if (name == "natural") return runtime::RowPolicy::kNaturalOrder;
  if (name == "uniform") return runtime::RowPolicy::kUniformRandom;
  if (name == "weighted") return runtime::RowPolicy::kResidualWeighted;
  throw std::invalid_argument("unknown policy '" + name +
                              "' (natural | uniform | weighted)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("solver_cli", "solve SPD systems with (a)synchronous Jacobi");
  cli.add_option("matrix", "fd:64x64",
                 "matrix spec: fd:NXxNY | fd3:NXxNYxNZ | fe:NXxNY | "
                 "analogue:<name> | path.mtx");
  cli.add_option("backend", "shared",
                 "sequential | model | shared | distsim | mesh");
  cli.add_option("parallelism", "8", "threads / simulated ranks");
  cli.add_option("agents", "0",
                 "mesh backend: number of message-passing agents "
                 "(0 = use --parallelism)");
  cli.add_option("tolerance", "1e-8", "relative residual 1-norm target");
  cli.add_option("max-iterations", "1000000", "iteration cap");
  cli.add_option("seed", "1", "random seed (b, x0, partitioner, noise)");
  cli.add_option("kernel", "blocked",
                 "shared backend kernels: blocked | reference | sellcs "
                 "(sellcs = SELL-C-sigma interior + dense ghost buffers, "
                 "for large problems)");
  cli.add_option("balance", "nnz",
                 "shared backend partition balance: nnz (contiguous blocks "
                 "equalized by nonzero count; default) | rows (equal row "
                 "counts; reference kernel always uses rows)");
  cli.add_option("ghost-precision", "fp64",
                 "sellcs kernel: precision of published ghost values, "
                 "fp64 | fp32 (residuals and termination stay fp64)");
  cli.add_option("policy", "natural",
                 "async row-selection policy: natural | uniform | weighted "
                 "(shared and distsim backends)");
  cli.add_option("weight-refresh", "8",
                 "weighted policy: iterations between |r_i| weight rebuilds");
  cli.add_option("nrhs", "1",
                 "right-hand sides solved together (shared backend; > 1 "
                 "uses the batched SIMD path with seeded random columns)");
  cli.add_option("telemetry-ndjson", "",
                 "stream live telemetry (beacons + estimates) as NDJSON to "
                 "this path; tail it with tools/ajac_top.py (empty = off)");
  cli.add_option("telemetry-perfetto", "",
                 "write telemetry counter tracks as a Perfetto trace to "
                 "this path after the solve (empty = off)");
  cli.add_option("telemetry-stride", "8",
                 "iterations between telemetry beacons per actor");
  cli.add_option("telemetry-window-us", "0",
                 "straggler-detector window width in beacon-time us "
                 "(0 = auto: 100000 wall-clock us for shared, 1000 "
                 "simulated us for distsim; threads oversubscribing "
                 "physical cores need windows well above an OS "
                 "scheduling quantum or every thread reads as stalled)");
  cli.add_flag("sync", "run the synchronous variant");
  cli.add_flag("stats", "print matrix statistics before solving");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const CsrMatrix a = load_matrix(cli.get_string("matrix"));
    std::printf("matrix %s: %lld rows, %lld nonzeros\n",
                cli.get_string("matrix").c_str(),
                static_cast<long long>(a.num_rows()),
                static_cast<long long>(a.num_nonzeros()));
    if (cli.get_bool("stats")) {
      const MatrixStats s = compute_stats(a);
      std::printf(
          "  bandwidth %lld, rows nnz [%lld..%lld] avg %.2f, min diag "
          "dominance %.3f, positive offdiag %.1f%%, struct. symmetric: %s\n",
          static_cast<long long>(s.bandwidth),
          static_cast<long long>(s.min_row_nnz),
          static_cast<long long>(s.max_row_nnz), s.avg_row_nnz,
          s.diag_dominance_min, 100.0 * s.positive_offdiag_fraction,
          s.structurally_symmetric ? "yes" : "no");
    }

    Vector b(static_cast<std::size_t>(a.num_rows()), 1.0);
    SolveConfig cfg;
    cfg.backend = parse_backend(cli.get_string("backend"));
    cfg.parallelism = cli.get_int("parallelism");
    if (cfg.backend == Backend::kMesh && cli.get_int("agents") > 0) {
      cfg.parallelism = cli.get_int("agents");
    }
    cfg.synchronous = cli.get_bool("sync");
    cfg.tolerance = cli.get_double("tolerance");
    cfg.max_iterations = cli.get_int("max-iterations");
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    cfg.shared_kernel = parse_kernel(cli.get_string("kernel"));
    cfg.balance_by_nnz = parse_balance(cli.get_string("balance"));
    cfg.ghost_precision = parse_ghost_precision(cli.get_string("ghost-precision"));
    cfg.num_rhs = cli.get_int("nrhs");
    cfg.policy = parse_policy(cli.get_string("policy"));
    cfg.weight_refresh = cli.get_int("weight-refresh");

    // Live telemetry: a hub the solver publishes beacons into and a
    // monitor draining it on a background thread while the solve runs.
    const std::string ndjson_path = cli.get_string("telemetry-ndjson");
    const std::string perfetto_path = cli.get_string("telemetry-perfetto");
    std::unique_ptr<obs::TelemetryHub> hub;
    std::unique_ptr<obs::ConvergenceMonitor> monitor;
    std::ofstream ndjson_out;
    std::unique_ptr<obs::NdjsonSink> ndjson_sink;
    std::unique_ptr<obs::TraceEventSink> trace;
    std::unique_ptr<obs::TraceCounterSink> counter_sink;
    if (!ndjson_path.empty() || !perfetto_path.empty()) {
      obs::TelemetryOptions topts;
      topts.beacon_stride = cli.get_int("telemetry-stride");
      topts.max_actors = std::max<index_t>(cfg.parallelism, 1);
      hub = std::make_unique<obs::TelemetryHub>(topts);
      obs::ConvergenceMonitor::Options mopts;
      const double window_us = cli.get_double("telemetry-window-us");
      mopts.window_us =
          window_us > 0.0
              ? window_us
              : (cfg.backend == Backend::kDistributedSim ? 1000.0 : 100000.0);
      monitor = std::make_unique<obs::ConvergenceMonitor>(*hub, mopts);
      if (!ndjson_path.empty()) {
        ndjson_out.open(ndjson_path);
        if (!ndjson_out) {
          throw std::runtime_error("cannot open " + ndjson_path);
        }
        ndjson_sink = std::make_unique<obs::NdjsonSink>(ndjson_out);
        monitor->add_sink(ndjson_sink.get());
      }
      if (!perfetto_path.empty()) {
        trace = std::make_unique<obs::TraceEventSink>();
        counter_sink = std::make_unique<obs::TraceCounterSink>(*trace);
        monitor->add_sink(counter_sink.get());
      }
      cfg.stream = hub.get();
      monitor->start();
    }
    auto finish_telemetry = [&] {
      if (monitor == nullptr) return;
      monitor->stop();  // joins the drainer and flushes trailing beacons
      const obs::MonitorEstimates est = monitor->estimates();
      std::printf(
          "telemetry: %llu beacons (%llu dropped), rho-hat=%.4f, "
          "iter-imbalance=%.3f, stragglers=%zu\n",
          static_cast<unsigned long long>(est.beacons),
          static_cast<unsigned long long>(est.dropped), est.rho_hat,
          est.iteration_imbalance, est.stragglers.size());
      for (const obs::StragglerFlag& s : est.stragglers) {
        std::printf(
            "  straggler: actor %lld at %.0f us (rate %.3g vs median "
            "%.3g relaxations/us)\n",
            static_cast<long long>(s.actor), s.detected_ts_us, s.rate,
            s.median_rate);
      }
      if (trace != nullptr) {
        trace->write(perfetto_path);
        std::printf("telemetry: wrote Perfetto trace %s (%zu events)\n",
                    perfetto_path.c_str(), trace->num_events());
      }
    };

    if (cfg.num_rhs > 1) {
      const index_t n = a.num_rows();
      const index_t k = cfg.num_rhs;
      MultiVector bk(n, k);
      Rng rng(cfg.seed);
      for (index_t i = 0; i < n; ++i) {
        double* row = bk.row(i);
        for (index_t c = 0; c < k; ++c) row[c] = rng.uniform(-1.0, 1.0);
      }
      const BatchSolution sol = solve_spd_batch(a, bk, cfg);
      finish_telemetry();
      bool all_converged = true;
      index_t total_relax = 0;
      for (index_t c = 0; c < k; ++c) {
        all_converged = all_converged && sol.converged[c];
        total_relax += sol.relaxations[c];
        std::printf(
            "  column %lld: converged=%s rel.residual=%.3e "
            "stop-iteration=%lld\n",
            static_cast<long long>(c), sol.converged[c] ? "yes" : "no",
            sol.rel_residual_1[c], static_cast<long long>(sol.iterations[c]));
      }
      std::printf(
          "shared %s batch k=%lld: converged=%s relaxations/n=%.1f "
          "throughput=%.3g row-updates/s wall-time=%.4gs\n",
          cfg.synchronous ? "sync" : "async", static_cast<long long>(k),
          all_converged ? "yes" : "no",
          static_cast<double>(total_relax) / static_cast<double>(n),
          static_cast<double>(total_relax) / sol.seconds, sol.seconds);
      return all_converged ? 0 : 2;
    }

    const Solution sol = solve_spd(a, b, cfg);
    finish_telemetry();
    std::printf(
        "%s %s: converged=%s rel.residual=%.3e iterations=%lld "
        "relaxations/n=%.1f %s=%.4gs\n",
        cli.get_string("backend").c_str(), cfg.synchronous ? "sync" : "async",
        sol.converged ? "yes" : "no", sol.rel_residual_1,
        static_cast<long long>(sol.iterations),
        static_cast<double>(sol.relaxations) /
            static_cast<double>(a.num_rows()),
        cfg.backend == Backend::kDistributedSim ? "sim-time" : "wall-time",
        sol.seconds);
    return sol.converged ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
