// Scenario: how asynchronous Jacobi scales in distributed memory (the
// paper's Sec. VII-C experiments, miniaturized).
//
// A heterogeneous-diffusion problem (the ecology2 analogue from Table I)
// is solved on a simulated cluster at increasing rank counts. Synchronous
// Jacobi pays a barrier plus the slowest rank every iteration; the
// asynchronous RMA version pays neither, and its *convergence rate*
// improves with the rank count.

#include <cstdio>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/analogues.hpp"
#include "ajac/partition/partition.hpp"

namespace {

double time_to_tenx(const std::vector<ajac::distsim::DistHistoryPoint>& h) {
  for (std::size_t k = 1; k < h.size(); ++k) {
    if (h[k].rel_residual_1 <= 0.1) return h[k].sim_seconds;
  }
  return -1.0;
}

}  // namespace

int main() {
  using namespace ajac;

  const auto p = gen::make_problem(
      "ecology2", gen::make_analogue("ecology2", 0.1), 42);
  std::printf(
      "Heterogeneous diffusion (ecology2 analogue): %lld unknowns, %lld "
      "nonzeros.\n"
      "Simulated cluster: alpha-beta network, per-rank speed noise.\n\n",
      static_cast<long long>(p.a.num_rows()),
      static_cast<long long>(p.a.num_nonzeros()));

  std::printf("%6s | %13s | %14s | %s\n", "ranks", "sync 10x (s)",
              "async 10x (s)", "async advantage");
  for (index_t ranks : {16, 64, 256, 1024}) {
    const auto sys = partition::graph_growing_partition(p.a, ranks, 1);
    const auto pa = sys.perm.apply_symmetric(p.a);
    const auto pb = sys.perm.apply(p.b);
    const auto px = sys.perm.apply(p.x0);

    distsim::DistOptions o;
    o.num_processes = ranks;
    o.max_iterations = 100000;
    o.tolerance = 0.1;
    o.synchronous = true;
    const auto rs = distsim::solve_distributed(pa, pb, px, sys.partition, o);
    o.synchronous = false;
    const auto ra = distsim::solve_distributed(pa, pb, px, sys.partition, o);

    const double ts = time_to_tenx(rs.history);
    const double ta = time_to_tenx(ra.history);
    std::printf("%6lld | %13.4g | %14.4g | %.2fx\n",
                static_cast<long long>(ranks), ts, ta, ts / ta);
  }
  std::printf(
      "\nThe asynchronous advantage grows with the rank count: barriers cost\n"
      "O(log P), stragglers cost the max over P ranks, while asynchronous\n"
      "ranks just keep relaxing — and smaller subdomains make the iteration\n"
      "more multiplicative, accelerating convergence itself (Sec. VII-C).\n");
  return 0;
}
