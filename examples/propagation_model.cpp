// Walkthrough of the paper's propagation-matrix model (Sec. IV):
//  1. the Fig. 1 examples — which asynchronous histories can be written as
//     sequences of propagation matrices;
//  2. Theorem 1 — norms and unit eigenpairs of Ghat/Hhat under delays;
//  3. the interlacing mechanism behind "more concurrency helps".

#include <cstdio>

#include "ajac/eig/dense_eig.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/model/propagation.hpp"
#include "ajac/model/theory.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/submatrix.hpp"

int main() {
  using namespace ajac;
  using model::ActiveSet;

  // ---- 1. Fig. 1: reconstructing parallel steps from read versions ----
  std::printf("== Fig. 1: propagated-relaxation reconstruction ==\n");
  for (const auto& [label, trace] :
       {std::pair{"(a)", model::figure1a_trace()},
        std::pair{"(b)", model::figure1b_trace()}}) {
    const auto analysis = model::analyze_trace(trace);
    std::printf("example %s: %lld/%lld relaxations propagated; steps:", label,
                static_cast<long long>(analysis.propagated_relaxations),
                static_cast<long long>(analysis.total_relaxations));
    for (const auto& step : analysis.steps) {
      std::printf(" {");
      for (std::size_t i = 0; i < step.rows.size(); ++i) {
        std::printf("%sp%lld", i ? "," : "",
                    static_cast<long long>(step.rows[i] + 1));
      }
      std::printf("}%s", step.propagated ? "" : "*");
    }
    std::printf("   (* = not expressible as a propagation matrix)\n");
  }

  // ---- 2. Theorem 1 on a W.D.D. matrix ----
  std::printf("\n== Theorem 1: delayed rows pin the norms at exactly 1 ==\n");
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(4, 4));
  const index_t n = a.num_rows();
  for (const std::vector<index_t>& delayed :
       {std::vector<index_t>{5}, std::vector<index_t>{0, 7, 13}}) {
    const ActiveSet active =
        ActiveSet::from_indices(n, complement_rows(n, delayed));
    const auto chk = model::check_theorem1(a, active);
    std::printf(
        "delayed rows: %zu  ->  ||Ghat||_inf = %.12f, ||Hhat||_1 = %.12f,\n"
        "  unit-eigenpair residuals: Hhat %.1e, Ghat %.1e\n",
        delayed.size(), chk.g_norm_inf, chk.h_norm_1,
        chk.h_unit_eigvec_residual, chk.g_unit_eigvec_residual);
  }

  // ---- 3. Interlacing: why delays shrink the spectral radius ----
  std::printf("\n== Interlacing: active-submatrix spectra ==\n");
  const DenseMatrix g = model::iteration_matrix_dense(a);
  const auto lam = eig::dense_symmetric_eig(g).eigenvalues;
  std::printf("rho(G) = %.4f (full Jacobi)\n",
              std::max(std::abs(lam.front()), std::abs(lam.back())));
  for (index_t delayed_count : {1, 4, 8}) {
    std::vector<index_t> delayed;
    for (index_t k = 0; k < delayed_count; ++k) {
      delayed.push_back(k * (n / delayed_count));
    }
    const ActiveSet active =
        ActiveSet::from_indices(n, complement_rows(n, delayed));
    const auto mu =
        eig::dense_symmetric_eig(model::active_submatrix_dense(a, active))
            .eigenvalues;
    const auto blocks = model::decoupled_block_sizes(a, active);
    std::printf(
        "%2lld delayed rows -> rho(G~) = %.4f, %zu decoupled block(s), "
        "largest %lld\n",
        static_cast<long long>(delayed_count),
        std::max(std::abs(mu.front()), std::abs(mu.back())), blocks.size(),
        static_cast<long long>(blocks.front()));
  }
  std::printf(
      "\nThe interlacing theorem bounds every active-submatrix eigenvalue\n"
      "inside the full spectrum, so delays never increase the spectral\n"
      "radius — and once delays decouple the graph, each block interlaces\n"
      "again, below the whole (paper Sec. IV-C/IV-D).\n");
  return 0;
}
