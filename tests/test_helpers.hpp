#pragma once
// Shared fixtures/utilities for the test suite.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/types.hpp"

namespace ajac::testing {

/// Base seed for randomized and stress tests. Fixed by default so runs are
/// reproducible; override with AJAC_TEST_SEED=<n> to explore other
/// problem/schedule draws. Tests must surface the value they used (e.g.
/// via SCOPED_TRACE) so a failure names the seed that reproduces it.
inline std::uint64_t test_seed(std::uint64_t salt = 0) {
  std::uint64_t base = 0xa5a1c0de;
  if (const char* env = std::getenv("AJAC_TEST_SEED")) {
    char* end = nullptr;
    const auto parsed = std::strtoull(env, &end, 10);
    if (end != env) base = parsed;
  }
  return base + salt;
}

/// Small dense-checkable symmetric matrix with unit diagonal:
///   A = I - c * (adjacency of a path graph), W.D.D. for c <= 0.5.
inline CsrMatrix unit_diag_path(index_t n, double c) {
  std::vector<index_t> row_ptr{0};
  std::vector<index_t> col_idx;
  std::vector<double> values;
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) {
      col_idx.push_back(i - 1);
      values.push_back(-c);
    }
    col_idx.push_back(i);
    values.push_back(1.0);
    if (i + 1 < n) {
      col_idx.push_back(i + 1);
      values.push_back(-c);
    }
    row_ptr.push_back(static_cast<index_t>(col_idx.size()));
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

/// Exact spectral radius of the Jacobi iteration matrix of the 2D 5-point
/// Laplacian on an nx-by-ny grid: (cos(pi/(nx+1)) + cos(pi/(ny+1)))/2.
inline double fd2d_jacobi_rho(index_t nx, index_t ny) {
  return 0.5 * (std::cos(M_PI / static_cast<double>(nx + 1)) +
                std::cos(M_PI / static_cast<double>(ny + 1)));
}

/// ||A x - y||_inf.
inline double apply_diff_inf(const CsrMatrix& a, const Vector& x,
                             const Vector& y) {
  Vector ax(static_cast<std::size_t>(a.num_rows()));
  a.spmv(x, ax);
  double acc = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    acc = std::max(acc, std::abs(ax[i] - y[i]));
  }
  return acc;
}

}  // namespace ajac::testing
