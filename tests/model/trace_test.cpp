#include "ajac/model/trace.hpp"

#include <gtest/gtest.h>

namespace ajac::model {
namespace {

TEST(Trace, Figure1aIsFullyPropagatable) {
  // The paper's Fig. 1(a): all four relaxations can be expressed as a
  // sequence of propagation matrices.
  const auto analysis = analyze_trace(figure1a_trace());
  EXPECT_EQ(analysis.total_relaxations, 4);
  EXPECT_EQ(analysis.propagated_relaxations, 4);
  EXPECT_DOUBLE_EQ(analysis.fraction, 1.0);
  EXPECT_EQ(analysis.orphaned, 0);
}

TEST(Trace, Figure1aReconstructsPaperSteps) {
  // The paper derives Phi(1)={p4}, Phi(2)={p1,p2}, Phi(3)={p3}.
  const auto analysis = analyze_trace(figure1a_trace());
  ASSERT_EQ(analysis.steps.size(), 3u);
  EXPECT_EQ(analysis.steps[0].rows, (std::vector<index_t>{3}));
  EXPECT_EQ(analysis.steps[1].rows, (std::vector<index_t>{0, 1}));
  EXPECT_EQ(analysis.steps[2].rows, (std::vector<index_t>{2}));
  for (const auto& s : analysis.steps) EXPECT_TRUE(s.propagated);
}

TEST(Trace, Figure1bLosesExactlyOneRelaxation) {
  // Fig. 1(b): p3 cannot be expressed; 3 of 4 relaxations are propagated.
  const auto analysis = analyze_trace(figure1b_trace());
  EXPECT_EQ(analysis.total_relaxations, 4);
  EXPECT_EQ(analysis.propagated_relaxations, 3);
  EXPECT_DOUBLE_EQ(analysis.fraction, 0.75);
}

TEST(Trace, SynchronousHistoryIsFullyPropagated) {
  // Lag-1 mutual reads are exactly synchronous Jacobi: 100% propagated,
  // one parallel step per sweep.
  const index_t n = 4;
  RelaxationTrace trace(n);
  for (index_t sweep = 0; sweep < 5; ++sweep) {
    for (index_t i = 0; i < n; ++i) {
      RelaxationEvent e;
      e.row = i;
      for (index_t j = 0; j < n; ++j) {
        if (j != i) e.reads.push_back({j, sweep});
      }
      trace.add_event(e);
    }
  }
  const auto analysis = analyze_trace(trace);
  EXPECT_DOUBLE_EQ(analysis.fraction, 1.0);
  EXPECT_EQ(analysis.parallel_steps, 5);
  for (const auto& s : analysis.steps) EXPECT_EQ(s.rows.size(), 4u);
}

TEST(Trace, GaussSeidelHistoryIsFullyPropagated) {
  // Each row reads the freshest values (previous rows at the current
  // sweep, later rows at the previous sweep): sequential steps.
  const index_t n = 3;
  RelaxationTrace trace(n);
  for (index_t sweep = 0; sweep < 3; ++sweep) {
    for (index_t i = 0; i < n; ++i) {
      RelaxationEvent e;
      e.row = i;
      for (index_t j = 0; j < n; ++j) {
        if (j == i) continue;
        e.reads.push_back({j, j < i ? sweep + 1 : sweep});
      }
      trace.add_event(e);
    }
  }
  const auto analysis = analyze_trace(trace);
  EXPECT_DOUBLE_EQ(analysis.fraction, 1.0);
  EXPECT_EQ(analysis.parallel_steps, 9);  // one row per step
}

TEST(Trace, UniformLagTwoIsMostlyStale) {
  // Every row reads every other row two versions behind: after a short
  // prefix nothing can be scheduled exactly.
  const index_t n = 3;
  RelaxationTrace trace(n);
  for (index_t k = 0; k < 6; ++k) {
    for (index_t i = 0; i < n; ++i) {
      RelaxationEvent e;
      e.row = i;
      for (index_t j = 0; j < n; ++j) {
        if (j != i) e.reads.push_back({j, std::max<index_t>(0, k - 1)});
      }
      trace.add_event(e);
    }
  }
  const auto analysis = analyze_trace(trace);
  EXPECT_EQ(analysis.total_relaxations, 18);
  EXPECT_LT(analysis.fraction, 0.5);
  EXPECT_EQ(analysis.orphaned, 0);
}

TEST(Trace, IndependentRowsAlwaysPropagate) {
  // No reads at all: every relaxation is trivially exact.
  RelaxationTrace trace(2);
  for (int k = 0; k < 4; ++k) {
    trace.add_event({0, {}});
    trace.add_event({1, {}});
  }
  const auto analysis = analyze_trace(trace);
  EXPECT_DOUBLE_EQ(analysis.fraction, 1.0);
}

TEST(Trace, TruncatedDependencyIsOrphaned) {
  // Row 0 waits for version 3 of row 1, which the trace never produces.
  RelaxationTrace trace(2);
  trace.add_event({1, {}});
  trace.add_event({0, {{1, 3}}});
  const auto analysis = analyze_trace(trace);
  EXPECT_EQ(analysis.orphaned, 1);
  EXPECT_EQ(analysis.propagated_relaxations, 1);
}

TEST(Trace, EmptyTraceIsVacuouslyComplete) {
  RelaxationTrace trace(3);
  const auto analysis = analyze_trace(trace);
  EXPECT_EQ(analysis.total_relaxations, 0);
  EXPECT_DOUBLE_EQ(analysis.fraction, 1.0);
}

TEST(Trace, RejectsOutOfRangeEvents) {
  RelaxationTrace trace(2);
  EXPECT_THROW(trace.add_event({5, {}}), std::logic_error);
  EXPECT_THROW(trace.add_event({0, {{7, 0}}}), std::logic_error);
}

TEST(Trace, VersionSkipsAreSchedulable) {
  // Row 1 reads version 2 of row 0, skipping version 1 entirely: the
  // scheduler relaxes row 0 twice first. Fully propagated.
  RelaxationTrace trace(2);
  trace.add_event({0, {{1, 0}}});
  trace.add_event({0, {{1, 0}}});
  trace.add_event({1, {{0, 2}}});
  const auto analysis = analyze_trace(trace);
  EXPECT_DOUBLE_EQ(analysis.fraction, 1.0);
  EXPECT_EQ(analysis.parallel_steps, 3);
}

}  // namespace
}  // namespace ajac::model
