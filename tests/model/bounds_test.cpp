#include "ajac/model/bounds.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/propagation.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/dense.hpp"
#include "ajac/sparse/scaling.hpp"
#include "test_helpers.hpp"

namespace ajac::model {
namespace {

TEST(ChazanMiranker, CertifiesWddMatrices) {
  // Irreducibly W.D.D. FD Laplacians: rho(|G|) < 1 — asynchronous Jacobi
  // converges for every admissible schedule.
  const auto cert = chazan_miranker(gen::fd_laplacian_2d(8, 8));
  ASSERT_TRUE(cert.converged);
  EXPECT_LT(cert.rho_abs_g, 1.0);
  EXPECT_TRUE(cert.async_convergent_for_all_schedules);
}

TEST(ChazanMiranker, RejectsTheDivergentFeMatrix) {
  gen::FeMeshOptions fo;
  fo.nx = 30;
  fo.ny = 20;
  fo.jitter = 0.35;
  fo.jitter_fraction = 0.15;
  fo.seed = 20180521;
  const auto cert = chazan_miranker(gen::fe_laplacian_2d(fo));
  ASSERT_TRUE(cert.converged);
  // rho(|G|) >= rho(G) > 1: no guarantee — and indeed some schedules
  // (synchronous) diverge while others (fine-grained) converge.
  EXPECT_GT(cert.rho_abs_g, 1.0);
  EXPECT_FALSE(cert.async_convergent_for_all_schedules);
}

TEST(ChazanMiranker, MatchesKnownValueOnPath) {
  // For tridiag(-1,2,-1), |G| = G_abs has rho = cos(pi/(n+1)).
  const index_t n = 15;
  const auto cert = chazan_miranker(gen::fd_laplacian_1d(n));
  EXPECT_NEAR(cert.rho_abs_g, std::cos(M_PI / (n + 1)), 1e-7);
}

TEST(TransientGrowthTest, NeverExceedsOneUnderWdd) {
  // Theorem 1: every propagation matrix of a W.D.D. unit-diagonal matrix
  // has infinity norm <= 1, so products cannot grow.
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(4, 4));
  const auto growth = sample_transient_growth(a, 12, 4, 0.6, 3);
  EXPECT_LE(growth.max_product_norm_inf, 1.0 + 1e-12);
  EXPECT_LE(growth.final_product_norm_inf, 1.0 + 1e-12);
}

TEST(TransientGrowthTest, GrowsWithoutWdd) {
  // The FE matrix admits transient growth: some mask products exceed 1.
  gen::FeMeshOptions fo;
  fo.nx = 8;
  fo.ny = 8;
  fo.jitter = 0.35;
  fo.jitter_fraction = 0.5;
  fo.seed = 20180521;
  const CsrMatrix a = scale_to_unit_diagonal(gen::fe_laplacian_2d(fo));
  const auto growth = sample_transient_growth(a, 12, 4, 0.9, 3);
  EXPECT_GT(growth.max_product_norm_inf, 1.0);
}

TEST(TransientGrowthTest, FullActivityIsPowersOfG) {
  // activity = 1: the product after k steps is G^k; its norm must match
  // the directly computed power.
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3));
  const auto growth = sample_transient_growth(a, 5, 1, 1.0, 7);
  DenseMatrix g = iteration_matrix_dense(a);
  DenseMatrix p = DenseMatrix::identity(a.num_rows());
  double max_norm = 0.0;
  for (int k = 0; k < 5; ++k) {
    p = g.multiply(p);
    max_norm = std::max(max_norm, p.norm_inf());
  }
  EXPECT_NEAR(growth.max_product_norm_inf, max_norm, 1e-12);
}

TEST(EmpiricalContraction, MatchesJacobiAsymptoticRate) {
  // For synchronous Jacobi the realized per-step factor approaches rho(G).
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(10, 10), 3);
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 600;
  const auto r = run_synchronous(p.a, p.b, p.x0, eo);
  const double rate = empirical_contraction(r.history);
  EXPECT_NEAR(rate, testing::fd2d_jacobi_rho(10, 10), 0.01);
}

TEST(EmpiricalContraction, DetectsDivergence) {
  gen::FeMeshOptions fo;
  fo.nx = 20;
  fo.ny = 20;
  fo.jitter = 0.35;
  fo.jitter_fraction = 0.15;
  fo.seed = 20180521;
  const auto p = gen::make_problem("fe", gen::fe_laplacian_2d(fo), 5);
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 400;
  const auto r = run_synchronous(p.a, p.b, p.x0, eo);
  EXPECT_GT(empirical_contraction(r.history), 1.0);
}

TEST(EmpiricalContraction, DegenerateHistories) {
  EXPECT_DOUBLE_EQ(empirical_contraction({}), 1.0);
  HistoryPoint one;
  EXPECT_DOUBLE_EQ(empirical_contraction({one}), 1.0);
}

}  // namespace
}  // namespace ajac::model
