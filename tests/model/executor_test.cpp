#include "ajac/model/executor.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/solvers/stationary.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "test_helpers.hpp"

namespace ajac::model {
namespace {

TEST(Executor, SynchronousModelEqualsReferenceJacobi) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(6, 6), 3);
  ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = 25;
  const ModelResult m = run_synchronous(p.a, p.b, p.x0, mo);

  solvers::SolveOptions so;
  so.tolerance = 0.0;
  so.max_iterations = 25;
  const solvers::SolveResult s = solvers::jacobi(p.a, p.b, p.x0, so);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(m.x, s.x), 0.0);
}

TEST(Executor, ConvergesOnWddProblem) {
  const auto p = gen::make_problem("fd", gen::paper_fd_68(), 5);
  ExecutorOptions mo;
  mo.tolerance = 1e-3;
  mo.max_steps = 10000;
  const ModelResult m = run_synchronous(p.a, p.b, p.x0, mo);
  EXPECT_TRUE(m.converged);
  EXPECT_LE(m.final_rel_residual_1, 1e-3);
  // Independent check of the final residual.
  Vector r(p.b.size());
  p.a.residual(m.x, p.b, r);
  Vector r0(p.b.size());
  p.a.residual(p.x0, p.b, r0);
  EXPECT_LE(vec::norm1(r) / vec::norm1(r0), 1e-3 * (1 + 1e-12));
}

TEST(Executor, HistoryIsRecordedAndMonotoneInStep) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 2);
  ExecutorOptions mo;
  mo.tolerance = 1e-4;
  mo.max_steps = 1000;
  const ModelResult m = run_synchronous(p.a, p.b, p.x0, mo);
  ASSERT_GE(m.history.size(), 2u);
  EXPECT_EQ(m.history.front().step, 0);
  EXPECT_DOUBLE_EQ(m.history.front().rel_residual_1, 1.0);
  for (std::size_t k = 1; k < m.history.size(); ++k) {
    EXPECT_GT(m.history[k].step, m.history[k - 1].step);
    EXPECT_GE(m.history[k].relaxations, m.history[k - 1].relaxations);
  }
}

TEST(Executor, RelaxationCountMatchesSchedule) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(3, 3), 1);
  ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = 10;
  SequentialSchedule seq(p.a.num_rows());
  const ModelResult m = run_model(p.a, p.b, p.x0, seq, mo);
  EXPECT_EQ(m.relaxations, 10);  // one row per step
  const ModelResult ms = run_synchronous(p.a, p.b, p.x0, mo);
  EXPECT_EQ(ms.relaxations, 10 * p.a.num_rows());
}

TEST(Executor, RecordEveryThinsHistory) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 1);
  ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = 100;
  mo.record_every = 25;
  const ModelResult m = run_synchronous(p.a, p.b, p.x0, mo);
  EXPECT_EQ(m.history.size(), 5u);  // steps 0, 25, 50, 75, 100
}

TEST(Executor, ErrorNormTrackedWhenExactGiven) {
  const CsrMatrix a = testing::unit_diag_path(10, 0.4);
  Vector x_exact(10, 1.0);
  Vector b(10);
  a.spmv(x_exact, b);
  Vector x0(10, 0.0);
  ExecutorOptions mo;
  mo.tolerance = 1e-10;
  mo.max_steps = 10000;
  mo.exact_solution = x_exact;
  const ModelResult m = run_synchronous(a, b, x0, mo);
  ASSERT_TRUE(m.converged);
  EXPECT_GE(m.history.front().error_inf, 0.99);
  EXPECT_LE(m.history.back().error_inf, 1e-8);
}

TEST(Executor, DelayedRowStillReducesResidual) {
  // Sec. IV-C: with one permanently delayed row the residual keeps
  // shrinking toward the deflated limit (never increases, W.D.D. case).
  const auto p = gen::make_problem("fd", gen::paper_fd_68(), 4);
  ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = 300;
  DelayedRowsSchedule sched(p.a.num_rows(), {{34, 0}});
  const ModelResult m = run_model(p.a, p.b, p.x0, sched, mo);
  for (std::size_t k = 1; k < m.history.size(); ++k) {
    EXPECT_LE(m.history[k].rel_residual_1,
              m.history[k - 1].rel_residual_1 * (1.0 + 1e-12));
  }
  EXPECT_LT(m.final_rel_residual_1, 0.5);
}

TEST(Executor, EmptyScheduleStepsDoNothing) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(3, 3), 8);
  ExecutorOptions mo;
  mo.tolerance = 0.0;
  mo.max_steps = 7;
  SynchronousSchedule sparse_sched(p.a.num_rows(), 5);  // active at 0 and 5
  const ModelResult m = run_model(p.a, p.b, p.x0, sparse_sched, mo);
  EXPECT_EQ(m.relaxations, 2 * p.a.num_rows());
}

TEST(Executor, ValidatesShapes) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(3, 3), 8);
  Vector short_b(3);
  EXPECT_THROW(run_synchronous(p.a, short_b, p.x0, {}), std::logic_error);
}

}  // namespace
}  // namespace ajac::model
