#include "ajac/model/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/eig/dense_eig.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/propagation.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/submatrix.hpp"
#include "test_helpers.hpp"

namespace ajac::model {
namespace {

class Theorem1Fd : public ::testing::TestWithParam<std::vector<index_t>> {};

TEST_P(Theorem1Fd, NormsAndSpectralRadiiAreOne) {
  // Theorem 1: W.D.D. A with >= 1 delayed row =>
  //   ||Ghat||_inf = rho(Ghat) = 1 and ||Hhat||_1 = rho(Hhat) = 1.
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(4, 4));
  const index_t n = a.num_rows();
  const std::vector<index_t> delayed = GetParam();
  const ActiveSet active =
      ActiveSet::from_indices(n, complement_rows(n, delayed));
  const Theorem1Check chk = check_theorem1(a, active);
  ASSERT_TRUE(chk.has_delayed_row);
  EXPECT_NEAR(chk.g_norm_inf, 1.0, 1e-12);
  EXPECT_NEAR(chk.h_norm_1, 1.0, 1e-12);
  // rho >= 1 witnessed by exact unit eigenpairs; rho <= norm gives equality.
  EXPECT_NEAR(chk.h_unit_eigvec_residual, 0.0, 1e-12);
  EXPECT_NEAR(chk.g_unit_eigvec_residual, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DelayedSets, Theorem1Fd,
    ::testing::Values(std::vector<index_t>{0}, std::vector<index_t>{7},
                      std::vector<index_t>{15}, std::vector<index_t>{3, 9},
                      std::vector<index_t>{0, 1, 2, 3},
                      std::vector<index_t>{5, 6, 9, 10},
                      std::vector<index_t>{0, 2, 4, 6, 8, 10, 12, 14}));

TEST(Theorem1, NoDelayedRowGivesJacobiNorms) {
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3));
  const Theorem1Check chk = check_theorem1(a, ActiveSet::all(a.num_rows()));
  EXPECT_FALSE(chk.has_delayed_row);
  // For the fully active mask, ||G||_inf = max row sum of |G| < 1 only for
  // strictly dominant rows; the corner rows give 0.5, the center 1.0.
  EXPECT_LE(chk.g_norm_inf, 1.0 + 1e-12);
}

TEST(NullVector, FindsExactNullSpace) {
  // Y = Ghat - I has a zero row for each delayed row.
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3));
  const ActiveSet active = ActiveSet::from_indices(
      a.num_rows(), complement_rows(a.num_rows(), {4}));
  DenseMatrix y = error_propagation_dense(a, active);
  for (index_t i = 0; i < a.num_rows(); ++i) y(i, i) -= 1.0;
  const Vector v = null_vector(y);
  Vector yv(v.size());
  y.gemv(v, yv);
  for (double val : yv) EXPECT_NEAR(val, 0.0, 1e-10);
  // Normalized to unit infinity norm.
  double vmax = 0.0;
  for (double val : v) vmax = std::max(vmax, std::abs(val));
  EXPECT_NEAR(vmax, 1.0, 1e-12);
}

TEST(NullVector, ThrowsOnFullRank) {
  DenseMatrix eye = DenseMatrix::identity(3);
  EXPECT_THROW(null_vector(eye), std::logic_error);
}

TEST(Interlacing, ActiveSubmatrixInterlacesJacobiSpectrum) {
  // Sec. IV-C: eigenvalues of the active principal submatrix G~ satisfy
  // lambda_i <= mu_i <= lambda_{i+n-m} (Cauchy interlacing).
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(4, 4));
  const index_t n = a.num_rows();
  const DenseMatrix g = iteration_matrix_dense(a);
  const auto lam = eig::dense_symmetric_eig(g).eigenvalues;

  for (const std::vector<index_t>& delayed :
       {std::vector<index_t>{0}, std::vector<index_t>{5, 10},
        std::vector<index_t>{1, 2, 3, 4, 5}}) {
    const ActiveSet active =
        ActiveSet::from_indices(n, complement_rows(n, delayed));
    const DenseMatrix sub = active_submatrix_dense(a, active);
    const auto mu = eig::dense_symmetric_eig(sub).eigenvalues;
    EXPECT_LE(interlacing_violation(lam, mu, 1e-10), 0.0);
  }
}

TEST(Interlacing, ViolationDetectorFires) {
  // mu outside the interlacing band must be flagged.
  EXPECT_GT(interlacing_violation({0.0, 1.0, 2.0}, {5.0, 6.0}, 0.0), 0.0);
  EXPECT_LE(interlacing_violation({0.0, 1.0, 2.0}, {0.5, 1.5}, 0.0), 0.0);
}

TEST(Interlacing, SubmatrixSpectralRadiusBounded) {
  // rho(G~) <= rho(G) for symmetric G: delays can only shrink the radius.
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(5, 5));
  const DenseMatrix g = iteration_matrix_dense(a);
  const auto lam = eig::dense_symmetric_eig(g).eigenvalues;
  const double rho_g =
      std::max(std::abs(lam.front()), std::abs(lam.back()));
  const ActiveSet active = ActiveSet::from_indices(
      a.num_rows(), complement_rows(a.num_rows(), {12}));
  const auto mu =
      eig::dense_symmetric_eig(active_submatrix_dense(a, active)).eigenvalues;
  const double rho_sub = std::max(std::abs(mu.front()), std::abs(mu.back()));
  EXPECT_LE(rho_sub, rho_g + 1e-12);
}

TEST(DecoupledBlocks, SeparatorSplitsActiveGraph) {
  // Delaying a full grid column decouples the active submatrix into two
  // blocks (Sec. IV-D).
  const index_t nx = 5, ny = 4;
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(nx, ny));
  std::vector<index_t> separator;
  for (index_t j = 0; j < ny; ++j) separator.push_back(j * nx + 2);
  const ActiveSet active = ActiveSet::from_indices(
      nx * ny, complement_rows(nx * ny, separator));
  const auto sizes = decoupled_block_sizes(a, active);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 8);
  EXPECT_EQ(sizes[1], 8);
}

TEST(DecoupledBlocks, FullyActiveIsOneBlock) {
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3));
  const auto sizes = decoupled_block_sizes(a, ActiveSet::all(a.num_rows()));
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 9);
}

TEST(DecoupledBlocks, MoreDelaysShrinkLargestBlock) {
  // Sec. IV-D's mechanism for "more concurrency helps": with more delayed
  // rows the largest decoupled active block gets smaller, hence a smaller
  // spectral radius by interlacing.
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(6, 6));
  const index_t n = a.num_rows();
  // Delay two separating columns instead of one.
  std::vector<index_t> sep1;
  std::vector<index_t> sep2;
  for (index_t j = 0; j < 6; ++j) {
    sep1.push_back(j * 6 + 3);
    sep2.push_back(j * 6 + 1);
    sep2.push_back(j * 6 + 3);
  }
  const auto sizes1 = decoupled_block_sizes(
      a, ActiveSet::from_indices(n, complement_rows(n, sep1)));
  const auto sizes2 = decoupled_block_sizes(
      a, ActiveSet::from_indices(n, complement_rows(n, sep2)));
  EXPECT_GT(sizes1.front(), sizes2.front());
  EXPECT_GT(sizes2.size(), sizes1.size());
}

}  // namespace
}  // namespace ajac::model
