// Tests of the Eq. 12-16 delayed-system reduction: with a set of rows
// permanently frozen, iterating the reduced system y <- G~ y + f is
// exactly the delayed model run restricted to the active rows.

#include <gtest/gtest.h>

#include "ajac/eig/dense_eig.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/propagation.hpp"
#include "ajac/model/theory.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "test_helpers.hpp"

namespace ajac::model {
namespace {

class DelayedReductionTest
    : public ::testing::TestWithParam<std::vector<index_t>> {};

TEST_P(DelayedReductionTest, ReducedIterationMatchesDelayedModelRun) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(5, 5), 7);
  const index_t n = p.a.num_rows();
  const std::vector<index_t> delayed = GetParam();

  // Run the delayed model for K steps.
  const index_t steps = 20;
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = steps;
  std::vector<std::pair<index_t, index_t>> delays;
  for (index_t d : delayed) delays.emplace_back(d, 0);  // never relax
  DelayedRowsSchedule sched(n, delays);
  const ModelResult run = run_model(p.a, p.b, p.x0, sched, eo);

  // Iterate the reduced system the same number of steps.
  const DelayedReduction red =
      reduce_delayed_system(p.a, p.b, p.x0, delayed);
  const auto m = static_cast<index_t>(red.active.size());
  Vector y(static_cast<std::size_t>(m));
  for (index_t k = 0; k < m; ++k) y[k] = p.x0[red.active[k]];
  Vector y_next(y.size());
  for (index_t s = 0; s < steps; ++s) {
    red.g_tilde.gemv(y, y_next);
    for (index_t k = 0; k < m; ++k) y_next[k] += red.f[k];
    y.swap(y_next);
  }

  for (index_t k = 0; k < m; ++k) {
    EXPECT_NEAR(y[k], run.x[red.active[k]], 1e-12);
  }
  // Delayed components never moved.
  for (index_t d : delayed) {
    EXPECT_DOUBLE_EQ(run.x[d], p.x0[d]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DelaySets, DelayedReductionTest,
    ::testing::Values(std::vector<index_t>{12}, std::vector<index_t>{0, 24},
                      std::vector<index_t>{3, 7, 11, 19},
                      std::vector<index_t>{0, 1, 2, 3, 4}));

TEST(DelayedReductionTest2, GTildeIsActiveSubmatrixOfG) {
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(4, 4));
  Vector b(16, 0.5);
  Vector x(16, -0.25);
  const std::vector<index_t> delayed{2, 9};
  const DelayedReduction red = reduce_delayed_system(a, b, x, delayed);
  const DenseMatrix expect = active_submatrix_dense(
      a, ActiveSet::from_indices(16, red.active));
  EXPECT_NEAR(red.g_tilde.max_abs_diff(expect), 0.0, 1e-14);
}

TEST(DelayedReductionTest2, ReducedSpectrumInterlaces) {
  // The reduced iteration's convergence is governed by eigenvalues that
  // interlace the full spectrum (Sec. IV-C's conclusion: "convergence for
  // the propagation matrix will be slow if synchronous Jacobi is slow").
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(4, 4));
  Vector b(16, 1.0);
  Vector x(16, 0.0);
  const DelayedReduction red = reduce_delayed_system(a, b, x, {5});
  const auto g = iteration_matrix_dense(a);
  const auto lam = eig::dense_symmetric_eig(g).eigenvalues;
  const auto mu = eig::dense_symmetric_eig(red.g_tilde).eigenvalues;
  EXPECT_LE(interlacing_violation(lam, mu, 1e-10), 0.0);
}

TEST(DelayedReductionTest2, NoDelaysReducesToFullJacobi) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(3, 3), 9);
  const DelayedReduction red = reduce_delayed_system(p.a, p.b, p.x0, {});
  EXPECT_EQ(red.active.size(), 9u);
  const DenseMatrix g = iteration_matrix_dense(p.a);
  EXPECT_NEAR(red.g_tilde.max_abs_diff(g), 0.0, 1e-14);
  for (std::size_t i = 0; i < red.f.size(); ++i) {
    EXPECT_NEAR(red.f[i], p.b[i], 1e-14);  // unit diagonal: f = b
  }
}

}  // namespace
}  // namespace ajac::model
