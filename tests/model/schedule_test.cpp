#include "ajac/model/schedule.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::model {
namespace {

TEST(SynchronousSchedule, AllRowsEveryStep) {
  SynchronousSchedule s(4);
  ActiveSet a(4);
  for (index_t k = 0; k < 5; ++k) {
    s.active_rows(k, a);
    EXPECT_EQ(a.count(), 4);
  }
}

TEST(SynchronousSchedule, PeriodModelsBarrierWait) {
  SynchronousSchedule s(3, 10);
  ActiveSet a(3);
  s.active_rows(0, a);
  EXPECT_EQ(a.count(), 3);
  s.active_rows(1, a);
  EXPECT_EQ(a.count(), 0);
  s.active_rows(10, a);
  EXPECT_EQ(a.count(), 3);
}

TEST(DelayedRowsSchedule, DelayedRowRelaxesAtMultiples) {
  DelayedRowsSchedule s(4, {{2, 3}});
  ActiveSet a(4);
  s.active_rows(0, a);
  EXPECT_EQ(a.count(), 4);  // step 0: everyone (0 % 3 == 0)
  s.active_rows(1, a);
  EXPECT_EQ(a.count(), 3);
  EXPECT_FALSE(a.contains(2));
  s.active_rows(3, a);
  EXPECT_TRUE(a.contains(2));
}

TEST(DelayedRowsSchedule, ZeroDelayMeansNeverRelaxes) {
  DelayedRowsSchedule s(3, {{1, 0}});
  ActiveSet a(3);
  for (index_t k = 0; k < 20; ++k) {
    s.active_rows(k, a);
    EXPECT_FALSE(a.contains(1));
    EXPECT_EQ(a.count(), 2);
  }
}

TEST(DelayedRowsSchedule, MultipleDelaysIndependent) {
  DelayedRowsSchedule s(5, {{0, 2}, {4, 3}});
  ActiveSet a(5);
  s.active_rows(6, a);  // 6 % 2 == 0 and 6 % 3 == 0
  EXPECT_EQ(a.count(), 5);
  s.active_rows(2, a);  // 0 active, 4 not
  EXPECT_TRUE(a.contains(0));
  EXPECT_FALSE(a.contains(4));
}

TEST(RandomSubsetSchedule, ProbabilityExtremes) {
  RandomSubsetSchedule all(6, 1.0, 1);
  RandomSubsetSchedule none(6, 0.0, 1);
  ActiveSet a(6);
  all.active_rows(0, a);
  EXPECT_EQ(a.count(), 6);
  none.active_rows(0, a);
  EXPECT_EQ(a.count(), 0);
}

TEST(RandomSubsetSchedule, FractionRoughlyMatches) {
  RandomSubsetSchedule s(1000, 0.3, 7);
  ActiveSet a(1000);
  index_t total = 0;
  for (index_t k = 0; k < 20; ++k) {
    s.active_rows(k, a);
    total += a.count();
  }
  EXPECT_NEAR(static_cast<double>(total) / 20000.0, 0.3, 0.03);
}

TEST(SequentialSchedule, CyclesRowsInOrder) {
  SequentialSchedule s(3);
  ActiveSet a(3);
  for (index_t k = 0; k < 7; ++k) {
    s.active_rows(k, a);
    EXPECT_EQ(a.count(), 1);
    EXPECT_TRUE(a.contains(k % 3));
  }
}

TEST(MulticolorSchedule, PartitionsByColor) {
  MulticolorSchedule s({0, 1, 0, 1, 2}, 3);
  ActiveSet a(5);
  s.active_rows(0, a);
  EXPECT_EQ(a.count(), 2);
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(2));
  s.active_rows(2, a);
  EXPECT_EQ(a.count(), 1);
  EXPECT_TRUE(a.contains(4));
  s.active_rows(3, a);  // wraps to color 0
  EXPECT_TRUE(a.contains(0));
}

TEST(ReplaySchedule, ReplaysAndThenGoesQuiet) {
  ReplaySchedule s(4, {{0, 1}, {2}, {}});
  ActiveSet a(4);
  s.active_rows(0, a);
  EXPECT_EQ(a.count(), 2);
  s.active_rows(1, a);
  EXPECT_TRUE(a.contains(2));
  s.active_rows(2, a);
  EXPECT_EQ(a.count(), 0);
  s.active_rows(99, a);  // past the end
  EXPECT_EQ(a.count(), 0);
}

TEST(GreedyColoring, ValidColoringOfGrid) {
  const CsrMatrix a = gen::fd_laplacian_2d(6, 5);
  index_t num_colors = 0;
  const auto colors = greedy_coloring(a, &num_colors);
  // Bipartite grid: exactly two colors from the greedy sweep.
  EXPECT_EQ(num_colors, 2);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      if (i != j) {
        EXPECT_NE(colors[i], colors[j]);
      }
    }
  }
}

TEST(GreedyColoring, PathNeedsTwoColors) {
  index_t num_colors = 0;
  static_cast<void>(greedy_coloring(gen::fd_laplacian_1d(10), &num_colors));
  EXPECT_EQ(num_colors, 2);
}

}  // namespace
}  // namespace ajac::model
