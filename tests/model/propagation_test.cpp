#include "ajac/model/propagation.hpp"

#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/scaling.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"
#include "test_helpers.hpp"

namespace ajac::model {
namespace {

/// Matrix-free step must agree with x_out = Ghat x_in + Dhat b.
TEST(Propagation, ApplyStepMatchesDenseFormula) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 3);
  const index_t n = p.a.num_rows();
  const ActiveSet active = ActiveSet::from_indices(n, {0, 3, 5, 6, 11, 15});
  Vector inv_diag(static_cast<std::size_t>(n), 1.0);  // unit diagonal

  Vector x_out(p.x0.size());
  apply_step(p.a, inv_diag, p.b, active, p.x0, x_out);

  const DenseMatrix g = error_propagation_dense(p.a, active);
  Vector gx(p.x0.size());
  g.gemv(p.x0, gx);
  for (index_t i : active.indices()) gx[i] += p.b[i];
  EXPECT_NEAR(vec::max_abs_diff(x_out, gx), 0.0, 1e-13);
}

TEST(Propagation, InactiveRowsPassThrough) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(3, 3), 5);
  const index_t n = p.a.num_rows();
  const ActiveSet active = ActiveSet::from_indices(n, {4});
  Vector inv_diag(static_cast<std::size_t>(n), 1.0);
  Vector x_out(p.x0.size());
  apply_step(p.a, inv_diag, p.b, active, p.x0, x_out);
  for (index_t i = 0; i < n; ++i) {
    if (i != 4) {
      EXPECT_DOUBLE_EQ(x_out[i], p.x0[i]);
    }
  }
  EXPECT_NE(x_out[4], p.x0[4]);
}

TEST(Propagation, InplaceMatchesOutOfPlace) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(5, 4), 7);
  const index_t n = p.a.num_rows();
  const ActiveSet active = ActiveSet::from_indices(n, {1, 2, 3, 9, 17});
  Vector inv_diag(static_cast<std::size_t>(n), 1.0);
  Vector expected(p.x0.size());
  apply_step(p.a, inv_diag, p.b, active, p.x0, expected);
  Vector x = p.x0;
  Vector scratch(static_cast<std::size_t>(n));
  apply_step_inplace(p.a, inv_diag, p.b, active, x, scratch);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(x, expected), 0.0);
}

TEST(Propagation, FullMaskIsJacobiIterationMatrix) {
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3));
  const DenseMatrix g = iteration_matrix_dense(a);
  // G = I - A for unit-diagonal A.
  const DenseMatrix dense_a = DenseMatrix::from_csr(a);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    for (index_t j = 0; j < a.num_cols(); ++j) {
      const double expect = (i == j ? 1.0 : 0.0) - dense_a(i, j);
      EXPECT_NEAR(g(i, j), expect, 1e-14);
    }
  }
}

TEST(Propagation, DelayedRowsAreUnitBasisRows) {
  // Sec. IV-A: "For a row i that is not relaxed at time k, row i of Ghat(k)
  // is zero except for a 1 in the diagonal position."
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3));
  const index_t n = a.num_rows();
  const ActiveSet active = ActiveSet::from_indices(n, {0, 1, 2, 3, 5, 6, 7, 8});
  const DenseMatrix g = error_propagation_dense(a, active);
  for (index_t j = 0; j < n; ++j) {
    EXPECT_DOUBLE_EQ(g(4, j), j == 4 ? 1.0 : 0.0);
  }
}

TEST(Propagation, DelayedColumnsAreUnitBasisColumns) {
  // "Similarly, column i of Hhat(k) is zero except for a 1 in the diagonal
  // position of that column."
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 3));
  const index_t n = a.num_rows();
  const ActiveSet active = ActiveSet::from_indices(n, {0, 1, 2, 3, 5, 6, 7, 8});
  const DenseMatrix h = residual_propagation_dense(a, active);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(h(i, 4), i == 4 ? 1.0 : 0.0);
  }
}

TEST(Propagation, ResidualEvolvesByHhat) {
  // r(k+1) = Hhat r(k) must hold exactly for the masked step.
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 3), 9);
  const index_t n = p.a.num_rows();
  const ActiveSet active = ActiveSet::from_indices(n, {0, 2, 5, 7, 8});
  Vector inv_diag(static_cast<std::size_t>(n), 1.0);

  Vector r0(p.x0.size());
  p.a.residual(p.x0, p.b, r0);
  Vector x1(p.x0.size());
  apply_step(p.a, inv_diag, p.b, active, p.x0, x1);
  Vector r1(p.x0.size());
  p.a.residual(x1, p.b, r1);

  const DenseMatrix h = residual_propagation_dense(p.a, active);
  Vector hr0(r0.size());
  h.gemv(r0, hr0);
  EXPECT_NEAR(vec::max_abs_diff(r1, hr0), 0.0, 1e-12);
}

TEST(Propagation, ErrorEvolvesByGhat) {
  // e(k+1) = Ghat e(k) against a known exact solution.
  const CsrMatrix a = scale_to_unit_diagonal(gen::fd_laplacian_2d(3, 4));
  const index_t n = a.num_rows();
  Rng rng(21);
  Vector x_exact(static_cast<std::size_t>(n));
  vec::fill_uniform(x_exact, rng);
  Vector b(x_exact.size());
  a.spmv(x_exact, b);
  Vector x0(x_exact.size());
  vec::fill_uniform(x0, rng);

  const ActiveSet active = ActiveSet::from_indices(n, {1, 4, 6, 10});
  Vector inv_diag(static_cast<std::size_t>(n), 1.0);
  Vector x1(x0.size());
  apply_step(a, inv_diag, b, active, x0, x1);

  Vector e0(x0.size());
  Vector e1(x0.size());
  vec::sub(x_exact, x0, e0);
  vec::sub(x_exact, x1, e1);
  const DenseMatrix g = error_propagation_dense(a, active);
  Vector ge0(e0.size());
  g.gemv(e0, ge0);
  EXPECT_NEAR(vec::max_abs_diff(e1, ge0), 0.0, 1e-12);
}

TEST(Propagation, NonUnitDiagonalUsesDInverse) {
  const CsrMatrix a = gen::fd_laplacian_2d(3, 3);  // diagonal 4
  const index_t n = a.num_rows();
  Vector inv_diag(static_cast<std::size_t>(n), 0.25);
  Vector b(static_cast<std::size_t>(n), 1.0);
  Vector x0(static_cast<std::size_t>(n), 0.0);
  Vector x1(x0.size());
  apply_step(a, inv_diag, b, ActiveSet::all(n), x0, x1);
  for (index_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x1[i], 0.25);
}

}  // namespace
}  // namespace ajac::model
