#include "ajac/model/mask.hpp"

#include <gtest/gtest.h>

namespace ajac::model {
namespace {

TEST(ActiveSet, EmptyByDefault) {
  ActiveSet s(5);
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.count(), 0);
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.complement().size(), 5u);
}

TEST(ActiveSet, AllContainsEverything) {
  const ActiveSet s = ActiveSet::all(4);
  EXPECT_EQ(s.count(), 4);
  for (index_t i = 0; i < 4; ++i) EXPECT_TRUE(s.contains(i));
  EXPECT_TRUE(s.complement().empty());
}

TEST(ActiveSet, InsertIsIdempotent) {
  ActiveSet s(3);
  s.insert(1);
  s.insert(1);
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.contains(1));
}

TEST(ActiveSet, FromIndicesSortsAndDeduplicates) {
  const ActiveSet s = ActiveSet::from_indices(6, {4, 1, 4, 2});
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  const auto& idx = s.indices();
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(ActiveSet, ComplementIsDelayedRows) {
  const ActiveSet s = ActiveSet::from_indices(5, {0, 2, 4});
  const auto d = s.complement();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 3);
}

TEST(ActiveSet, ClearResets) {
  ActiveSet s(4);
  s.insert(0);
  s.insert(3);
  s.clear();
  EXPECT_EQ(s.count(), 0);
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(3));
}

TEST(ActiveSet, OutOfRangeInsertThrows) {
  ActiveSet s(2);
  EXPECT_THROW(s.insert(2), std::logic_error);
  EXPECT_THROW(s.insert(-1), std::logic_error);
}

}  // namespace
}  // namespace ajac::model
