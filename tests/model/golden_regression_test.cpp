// Golden regression tests for the propagation-matrix model: committed
// relaxation traces of the FD 5-point 16x16 problem are replayed through
// analyze_trace + the model executor, and the reconstructed residual
// history must match the committed values digit for digit (Release builds
// compare bitwise; debug builds allow last-ulp slack in case flag
// differences perturb libm).
//
// The traces were recorded from the distributed simulator (deterministic
// by construction) at a fixed problem seed. To regenerate after an
// *intentional* change to the analysis or the executor:
//
//   AJAC_REGEN_GOLDEN=1 ./ajac_test_model --gtest_filter='GoldenPropagation.*'
//
// which rewrites the files under tests/model/golden/ in the source tree
// (the test still asserts afterwards, so a regen run is self-checking).
// Commit the diff deliberately — these files are the record of what the
// model computes.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/trace.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/runtime/row_policy.hpp"
#include "ajac/sparse/csr.hpp"

namespace ajac::model {
namespace {

// Fixed on purpose: goldens pin one exact execution, AJAC_TEST_SEED must
// not move them.
constexpr std::uint64_t kGoldenSeed = 4242;

gen::LinearProblem golden_problem() {
  return gen::make_problem("fd16", gen::fd_laplacian_2d(16, 16), kGoldenSeed);
}

std::string golden_path(const std::string& name) {
  return std::string(AJAC_GOLDEN_DIR) + "/" + name;
}

bool regen_requested() {
  const char* env = std::getenv("AJAC_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with AJAC_REGEN_GOLDEN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
  out << content;
}

/// %.17g round-trips doubles exactly, so the history file is bit-stable.
std::string format_history(const TraceReplay& replay) {
  char buf[64];
  std::string out;
  out += "steps " + std::to_string(replay.analysis.parallel_steps);
  out += " propagated " + std::to_string(replay.analysis.propagated_relaxations);
  out += " total " + std::to_string(replay.analysis.total_relaxations);
  out += " orphaned " + std::to_string(replay.analysis.orphaned);
  out += "\n";
  for (const HistoryPoint& pt : replay.result.history) {
    std::snprintf(buf, sizeof(buf), "%.17g\n", pt.rel_residual_1);
    out += buf;
  }
  return out;
}

RelaxationTrace record_trace(
    index_t procs, index_t iterations,
    runtime::RowPolicy policy = runtime::RowPolicy::kNaturalOrder) {
  const auto p = golden_problem();
  distsim::DistOptions o;
  o.num_processes = procs;
  o.max_iterations = iterations;
  o.tolerance = 0.0;
  o.seed = kGoldenSeed;
  o.record_trace = true;
  o.policy = policy;
  o.weight_refresh = 4;
  const auto part = partition::contiguous_partition(p.a.num_rows(), procs);
  const auto r = distsim::solve_distributed(p.a, p.b, p.x0, part, o);
  return *r.trace;
}

void run_case(
    const std::string& name, index_t procs, index_t iterations,
    runtime::RowPolicy policy = runtime::RowPolicy::kNaturalOrder) {
  const std::string trace_file = golden_path(name + "_trace.json");
  const std::string history_file = golden_path(name + "_history.txt");
  const auto p = golden_problem();
  ExecutorOptions opts;
  opts.tolerance = 0.0;

  if (regen_requested()) {
    const RelaxationTrace trace = record_trace(procs, iterations, policy);
    write_file(trace_file, to_json(trace) + "\n");
    const TraceReplay replay = replay_trace(p.a, p.b, p.x0, trace, opts);
    write_file(history_file, format_history(replay));
  }

  const RelaxationTrace trace = trace_from_json(read_file(trace_file));
  ASSERT_EQ(trace.num_rows(), p.a.num_rows());
  const TraceReplay replay = replay_trace(p.a, p.b, p.x0, trace, opts);

  std::istringstream golden(read_file(history_file));
  std::string key;
  index_t steps = 0;
  index_t propagated = 0;
  index_t total = 0;
  index_t orphaned = 0;
  golden >> key >> steps;
  ASSERT_EQ(key, "steps");
  golden >> key >> propagated;
  ASSERT_EQ(key, "propagated");
  golden >> key >> total;
  ASSERT_EQ(key, "total");
  golden >> key >> orphaned;
  ASSERT_EQ(key, "orphaned");
  EXPECT_EQ(replay.analysis.parallel_steps, steps);
  EXPECT_EQ(replay.analysis.propagated_relaxations, propagated);
  EXPECT_EQ(replay.analysis.total_relaxations, total);
  EXPECT_EQ(replay.analysis.orphaned, orphaned);

  std::vector<double> residuals;
  double value = 0.0;
  while (golden >> value) residuals.push_back(value);
  ASSERT_EQ(replay.result.history.size(), residuals.size());
  for (std::size_t k = 0; k < residuals.size(); ++k) {
#ifdef NDEBUG
    // Release: the committed history is bit-stable.
    EXPECT_EQ(replay.result.history[k].rel_residual_1, residuals[k])
        << "history point " << k;
#else
    EXPECT_NEAR(replay.result.history[k].rel_residual_1, residuals[k],
                1e-14 * (1.0 + residuals[k]))
        << "history point " << k;
#endif
  }
}

TEST(GoldenPropagation, Fd16x16EightRanks) { run_case("fd16_p8", 8, 6); }

TEST(GoldenPropagation, Fd16x16FourRanks) { run_case("fd16_p4", 4, 10); }

// Sampled row policies: the recorded (row, read-version) streams — per-row
// relaxation counters under repeated draws — must replay through the Φ(l)
// analysis and the model executor to the committed histories bitwise.
TEST(GoldenPropagation, Fd16x16FourRanksUniform) {
  run_case("fd16_uniform_p4", 4, 10, runtime::RowPolicy::kUniformRandom);
}

TEST(GoldenPropagation, Fd16x16FourRanksWeighted) {
  run_case("fd16_weighted_p4", 4, 10, runtime::RowPolicy::kResidualWeighted);
}

// The paper's Fig. 1 traces as micro-goldens: their analyses are fully
// determined by Sec. IV-A and must never drift.
TEST(GoldenPropagation, Figure1Analyses) {
  const auto a = analyze_trace(figure1a_trace());
  EXPECT_EQ(a.total_relaxations, 4);
  EXPECT_EQ(a.propagated_relaxations, 4);
  EXPECT_DOUBLE_EQ(a.fraction, 1.0);
  const auto b = analyze_trace(figure1b_trace());
  EXPECT_EQ(b.total_relaxations, 4);
  EXPECT_EQ(b.propagated_relaxations, 3);
  EXPECT_DOUBLE_EQ(b.fraction, 0.75);
}

// The JSON codec itself: committed traces must survive a round trip, and
// parsing must reject malformed input instead of guessing.
TEST(GoldenPropagation, TraceJsonRoundTrip) {
  const RelaxationTrace trace = figure1b_trace();
  const RelaxationTrace back = trace_from_json(to_json(trace));
  ASSERT_EQ(back.num_rows(), trace.num_rows());
  ASSERT_EQ(back.events().size(), trace.events().size());
  for (std::size_t k = 0; k < trace.events().size(); ++k) {
    EXPECT_EQ(back.events()[k].row, trace.events()[k].row);
    ASSERT_EQ(back.events()[k].reads.size(), trace.events()[k].reads.size());
    for (std::size_t r = 0; r < trace.events()[k].reads.size(); ++r) {
      EXPECT_EQ(back.events()[k].reads[r].source_row,
                trace.events()[k].reads[r].source_row);
      EXPECT_EQ(back.events()[k].reads[r].version,
                trace.events()[k].reads[r].version);
    }
  }
  EXPECT_EQ(to_json(back), to_json(trace));
  EXPECT_THROW(trace_from_json("{\"num_rows\": 2}"), std::logic_error);
  EXPECT_THROW(trace_from_json("{\"num_rows\": 2, \"events\": ["), std::logic_error);
  EXPECT_THROW(trace_from_json("[]"), std::logic_error);
  EXPECT_THROW(trace_from_json(""), std::logic_error);
}

}  // namespace
}  // namespace ajac::model
