#include <gtest/gtest.h>

#include "ajac/gen/fd.hpp"
#include "ajac/gen/fe.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/schedule.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/vector_ops.hpp"

namespace ajac::model {
namespace {

TEST(BlockSequentialSchedule, CoversEachRowOncePerCycle) {
  BlockSequentialSchedule sched(10, 3);  // blocks {0-2}{3-5}{6-8}{9}
  EXPECT_EQ(sched.num_blocks(), 4);
  std::vector<int> seen(10, 0);
  ActiveSet a(10);
  for (index_t step = 0; step < 4; ++step) {
    sched.active_rows(step, a);
    for (index_t i : a.indices()) ++seen[i];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(BlockSequentialSchedule, BlockSizeNIsSynchronous) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(5, 5), 3);
  const index_t n = p.a.num_rows();
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 10;
  BlockSequentialSchedule whole(n, n);
  const auto r_block = run_model(p.a, p.b, p.x0, whole, eo);
  const auto r_sync = run_synchronous(p.a, p.b, p.x0, eo);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r_block.x, r_sync.x), 0.0);
}

TEST(BlockSequentialSchedule, BlockSizeOneIsSequential) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 5);
  const index_t n = p.a.num_rows();
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 3 * n;
  BlockSequentialSchedule single(n, 1);
  SequentialSchedule seq(n);
  const auto r_block = run_model(p.a, p.b, p.x0, single, eo);
  const auto r_seq = run_model(p.a, p.b, p.x0, seq, eo);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r_block.x, r_seq.x), 0.0);
}

TEST(BlockSequentialSchedule, SmallBlocksRescueTheDivergentFeMatrix) {
  // Sec. IV-B/IV-D executable: full-sweep Jacobi diverges on the FE
  // matrix, but multiplicative block relaxation with small blocks
  // converges — exactly what high-concurrency async realizes.
  gen::FeMeshOptions fo;
  fo.nx = 30;
  fo.ny = 20;
  fo.jitter = 0.35;
  fo.jitter_fraction = 0.15;
  fo.seed = 20180521;
  const auto p = gen::make_problem("fe", gen::fe_laplacian_2d(fo), 7);
  const index_t n = p.a.num_rows();

  ExecutorOptions eo;
  eo.tolerance = 0.0;
  BlockSequentialSchedule big(n, n);
  eo.max_steps = 800;
  const auto diverged = run_model(p.a, p.b, p.x0, big, eo);
  EXPECT_GT(diverged.final_rel_residual_1, 10.0);

  BlockSequentialSchedule small(n, 8);
  eo.max_steps = 200 * small.num_blocks();
  const auto converged = run_model(p.a, p.b, p.x0, small, eo);
  EXPECT_LT(converged.final_rel_residual_1, 5e-2);
}

TEST(ExecutorDamping, OmegaHalfRescuesFeMatrixSynchronously) {
  // Damped Jacobi converges whenever lambda(A_scaled) in (0, 2/omega).
  gen::FeMeshOptions fo;
  fo.nx = 30;
  fo.ny = 20;
  fo.jitter = 0.35;
  fo.jitter_fraction = 0.15;
  fo.seed = 20180521;
  const auto p = gen::make_problem("fe", gen::fe_laplacian_2d(fo), 9);
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 400;
  eo.omega = 0.5;
  const auto r = run_synchronous(p.a, p.b, p.x0, eo);
  EXPECT_LT(r.final_rel_residual_1, 0.1);
}

TEST(ExecutorDamping, OmegaOneMatchesUndamped) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(4, 4), 11);
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 15;
  const auto r1 = run_synchronous(p.a, p.b, p.x0, eo);
  eo.omega = 1.0;
  const auto r2 = run_synchronous(p.a, p.b, p.x0, eo);
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(r1.x, r2.x), 0.0);
}

TEST(ExecutorDamping, InvalidOmegaRejected) {
  const auto p = gen::make_problem("fd", gen::fd_laplacian_2d(3, 3), 13);
  ExecutorOptions eo;
  eo.omega = 0.0;
  EXPECT_THROW(run_synchronous(p.a, p.b, p.x0, eo), std::logic_error);
}

}  // namespace
}  // namespace ajac::model
