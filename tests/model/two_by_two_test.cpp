// The paper's 2x2 discussion (Sec. IV-C, referencing Hook & Dingle's 2x2
// random-matrix study): with one of the two processes delayed, the
// propagation matrices have rank-1 structure
//     Ghat = [[1, 0], [alpha, 0]],   Hhat = [[1, beta], [0, 0]]
// (first process delayed, unit diagonal), both idempotent — so iterating
// while delayed cannot improve the solution beyond the first application.
// "For larger matrices, iterating while having a small number of delayed
// rows will reduce the error and residual." These tests make all of that
// executable.

#include <gtest/gtest.h>

#include <cmath>

#include "ajac/gen/fd.hpp"
#include "ajac/model/executor.hpp"
#include "ajac/model/propagation.hpp"
#include "ajac/sparse/coo.hpp"
#include "ajac/sparse/csr.hpp"
#include "ajac/sparse/submatrix.hpp"
#include "ajac/sparse/vector_ops.hpp"
#include "ajac/util/rng.hpp"

namespace ajac::model {
namespace {

/// Random symmetric 2x2 with unit diagonal and |off-diagonal| < 1 (SPD).
CsrMatrix random_2x2(Rng& rng) {
  const double c = rng.uniform(-0.95, 0.95);
  CooBuilder coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add_symmetric(0, 1, c);
  return coo.to_csr();
}

class TwoByTwo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoByTwo, PropagationMatricesHavePaperForm) {
  Rng rng(GetParam());
  const CsrMatrix a = random_2x2(rng);
  const double c = a.at(0, 1);
  // First process (row 0) delayed.
  const ActiveSet active = ActiveSet::from_indices(2, {1});
  const DenseMatrix g = error_propagation_dense(a, active);
  const DenseMatrix h = residual_propagation_dense(a, active);
  EXPECT_DOUBLE_EQ(g(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(g(1, 0), -c);  // alpha = -A21/A22
  EXPECT_DOUBLE_EQ(g(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(0, 1), -c);  // beta = -A12/A22
  EXPECT_DOUBLE_EQ(h(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(h(1, 1), 0.0);
}

TEST_P(TwoByTwo, PropagationMatricesAreIdempotent) {
  Rng rng(GetParam());
  const CsrMatrix a = random_2x2(rng);
  const ActiveSet active = ActiveSet::from_indices(2, {1});
  const DenseMatrix g = error_propagation_dense(a, active);
  const DenseMatrix h = residual_propagation_dense(a, active);
  EXPECT_NEAR(g.multiply(g).max_abs_diff(g), 0.0, 1e-15);
  EXPECT_NEAR(h.multiply(h).max_abs_diff(h), 0.0, 1e-15);
}

TEST_P(TwoByTwo, SolutionStopsChangingAfterOneApplication) {
  // "since the only information needed by row two comes from row one, row
  // two cannot continue to change without new information from row one."
  Rng rng(GetParam());
  const CsrMatrix a = random_2x2(rng);
  Vector b{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  Vector x0{rng.uniform(-1, 1), rng.uniform(-1, 1)};

  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 50;
  DelayedRowsSchedule sched(2, {{0, 0}});  // row 0 never relaxes
  const ModelResult r = run_model(a, b, x0, sched, eo);
  // Residual history is flat from step 1 on.
  for (std::size_t k = 2; k < r.history.size(); ++k) {
    EXPECT_DOUBLE_EQ(r.history[k].rel_residual_1,
                     r.history[1].rel_residual_1);
  }
}

TEST_P(TwoByTwo, ResidualConvergesToUnitBasisDirection) {
  // The surviving residual is entirely in the delayed coordinate (the
  // unit-basis eigenvector of Hhat with eigenvalue 1).
  Rng rng(GetParam());
  const CsrMatrix a = random_2x2(rng);
  Vector b{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  Vector x0{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 5;
  DelayedRowsSchedule sched(2, {{0, 0}});
  const ModelResult r = run_model(a, b, x0, sched, eo);
  Vector res(2);
  a.residual(r.x, b, res);
  EXPECT_NEAR(res[1], 0.0, 1e-14);  // active row fully solved
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoByTwo,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(LargerMatrices, ContinueImprovingUnderTheSameDelay) {
  // The paper's contrast: for larger matrices the same permanently-delayed
  // setup keeps reducing the residual over many steps instead of
  // converging after one.
  const auto a = gen::fd_laplacian_2d(8, 8);
  Rng rng(3);
  Vector b(64);
  Vector x0(64);
  vec::fill_uniform(b, rng);
  vec::fill_uniform(x0, rng);
  // Scale to unit diagonal for the model convention.
  Vector inv_diag(64, 0.25);
  ExecutorOptions eo;
  eo.tolerance = 0.0;
  eo.max_steps = 100;
  DelayedRowsSchedule sched(64, {{32, 0}});
  const ModelResult r = run_model(a, b, x0, sched, eo);
  // Strict decrease over the first many steps (not flat after step 1).
  EXPECT_LT(r.history[50].rel_residual_1,
            0.5 * r.history[1].rel_residual_1);
}

}  // namespace
}  // namespace ajac::model
