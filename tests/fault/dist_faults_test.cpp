// Fault injection in the distributed simulator: message drop / duplicate /
// reorder on directed edges, straggling and crashing ranks, frozen
// mailboxes — and the determinism of it all (the simulator is fully
// deterministic, so faulty runs must be bitwise repeatable end to end).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "ajac/distsim/dist_jacobi.hpp"
#include "ajac/fault/fault_plan.hpp"
#include "ajac/gen/fd.hpp"
#include "ajac/gen/problem.hpp"
#include "ajac/partition/partition.hpp"
#include "ajac/sparse/csr.hpp"
#include "fault_test_util.hpp"
#include "test_helpers.hpp"

namespace ajac::distsim {
namespace {

struct Setup {
  gen::LinearProblem p;
  partition::Partition part;
};

Setup setup(index_t procs, std::uint64_t salt = 0) {
  Setup s{gen::make_problem("fd", gen::fd_laplacian_2d(12, 12),
                            ajac::testing::test_seed(salt)),
          partition::contiguous_partition(144, procs)};
  return s;
}

DistOptions base_options(index_t procs) {
  DistOptions o;
  o.num_processes = procs;
  o.max_iterations = 5000;
  o.tolerance = 1e-5;
  o.seed = ajac::testing::test_seed();
  return o;
}

std::shared_ptr<fault::FaultPlan> make_plan() {
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = ajac::testing::test_seed();
  return plan;
}

TEST(DistFaults, EmptyPlanMatchesNoPlanBitwise) {
  const auto s = setup(4);
  auto o = base_options(4);
  const DistResult clean = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  o.fault_plan = std::make_shared<fault::FaultPlan>();
  const DistResult r = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  EXPECT_TRUE(r.fault_events.empty());
  EXPECT_EQ(r.sim_seconds, clean.sim_seconds);
  ASSERT_EQ(r.x.size(), clean.x.size());
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    ASSERT_EQ(r.x[i], clean.x[i]) << "diverged at row " << i;
  }
}

TEST(DistFaults, ConvergesUnderEachFaultClass) {
  const auto s = setup(6);
  struct Case {
    const char* name;
    std::shared_ptr<fault::FaultPlan> plan;
  };
  std::vector<Case> cases;
  {
    auto plan = make_plan();
    plan->message_faults.push_back({.drop_probability = 0.3});
    cases.push_back({"drop", plan});
  }
  {
    auto plan = make_plan();
    plan->message_faults.push_back({.duplicate_probability = 0.3});
    cases.push_back({"duplicate", plan});
  }
  {
    auto plan = make_plan();
    plan->message_faults.push_back(
        {.reorder_probability = 0.3, .reorder_latency_factor = 8.0});
    cases.push_back({"reorder", plan});
  }
  {
    auto plan = make_plan();
    plan->stragglers.push_back(
        {.actor = 0, .delay_factor = 8.0, .period = 32, .duty = 0.5});
    cases.push_back({"straggler", plan});
  }
  {
    auto plan = make_plan();
    plan->stale_reads.push_back({.actor = 2, .period = 16, .duty = 0.5});
    cases.push_back({"frozen-mailbox", plan});
  }
  {
    auto plan = make_plan();
    plan->crashes.push_back(
        {.actor = 1, .crash_iteration = 15, .dead_seconds = 1e-3});
    cases.push_back({"crash", plan});
  }
  {
    auto plan = make_plan();
    plan->crashes.push_back({.actor = 1,
                             .crash_iteration = 15,
                             .dead_seconds = 1e-3,
                             .reset_state_on_recovery = true});
    cases.push_back({"crash+reset", plan});
  }
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    auto o = base_options(6);
    o.fault_plan = c.plan;
    const DistResult r = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
    EXPECT_TRUE(r.reached_tolerance);
    EXPECT_LE(r.final_rel_residual_1, o.tolerance * 1.01);
    ajac::testing::dump_fault_log_if_failed(
        std::string("dist_converge_") + c.name, r.fault_events);
  }
}

TEST(DistFaults, CertainDropSeversOneEdgeAndStallsConvergence) {
  const auto s = setup(4);
  auto o = base_options(4);
  auto plan = make_plan();
  plan->message_faults.push_back(
      {.sender = 0, .receiver = 1, .drop_probability = 1.0});
  o.fault_plan = plan;
  const DistResult r = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  EXPECT_GT(r.dropped_messages, 0);
  EXPECT_EQ(r.dropped_messages, static_cast<index_t>(r.fault_events.size()));
  for (const fault::FaultEvent& e : r.fault_events) {
    EXPECT_EQ(e.kind, fault::FaultKind::kMessageDrop);
    EXPECT_EQ(e.actor, 0);   // sender
    EXPECT_EQ(e.detail, 1);  // receiver
  }
  // Async Jacobi tolerates arbitrary *staleness*, but a permanently severed
  // edge violates the convergence hypothesis that every update is
  // eventually delivered (Baudet; Sec. III): rank 1 relaxes against rank
  // 0's initial ghost values forever, so the iterate heads to the wrong
  // fixed point and the residual plateaus above tolerance. The run must
  // still terminate cleanly at the iteration cap.
  EXPECT_FALSE(r.reached_tolerance);
  EXPECT_GT(r.final_rel_residual_1, o.tolerance);
  for (index_t iters : r.iterations_per_process) {
    EXPECT_EQ(iters, o.max_iterations);
  }
  ajac::testing::dump_fault_log_if_failed("dist_drop_edge", r.fault_events);
}

TEST(DistFaults, DuplicateCountsMatchLog) {
  const auto s = setup(4);
  auto o = base_options(4);
  auto plan = make_plan();
  plan->message_faults.push_back({.duplicate_probability = 0.5});
  o.fault_plan = plan;
  const DistResult r = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  EXPECT_GT(r.duplicated_messages, 0);
  index_t logged = 0;
  for (const fault::FaultEvent& e : r.fault_events) {
    if (e.kind == fault::FaultKind::kMessageDuplicate) ++logged;
  }
  EXPECT_EQ(logged, r.duplicated_messages);
  EXPECT_TRUE(r.reached_tolerance);
}

TEST(DistFaults, EagerRuleSurvivesDrops) {
  // The eager update rule relaxes only on fresh messages; dropped puts must
  // not be counted as in flight, or the starvation check would deadlock
  // the simulation. This is the regression test for that bookkeeping.
  const auto s = setup(4);
  auto o = base_options(4);
  o.update_rule = UpdateRule::kEager;
  auto plan = make_plan();
  plan->message_faults.push_back({.drop_probability = 0.3});
  o.fault_plan = plan;
  const DistResult r = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  EXPECT_GT(r.dropped_messages, 0);
  EXPECT_GT(r.total_relaxations, 0);
  EXPECT_LT(r.final_rel_residual_1, 1.0);  // made progress, did not hang
}

TEST(DistFaults, CrashRankLogsCrashAndRecover) {
  const auto s = setup(4);
  auto o = base_options(4);
  auto plan = make_plan();
  plan->crashes.push_back({.actor = 2,
                           .crash_iteration = 10,
                           .dead_seconds = 1e-3,
                           .reset_state_on_recovery = true});
  o.fault_plan = plan;
  const DistResult r = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  index_t crashes = 0;
  index_t recoveries = 0;
  for (const fault::FaultEvent& e : r.fault_events) {
    if (e.kind == fault::FaultKind::kCrash) {
      ++crashes;
      EXPECT_EQ(e.actor, 2);
      EXPECT_EQ(e.counter, 10);
    }
    if (e.kind == fault::FaultKind::kRecover) {
      ++recoveries;
      EXPECT_EQ(e.actor, 2);
    }
  }
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(recoveries, 1);
  EXPECT_TRUE(r.reached_tolerance);
  ajac::testing::dump_fault_log_if_failed("dist_crash_recover",
                                          r.fault_events);
}

TEST(DistFaults, SynchronousModeRejectsPlan) {
  const auto s = setup(4);
  auto o = base_options(4);
  o.synchronous = true;
  auto plan = make_plan();
  plan->message_faults.push_back({.drop_probability = 0.1});
  o.fault_plan = plan;
  EXPECT_THROW(solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o),
               std::logic_error);
}

TEST(DistFaults, BitFlipPlanRejected) {
  // Bit flips are a shared-runtime fault: the simulator's block relaxation
  // is not instrumented per matrix entry, and silently ignoring a spec
  // would make a "tested" scenario vacuous.
  const auto s = setup(4);
  auto o = base_options(4);
  auto plan = make_plan();
  plan->bit_flips.push_back({.actor = -1, .probability = 0.01});
  o.fault_plan = plan;
  EXPECT_THROW(solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o),
               std::logic_error);
}

TEST(DistFaultDeterminism, SameSeedSameLogAndState) {
  const auto s = setup(5);
  auto o = base_options(5);
  auto plan = make_plan();
  plan->message_faults.push_back(
      {.drop_probability = 0.1, .duplicate_probability = 0.1,
       .reorder_probability = 0.1});
  plan->stragglers.push_back(
      {.actor = 0, .delay_factor = 4.0, .period = 32, .duty = 0.5});
  plan->crashes.push_back(
      {.actor = 3, .crash_iteration = 12, .dead_seconds = 5e-4});
  o.fault_plan = plan;
  const DistResult first = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  const DistResult second = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  EXPECT_FALSE(first.fault_events.empty());
  EXPECT_EQ(first.fault_events, second.fault_events);
  EXPECT_EQ(first.dropped_messages, second.dropped_messages);
  EXPECT_EQ(first.duplicated_messages, second.duplicated_messages);
  EXPECT_EQ(first.sim_seconds, second.sim_seconds);
  ASSERT_EQ(first.x.size(), second.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i) {
    ASSERT_EQ(first.x[i], second.x[i]) << "diverged at row " << i;
  }
  ajac::testing::dump_fault_log_if_failed("dist_determinism",
                                          first.fault_events);
}

TEST(DistFaultDeterminism, PlanSeedSelectsDecisions) {
  const auto s = setup(4);
  auto o = base_options(4);
  auto plan_a = make_plan();
  plan_a->message_faults.push_back({.drop_probability = 0.2});
  auto plan_b = std::make_shared<fault::FaultPlan>(*plan_a);
  plan_b->seed = plan_a->seed + 1;
  o.fault_plan = plan_a;
  const DistResult a = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  o.fault_plan = plan_b;
  const DistResult b = solve_distributed(s.p.a, s.p.b, s.p.x0, s.part, o);
  EXPECT_FALSE(a.fault_events.empty());
  EXPECT_NE(a.fault_events, b.fault_events);
}

}  // namespace
}  // namespace ajac::distsim
